//! Quickstart: run a Count query over a lossy sensor network with every
//! aggregation scheme and compare the answers.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use td_suite::core::protocol::ScalarProtocol;
use td_suite::core::session::{Scheme, Session};
use td_suite::netsim::loss::Global;
use td_suite::netsim::network::Network;
use td_suite::netsim::node::Position;
use td_suite::netsim::rng::rng_from_seed;

fn main() {
    // 1. Deploy 300 sensors uniformly in a 20x20 area, base station at the
    //    center, radio range 2.5 — the paper's Synthetic scenario, smaller.
    let mut rng = rng_from_seed(42);
    let net = Network::random_connected(300, 20.0, 20.0, Position::new(10.0, 10.0), 2.5, &mut rng);
    println!(
        "deployed {} sensors, {} radio links/node on average, {} ring levels deep",
        net.num_sensors(),
        net.average_degree(),
        net.hop_counts().iter().max().unwrap()
    );

    // 2. A harsh channel: every transmission drops with probability 25%.
    let channel = Global::new(0.25);

    // 3. Run a continuous Count query ("how many sensors are alive?") for
    //    120 epochs under each scheme. TD schemes adapt their delta region
    //    every 10 epochs toward 90% of nodes contributing.
    let values = vec![1u64; net.len()];
    println!("\n{:>10}  {:>10} {:>14} {:>12}", "scheme", "answer", "contributing", "delta size");
    for scheme in Scheme::all() {
        let mut session = Session::with_paper_defaults(scheme, &net, &mut rng);
        let mut last = None;
        for epoch in 0..120 {
            let proto = ScalarProtocol::new(
                td_suite::aggregates::count::Count::default(),
                &values,
            );
            last = Some(session.run_epoch(&proto, &channel, epoch, &mut rng));
        }
        let rec = last.unwrap();
        println!(
            "{:>10}  {:>10.1} {:>13.1}% {:>12}",
            scheme.name(),
            rec.output,
            rec.pct_contributing * 100.0,
            rec.delta_size
        );
    }
    println!(
        "\ntruth: {} — the tree (TAG) loses whole subtrees to the lossy channel,\n\
         rings (SD) pay a ~12% sketch error, and Tributary-Delta lands in between\n\
         by running trees where the channel allows and multi-path where it doesn't.",
        net.num_sensors()
    );
}
