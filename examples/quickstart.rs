//! Quickstart: register four concurrent queries — Count, Sum, Min, Max —
//! on one session and answer all of them with a single per-epoch
//! traversal, under every aggregation scheme.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use td_suite::core::driver::{Driver, EpochView, FixedReadings};
use td_suite::core::protocol::ScalarProtocol;
use td_suite::core::query::QuerySet;
use td_suite::core::session::{Scheme, SessionBuilder};
use td_suite::netsim::loss::Global;
use td_suite::netsim::network::Network;
use td_suite::netsim::node::Position;
use td_suite::netsim::rng::rng_from_seed;

fn main() {
    // 1. Deploy 300 sensors uniformly in a 20x20 area, base station at the
    //    center, radio range 2.5 — the paper's Synthetic scenario, smaller.
    let mut rng = rng_from_seed(42);
    let net = Network::random_connected(300, 20.0, 20.0, Position::new(10.0, 10.0), 2.5, &mut rng);
    println!(
        "deployed {} sensors, {} radio links/node on average, {} ring levels deep",
        net.num_sensors(),
        net.average_degree(),
        net.hop_counts().iter().max().unwrap()
    );

    // 2. A harsh channel: every transmission drops with probability 25%.
    let channel = Global::new(0.25);

    // 3. Four continuous queries over the same readings. One `QuerySet`
    //    per epoch carries all of them in a single topology traversal —
    //    the marginal cost of a query is a message-bundle slot, not
    //    another network round. TD schemes adapt their delta every 10
    //    epochs toward 90% of nodes contributing.
    let readings: Vec<u64> = (0..net.len() as u64).map(|i| 20 + (i * 13) % 80).collect();
    let truth_sum: u64 = readings[1..].iter().sum();
    let epochs = 120u64;
    println!(
        "\n{:>10}  {:>8} {:>9} {:>6} {:>6} {:>13} {:>11} {:>13}",
        "scheme", "count", "sum", "min", "max", "contributing", "delta size", "rounds/epoch"
    );
    for scheme in Scheme::all() {
        let session = SessionBuilder::new(scheme).build(&net, &mut rng);
        let mut driver = Driver::new(session, 0);
        let mut last = None;
        driver.run(
            &FixedReadings(readings.clone()),
            &channel,
            epochs,
            |set: &mut QuerySet<'_>, values| {
                let count = set.register(ScalarProtocol::new(
                    td_suite::aggregates::count::Count::default(),
                    values,
                ));
                let sum = set.register(ScalarProtocol::new(
                    td_suite::aggregates::sum::Sum::default(),
                    values,
                ));
                let min = set.register(ScalarProtocol::new(
                    td_suite::aggregates::minmax::Min,
                    values,
                ));
                let max = set.register(ScalarProtocol::new(
                    td_suite::aggregates::minmax::Max,
                    values,
                ));
                (count, sum, min, max)
            },
            |view: EpochView<'_>, (count, sum, min, max)| {
                last = Some((
                    *view.record.answers.get(count),
                    *view.record.answers.get(sum),
                    *view.record.answers.get(min),
                    *view.record.answers.get(max),
                    view.record.pct_contributing,
                    view.record.delta_size,
                ));
            },
            &mut rng,
        );
        let (count, sum, min, max, pct, delta) = last.unwrap();
        let rounds_per_epoch = driver.session().stats().total_rounds() as f64 / epochs as f64;
        println!(
            "{:>10}  {:>8.1} {:>9.1} {:>6.0} {:>6.0} {:>12.1}% {:>11} {:>13.0}",
            scheme.name(),
            count,
            sum,
            min,
            max,
            pct * 100.0,
            delta,
            rounds_per_epoch,
        );
    }
    println!(
        "\ntruth: count {} / sum {truth_sum} / min 20 / max 99 — four queries, yet each\n\
         node still sends once per epoch (see rounds/epoch ~= the sensor count):\n\
         the tree (TAG) loses whole subtrees to the lossy channel, rings (SD) pay\n\
         a ~12% sketch error, and Tributary-Delta lands in between by running\n\
         trees where the channel allows and multi-path where it doesn't.",
        net.num_sensors()
    );
}
