//! Extending the framework: implement a custom aggregate (logical OR —
//! "has any sensor tripped its alarm?") and run it under Tributary-Delta.
//!
//! Everything a new aggregate needs is the `Aggregate` trait from
//! `td-aggregates`: a tree partial result, a duplicate-insensitive
//! synopsis, and the conversion between them (§5 of the paper). OR is
//! idempotent, so — like Min/Max — both sides are exact and conversion is
//! the identity.
//!
//! ```sh
//! cargo run --release --example custom_aggregate
//! ```

use td_suite::aggregates::traits::{Aggregate, Wire};
use td_suite::core::driver::{Driver, EpochView, FixedReadings};
use td_suite::core::protocol::ScalarProtocol;
use td_suite::core::query::QuerySet;
use td_suite::core::session::{Scheme, SessionBuilder};
use td_suite::netsim::loss::Global;
use td_suite::netsim::rng::rng_from_seed;
use td_suite::workloads::synthetic::Synthetic;

/// Logical OR over per-node alarm bits (1 = tripped).
#[derive(Clone, Copy, Debug, Default)]
struct AnyAlarm;

impl Aggregate for AnyAlarm {
    type TreePartial = u64;
    type Synopsis = u64;

    fn name(&self) -> &'static str {
        "any-alarm"
    }

    fn local_tree(&self, _node: u32, value: u64) -> u64 {
        (value != 0) as u64
    }

    fn merge_tree(&self, into: &mut u64, from: &u64) {
        *into |= from;
    }

    fn local_synopsis(&self, _node: u32, value: u64) -> u64 {
        (value != 0) as u64
    }

    // OR is commutative, associative, and idempotent: multi-path can carry
    // it verbatim.
    fn fuse(&self, into: &mut u64, from: &u64) {
        *into |= from;
    }

    fn convert(&self, _root: u32, partial: &u64) -> u64 {
        *partial
    }

    fn evaluate_tree(&self, partial: &u64) -> f64 {
        *partial as f64
    }

    fn evaluate_synopsis(&self, synopsis: &u64) -> f64 {
        *synopsis as f64
    }

    fn tree_wire(&self, _partial: &u64) -> Wire {
        Wire::from_words(1)
    }

    fn synopsis_wire(&self, _synopsis: &u64) -> Wire {
        Wire::from_words(1)
    }
}

fn main() {
    let net = Synthetic::small(200).build(11);
    let mut rng = rng_from_seed(12);

    // One sensor (id 137) trips its alarm.
    let mut values = vec![0u64; net.len()];
    values[137.min(net.len() - 1)] = 1;

    // A very lossy channel: will the single alarm bit make it through?
    let channel = Global::new(0.35);
    println!("one tripped alarm, 35% message loss, 60 epochs per scheme:\n");
    for scheme in Scheme::all() {
        let session = SessionBuilder::new(scheme).build(&net, &mut rng);
        let mut driver = Driver::new(session, 0);
        let mut heard = 0u32;
        driver.run(
            &FixedReadings(values.clone()),
            &channel,
            60,
            |set: &mut QuerySet<'_>, readings| {
                set.register(ScalarProtocol::new(AnyAlarm, readings))
            },
            |view: EpochView<'_>, handle| {
                if *view.record.answers.get(handle) >= 1.0 {
                    heard += 1;
                }
            },
            &mut rng,
        );
        println!("{:>10}: alarm heard in {heard}/60 epochs", scheme.name());
    }
    println!(
        "\nA tree drops the alarm whenever any link on its single path fails;\n\
         the delta region's multi-path redundancy (and TD's adaptation) keep\n\
         the alarm visible nearly every epoch."
    );
}
