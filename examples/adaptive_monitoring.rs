//! Adaptive monitoring: watch the Tributary-Delta boundary react as
//! network conditions change out from under a continuous Sum query — the
//! dynamic scenario of the paper's Figure 6, driven by the session
//! `Driver` and the Synthetic `Workload`.
//!
//! ```sh
//! cargo run --release --example adaptive_monitoring
//! ```

use td_suite::core::driver::{Driver, EpochView};
use td_suite::core::metrics::relative_error;
use td_suite::core::protocol::ScalarProtocol;
use td_suite::core::query::QuerySet;
use td_suite::core::session::{Scheme, SessionBuilder};
use td_suite::netsim::rng::rng_from_seed;
use td_suite::workloads::scenario::figure6_timeline;
use td_suite::workloads::synthetic::Synthetic;

fn main() {
    let net = Synthetic::small(300).build(7);
    let model = figure6_timeline();
    let mut rng = rng_from_seed(8);
    let session = SessionBuilder::new(Scheme::Td).build(&net, &mut rng);
    // Every epoch of the timeline is part of the story: no warmup.
    let mut driver = Driver::new(session, 0);

    println!("epoch | phase              | rel.err | delta | note");
    println!("------+--------------------+---------+-------+-----------------------------");
    let phases = [
        (0u64, "Global(0)"),
        (100, "Regional(0.3, 0)"),
        (200, "Global(0.3)"),
        (300, "Global(0)"),
    ];
    driver.run(
        &Synthetic::sum_workload(&net, 7),
        &model,
        400,
        |set: &mut QuerySet<'_>, values| {
            set.register(ScalarProtocol::new(
                td_suite::aggregates::sum::Sum::default(),
                values,
            ))
        },
        |view: EpochView<'_>, handle| {
            if !view.epoch.is_multiple_of(25) {
                return;
            }
            let actual: f64 = view.readings[1..].iter().sum::<u64>() as f64;
            let phase = phases
                .iter()
                .rev()
                .find(|(start, _)| view.epoch >= *start)
                .map(|(_, name)| *name)
                .unwrap();
            let note = match view.record.action {
                td_suite::core::adapt::AdaptAction::Expanded { switched } => {
                    format!("delta expanded by {switched}")
                }
                td_suite::core::adapt::AdaptAction::Shrunk { switched } => {
                    format!("delta shrank by {switched}")
                }
                _ => String::new(),
            };
            println!(
                "{:>5} | {phase:<18} | {:>6.3} | {:>5} | {note}",
                view.epoch,
                relative_error(*view.record.answers.get(handle), actual),
                view.record.delta_size,
            );
        },
        &mut rng,
    );
    println!(
        "\nThe delta grows when loss appears (more robustness), shrinks when the\n\
         network heals (exact tree aggregation, smaller messages) — the base\n\
         station steers it with nothing but the per-answer %-contributing signal."
    );
}
