//! Adaptive monitoring: watch the Tributary-Delta boundary react as
//! network conditions change out from under a continuous Sum query — the
//! dynamic scenario of the paper's Figure 6.
//!
//! ```sh
//! cargo run --release --example adaptive_monitoring
//! ```

use td_suite::core::metrics::relative_error;
use td_suite::core::protocol::ScalarProtocol;
use td_suite::core::session::{Scheme, Session};
use td_suite::netsim::rng::rng_from_seed;
use td_suite::workloads::scenario::figure6_timeline;
use td_suite::workloads::synthetic::Synthetic;

fn main() {
    let net = Synthetic::small(300).build(7);
    let model = figure6_timeline();
    let mut rng = rng_from_seed(8);
    let mut session = Session::with_paper_defaults(Scheme::Td, &net, &mut rng);

    println!("epoch | phase              | rel.err | delta | note");
    println!("------+--------------------+---------+-------+-----------------------------");
    let phases = [
        (0u64, "Global(0)"),
        (100, "Regional(0.3, 0)"),
        (200, "Global(0.3)"),
        (300, "Global(0)"),
    ];
    for epoch in 0..400u64 {
        let values = Synthetic::sum_readings(&net, 7, epoch);
        let actual: f64 = values[1..].iter().sum::<u64>() as f64;
        let proto = ScalarProtocol::new(td_suite::aggregates::sum::Sum::default(), &values);
        let rec = session.run_epoch(&proto, &model, epoch, &mut rng);
        if epoch % 25 == 0 {
            let phase = phases
                .iter()
                .rev()
                .find(|(start, _)| epoch >= *start)
                .map(|(_, name)| *name)
                .unwrap();
            let note = match rec.action {
                td_suite::core::adapt::AdaptAction::Expanded { switched } => {
                    format!("delta expanded by {switched}")
                }
                td_suite::core::adapt::AdaptAction::Shrunk { switched } => {
                    format!("delta shrank by {switched}")
                }
                _ => String::new(),
            };
            println!(
                "{epoch:>5} | {phase:<18} | {:>6.3} | {:>5} | {note}",
                relative_error(rec.output, actual),
                rec.delta_size,
            );
        }
    }
    println!(
        "\nThe delta grows when loss appears (more robustness), shrinks when the\n\
         network heals (exact tree aggregation, smaller messages) — the base\n\
         station steers it with nothing but the per-answer %-contributing signal."
    );
}
