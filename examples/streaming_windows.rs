//! Streaming windows: answer "total readings over the last 12 epochs,
//! updated every 3" (plus a tumbling mean and an all-time landmark max)
//! over a drifting workload on an adapting Tributary-Delta session —
//! three windows, one query, one traversal per epoch.
//!
//! ```sh
//! cargo run --release --example streaming_windows
//! ```

use td_suite::aggregates::sum::Sum;
use td_suite::core::driver::Driver;
use td_suite::core::session::{Scheme, SessionBuilder};
use td_suite::netsim::loss::Global;
use td_suite::netsim::rng::rng_from_seed;
use td_suite::stream::{EpochMerge, StreamQuery, StreamSession, WindowSpec};
use td_suite::workloads::synthetic::Synthetic;
use td_suite::workloads::workload::DriftingStream;

fn main() {
    // A 300-sensor deployment with a drifting Sum workload: a ±40%
    // seasonal swing plus a regime shift every 25 epochs — the shape
    // per-epoch answers can't summarize but windows can.
    let net = Synthetic::small(300).build(7);
    let workload = DriftingStream::new(Synthetic::sum_workload(&net, 7), 8);
    let channel = Global::new(0.2);

    let mut rng = rng_from_seed(9);
    let session = SessionBuilder::new(Scheme::Td).build(&net, &mut rng);
    let mut stream = StreamSession::new(Driver::new(session, 10));

    // Three windows over ONE underlying Sum query: they share one pane
    // series, and the whole stream session still sends one message
    // bundle per node per epoch.
    let handles = stream.register(
        StreamQuery::scalar(Sum::default())
            .window(WindowSpec::sliding(12, 3), EpochMerge::Add)
            .window(WindowSpec::tumbling(12), EpochMerge::Mean)
            .window(WindowSpec::landmark(), EpochMerge::Max),
    );
    let [sliding, tumbling, landmark] = handles[..] else {
        unreachable!("three windows registered");
    };

    let reports = stream.run(&workload, &channel, 60, &mut rng);

    println!(
        "{:<28} {:>6} {:>6} {:>14} {:>9} {:>9} {:>9}",
        "window", "from", "to", "answer", "coverage", "worst", "relabels"
    );
    for r in &reports {
        let label = match r.handle {
            h if h == sliding => "sliding(12,3) sum",
            h if h == tumbling => "tumbling(12) mean",
            h if h == landmark => "landmark max",
            _ => unreachable!(),
        };
        // Landmark reports every epoch; keep the printout readable.
        if r.handle == landmark && (r.end_epoch + 1) % 12 != 0 {
            continue;
        }
        println!(
            "{label:<28} {:>6} {:>6} {:>14.1} {:>8.1}% {:>8.1}% {:>9}{}",
            r.start_epoch,
            r.end_epoch,
            r.answer,
            r.coverage * 100.0,
            r.min_coverage * 100.0,
            r.relabels,
            if r.is_lossy() { "  (lossy)" } else { "" },
        );
    }

    let st = stream.stream_stats();
    println!(
        "\n{} measured epochs → {} panes ({} queries), {} reports from {} pane merges;\n\
         every epoch sent one bundle per node — the three windows ride the same\n\
         pane series, and lossy panes degrade answers visibly (coverage columns)\n\
         instead of silently.",
        st.measured_epochs,
        st.panes_built,
        stream.query_count(),
        st.reports_emitted,
        st.pane_merges,
    );
}
