//! Frequent items over the LabData reconstruction: find the light levels
//! that dominate the lab's readings, comparing the paper's three schemes
//! under realistic loss (§6 + §7.4).
//!
//! ```sh
//! cargo run --release --example frequent_items_lab
//! ```

use td_suite::core::driver::Driver;
use td_suite::core::metrics::{false_negative_rate, false_positive_rate};
use td_suite::core::protocol::FreqProtocol;
use td_suite::core::session::{Scheme, SessionBuilder};
use td_suite::frequent::items::true_frequent;
use td_suite::frequent::multipath::{run_rings, MultipathConfig};
use td_suite::frequent::tree::{run_tree, GradientKind, TreeFrequentConfig};
use td_suite::netsim::rng::rng_from_seed;
use td_suite::quantiles::gradient::MinTotalLoad;
use td_suite::sketches::counter::FmFactory;
use td_suite::topology::bushy::{build_bushy_tree, BushyOptions};
use td_suite::topology::domination::domination_factor;
use td_suite::topology::rings::Rings;
use td_suite::workloads::items::labdata_bags;
use td_suite::workloads::labdata::LabData;

fn main() {
    let eps = 0.001; // ε = 0.1%
    let support = 0.01; // s = 1%

    let lab = LabData::new(3);
    let bags = labdata_bags(&lab, 500);
    let n_total: u64 = bags.iter().map(|b| b.total()).sum();
    let truth = true_frequent(&bags, support);
    println!(
        "54 motes, {n_total} discretized light readings, {} truly frequent buckets (s = 1%)",
        truth.len()
    );

    let net = lab.network();
    let model = lab.loss_model();
    let mut rng = rng_from_seed(4);

    // Tree scheme: Algorithm 1 under the Min Total-load precision gradient
    // over the bushy tree of §6.1.3.
    let rings = Rings::build(net);
    let tree = build_bushy_tree(net, &rings, BushyOptions::default(), &mut rng);
    let cfg = TreeFrequentConfig::new(eps).with_gradient(GradientKind::MinTotalLoad);
    let res = run_tree(net, &tree, &cfg, &bags, &model, 0, &mut rng);
    report(
        "tree (Min Total-load)",
        &res.summary.report_frequent(support),
        &truth,
        res.stats.total_words(),
    );

    // Multi-path scheme: Algorithm 2 with best-effort FM counters.
    let mp_cfg = MultipathConfig::new(eps, 2.0, n_total * 2, FmFactory { bitmaps: 16 });
    let res = run_rings(net, &rings, &mp_cfg, &bags, &model, 0, &mut rng);
    report(
        "multi-path (rings)",
        &res.estimates.report(support - eps),
        &truth,
        res.stats.total_words(),
    );

    // Tributary-Delta: Algorithm 1 tributaries + Algorithm 2 delta, ε
    // split across the halves (§6.3), delta adapting over 30 epochs via
    // the session driver.
    let session = SessionBuilder::new(Scheme::Td).build(net, &mut rng);
    let d = session
        .topology()
        .map(|t| domination_factor(t.tree(), 0.05))
        .unwrap_or(2.0)
        .max(1.1);
    let gradient = MinTotalLoad::new(eps / 2.0, d);
    let td_mp_cfg = MultipathConfig::new(eps / 2.0, 2.0, n_total * 2, FmFactory { bitmaps: 16 });
    let mut driver = Driver::new(session, 0);
    let out = driver
        .run_protocol(
            |_epoch| FreqProtocol::new(td_mp_cfg.clone(), gradient, support, &bags),
            &model,
            30,
            &mut rng,
        )
        .expect("ran at least one epoch");
    // The tree/rings runs above are single aggregations; the session ran
    // 30 epochs, so report its per-epoch load for a fair comparison.
    report(
        "tributary-delta (TD)",
        &out.reported,
        &truth,
        driver.session().stats().total_words() / 30,
    );

    println!(
        "\nThe tree spends an order of magnitude fewer counters but loses whole\n\
         subtrees to the lab's lossy links; the rings survive the loss at the\n\
         cost of duplicate-insensitive counters. Tributary-Delta combines them\n\
         with the error budget split across the halves, running exact\n\
         summaries in the healthy outskirts and synopses around the gateway."
    );
}

fn report(name: &str, reported: &[u64], truth: &[u64], words: u64) {
    println!(
        "{name:>22}: reported {:>2} items | FN {:>4.1}% FP {:>4.1}% | {words} counter-words sent",
        reported.len(),
        100.0 * false_negative_rate(reported, truth),
        100.0 * false_positive_rate(reported, truth),
    );
}
