//! # td-topology — aggregation topologies for sensor networks
//!
//! Builds and analyzes the routing structures the paper's aggregation
//! schemes run over:
//!
//! * [`rings`] — the multi-path **Rings** topology of synopsis diffusion
//!   (\[5,16\] in the paper; §2): BFS levels outward from the base station;
//!   level *i+1* nodes broadcast while level *i* nodes listen.
//! * [`tree`] — spanning **aggregation trees**: the `Tree` structure
//!   (parents, children, levels, heights, subtree sizes) plus the standard
//!   TAG construction \[10\] with optional link-quality-aware parent choice.
//! * [`bushy`] — the paper's tree-construction algorithm (§6.1.3):
//!   parents restricted to ring level *i−1* (so tree links are a subset of
//!   ring links and switching nodes never re-synchronizes epochs, §4.1)
//!   plus *opportunistic parent switching* (pin/flag local search) that
//!   drives the tree toward 2-domination.
//! * [`domination`] — heights, height histograms `h(i)`, cumulative
//!   fractions `H(i)`, and the **domination factor** of §6.1.2 that
//!   controls the `Min Total-load` communication bound (Lemma 3).
//! * [`td`] — the labeled **Tributary-Delta graph** of §3: per-node
//!   tree/multi-path modes, the edge/path correctness properties, the
//!   switchable-vertex rules, the expand/shrink primitives used by the
//!   adaptation strategies of §4, and the structured
//!   [`td::TopologyDelta`] log (label switches *and* parent switches)
//!   that compiled epoch plans patch from instead of recompiling.
//! * [`maintenance`] — link-quality-driven parent switching \[24\] and
//!   churn handling ([`maintenance::apply_churn`]): both express their
//!   structural changes as bounded deltas through
//!   [`td::TdTopology::switch_parents`].
//!
//! ## Quick example
//!
//! ```
//! use td_netsim::network::Network;
//! use td_netsim::node::Position;
//! use td_netsim::rng::rng_from_seed;
//! use td_topology::bushy::{build_bushy_tree, BushyOptions};
//! use td_topology::rings::Rings;
//! use td_topology::td::TdTopology;
//!
//! let mut rng = rng_from_seed(7);
//! let net = Network::random_connected(60, 10.0, 10.0, Position::new(5.0, 5.0), 2.5, &mut rng);
//! let rings = Rings::build(&net);
//! let tree = build_bushy_tree(&net, &rings, BushyOptions::default(), &mut rng);
//!
//! // A labeled topology whose delta region is the first ring.
//! let mut td = TdTopology::new(rings, tree, 1);
//! let v0 = td.version();
//! td.expand_all(); // widen the delta one level (§4.2 TD-Coarse)
//! assert!(td.validate().is_ok());
//! // The mutation is in the delta log: plan caches replay it in place.
//! assert_eq!(td.deltas_since(v0).unwrap().count(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bushy;
pub mod domination;
pub mod maintenance;
pub mod rings;
pub mod td;
pub mod tree;

pub use bushy::build_bushy_tree;
pub use domination::{domination_factor, DominationProfile};
pub use rings::Rings;
pub use td::{Mode, TdTopology};
pub use tree::{build_tag_tree, Tree};
