//! # td-topology — aggregation topologies for sensor networks
//!
//! Builds and analyzes the routing structures the paper's aggregation
//! schemes run over:
//!
//! * [`rings`] — the multi-path **Rings** topology of synopsis diffusion
//!   ([5,16] in the paper; §2): BFS levels outward from the base station;
//!   level *i+1* nodes broadcast while level *i* nodes listen.
//! * [`tree`] — spanning **aggregation trees**: the `Tree` structure
//!   (parents, children, levels, heights, subtree sizes) plus the standard
//!   TAG construction [10] with optional link-quality-aware parent choice.
//! * [`bushy`] — the paper's tree-construction algorithm (§6.1.3):
//!   parents restricted to ring level *i−1* (so tree links are a subset of
//!   ring links and switching nodes never re-synchronizes epochs, §4.1)
//!   plus *opportunistic parent switching* (pin/flag local search) that
//!   drives the tree toward 2-domination.
//! * [`domination`] — heights, height histograms `h(i)`, cumulative
//!   fractions `H(i)`, and the **domination factor** of §6.1.2 that
//!   controls the `Min Total-load` communication bound (Lemma 3).
//! * [`td`] — the labeled **Tributary-Delta graph** of §3: per-node
//!   tree/multi-path modes, the edge/path correctness properties, the
//!   switchable-vertex rules, and the expand/shrink primitives used by the
//!   adaptation strategies of §4.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bushy;
pub mod domination;
pub mod maintenance;
pub mod rings;
pub mod td;
pub mod tree;

pub use bushy::build_bushy_tree;
pub use domination::{domination_factor, DominationProfile};
pub use rings::Rings;
pub use td::{Mode, TdTopology};
pub use tree::{build_tag_tree, Tree};
