//! The paper's tree-construction algorithm (§6.1.3).
//!
//! Two modifications to the standard TAG construction:
//!
//! 1. **Level restriction**: a node in ring level *i* selects (and switches
//!    to) parents only from ring level *i−1*. This makes every tree link a
//!    ring link, so nodes switching between tree and multi-path modes keep
//!    their sending/listening epochs (§4.1), and it removes the stringy
//!    same-level chains that hurt TAG's domination factor.
//! 2. **Opportunistic parent switching**: a pin/flag local search that
//!    drives the tree toward 2-domination (motivated by Lemma 2: a tree
//!    where each internal node of height *i* has ≥ 2 children of height
//!    *i−1* is 2-dominating). A node of height *j+1* with two or more
//!    children of height *j* *pins* two of them (they can no longer switch
//!    parents) and *flags* itself; non-pinned nodes then switch parents
//!    randomly to reachable non-flagged level-(*i−1*) nodes; whenever a
//!    non-flagged node accumulates two flagged children of the same height
//!    it pins them and flags itself. Height-1 nodes (leaves) are trivially
//!    flagged — they need no children.
//!
//! The search runs for a bounded number of rounds and keeps the best tree
//! seen (by domination factor), so it can only improve on the initial
//! restricted tree.

use crate::domination::DominationProfile;
use crate::rings::Rings;
use crate::tree::Tree;
use rand::seq::SliceRandom;
use rand::Rng;
use td_netsim::network::Network;
use td_netsim::node::{NodeId, BASE_STATION};

/// Options for [`build_bushy_tree`].
#[derive(Clone, Copy, Debug)]
pub struct BushyOptions {
    /// Maximum pin/flag/switch rounds (each round is O(edges)).
    pub max_rounds: usize,
    /// Granularity used when tracking the best domination factor.
    pub granularity: f64,
}

impl Default for BushyOptions {
    fn default() -> Self {
        BushyOptions {
            max_rounds: 12,
            granularity: 0.05,
        }
    }
}

/// Build the restricted tree (parents strictly one ring level down) without
/// the opportunistic-switching optimization. This is the starting point of
/// the local search and also the tree used when the search is disabled.
pub fn build_restricted_tree<R: Rng + ?Sized>(net: &Network, rings: &Rings, rng: &mut R) -> Tree {
    let mut parent: Vec<Option<NodeId>> = vec![None; net.len()];
    for u in rings.connected_nodes() {
        if u == BASE_STATION {
            continue;
        }
        let candidates = rings.receivers(u);
        debug_assert!(!candidates.is_empty(), "connected node without receivers");
        parent[u.index()] = candidates.choose(rng).copied();
    }
    Tree::from_parents(parent)
}

/// Build the paper's bushy tree (§6.1.3): restricted parents plus
/// opportunistic parent switching to raise the domination factor.
pub fn build_bushy_tree<R: Rng + ?Sized>(
    net: &Network,
    rings: &Rings,
    options: BushyOptions,
    rng: &mut R,
) -> Tree {
    let mut parent: Vec<Option<NodeId>> = {
        let t = build_restricted_tree(net, rings, rng);
        (0..net.len() as u32).map(|i| t.parent(NodeId(i))).collect()
    };
    let n = net.len();
    let mut pinned = vec![false; n];
    let mut flagged = vec![false; n];

    let mut best_parent = parent.clone();
    let mut best_factor = DominationProfile::from_tree(&Tree::from_parents(parent.clone()))
        .domination_factor(options.granularity);

    for _round in 0..options.max_rounds {
        let tree = Tree::from_parents(parent.clone());
        let heights = tree.heights();

        // Flag pass: leaves are trivially flagged; an unflagged node that
        // has two flagged children of the same height pins two of them and
        // flags itself. Process bottom-up so flags propagate within a pass.
        let mut order = tree.bottom_up_order();
        for &u in &order {
            if heights[u.index()] == 1 {
                flagged[u.index()] = true;
            }
        }
        for &u in &order {
            if flagged[u.index()] {
                continue;
            }
            // Group flagged children by height, largest height first so the
            // pinned pair contributes to u's own height.
            let mut by_height: std::collections::BTreeMap<u32, Vec<NodeId>> =
                std::collections::BTreeMap::new();
            for &c in tree.children(u) {
                if flagged[c.index()] {
                    by_height.entry(heights[c.index()]).or_default().push(c);
                }
            }
            if let Some((_, group)) = by_height.iter().rev().find(|(_, g)| g.len() >= 2) {
                pinned[group[0].index()] = true;
                pinned[group[1].index()] = true;
                flagged[u.index()] = true;
            }
        }

        // Switch pass: non-pinned nodes move to a random reachable
        // non-flagged node in the level below (keeping their parent when no
        // such candidate exists). Randomized order avoids systematic bias.
        order.shuffle(rng);
        let mut changed = false;
        for u in order {
            if u == BASE_STATION || pinned[u.index()] {
                continue;
            }
            let candidates: Vec<NodeId> = rings
                .receivers(u)
                .iter()
                .copied()
                .filter(|v| !flagged[v.index()])
                .collect();
            if let Some(&new_parent) = candidates.choose(rng) {
                if parent[u.index()] != Some(new_parent) {
                    parent[u.index()] = Some(new_parent);
                    changed = true;
                }
            }
        }

        let factor = DominationProfile::from_tree(&Tree::from_parents(parent.clone()))
            .domination_factor(options.granularity);
        if factor > best_factor {
            best_factor = factor;
            best_parent = parent.clone();
        }
        if !changed {
            break;
        }
    }
    Tree::from_parents(best_parent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domination::domination_factor;
    use crate::tree::{build_tag_tree, ParentSelection};
    use td_netsim::node::Position;
    use td_netsim::rng::{rng_from_seed, substream};

    fn synthetic(n: usize, seed: u64, range: f64) -> (Network, Rings) {
        let mut rng = rng_from_seed(seed);
        let net =
            Network::random_in_rect(n, 20.0, 20.0, Position::new(10.0, 10.0), range, &mut rng);
        let rings = Rings::build(&net);
        (net, rings)
    }

    #[test]
    fn restricted_tree_links_are_ring_links() {
        let (net, rings) = synthetic(300, 41, 2.0);
        let mut rng = rng_from_seed(42);
        let tree = build_restricted_tree(&net, &rings, &mut rng);
        assert_eq!(tree.tree_size(), rings.connected_count());
        let level_of = |id: NodeId| rings.level(id);
        assert!(tree.respects_links(&net, Some(&level_of)));
    }

    #[test]
    fn bushy_tree_preserves_restriction() {
        let (net, rings) = synthetic(300, 43, 2.0);
        let mut rng = rng_from_seed(44);
        let tree = build_bushy_tree(&net, &rings, BushyOptions::default(), &mut rng);
        assert_eq!(tree.tree_size(), rings.connected_count());
        let level_of = |id: NodeId| rings.level(id);
        assert!(tree.respects_links(&net, Some(&level_of)));
    }

    #[test]
    fn bushy_beats_or_matches_tag_on_average() {
        // Figure 7's headline: our construction improves the domination
        // factor over TAG trees. Average over several seeds to avoid
        // flakiness from any single draw.
        let mut tag_sum = 0.0;
        let mut bushy_sum = 0.0;
        let trials = 5;
        for s in 0..trials {
            let (net, rings) = synthetic(250, 100 + s, 2.0);
            let mut rng = substream(200, s);
            let tag = build_tag_tree(&net, ParentSelection::Random, None, true, &mut rng);
            let bushy = build_bushy_tree(&net, &rings, BushyOptions::default(), &mut rng);
            tag_sum += domination_factor(&tag, 0.05);
            bushy_sum += domination_factor(&bushy, 0.05);
        }
        assert!(
            bushy_sum >= tag_sum,
            "bushy avg {} < tag avg {}",
            bushy_sum / trials as f64,
            tag_sum / trials as f64
        );
    }

    #[test]
    fn bushy_never_worse_than_restricted_start() {
        // The search keeps the best tree seen, so it cannot regress below
        // the plain restricted tree built from the same RNG stream.
        let (net, rings) = synthetic(200, 45, 2.0);
        let mut rng_a = rng_from_seed(46);
        let restricted = build_restricted_tree(&net, &rings, &mut rng_a);
        let mut rng_b = rng_from_seed(46);
        let bushy = build_bushy_tree(&net, &rings, BushyOptions::default(), &mut rng_b);
        assert!(domination_factor(&bushy, 0.05) >= domination_factor(&restricted, 0.05) - 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let (net, rings) = synthetic(150, 47, 2.0);
        let t1 = build_bushy_tree(
            &net,
            &rings,
            BushyOptions::default(),
            &mut rng_from_seed(48),
        );
        let t2 = build_bushy_tree(
            &net,
            &rings,
            BushyOptions::default(),
            &mut rng_from_seed(48),
        );
        for u in net.node_ids() {
            assert_eq!(t1.parent(u), t2.parent(u));
        }
    }

    #[test]
    fn handles_chain_topology() {
        // A chain has no opportunity for bushiness; the algorithm must
        // still terminate and return the only possible tree.
        let positions = (0..6).map(|i| Position::new(i as f64, 0.0)).collect();
        let net = Network::new(positions, 1.0);
        let rings = Rings::build(&net);
        let mut rng = rng_from_seed(49);
        let tree = build_bushy_tree(&net, &rings, BushyOptions::default(), &mut rng);
        for i in 1..6 {
            assert_eq!(tree.parent(NodeId(i)), Some(NodeId(i - 1)));
        }
    }
}
