//! Spanning aggregation trees and the standard TAG construction.

use rand::seq::SliceRandom;
use rand::Rng;
use td_netsim::loss::LossModel;
use td_netsim::network::Network;
use td_netsim::node::{NodeId, BASE_STATION};

/// A spanning tree rooted at the base station, used for tree-based
/// in-network aggregation (TAG \[10\] and the tree parts of Tributary-Delta).
///
/// Nodes disconnected from the base station have no parent and are excluded
/// from aggregation. Levels are tree depths (base station = 0); heights
/// follow §6.1's recursive definition (leaf = 1; internal node = 1 + max
/// child height).
#[derive(Clone, Debug)]
pub struct Tree {
    parent: Vec<Option<NodeId>>,
    children: Vec<Vec<NodeId>>,
    depth: Vec<Option<u16>>,
    in_tree: Vec<bool>,
}

impl Tree {
    /// Build a tree from a parent array (`parent[0]` must be `None`; every
    /// other in-tree node must eventually reach the base station).
    ///
    /// # Panics
    /// Panics if the parent relation has a cycle or the base station has a
    /// parent.
    pub fn from_parents(parent: Vec<Option<NodeId>>) -> Self {
        assert!(!parent.is_empty(), "tree needs at least the base station");
        assert!(parent[0].is_none(), "base station cannot have a parent");
        let n = parent.len();
        let mut children = vec![Vec::new(); n];
        for (i, p) in parent.iter().enumerate() {
            if let Some(p) = p {
                assert!(p.index() < n, "parent out of range");
                assert!(p.index() != i, "self-parenting at node {i}");
                children[p.index()].push(NodeId(i as u32));
            }
        }
        for c in &mut children {
            c.sort_unstable();
        }
        // Compute depths by BFS from the root; in-tree = reachable from root.
        let mut depth = vec![None; n];
        let mut in_tree = vec![false; n];
        depth[0] = Some(0);
        in_tree[0] = true;
        let mut queue = std::collections::VecDeque::from([BASE_STATION]);
        let mut visited = 1usize;
        while let Some(u) = queue.pop_front() {
            let du = depth[u.index()].unwrap();
            for &c in &children[u.index()] {
                depth[c.index()] = Some(du + 1);
                in_tree[c.index()] = true;
                visited += 1;
                queue.push_back(c);
            }
        }
        // Any node with a parent but unreachable from the root is on a cycle
        // or dangles from one.
        let with_parent = parent.iter().filter(|p| p.is_some()).count();
        assert!(
            visited == with_parent + 1,
            "parent relation contains a cycle ({} reachable, {} with parents)",
            visited,
            with_parent
        );
        Tree {
            parent,
            children,
            depth,
            in_tree,
        }
    }

    /// The parent of a node (`None` for the base station and for
    /// disconnected nodes).
    #[inline]
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.parent[id.index()]
    }

    /// The children of a node, in id order.
    #[inline]
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.children[id.index()]
    }

    /// Tree depth of a node (base station = 0), `None` if not in the tree.
    #[inline]
    pub fn depth(&self, id: NodeId) -> Option<u16> {
        self.depth[id.index()]
    }

    /// Whether the node is connected to the base station through the tree.
    #[inline]
    pub fn contains(&self, id: NodeId) -> bool {
        self.in_tree[id.index()]
    }

    /// Total number of nodes tracked (in-tree or not).
    #[inline]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True iff only the base station is tracked.
    pub fn is_empty(&self) -> bool {
        self.parent.len() <= 1
    }

    /// Number of nodes in the tree (connected to the base station).
    pub fn tree_size(&self) -> usize {
        self.in_tree.iter().filter(|&&b| b).count()
    }

    /// Iterator over in-tree node ids.
    pub fn tree_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.parent.len() as u32)
            .map(NodeId)
            .filter(|id| self.in_tree[id.index()])
    }

    /// Maximum depth over in-tree nodes.
    pub fn max_depth(&self) -> u16 {
        self.depth.iter().flatten().copied().max().unwrap_or(0)
    }

    /// Heights per §6.1: leaves have height 1, internal nodes 1 + max child
    /// height. Nodes outside the tree get height 0.
    pub fn heights(&self) -> Vec<u32> {
        let mut heights = vec![0u32; self.parent.len()];
        // Process nodes by decreasing depth so children are done first.
        let mut order: Vec<NodeId> = self.tree_nodes().collect();
        order.sort_by_key(|id| std::cmp::Reverse(self.depth[id.index()]));
        for u in order {
            let h = self.children[u.index()]
                .iter()
                .map(|c| heights[c.index()])
                .max()
                .map_or(1, |m| m + 1);
            heights[u.index()] = h;
        }
        heights
    }

    /// Subtree sizes (each in-tree node counts itself; out-of-tree nodes 0).
    pub fn subtree_sizes(&self) -> Vec<u32> {
        let mut sizes = vec![0u32; self.parent.len()];
        let mut order: Vec<NodeId> = self.tree_nodes().collect();
        order.sort_by_key(|id| std::cmp::Reverse(self.depth[id.index()]));
        for u in order {
            sizes[u.index()] = 1 + self.children[u.index()]
                .iter()
                .map(|c| sizes[c.index()])
                .sum::<u32>();
        }
        sizes
    }

    /// In-tree nodes ordered by decreasing depth (leaves first) — the order
    /// in which level-synchronized aggregation processes senders.
    pub fn bottom_up_order(&self) -> Vec<NodeId> {
        let mut order: Vec<NodeId> = self.tree_nodes().collect();
        order.sort_by_key(|id| (std::cmp::Reverse(self.depth[id.index()]), id.0));
        order
    }

    /// Re-parent `child` onto `new_parent` **in place**, preserving every
    /// node's depth: the new parent must sit at the same depth as the
    /// current one (for ring-restricted trees that is exactly the §4.1
    /// constraint — any ring receiver of `child` qualifies). Because
    /// depths are untouched, the switch can never create a cycle and no
    /// derived order (bottom-up, level-synchronized) changes — a parent
    /// switch is a *bounded structural delta*, the same way a label
    /// switch is. Heights and subtree sizes along the two ancestor
    /// chains do change; they are recomputed on demand by
    /// [`heights`](Self::heights) / [`subtree_sizes`](Self::subtree_sizes)
    /// (or patched incrementally by compiled epoch plans).
    ///
    /// A no-op when `new_parent` is already the parent.
    ///
    /// # Panics
    /// Panics if `child` has no parent (base station or disconnected),
    /// `new_parent` is not in the tree, or the depths differ.
    pub fn switch_parent(&mut self, child: NodeId, new_parent: NodeId) {
        let old = self.parent[child.index()]
            .unwrap_or_else(|| panic!("{child} has no parent to switch away from"));
        if old == new_parent {
            return;
        }
        assert!(
            self.in_tree[new_parent.index()],
            "new parent {new_parent} is not in the tree"
        );
        assert_eq!(
            self.depth[old.index()],
            self.depth[new_parent.index()],
            "parent switch must preserve {child}'s depth ({old} -> {new_parent})"
        );
        let olds = &mut self.children[old.index()];
        let pos = olds
            .iter()
            .position(|&c| c == child)
            .expect("child listed under its parent");
        olds.remove(pos);
        let news = &mut self.children[new_parent.index()];
        let pos = news.binary_search(&child).expect_err("not yet a child");
        news.insert(pos, child);
        self.parent[child.index()] = Some(new_parent);
    }

    /// Check that every tree edge `(child, parent)` is also a radio link of
    /// `net` and, if `rings_level` is provided, that each parent sits exactly
    /// one ring level below its child (the §4.1 synchronization constraint).
    pub fn respects_links(
        &self,
        net: &Network,
        rings_level: Option<&dyn Fn(NodeId) -> Option<u16>>,
    ) -> bool {
        for u in self.tree_nodes() {
            if let Some(p) = self.parent(u) {
                if !net.in_range(u, p) {
                    return false;
                }
                if let Some(level_of) = rings_level {
                    match (level_of(u), level_of(p)) {
                        (Some(lu), Some(lp)) if lp + 1 == lu => {}
                        _ => return false,
                    }
                }
            }
        }
        true
    }
}

/// How the TAG construction picks a parent among the candidates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ParentSelection {
    /// Uniformly at random (the default flood behaviour: first broadcast
    /// heard, with random tie-breaking).
    #[default]
    Random,
    /// The candidate with the best (lowest-loss) link, as in tree
    /// maintenance with link-quality monitoring \[24\].
    BestLink,
}

/// Build a standard TAG spanning tree \[10\].
///
/// Nodes attach level-by-level outward from the base station: a node at hop
/// level `L` picks its parent among radio neighbors at hop level `L−1`
/// *plus* — since the standard algorithm "allows choosing a parent from the
/// same level" (§6.1.3) — same-level neighbors that attached earlier in the
/// flood. Selection follows `selection`; `quality` supplies link loss rates
/// for [`ParentSelection::BestLink`].
pub fn build_tag_tree<R: Rng + ?Sized>(
    net: &Network,
    selection: ParentSelection,
    quality: Option<&dyn LossModel>,
    allow_same_level: bool,
    rng: &mut R,
) -> Tree {
    let hops = net.hop_counts();
    let mut parent: Vec<Option<NodeId>> = vec![None; net.len()];
    let mut attached = vec![false; net.len()];
    attached[BASE_STATION.index()] = true;
    let max_hop = hops
        .iter()
        .filter(|&&h| h != u32::MAX)
        .copied()
        .max()
        .unwrap_or(0);
    for level in 1..=max_hop {
        // Random arrival order within the level models the flood's timing.
        let mut this_level: Vec<NodeId> = net
            .node_ids()
            .filter(|id| hops[id.index()] == level)
            .collect();
        this_level.shuffle(rng);
        for u in this_level {
            let mut candidates: Vec<NodeId> = net
                .neighbors(u)
                .iter()
                .copied()
                .filter(|v| {
                    let hv = hops[v.index()];
                    hv + 1 == level || (allow_same_level && hv == level && attached[v.index()])
                })
                .collect();
            if candidates.is_empty() {
                continue; // unreachable in a connected net, defensive otherwise
            }
            let choice = match selection {
                ParentSelection::Random => *candidates.choose(rng).expect("non-empty"),
                ParentSelection::BestLink => {
                    let model = quality.expect("BestLink selection requires a quality model");
                    candidates.sort_by(|&a, &b| {
                        let la = model.loss_rate(u, a, net, 0);
                        let lb = model.loss_rate(u, b, net, 0);
                        la.partial_cmp(&lb)
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(a.0.cmp(&b.0))
                    });
                    candidates[0]
                }
            };
            parent[u.index()] = Some(choice);
            attached[u.index()] = true;
        }
    }
    Tree::from_parents(parent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_netsim::loss::DistanceLoss;
    use td_netsim::node::Position;
    use td_netsim::rng::rng_from_seed;

    fn random_net(n: usize, seed: u64) -> Network {
        let mut rng = rng_from_seed(seed);
        Network::random_in_rect(n, 20.0, 20.0, Position::new(10.0, 10.0), 3.0, &mut rng)
    }

    #[test]
    fn from_parents_builds_children_and_depths() {
        // base <- 1 <- 2, base <- 3
        let tree = Tree::from_parents(vec![
            None,
            Some(NodeId(0)),
            Some(NodeId(1)),
            Some(NodeId(0)),
        ]);
        assert_eq!(tree.children(BASE_STATION), &[NodeId(1), NodeId(3)]);
        assert_eq!(tree.depth(NodeId(2)), Some(2));
        assert_eq!(tree.max_depth(), 2);
        assert_eq!(tree.tree_size(), 4);
        assert_eq!(tree.heights(), vec![3, 2, 1, 1]);
        assert_eq!(tree.subtree_sizes(), vec![4, 2, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cycle_detected() {
        let _ = Tree::from_parents(vec![None, Some(NodeId(2)), Some(NodeId(1))]);
    }

    #[test]
    #[should_panic(expected = "base station cannot have a parent")]
    fn base_parent_rejected() {
        let _ = Tree::from_parents(vec![Some(NodeId(1)), None]);
    }

    #[test]
    fn disconnected_nodes_excluded() {
        let tree = Tree::from_parents(vec![None, Some(NodeId(0)), None]);
        assert!(tree.contains(NodeId(1)));
        assert!(!tree.contains(NodeId(2)));
        assert_eq!(tree.tree_size(), 2);
        assert_eq!(tree.heights()[2], 0);
    }

    #[test]
    fn tag_tree_spans_connected_network() {
        let net = random_net(200, 31);
        assert!(net.is_connected());
        let mut rng = rng_from_seed(32);
        let tree = build_tag_tree(&net, ParentSelection::Random, None, false, &mut rng);
        assert_eq!(tree.tree_size(), net.len());
        assert!(tree.respects_links(&net, None));
    }

    #[test]
    fn tag_tree_parents_at_lower_hop_level_when_same_level_disallowed() {
        let net = random_net(150, 33);
        let hops = net.hop_counts();
        let mut rng = rng_from_seed(34);
        let tree = build_tag_tree(&net, ParentSelection::Random, None, false, &mut rng);
        for u in tree.tree_nodes() {
            if let Some(p) = tree.parent(u) {
                assert_eq!(hops[p.index()] + 1, hops[u.index()]);
            }
        }
    }

    #[test]
    fn tag_tree_same_level_allowed_still_acyclic_and_spanning() {
        let net = random_net(150, 35);
        let mut rng = rng_from_seed(36);
        let tree = build_tag_tree(&net, ParentSelection::Random, None, true, &mut rng);
        assert_eq!(tree.tree_size(), net.len()); // from_parents would panic on a cycle
    }

    #[test]
    fn best_link_prefers_closer_parent() {
        // Triangle: node 2 can attach to base (far) or node 1 (near);
        // distance-based quality should pick node 1... but node 1 is at the
        // same hop level as node 2, so restrict to a 2-hop chain shape.
        let net = Network::new(
            vec![
                Position::new(0.0, 0.0),
                Position::new(1.0, 0.0),  // level 1, near node 2
                Position::new(1.9, 0.01), // level 1 via base? dist to base 1.9 < 2.0 range
                Position::new(2.8, 0.0),  // level 2: neighbors = 1 (d=1.8), 2 (d=0.9)
            ],
            2.0,
        );
        let quality = DistanceLoss::new(0.0, 0.9, 1.0);
        let mut rng = rng_from_seed(37);
        let tree = build_tag_tree(
            &net,
            ParentSelection::BestLink,
            Some(&quality),
            false,
            &mut rng,
        );
        assert_eq!(tree.parent(NodeId(3)), Some(NodeId(2)));
    }

    #[test]
    fn bottom_up_order_children_before_parents() {
        let net = random_net(100, 38);
        let mut rng = rng_from_seed(39);
        let tree = build_tag_tree(&net, ParentSelection::Random, None, false, &mut rng);
        let order = tree.bottom_up_order();
        let pos: std::collections::HashMap<NodeId, usize> = order
            .iter()
            .copied()
            .enumerate()
            .map(|(i, n)| (n, i))
            .collect();
        for u in tree.tree_nodes() {
            if let Some(p) = tree.parent(u) {
                assert!(pos[&u] < pos[&p], "{u} not before its parent {p}");
            }
        }
    }

    #[test]
    fn switch_parent_moves_subtree_and_refreshes_derivations() {
        // base <- 1 <- 3, base <- 2; move 3 under 2 (same depth parents).
        let mut tree = Tree::from_parents(vec![
            None,
            Some(NodeId(0)),
            Some(NodeId(0)),
            Some(NodeId(1)),
        ]);
        assert_eq!(tree.heights(), vec![3, 2, 1, 1]);
        tree.switch_parent(NodeId(3), NodeId(2));
        assert_eq!(tree.parent(NodeId(3)), Some(NodeId(2)));
        assert_eq!(tree.children(NodeId(1)), &[] as &[NodeId]);
        assert_eq!(tree.children(NodeId(2)), &[NodeId(3)]);
        assert_eq!(tree.depth(NodeId(3)), Some(2), "depth preserved");
        assert_eq!(tree.heights(), vec![3, 1, 2, 1]);
        assert_eq!(tree.subtree_sizes(), vec![4, 1, 2, 1]);
        // Switching back restores the original shape.
        tree.switch_parent(NodeId(3), NodeId(1));
        assert_eq!(tree.heights(), vec![3, 2, 1, 1]);
        // No-op switch changes nothing.
        tree.switch_parent(NodeId(3), NodeId(1));
        assert_eq!(tree.parent(NodeId(3)), Some(NodeId(1)));
    }

    #[test]
    #[should_panic(expected = "must preserve")]
    fn switch_parent_rejects_depth_changes() {
        let mut tree = Tree::from_parents(vec![
            None,
            Some(NodeId(0)),
            Some(NodeId(1)),
            Some(NodeId(0)),
        ]);
        // Node 3 (depth 1) cannot adopt node 1 (depth 1) as parent: its
        // current parent is the base (depth 0).
        tree.switch_parent(NodeId(3), NodeId(1));
    }

    #[test]
    fn heights_of_chain_and_star() {
        // Chain of 4: heights 4,3,2,1. Star: root height 2, leaves 1.
        let chain = Tree::from_parents(vec![
            None,
            Some(NodeId(0)),
            Some(NodeId(1)),
            Some(NodeId(2)),
        ]);
        assert_eq!(chain.heights(), vec![4, 3, 2, 1]);
        let star = Tree::from_parents(vec![
            None,
            Some(NodeId(0)),
            Some(NodeId(0)),
            Some(NodeId(0)),
        ]);
        assert_eq!(star.heights(), vec![2, 1, 1, 1]);
    }
}
