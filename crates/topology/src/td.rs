//! The labeled Tributary-Delta graph (§3).
//!
//! Every vertex runs either a tree algorithm (`T`, a *tributary*) or a
//! multi-path algorithm (`M`, part of the *delta*). Correctness requires
//! that a multi-path partial result is only ever consumed by a multi-path
//! vertex (Property 1, *edge correctness*; equivalently Property 2, *path
//! correctness*: on any path, no `T` edge after an `M` edge). Receivers
//! enforce this by construction: `T` vertices accept partial results only
//! from their tree children, and `M` vertices accept synopses from `M`
//! ring-sources plus tree partials from their `T` tree children (which
//! they convert, §5).
//!
//! The resulting structural invariant maintained by this module is
//! **upward closure**: the tree parent of every non-base `M` vertex is
//! itself `M`. Together with the §4.1 restriction (tree links ⊆ ring
//! links), this guarantees every `M` vertex has at least one `M` receiver
//! one ring level down, so no delta data is orphaned, and the delta region
//! is a connected blob containing the base station — exactly Figure 1.
//!
//! Switchability follows the paper:
//! * a `T` vertex is switchable iff its parent is `M` (or it has no parent
//!   — the base station);
//! * an `M` vertex is switchable iff all its incoming edges are `T` edges,
//!   i.e. no ring neighbor one level *above* it is labeled `M`.
//!
//! Observation 1 (children of a switchable `M` vertex are switchable `T`
//! vertices) and Lemma 1 (nonempty `T`/`M` sets always contain a
//! switchable vertex) hold by construction and are verified in tests.

use std::collections::VecDeque;

use crate::rings::Rings;
use crate::tree::Tree;
use td_netsim::node::{NodeId, BASE_STATION};

/// The aggregation mode a vertex runs (§3's vertex labels).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Tree aggregation (a tributary vertex).
    T,
    /// Multi-path aggregation (a delta vertex).
    M,
}

/// One vertex relabeled by a mutation, with its mode before and after.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Relabel {
    /// The switched vertex.
    pub node: NodeId,
    /// Mode before the switch.
    pub from: Mode,
    /// Mode after the switch.
    pub to: Mode,
}

/// One vertex re-parented by a structural mutation (a churn reroute or
/// a link-quality maintenance switch), with its tree parent before and
/// after. Parent switches preserve the vertex's depth (tree parents sit
/// exactly one ring level down, §4.1), so — like a label switch — they
/// invalidate nothing about a compiled plan's step order or receiver
/// table, only the parent pointer and the heights/subtree sizes along
/// the two ancestor chains.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Reparent {
    /// The re-parented vertex.
    pub node: NodeId,
    /// Tree parent before the switch.
    pub from: NodeId,
    /// Tree parent after the switch.
    pub to: NodeId,
}

/// The structured record of one mutation: which vertices switched
/// label, which switched tree parent, and under which subtree roots.
/// The relabel and reparent lists are what compiled epoch plans replay
/// to update themselves in place instead of recompiling (§4.2 relabels
/// a handful of vertices per decision; churn re-parents a handful of
/// orphans per event — the delta is the whole change); the roots are
/// diagnostic — they name the subtrees the mutation targeted, for
/// telemetry and tests, and no execution path depends on them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TopologyDelta {
    /// Topology version before the mutation.
    pub from_version: u64,
    /// Topology version after the mutation (a fresh globally-unique
    /// mint; consecutive log entries chain `to_version` →
    /// `from_version` but the values are not consecutive integers).
    pub to_version: u64,
    /// The label-switched vertices, in id order.
    pub relabeled: Vec<Relabel>,
    /// The parent-switched vertices, in id order (empty for pure label
    /// mutations — the common adaptation case).
    pub reparented: Vec<Reparent>,
    /// The affected subtree roots (each relabeled vertex's tree parent
    /// for expansions, the vertex itself for shrinks, both endpoints
    /// for reparents), deduplicated and in id order.
    pub roots: Vec<NodeId>,
}

impl TopologyDelta {
    /// Number of mutation events this delta carries (relabels plus
    /// reparents; a vertex appearing in both counts twice here —
    /// consumers sizing patch work dedupe, see `EpochPlan::patch`).
    pub fn len(&self) -> usize {
        self.relabeled.len() + self.reparented.len()
    }

    /// Whether the delta changed nothing (never recorded).
    pub fn is_empty(&self) -> bool {
        self.relabeled.is_empty() && self.reparented.is_empty()
    }
}

/// How many mutation deltas the topology remembers. One §4.2 adaptation
/// decision produces at most a few mutations, and plan caches consult
/// the log at the next epoch, so a short window is plenty; a consumer
/// that falls further behind recompiles from scratch.
const DELTA_LOG_CAP: usize = 64;

/// The process-global version mint. Every topology version — initial or
/// post-mutation — is drawn from here, so a version value is unique
/// across *all* [`TdTopology`] instances and lineages: equal versions
/// imply an identical labeling, and a cached plan can never be fooled
/// by a rebuilt (or cloned-and-diverged) topology whose own counter
/// happens to land on the same number — its versions are different
/// numbers by construction, so stale plans fail the version check and
/// `deltas_since` lookups instead of silently reusing a dead schedule.
static NEXT_VERSION: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Mint a fresh, process-globally-unique topology version.
fn fresh_version() -> u64 {
    NEXT_VERSION.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

/// Errors from label-switching operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SwitchError {
    /// The vertex is not currently switchable in the requested direction.
    NotSwitchable(NodeId),
    /// The vertex is disconnected from the base station.
    Disconnected(NodeId),
    /// The requested tree parent is not a legal choice for the vertex:
    /// not a ring receiver one level down, or a `T`-labeled parent for
    /// an `M`-labeled child (which would break upward closure).
    InvalidParent(NodeId),
}

impl std::fmt::Display for SwitchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwitchError::NotSwitchable(id) => write!(f, "{id} is not switchable"),
            SwitchError::Disconnected(id) => write!(f, "{id} is not connected to the base"),
            SwitchError::InvalidParent(id) => write!(f, "{id} is not a legal tree parent here"),
        }
    }
}

impl std::error::Error for SwitchError {}

/// A Tributary-Delta aggregation topology: rings + a ring-restricted tree +
/// per-vertex mode labels, with the §3 correctness invariants maintained
/// across every switch.
/// ```
/// use td_netsim::network::Network;
/// use td_netsim::node::Position;
/// use td_netsim::rng::rng_from_seed;
/// use td_topology::bushy::{build_bushy_tree, BushyOptions};
/// use td_topology::rings::Rings;
/// use td_topology::td::TdTopology;
///
/// let mut rng = rng_from_seed(1);
/// let net = Network::random_connected(80, 10.0, 10.0, Position::new(5.0, 5.0), 2.5, &mut rng);
/// let rings = Rings::build(&net);
/// let tree = build_bushy_tree(&net, &rings, BushyOptions::default(), &mut rng);
/// let mut td = TdTopology::new(rings, tree, 1); // delta = ring levels ≤ 1
///
/// let before = td.delta_size();
/// td.expand_all();                  // widen the delta one level
/// assert!(td.delta_size() > before);
/// td.validate().unwrap();           // edge/path correctness maintained
/// ```
#[derive(Clone, Debug)]
pub struct TdTopology {
    rings: Rings,
    tree: Tree,
    label: Vec<Mode>,
    /// Bumped on every successful label mutation; lets callers cache
    /// derived structures (compiled epoch plans) and invalidate them only
    /// when the labeling actually changed.
    version: u64,
    /// The most recent mutations, one [`TopologyDelta`] per version bump
    /// (capped at [`DELTA_LOG_CAP`], oldest dropped first). Plan caches
    /// replay these to patch compiled schedules in place.
    delta_log: VecDeque<TopologyDelta>,
}

impl TdTopology {
    /// Create a topology whose delta region is all vertices with ring level
    /// ≤ `delta_levels` (0 = just the base station). The tree must respect
    /// the §4.1 restriction: every tree parent is exactly one ring level
    /// below its child.
    ///
    /// # Panics
    /// Panics if the tree violates the ring restriction.
    pub fn new(rings: Rings, tree: Tree, delta_levels: u16) -> Self {
        let n = rings.len();
        assert_eq!(n, tree.len(), "rings and tree must cover the same nodes");
        for u in tree.tree_nodes() {
            if let Some(p) = tree.parent(u) {
                let lu = rings.level(u).expect("tree node must be ring-connected");
                let lp = rings.level(p).expect("tree parent must be ring-connected");
                assert_eq!(
                    lp + 1,
                    lu,
                    "tree link {u}->{p} violates the ring-level restriction"
                );
            }
        }
        let mut label = vec![Mode::T; n];
        for u in rings.connected_nodes() {
            if rings.level(u).unwrap() <= delta_levels {
                label[u.index()] = Mode::M;
            }
        }
        let td = TdTopology {
            rings,
            tree,
            label,
            version: fresh_version(),
            delta_log: VecDeque::new(),
        };
        debug_assert!(td.validate().is_ok());
        td
    }

    /// Pure-tree topology: the delta region is empty (even the base station
    /// runs the tree algorithm).
    pub fn all_tree(rings: Rings, tree: Tree) -> Self {
        let mut td = TdTopology::new(rings, tree, 0);
        td.label[BASE_STATION.index()] = Mode::T;
        debug_assert!(td.validate().is_ok());
        td
    }

    /// Pure multi-path topology: every connected vertex is in the delta.
    pub fn all_multipath(rings: Rings, tree: Tree) -> Self {
        let max = rings.max_level();
        TdTopology::new(rings, tree, max)
    }

    /// The rings topology.
    pub fn rings(&self) -> &Rings {
        &self.rings
    }

    /// The (ring-restricted) aggregation tree.
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// The mode of a vertex.
    #[inline]
    pub fn mode(&self, id: NodeId) -> Mode {
        self.label[id.index()]
    }

    /// The labeling version: re-minted from a process-global counter on
    /// every label mutation. Version values are unique across **all**
    /// topology instances (not merely within one), so equal versions
    /// guarantee an identical labeling even across rebuilds and clones:
    /// anything compiled from the topology (schedules, epoch plans)
    /// stays valid exactly while the version holds still, and a plan
    /// compiled against a topology that has since been rebuilt can
    /// never collide with the replacement's versions. Values are
    /// monotone per instance but **not contiguous** — never do
    /// arithmetic on them.
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The recorded mutations that carry version `since` forward to the
    /// current version, oldest first — the patch path for plan caches: a
    /// consumer holding a structure compiled at `since` applies exactly
    /// these relabels to catch up. Returns `None` when the log no longer
    /// reaches back that far (the consumer must recompile). `since`
    /// equal to the current version yields an empty slice-like iterator.
    pub fn deltas_since(
        &self,
        since: u64,
    ) -> Option<impl Iterator<Item = &TopologyDelta> + Clone + '_> {
        // Versions are globally unique, non-contiguous mints: locate
        // `since` in this instance's log by value. A version minted by
        // another topology instance (a rebuild, a diverged clone) is
        // never in the log, so a consumer holding one is correctly told
        // to recompile. Entries chain (`to_version` of one is
        // `from_version` of the next), so the suffix from the match
        // replays contiguously to the current version.
        if since == self.version {
            return Some(self.delta_log.iter().skip(self.delta_log.len()));
        }
        let idx = self
            .delta_log
            .iter()
            .position(|d| d.from_version == since)?;
        Some(self.delta_log.iter().skip(idx))
    }

    /// Total relabel **events** recorded between version `since` and
    /// now (a vertex switched back and forth counts once per switch),
    /// or `None` when the delta log no longer reaches back that far.
    /// Consumers sizing actual patch work should dedupe — see
    /// `EpochPlan::patch`, which budgets distinct vertices.
    pub fn relabels_since(&self, since: u64) -> Option<usize> {
        self.deltas_since(since).map(|ds| ds.map(|d| d.len()).sum())
    }

    /// Record one successful mutation: bump the version and append the
    /// structured delta (dropping the oldest entry past the cap).
    fn record_delta(
        &mut self,
        mut relabeled: Vec<Relabel>,
        mut reparented: Vec<Reparent>,
        mut roots: Vec<NodeId>,
    ) {
        debug_assert!(
            !(relabeled.is_empty() && reparented.is_empty()),
            "empty deltas are never recorded"
        );
        relabeled.sort_by_key(|r| r.node.0);
        reparented.sort_by_key(|r| r.node.0);
        roots.sort_by_key(|n| n.0);
        roots.dedup();
        let to_version = fresh_version();
        let delta = TopologyDelta {
            from_version: self.version,
            to_version,
            relabeled,
            reparented,
            roots,
        };
        self.version = to_version;
        if self.delta_log.len() == DELTA_LOG_CAP {
            self.delta_log.pop_front();
        }
        self.delta_log.push_back(delta);
    }

    /// Number of vertices tracked.
    pub fn len(&self) -> usize {
        self.label.len()
    }

    /// True iff only the base station exists.
    pub fn is_empty(&self) -> bool {
        self.label.len() <= 1
    }

    /// Vertices currently labeled `M` and connected, in id order.
    /// Borrows instead of allocating — collect if ownership is needed.
    pub fn delta_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.connected()
            .filter(|&u| self.label[u.index()] == Mode::M)
    }

    /// Number of connected `M` vertices.
    pub fn delta_size(&self) -> usize {
        self.connected()
            .filter(|&u| self.label[u.index()] == Mode::M)
            .count()
    }

    /// Number of connected `T` vertices.
    pub fn tributary_size(&self) -> usize {
        self.connected()
            .filter(|&u| self.label[u.index()] == Mode::T)
            .count()
    }

    fn connected(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.rings.connected_nodes()
    }

    /// Whether `id` is a switchable `T` vertex: labeled `T` and its parent
    /// is `M` (or it is the base station).
    pub fn is_switchable_t(&self, id: NodeId) -> bool {
        if self.rings.level(id).is_none() || self.label[id.index()] != Mode::T {
            return false;
        }
        match self.tree.parent(id) {
            None => id == BASE_STATION,
            Some(p) => self.label[p.index()] == Mode::M,
        }
    }

    /// Whether `id` is a switchable `M` vertex: labeled `M` and all its
    /// incoming edges are `T` edges (no `M`-labeled ring source one level
    /// above it).
    pub fn is_switchable_m(&self, id: NodeId) -> bool {
        if self.rings.level(id).is_none() || self.label[id.index()] != Mode::M {
            return false;
        }
        self.rings
            .sources(id)
            .iter()
            .all(|&s| self.label[s.index()] == Mode::T)
    }

    /// All switchable `T` vertices, in id order (borrowing iterator).
    pub fn switchable_t_iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.connected().filter(|&u| self.is_switchable_t(u))
    }

    /// All switchable `M` vertices, in id order (borrowing iterator).
    pub fn switchable_m_iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.connected().filter(|&u| self.is_switchable_m(u))
    }

    /// All switchable `T` vertices, in id order.
    pub fn switchable_t_nodes(&self) -> Vec<NodeId> {
        self.switchable_t_iter().collect()
    }

    /// All switchable `M` vertices, in id order.
    pub fn switchable_m_nodes(&self) -> Vec<NodeId> {
        self.switchable_m_iter().collect()
    }

    /// Switch a switchable `T` vertex to `M` (expanding the delta).
    pub fn switch_to_m(&mut self, id: NodeId) -> Result<(), SwitchError> {
        if self.rings.level(id).is_none() {
            return Err(SwitchError::Disconnected(id));
        }
        if !self.is_switchable_t(id) {
            return Err(SwitchError::NotSwitchable(id));
        }
        self.label[id.index()] = Mode::M;
        let root = self.tree.parent(id).unwrap_or(id);
        self.record_delta(
            vec![Relabel {
                node: id,
                from: Mode::T,
                to: Mode::M,
            }],
            Vec::new(),
            vec![root],
        );
        debug_assert!(self.validate().is_ok());
        Ok(())
    }

    /// Switch a switchable `M` vertex to `T` (shrinking the delta).
    pub fn switch_to_t(&mut self, id: NodeId) -> Result<(), SwitchError> {
        if self.rings.level(id).is_none() {
            return Err(SwitchError::Disconnected(id));
        }
        if !self.is_switchable_m(id) {
            return Err(SwitchError::NotSwitchable(id));
        }
        self.label[id.index()] = Mode::T;
        self.record_delta(
            vec![Relabel {
                node: id,
                from: Mode::M,
                to: Mode::T,
            }],
            Vec::new(),
            vec![id],
        );
        debug_assert!(self.validate().is_ok());
        Ok(())
    }

    /// TD-Coarse expansion: switch *all* currently switchable `T` vertices
    /// to `M`, widening the delta region by one level (§4.2). Returns the
    /// number of vertices switched.
    pub fn expand_all(&mut self) -> usize {
        let targets = self.switchable_t_nodes();
        for &u in &targets {
            self.label[u.index()] = Mode::M;
        }
        if !targets.is_empty() {
            let relabeled = targets
                .iter()
                .map(|&u| Relabel {
                    node: u,
                    from: Mode::T,
                    to: Mode::M,
                })
                .collect();
            let roots = targets
                .iter()
                .map(|&u| self.tree.parent(u).unwrap_or(u))
                .collect();
            self.record_delta(relabeled, Vec::new(), roots);
        }
        debug_assert!(self.validate().is_ok());
        targets.len()
    }

    /// TD-Coarse shrink: switch *all* currently switchable `M` vertices to
    /// `T`. Returns the number of vertices switched.
    pub fn shrink_all(&mut self) -> usize {
        let targets = self.switchable_m_nodes();
        for &u in &targets {
            self.label[u.index()] = Mode::T;
        }
        if !targets.is_empty() {
            let relabeled = targets
                .iter()
                .map(|&u| Relabel {
                    node: u,
                    from: Mode::M,
                    to: Mode::T,
                })
                .collect();
            self.record_delta(relabeled, Vec::new(), targets.clone());
        }
        debug_assert!(self.validate().is_ok());
        targets.len()
    }

    /// TD (fine-grained) expansion: switch all `T` children of the
    /// switchable `M` vertex `root` to `M` (§4.2: targeting the subtree
    /// with the most non-contributing nodes). Returns the number switched.
    pub fn expand_subtree(&mut self, root: NodeId) -> Result<usize, SwitchError> {
        if !self.is_switchable_m(root) && self.mode(root) != Mode::M {
            return Err(SwitchError::NotSwitchable(root));
        }
        // Observation 1: the children of a switchable M vertex are
        // switchable T vertices; switching them is always legal. If `root`
        // is M but not switchable its children are still switchable T
        // vertices (their parent is M), so this works for any M vertex.
        let children: Vec<NodeId> = self
            .tree
            .children(root)
            .iter()
            .copied()
            .filter(|&c| self.label[c.index()] == Mode::T)
            .collect();
        for &c in &children {
            debug_assert!(self.is_switchable_t(c));
            self.label[c.index()] = Mode::M;
        }
        if !children.is_empty() {
            let relabeled = children
                .iter()
                .map(|&c| Relabel {
                    node: c,
                    from: Mode::T,
                    to: Mode::M,
                })
                .collect();
            self.record_delta(relabeled, Vec::new(), vec![root]);
        }
        debug_assert!(self.validate().is_ok());
        Ok(children.len())
    }

    /// Switch the tree parents of a batch of vertices **in one
    /// mutation**: `moves` lists `(child, new_parent)` pairs, each new
    /// parent a ring receiver of its child (one level down, preserving
    /// §4.1 and every vertex's depth) and label-compatible (`M`
    /// children keep `M` parents — upward closure). The whole batch is
    /// validated first and recorded as a single [`TopologyDelta`] whose
    /// [`Reparent`] list compiled plans replay in place, so one churn
    /// event or maintenance round costs one version bump however many
    /// orphans it reroutes. No-op moves (already the parent) are
    /// skipped. Returns the number of parents actually switched.
    ///
    /// Labels are untouched, so edge/path correctness is preserved by
    /// the label-compatibility check alone.
    ///
    /// ```
    /// use td_netsim::network::Network;
    /// use td_netsim::node::Position;
    /// use td_netsim::rng::rng_from_seed;
    /// use td_topology::bushy::{build_bushy_tree, BushyOptions};
    /// use td_topology::rings::Rings;
    /// use td_topology::td::{Mode, TdTopology};
    ///
    /// let mut rng = rng_from_seed(5);
    /// let net = Network::random_connected(80, 10.0, 10.0, Position::new(5.0, 5.0), 2.5, &mut rng);
    /// let rings = Rings::build(&net);
    /// let tree = build_bushy_tree(&net, &rings, BushyOptions::default(), &mut rng);
    /// let mut td = TdTopology::new(rings, tree, 1);
    ///
    /// // Re-parent some T vertex onto another of its ring receivers.
    /// let (child, alt) = td
    ///     .rings()
    ///     .connected_nodes()
    ///     .find_map(|u| {
    ///         let p = td.tree().parent(u)?;
    ///         let alt = td
    ///             .rings()
    ///             .receivers(u)
    ///             .iter()
    ///             .copied()
    ///             .find(|&r| r != p && (td.mode(u) == Mode::T || td.mode(r) == Mode::M))?;
    ///         Some((u, alt))
    ///     })
    ///     .expect("some vertex has an alternative receiver");
    /// let v0 = td.version();
    /// assert_eq!(td.switch_parents(&[(child, alt)]), Ok(1));
    /// assert_eq!(td.tree().parent(child), Some(alt));
    /// assert!(td.version() > v0);
    /// td.validate().unwrap();
    /// ```
    pub fn switch_parents(&mut self, moves: &[(NodeId, NodeId)]) -> Result<usize, SwitchError> {
        for &(child, parent) in moves {
            if child == BASE_STATION {
                return Err(SwitchError::NotSwitchable(child));
            }
            if self.rings.level(child).is_none() {
                return Err(SwitchError::Disconnected(child));
            }
            if self.rings.level(parent).is_none() {
                return Err(SwitchError::Disconnected(parent));
            }
            if !self.rings.receivers(child).contains(&parent) {
                return Err(SwitchError::InvalidParent(parent));
            }
            if self.label[child.index()] == Mode::M && self.label[parent.index()] != Mode::M {
                return Err(SwitchError::InvalidParent(parent));
            }
        }
        let mut reparented = Vec::new();
        let mut roots = Vec::new();
        for &(child, parent) in moves {
            let from = self
                .tree
                .parent(child)
                .expect("connected non-base vertex has a parent");
            if from == parent {
                continue;
            }
            self.tree.switch_parent(child, parent);
            reparented.push(Reparent {
                node: child,
                from,
                to: parent,
            });
            roots.push(from);
            roots.push(parent);
        }
        let switched = reparented.len();
        if switched > 0 {
            self.record_delta(Vec::new(), reparented, roots);
        }
        debug_assert!(self.validate().is_ok());
        Ok(switched)
    }

    /// Switch one vertex's tree parent (a one-entry
    /// [`switch_parents`](Self::switch_parents) batch).
    pub fn switch_parent(&mut self, child: NodeId, new_parent: NodeId) -> Result<(), SwitchError> {
        self.switch_parents(&[(child, new_parent)]).map(|_| ())
    }

    /// The `M`-labeled receivers of `id`'s broadcast (ring neighbors one
    /// level down that will actually consume a synopsis from `id`).
    pub fn m_receivers(&self, id: NodeId) -> Vec<NodeId> {
        self.rings
            .receivers(id)
            .iter()
            .copied()
            .filter(|&r| self.label[r.index()] == Mode::M)
            .collect()
    }

    /// Check the structural invariants:
    /// 1. upward closure — every non-base `M` vertex has an `M` tree parent
    ///    (implies edge/path correctness under receiver filtering, and that
    ///    no delta vertex is orphaned);
    /// 2. if any vertex is `M`, the base station is `M`.
    pub fn validate(&self) -> Result<(), String> {
        let mut any_m = false;
        for u in self.connected() {
            if self.label[u.index()] != Mode::M {
                continue;
            }
            any_m = true;
            if u == BASE_STATION {
                continue;
            }
            match self.tree.parent(u) {
                Some(p) if self.label[p.index()] == Mode::M => {}
                Some(p) => {
                    return Err(format!(
                        "upward closure violated: M vertex {u} has T parent {p}"
                    ))
                }
                None => return Err(format!("M vertex {u} has no tree parent")),
            }
        }
        if any_m && self.label[BASE_STATION.index()] != Mode::M {
            return Err("delta region exists but base station is T".into());
        }
        Ok(())
    }

    /// Path correctness (Property 2) checked explicitly over the effective
    /// data-flow graph: walking up from any vertex toward the base, once a
    /// vertex is `M` every later vertex is `M`. Equivalent to
    /// [`validate`](Self::validate) but phrased as the paper states it;
    /// used by tests.
    pub fn check_path_correctness(&self) -> bool {
        for u in self.connected() {
            let mut seen_m = self.label[u.index()] == Mode::M;
            let mut cur = u;
            while let Some(p) = self.tree.parent(cur) {
                let pm = self.label[p.index()] == Mode::M;
                if seen_m && !pm {
                    return false;
                }
                seen_m = seen_m || pm;
                cur = p;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bushy::{build_bushy_tree, BushyOptions};
    use rand::seq::SliceRandom;
    use rand::Rng;
    use td_netsim::network::Network;
    use td_netsim::node::Position;
    use td_netsim::rng::rng_from_seed;

    fn topo(seed: u64, delta_levels: u16) -> TdTopology {
        let mut rng = rng_from_seed(seed);
        let net =
            Network::random_in_rect(200, 20.0, 20.0, Position::new(10.0, 10.0), 2.5, &mut rng);
        let rings = Rings::build(&net);
        let tree = build_bushy_tree(&net, &rings, BushyOptions::default(), &mut rng);
        TdTopology::new(rings, tree, delta_levels)
    }

    #[test]
    fn initial_delta_by_level() {
        let td = topo(51, 2);
        for u in td.rings().connected_nodes() {
            let expected = if td.rings().level(u).unwrap() <= 2 {
                Mode::M
            } else {
                Mode::T
            };
            assert_eq!(td.mode(u), expected);
        }
        assert!(td.validate().is_ok());
        assert!(td.check_path_correctness());
    }

    #[test]
    fn all_tree_and_all_multipath_extremes() {
        let td_tree = {
            let mut t = topo(52, 0);
            t.label[BASE_STATION.index()] = Mode::T;
            t
        };
        assert_eq!(td_tree.delta_size(), 0);
        assert!(td_tree.validate().is_ok());

        let mut rng = rng_from_seed(53);
        let net =
            Network::random_in_rect(100, 20.0, 20.0, Position::new(10.0, 10.0), 2.5, &mut rng);
        let rings = Rings::build(&net);
        let tree = build_bushy_tree(&net, &rings, BushyOptions::default(), &mut rng);
        let connected = rings.connected_count();
        let td_mp = TdTopology::all_multipath(rings, tree);
        assert_eq!(td_mp.delta_size(), connected);
        assert_eq!(td_mp.tributary_size(), 0);
    }

    #[test]
    fn switchable_t_requires_m_parent() {
        let td = topo(54, 1);
        for u in td.switchable_t_nodes() {
            match td.tree().parent(u) {
                Some(p) => assert_eq!(td.mode(p), Mode::M),
                None => assert_eq!(u, BASE_STATION),
            }
        }
        // Every T vertex whose parent is M must be listed.
        for u in td.rings().connected_nodes() {
            if td.mode(u) == Mode::T {
                if let Some(p) = td.tree().parent(u) {
                    assert_eq!(
                        td.is_switchable_t(u),
                        td.mode(p) == Mode::M,
                        "switchability mismatch at {u}"
                    );
                }
            }
        }
    }

    #[test]
    fn switchable_m_has_no_m_sources() {
        let td = topo(55, 3);
        for u in td.switchable_m_nodes() {
            for &s in td.rings().sources(u) {
                assert_eq!(td.mode(s), Mode::T);
            }
        }
    }

    #[test]
    fn observation_1_children_of_switchable_m_are_switchable_t() {
        let td = topo(56, 2);
        for u in td.switchable_m_nodes() {
            for &c in td.tree().children(u) {
                assert_eq!(td.mode(c), Mode::T, "child {c} of switchable M {u}");
                assert!(td.is_switchable_t(c));
            }
        }
    }

    #[test]
    fn lemma_1_switchable_vertices_exist() {
        // For any delta radius with both T and M vertices present, both
        // switchable sets are non-empty.
        for levels in 0..5 {
            let td = topo(57, levels);
            if td.tributary_size() > 0 {
                assert!(
                    !td.switchable_t_nodes().is_empty(),
                    "no switchable T at delta radius {levels}"
                );
            }
            if td.delta_size() > 0 {
                assert!(
                    !td.switchable_m_nodes().is_empty(),
                    "no switchable M at delta radius {levels}"
                );
            }
        }
    }

    #[test]
    fn expand_all_widens_by_one_level() {
        let mut td = topo(58, 1);
        let before = td.delta_size();
        let switched = td.expand_all();
        assert!(switched > 0);
        assert_eq!(td.delta_size(), before + switched);
        assert!(td.validate().is_ok());
        // All new M vertices are at level 2 (children of level-1 delta).
        for u in td.delta_nodes() {
            assert!(td.rings().level(u).unwrap() <= 2);
        }
    }

    #[test]
    fn shrink_all_inverts_expand_all_on_uniform_delta() {
        let mut td = topo(59, 2);
        let before: Vec<Mode> = td.label.clone();
        td.expand_all();
        td.shrink_all();
        assert_eq!(td.label, before);
    }

    #[test]
    fn switch_to_m_rejects_non_switchable() {
        let mut td = topo(60, 1);
        // A T vertex whose parent is T is not switchable.
        let deep_t = td
            .rings()
            .connected_nodes()
            .find(|&u| {
                td.mode(u) == Mode::T && td.tree().parent(u).is_some_and(|p| td.mode(p) == Mode::T)
            })
            .expect("some deep T vertex exists");
        assert_eq!(
            td.switch_to_m(deep_t),
            Err(SwitchError::NotSwitchable(deep_t))
        );
    }

    #[test]
    fn switch_to_t_rejects_interior_m() {
        let mut td = topo(61, 3);
        // The base station has M sources (level-1 delta nodes), so it is
        // not switchable while the delta extends beyond it.
        if td
            .rings()
            .sources(BASE_STATION)
            .iter()
            .any(|&s| td.mode(s) == Mode::M)
        {
            assert_eq!(
                td.switch_to_t(BASE_STATION),
                Err(SwitchError::NotSwitchable(BASE_STATION))
            );
        }
    }

    #[test]
    fn expand_subtree_switches_only_that_subtree() {
        let mut td = topo(62, 1);
        let root = td
            .switchable_m_nodes()
            .into_iter()
            .find(|&u| !td.tree().children(u).is_empty())
            .expect("a switchable M vertex with children");
        let kids = td.tree().children(root).len();
        let before = td.delta_size();
        let switched = td.expand_subtree(root).unwrap();
        assert_eq!(switched, kids);
        assert_eq!(td.delta_size(), before + switched);
        assert!(td.validate().is_ok());
    }

    #[test]
    fn random_switch_sequences_preserve_invariants() {
        // Fuzz: apply hundreds of random legal switches; invariants must
        // hold after each.
        let mut td = topo(63, 1);
        let mut rng = rng_from_seed(64);
        for step in 0..300 {
            if rng.gen_bool(0.5) {
                let ts = td.switchable_t_nodes();
                if let Some(&u) = ts.choose(&mut rng) {
                    td.switch_to_m(u).unwrap();
                }
            } else {
                let ms = td.switchable_m_nodes();
                if let Some(&u) = ms.choose(&mut rng) {
                    td.switch_to_t(u).unwrap();
                }
            }
            assert!(td.validate().is_ok(), "invariant broken at step {step}");
            assert!(td.check_path_correctness());
        }
    }

    #[test]
    fn version_bumps_only_on_label_mutation() {
        let mut td = topo(66, 1);
        let v0 = td.version();
        // Read-only accessors leave the version alone.
        let _ = td.delta_nodes();
        let _ = td.switchable_t_nodes();
        assert_eq!(td.version(), v0);
        // A successful switch re-mints it (monotone, not contiguous —
        // the mint is process-global).
        let u = td.switchable_t_nodes()[0];
        td.switch_to_m(u).unwrap();
        let v1 = td.version();
        assert!(v1 > v0);
        // A rejected switch does not.
        let deep_t = td
            .rings()
            .connected_nodes()
            .find(|&w| {
                td.mode(w) == Mode::T && td.tree().parent(w).is_some_and(|p| td.mode(p) == Mode::T)
            })
            .expect("some deep T vertex exists");
        assert!(td.switch_to_m(deep_t).is_err());
        assert_eq!(td.version(), v1);
        // Bulk operations mint once per effective change: the single
        // new log entry spans v1 -> the new current version.
        assert!(td.expand_all() > 0);
        assert!(td.version() > v1);
        assert_eq!(td.deltas_since(v1).unwrap().count(), 1);
    }

    #[test]
    fn delta_log_records_every_mutation() {
        let mut td = topo(67, 1);
        let v0 = td.version();

        // A rejected switch records nothing.
        let deep_t = td
            .rings()
            .connected_nodes()
            .find(|&w| {
                td.mode(w) == Mode::T && td.tree().parent(w).is_some_and(|p| td.mode(p) == Mode::T)
            })
            .expect("some deep T vertex exists");
        assert!(td.switch_to_m(deep_t).is_err());
        assert_eq!(td.deltas_since(v0).unwrap().count(), 0);

        // A single switch records one single-relabel delta whose root is
        // the parent subtree it expanded under.
        let u = td.switchable_t_nodes()[0];
        td.switch_to_m(u).unwrap();
        let d = td.deltas_since(v0).unwrap().next().unwrap().clone();
        assert_eq!((d.from_version, d.to_version), (v0, td.version()));
        assert_eq!(
            d.relabeled,
            vec![Relabel {
                node: u,
                from: Mode::T,
                to: Mode::M
            }]
        );
        assert_eq!(d.roots, vec![td.tree().parent(u).unwrap_or(u)]);

        // A bulk expansion records every switched vertex in id order.
        let switched = td.expand_all();
        let ds: Vec<_> = td.deltas_since(v0).unwrap().collect();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds[1].len(), switched);
        assert!(ds[1]
            .relabeled
            .windows(2)
            .all(|w| w[0].node.0 < w[1].node.0));
        assert!(ds[1]
            .relabeled
            .iter()
            .all(|r| r.from == Mode::T && r.to == Mode::M));
        assert_eq!(td.relabels_since(v0), Some(1 + switched));

        // Shrinks record the reverse direction with the vertex as root.
        let before_shrink = td.version();
        let shrunk = td.shrink_all();
        assert!(shrunk > 0);
        let last = td.deltas_since(before_shrink).unwrap().next().unwrap();
        assert!(last
            .relabeled
            .iter()
            .all(|r| r.from == Mode::M && r.to == Mode::T));
        assert_eq!(
            last.roots,
            last.relabeled.iter().map(|r| r.node).collect::<Vec<_>>()
        );
    }

    #[test]
    fn deltas_since_covers_exactly_the_logged_window() {
        let mut td = topo(68, 1);
        let v0 = td.version();
        // A version this topology never minted is unanswerable.
        assert!(td.deltas_since(v0.wrapping_add(u64::MAX / 2)).is_none());
        // The current version yields an empty delta.
        assert_eq!(td.deltas_since(v0).unwrap().count(), 0);

        // Push far more mutations than the log retains.
        let mut versions = vec![v0];
        for _ in 0..80 {
            let u = td.switchable_t_nodes().first().copied();
            match u {
                Some(u) => td.switch_to_m(u).unwrap(),
                None => {
                    let m = td.switchable_m_nodes()[0];
                    td.switch_to_t(m).unwrap();
                }
            }
            versions.push(td.version());
        }
        // The oldest versions have been trimmed out of the log...
        assert!(td.deltas_since(v0).is_none());
        assert!(td.relabels_since(v0).is_none());
        // ...but every covered suffix replays as a contiguous chain
        // (each entry's from_version is its predecessor's to_version)
        // ending at the current version.
        let since = versions[versions.len() - 11];
        let covered = td.deltas_since(since).unwrap();
        let mut expect = since;
        let mut replayed = 0;
        for d in covered {
            assert_eq!(d.from_version, expect);
            expect = d.to_version;
            replayed += 1;
        }
        assert_eq!(replayed, 10);
        assert_eq!(expect, td.version());
    }

    #[test]
    fn delta_nodes_iterates_in_id_order() {
        let td = topo(69, 2);
        let collected: Vec<NodeId> = td.delta_nodes().collect();
        assert!(collected.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(collected.len(), td.delta_size());
        for u in td.delta_nodes() {
            assert_eq!(td.mode(u), Mode::M);
        }
    }

    #[test]
    fn m_receivers_subset_of_ring_receivers() {
        let td = topo(65, 2);
        for u in td.delta_nodes() {
            if u == BASE_STATION {
                continue;
            }
            let mr = td.m_receivers(u);
            assert!(
                !mr.is_empty(),
                "delta vertex {u} has no M receiver (orphaned data)"
            );
            for r in mr {
                assert!(td.rings().receivers(u).contains(&r));
                assert_eq!(td.mode(r), Mode::M);
            }
        }
    }
}
