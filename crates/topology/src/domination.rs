//! d-dominating trees and domination factors (§6.1.2).
//!
//! For a tree, let `h(i)` be the number of nodes at height `i` (leaf = 1)
//! and `H(i) = (1/m) Σ_{j≤i} h(j)` the fraction of nodes of height at most
//! `i`. The paper defines a tree to be **d-dominating** if for every
//! `i ≥ 1`:
//!
//! ```text
//! H(i) ≥ (d−1)/d · (1 + 1/d + … + 1/d^{i−1})   =   1 − d^{−i}
//! ```
//!
//! The **domination factor** is the largest `d` (on a granularity grid,
//! 0.05 in the paper) for which the tree is d-dominating. Higher factors
//! mean bushier trees and directly shrink the `(1 + 2/(√d−1))·m/ε` total
//! communication bound of `Min Total-load` (Lemma 3).
//!
//! Every tree is 1-dominating; Lemma 2 shows a tree in which each internal
//! node of height `i` has at least `d` children of height `i−1` is
//! d-dominating.

use crate::tree::Tree;

/// Upper cap for reported domination factors: a star (every node height ≤ 2)
/// dominates for arbitrarily large `d`, and unbounded values are useless in
/// plots, so factors are clamped here.
pub const MAX_DOMINATION_FACTOR: f64 = 16.0;

/// The height profile of a tree: `h(i)` counts and `H(i)` cumulative
/// fractions, over all in-tree nodes (root included).
#[derive(Clone, Debug, PartialEq)]
pub struct DominationProfile {
    /// `counts[i]` is `h(i+1)`, the number of nodes at height `i+1`.
    counts: Vec<usize>,
    /// Total nodes `m`.
    m: usize,
}

impl DominationProfile {
    /// Profile of a concrete tree.
    pub fn from_tree(tree: &Tree) -> Self {
        let heights = tree.heights();
        let max_h = heights.iter().copied().max().unwrap_or(0) as usize;
        let mut counts = vec![0usize; max_h];
        let mut m = 0usize;
        for &h in &heights {
            if h > 0 {
                counts[(h - 1) as usize] += 1;
                m += 1;
            }
        }
        DominationProfile { counts, m }
    }

    /// Profile from explicit height counts, `counts[i] = h(i+1)`. Used for
    /// the paper's Table 2 example trees.
    ///
    /// # Panics
    /// Panics if the counts are empty or sum to zero.
    pub fn from_height_counts(counts: Vec<usize>) -> Self {
        let m: usize = counts.iter().sum();
        assert!(m > 0, "height profile needs at least one node");
        DominationProfile { counts, m }
    }

    /// Number of nodes `m`.
    pub fn num_nodes(&self) -> usize {
        self.m
    }

    /// Tree height (maximum node height).
    pub fn height(&self) -> usize {
        self.counts.len()
    }

    /// `h(i)`: number of nodes at height `i` (1-based).
    pub fn h(&self, i: usize) -> usize {
        if i == 0 || i > self.counts.len() {
            0
        } else {
            self.counts[i - 1]
        }
    }

    /// `H(i)`: fraction of nodes with height at most `i` (1-based).
    pub fn cumulative(&self, i: usize) -> f64 {
        let capped = i.min(self.counts.len());
        let sum: usize = self.counts[..capped].iter().sum();
        sum as f64 / self.m as f64
    }

    /// Whether the tree is d-dominating: `H(i) ≥ 1 − d^{−i}` for all `i`.
    ///
    /// A small epsilon absorbs floating-point error so that, e.g., a
    /// perfectly regular degree-d tree tests as d-dominating.
    pub fn is_d_dominating(&self, d: f64) -> bool {
        if d < 1.0 {
            return false;
        }
        for i in 1..=self.counts.len() {
            let bound = 1.0 - d.powi(-(i as i32));
            if self.cumulative(i) + 1e-9 < bound {
                return false;
            }
        }
        true
    }

    /// The exact (continuous) domination factor: `min_i (1 − H(i))^{−1/i}`
    /// over levels with `H(i) < 1`, clamped to
    /// `[1, MAX_DOMINATION_FACTOR]`.
    pub fn exact_domination_factor(&self) -> f64 {
        let mut d = MAX_DOMINATION_FACTOR;
        for i in 1..=self.counts.len() {
            let hi = self.cumulative(i);
            if hi < 1.0 {
                let di = (1.0 / (1.0 - hi)).powf(1.0 / i as f64);
                d = d.min(di);
            }
        }
        d.max(1.0)
    }

    /// The domination factor on a granularity grid (the paper uses 0.05):
    /// the largest grid value `1 + k·granularity` that still dominates.
    pub fn domination_factor(&self, granularity: f64) -> f64 {
        assert!(granularity > 0.0);
        let exact = self.exact_domination_factor();
        let steps = ((exact - 1.0) / granularity).floor();
        let snapped = 1.0 + steps * granularity;
        // Guard against floating-point snapping above the true factor.
        if self.is_d_dominating(snapped) {
            snapped
        } else {
            (snapped - granularity).max(1.0)
        }
    }
}

/// Convenience: domination factor of a tree at the given granularity.
pub fn domination_factor(tree: &Tree, granularity: f64) -> f64 {
    DominationProfile::from_tree(tree).domination_factor(granularity)
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_netsim::node::NodeId;

    /// The paper's Table 2 example tree Te: h = (37, 10, 6, 1), m = 54.
    fn table2_te() -> DominationProfile {
        DominationProfile::from_height_counts(vec![37, 10, 6, 1])
    }

    /// The paper's Table 2 regular binary tree T2: h = (8, 4, 2, 1), m = 15.
    fn table2_t2() -> DominationProfile {
        DominationProfile::from_height_counts(vec![8, 4, 2, 1])
    }

    #[test]
    fn table2_cumulative_fractions() {
        let te = table2_te();
        assert_eq!(te.num_nodes(), 54);
        assert!((te.cumulative(1) - 37.0 / 54.0).abs() < 1e-12);
        assert!((te.cumulative(2) - 47.0 / 54.0).abs() < 1e-12);
        assert!((te.cumulative(3) - 53.0 / 54.0).abs() < 1e-12);
        assert!((te.cumulative(4) - 1.0).abs() < 1e-12);
        let t2 = table2_t2();
        assert!((t2.cumulative(1) - 8.0 / 15.0).abs() < 1e-12);
        assert!((t2.cumulative(2) - 12.0 / 15.0).abs() < 1e-12);
        assert!((t2.cumulative(3) - 14.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn table2_te_dominates_t2_pointwise() {
        // The paper's argument: for all i, H(i) of Te ≥ H(i) of T2, and T2
        // is 2-dominating, so Te is 2-dominating.
        let te = table2_te();
        let t2 = table2_t2();
        for i in 1..=4 {
            assert!(te.cumulative(i) >= t2.cumulative(i) - 1e-12, "level {i}");
        }
        assert!(t2.is_d_dominating(2.0));
        assert!(te.is_d_dominating(2.0));
    }

    #[test]
    fn regular_binary_tree_is_2_dominating_not_2_25() {
        let t2 = table2_t2();
        assert!(t2.is_d_dominating(2.0));
        // H(1) = 8/15 = 0.5333 < 1 - 1/2.25 = 0.5555
        assert!(!t2.is_d_dominating(2.25));
    }

    #[test]
    fn lemma2_regular_trees() {
        // A complete d-ary tree of height h has each internal node with
        // exactly d children of one smaller height, so it is d-dominating.
        for d in 2..=4usize {
            for h in 2..=5usize {
                let counts: Vec<usize> = (0..h).map(|i| d.pow((h - 1 - i) as u32)).collect();
                let p = DominationProfile::from_height_counts(counts);
                assert!(p.is_d_dominating(d as f64), "d={d} h={h}");
            }
        }
    }

    #[test]
    fn every_tree_is_1_dominating() {
        let degenerate = DominationProfile::from_height_counts(vec![1, 1, 1, 1, 1]);
        assert!(degenerate.is_d_dominating(1.0));
        assert!(degenerate.domination_factor(0.05) >= 1.0);
    }

    #[test]
    fn chain_has_factor_near_one() {
        // Chain of n nodes: H(i) = i/n, which forces d -> small.
        let chain = DominationProfile::from_height_counts(vec![1; 20]);
        let f = chain.domination_factor(0.05);
        assert!(f < 1.3, "chain factor {f}");
    }

    #[test]
    fn star_hits_the_cap() {
        let star = DominationProfile::from_height_counts(vec![99, 1]);
        assert!(star.exact_domination_factor() > 10.0);
    }

    #[test]
    fn monotone_in_d() {
        let te = table2_te();
        // (d + δ)-dominating implies d-dominating.
        let mut d = 1.0;
        let mut last = true;
        while d < 6.0 {
            let now = te.is_d_dominating(d);
            assert!(last || !now, "domination not downward closed at {d}");
            last = now;
            d += 0.05;
        }
    }

    #[test]
    fn granularity_snapping_is_consistent() {
        let te = table2_te();
        let f = te.domination_factor(0.05);
        assert!(te.is_d_dominating(f));
        assert!(!te.is_d_dominating(f + 0.05 + 1e-6));
        // Grid alignment
        let steps = (f - 1.0) / 0.05;
        assert!((steps - steps.round()).abs() < 1e-6, "{f} off-grid");
    }

    #[test]
    fn from_tree_matches_height_counts() {
        // base <- {1,2}; 1 <- {3,4}: heights: base 3, n1 2, n2 1, n3 1, n4 1
        let tree = Tree::from_parents(vec![
            None,
            Some(NodeId(0)),
            Some(NodeId(0)),
            Some(NodeId(1)),
            Some(NodeId(1)),
        ]);
        let p = DominationProfile::from_tree(&tree);
        assert_eq!(p.h(1), 3);
        assert_eq!(p.h(2), 1);
        assert_eq!(p.h(3), 1);
        assert_eq!(p.num_nodes(), 5);
        assert_eq!(p.height(), 3);
    }

    #[test]
    fn h_out_of_range_is_zero() {
        let p = table2_te();
        assert_eq!(p.h(0), 0);
        assert_eq!(p.h(5), 0);
        assert_eq!(p.h(4), 1);
    }
}
