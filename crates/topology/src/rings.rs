//! The Rings multi-path topology (§2).
//!
//! Construction mirrors the paper: "first the base station transmits and
//! any node hearing this transmission is in ring 1. At each subsequent
//! step, nodes in ring *i* transmit and any node hearing one of these
//! transmissions — but not already in a ring — is in ring *i+1*." In the
//! unit-disk radio model this is exactly BFS hop count from the base
//! station. Aggregation then proceeds level-by-level: level *i+1* nodes
//! broadcast while level *i* nodes listen, and *every* level-*i* node that
//! hears a level-*i+1* partial result folds it in — that receiver-side
//! redundancy is the source of multi-path robustness.

use td_netsim::network::Network;
use td_netsim::node::NodeId;

/// The rings topology: each node's ring number (level), with the base
/// station at level 0. Nodes that cannot reach the base station have no
/// level and are excluded from aggregation.
#[derive(Clone, Debug)]
pub struct Rings {
    level: Vec<Option<u16>>,
    max_level: u16,
    /// For each node, its radio neighbors exactly one level below
    /// (the nodes that can hear its level-synchronized broadcast).
    parents_below: Vec<Vec<NodeId>>,
    /// For each node, its radio neighbors exactly one level above
    /// (the nodes whose broadcasts it listens to).
    children_above: Vec<Vec<NodeId>>,
}

impl Rings {
    /// Build the rings topology over a network by BFS from the base station.
    pub fn build(net: &Network) -> Self {
        let hops = net.hop_counts();
        let mut level = vec![None; net.len()];
        let mut max_level = 0u16;
        for (i, &h) in hops.iter().enumerate() {
            if h != u32::MAX {
                let l = u16::try_from(h).expect("network diameter exceeds u16 levels");
                level[i] = Some(l);
                max_level = max_level.max(l);
            }
        }
        let mut parents_below = vec![Vec::new(); net.len()];
        let mut children_above = vec![Vec::new(); net.len()];
        for u in net.node_ids() {
            let Some(lu) = level[u.index()] else { continue };
            for &v in net.neighbors(u) {
                if let Some(lv) = level[v.index()] {
                    if lv + 1 == lu {
                        parents_below[u.index()].push(v);
                    } else if lu + 1 == lv {
                        children_above[u.index()].push(v);
                    }
                }
            }
            parents_below[u.index()].sort_unstable();
            children_above[u.index()].sort_unstable();
        }
        Rings {
            level,
            max_level,
            parents_below,
            children_above,
        }
    }

    /// The ring level of a node, if it is connected to the base station.
    #[inline]
    pub fn level(&self, id: NodeId) -> Option<u16> {
        self.level[id.index()]
    }

    /// The highest ring level present.
    #[inline]
    pub fn max_level(&self) -> u16 {
        self.max_level
    }

    /// Number of nodes tracked (connected or not).
    #[inline]
    pub fn len(&self) -> usize {
        self.level.len()
    }

    /// True iff no nodes are tracked.
    pub fn is_empty(&self) -> bool {
        self.level.is_empty()
    }

    /// The radio neighbors of `id` exactly one ring level *below* it —
    /// the receivers of its broadcast during aggregation.
    #[inline]
    pub fn receivers(&self, id: NodeId) -> &[NodeId] {
        &self.parents_below[id.index()]
    }

    /// The radio neighbors of `id` exactly one ring level *above* it —
    /// the nodes it listens to during aggregation.
    #[inline]
    pub fn sources(&self, id: NodeId) -> &[NodeId] {
        &self.children_above[id.index()]
    }

    /// All connected nodes at a given level, in id order.
    pub fn nodes_at_level(&self, l: u16) -> Vec<NodeId> {
        (0..self.level.len() as u32)
            .map(NodeId)
            .filter(|id| self.level[id.index()] == Some(l))
            .collect()
    }

    /// Iterator over the connected node ids.
    pub fn connected_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.level.len() as u32)
            .map(NodeId)
            .filter(|id| self.level[id.index()].is_some())
    }

    /// Number of nodes connected to the base station (including it).
    pub fn connected_count(&self) -> usize {
        self.level.iter().filter(|l| l.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_netsim::node::{Position, BASE_STATION};
    use td_netsim::rng::rng_from_seed;

    fn chain(n: usize) -> Network {
        let positions = (0..n).map(|i| Position::new(i as f64, 0.0)).collect();
        Network::new(positions, 1.0)
    }

    #[test]
    fn base_station_is_level_zero() {
        let net = chain(4);
        let rings = Rings::build(&net);
        assert_eq!(rings.level(BASE_STATION), Some(0));
        assert_eq!(rings.level(NodeId(3)), Some(3));
        assert_eq!(rings.max_level(), 3);
    }

    #[test]
    fn receivers_and_sources_are_adjacent_levels() {
        let mut rng = rng_from_seed(21);
        let net =
            Network::random_in_rect(150, 20.0, 20.0, Position::new(10.0, 10.0), 3.0, &mut rng);
        let rings = Rings::build(&net);
        for u in rings.connected_nodes() {
            let lu = rings.level(u).unwrap();
            for &r in rings.receivers(u) {
                assert_eq!(rings.level(r), Some(lu - 1));
                assert!(net.in_range(u, r));
            }
            for &s in rings.sources(u) {
                assert_eq!(rings.level(s), Some(lu + 1));
                assert!(net.in_range(u, s));
            }
        }
    }

    #[test]
    fn every_non_base_node_has_a_receiver() {
        // By BFS construction a level-i node heard some level-(i-1) node.
        let mut rng = rng_from_seed(22);
        let net =
            Network::random_in_rect(200, 20.0, 20.0, Position::new(10.0, 10.0), 2.5, &mut rng);
        let rings = Rings::build(&net);
        for u in rings.connected_nodes() {
            if u != BASE_STATION {
                assert!(
                    !rings.receivers(u).is_empty(),
                    "{u} at level {:?} has no receiver",
                    rings.level(u)
                );
            }
        }
    }

    #[test]
    fn disconnected_nodes_have_no_level() {
        let net = Network::new(
            vec![
                Position::new(0.0, 0.0),
                Position::new(1.0, 0.0),
                Position::new(50.0, 0.0),
            ],
            1.5,
        );
        let rings = Rings::build(&net);
        assert_eq!(rings.level(NodeId(2)), None);
        assert_eq!(rings.connected_count(), 2);
        assert_eq!(rings.nodes_at_level(1), vec![NodeId(1)]);
    }

    #[test]
    fn levels_partition_connected_nodes() {
        let mut rng = rng_from_seed(23);
        let net =
            Network::random_in_rect(300, 20.0, 20.0, Position::new(10.0, 10.0), 2.0, &mut rng);
        let rings = Rings::build(&net);
        let total: usize = (0..=rings.max_level())
            .map(|l| rings.nodes_at_level(l).len())
            .sum();
        assert_eq!(total, rings.connected_count());
    }
}
