//! Link-quality-driven tree maintenance ([24]; §2).
//!
//! "To adapt the tree to changing network conditions, each node monitors
//! the link quality to and from its neighbors. This is done less
//! frequently than aggregation, in order to conserve energy. If the
//! relative link qualities warrant it, a node will switch to a new parent
//! with better link quality."
//!
//! [`LinkMonitor`] keeps an exponentially-weighted delivery estimate per
//! observed link (fed by the simulator's actual delivery outcomes), and
//! [`maintain_tree`] performs a maintenance round: every node whose
//! current parent link is measurably worse than its best candidate
//! switches. For Tributary-Delta trees the candidate set is restricted to
//! ring level *i−1* so the §4.1 epoch-synchronization constraint is
//! preserved.

use crate::rings::Rings;
use crate::tree::Tree;
use td_netsim::node::NodeId;

/// EWMA link-quality estimates over directed links.
///
/// ```
/// use td_netsim::node::NodeId;
/// use td_topology::maintenance::LinkMonitor;
///
/// let mut m = LinkMonitor::new(0.25);
/// for _ in 0..20 { m.observe(NodeId(3), NodeId(1), true); }
/// m.observe(NodeId(3), NodeId(1), false);
/// let q = m.estimate(NodeId(3), NodeId(1)).unwrap();
/// assert!(q > 0.6 && q < 1.0);
/// ```
#[derive(Clone, Debug)]
pub struct LinkMonitor {
    /// `quality[(from, to)]` = smoothed delivery probability.
    quality: std::collections::BTreeMap<(u32, u32), f64>,
    /// EWMA weight of a new observation.
    alpha: f64,
}

impl LinkMonitor {
    /// Create a monitor; `alpha` is the EWMA weight (0 < alpha ≤ 1).
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0);
        LinkMonitor {
            quality: std::collections::BTreeMap::new(),
            alpha,
        }
    }

    /// Record a delivery outcome for `from -> to`.
    pub fn observe(&mut self, from: NodeId, to: NodeId, delivered: bool) {
        let x = if delivered { 1.0 } else { 0.0 };
        self.quality
            .entry((from.0, to.0))
            .and_modify(|q| *q = (1.0 - self.alpha) * *q + self.alpha * x)
            .or_insert(x);
    }

    /// The smoothed delivery estimate, if the link has been observed.
    pub fn estimate(&self, from: NodeId, to: NodeId) -> Option<f64> {
        self.quality.get(&(from.0, to.0)).copied()
    }

    /// Number of links with observations.
    pub fn observed_links(&self) -> usize {
        self.quality.len()
    }
}

/// Outcome of a maintenance round.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MaintenanceReport {
    /// Parents switched this round.
    pub switched: usize,
    /// Nodes with no better candidate.
    pub kept: usize,
}

/// One maintenance round over a ring-restricted tree: each non-base node
/// switches to its best-estimated receiver one ring level down if that
/// estimate beats its current parent's by at least `hysteresis`
/// (hysteresis prevents flapping between statistically tied links).
/// Unobserved links count as quality `default_quality`.
pub fn maintain_tree(
    tree: &Tree,
    rings: &Rings,
    monitor: &LinkMonitor,
    hysteresis: f64,
    default_quality: f64,
) -> (Tree, MaintenanceReport) {
    let mut parent: Vec<Option<NodeId>> = (0..tree.len() as u32)
        .map(|i| tree.parent(NodeId(i)))
        .collect();
    let mut report = MaintenanceReport::default();
    for u in tree.tree_nodes() {
        let Some(current) = tree.parent(u) else {
            continue;
        };
        let q = |to: NodeId| monitor.estimate(u, to).unwrap_or(default_quality);
        let current_q = q(current);
        let best = rings
            .receivers(u)
            .iter()
            .copied()
            .max_by(|&a, &b| {
                q(a).partial_cmp(&q(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
                    // Deterministic tie-break by id.
                    .then(b.0.cmp(&a.0))
            })
            .unwrap_or(current);
        if best != current && q(best) > current_q + hysteresis {
            parent[u.index()] = Some(best);
            report.switched += 1;
        } else {
            report.kept += 1;
        }
    }
    (Tree::from_parents(parent), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bushy::{build_bushy_tree, BushyOptions};
    use td_netsim::loss::{DistanceLoss, LossModel};
    use td_netsim::network::Network;
    use td_netsim::node::Position;
    use td_netsim::rng::rng_from_seed;

    fn setup(seed: u64) -> (Network, Rings, Tree) {
        let mut rng = rng_from_seed(seed);
        let net =
            Network::random_connected(120, 12.0, 12.0, Position::new(6.0, 6.0), 3.0, &mut rng);
        let rings = Rings::build(&net);
        let tree = build_bushy_tree(&net, &rings, BushyOptions::default(), &mut rng);
        (net, rings, tree)
    }

    #[test]
    fn monitor_ewma_converges() {
        let mut m = LinkMonitor::new(0.2);
        for _ in 0..100 {
            m.observe(NodeId(1), NodeId(0), true);
        }
        assert!(m.estimate(NodeId(1), NodeId(0)).unwrap() > 0.99);
        for _ in 0..100 {
            m.observe(NodeId(1), NodeId(0), false);
        }
        assert!(m.estimate(NodeId(1), NodeId(0)).unwrap() < 0.01);
        assert_eq!(m.estimate(NodeId(2), NodeId(0)), None);
    }

    #[test]
    fn maintenance_preserves_ring_restriction() {
        let (net, rings, tree) = setup(81);
        let model = DistanceLoss::new(0.05, 0.7, 2.0);
        let mut monitor = LinkMonitor::new(0.3);
        let mut rng = rng_from_seed(82);
        // Feed real delivery observations for every candidate link.
        for u in rings.connected_nodes() {
            for &r in rings.receivers(u) {
                for _ in 0..30 {
                    monitor.observe(u, r, model.delivered(u, r, &net, 0, &mut rng));
                }
            }
        }
        let (maintained, report) = maintain_tree(&tree, &rings, &monitor, 0.05, 0.5);
        assert_eq!(maintained.tree_size(), tree.tree_size());
        let level_of = |id: NodeId| rings.level(id);
        assert!(maintained.respects_links(&net, Some(&level_of)));
        assert!(report.switched + report.kept > 0);
    }

    #[test]
    fn maintenance_improves_mean_parent_quality() {
        let (net, rings, tree) = setup(83);
        let model = DistanceLoss::new(0.05, 0.8, 2.0);
        let mut monitor = LinkMonitor::new(0.3);
        let mut rng = rng_from_seed(84);
        for u in rings.connected_nodes() {
            for &r in rings.receivers(u) {
                for _ in 0..50 {
                    monitor.observe(u, r, model.delivered(u, r, &net, 0, &mut rng));
                }
            }
        }
        let mean_quality = |t: &Tree| -> f64 {
            let mut total = 0.0;
            let mut n = 0;
            for u in t.tree_nodes() {
                if let Some(p) = t.parent(u) {
                    total += 1.0 - model.loss_rate(u, p, &net, 0);
                    n += 1;
                }
            }
            total / n as f64
        };
        let before = mean_quality(&tree);
        let (maintained, report) = maintain_tree(&tree, &rings, &monitor, 0.02, 0.5);
        let after = mean_quality(&maintained);
        assert!(report.switched > 0, "nothing switched");
        assert!(
            after > before,
            "maintenance did not improve quality: {before} -> {after}"
        );
    }

    #[test]
    fn hysteresis_prevents_switching_on_ties() {
        let (_, rings, tree) = setup(85);
        // A monitor that thinks every link is identical: nothing switches.
        let mut monitor = LinkMonitor::new(0.5);
        for u in rings.connected_nodes() {
            for &r in rings.receivers(u) {
                monitor.observe(u, r, true);
            }
        }
        let (maintained, report) = maintain_tree(&tree, &rings, &monitor, 0.05, 0.5);
        assert_eq!(report.switched, 0);
        for u in tree.tree_nodes() {
            assert_eq!(maintained.parent(u), tree.parent(u));
        }
    }
}
