//! Link-quality-driven tree maintenance (\[24\]; §2).
//!
//! "To adapt the tree to changing network conditions, each node monitors
//! the link quality to and from its neighbors. This is done less
//! frequently than aggregation, in order to conserve energy. If the
//! relative link qualities warrant it, a node will switch to a new parent
//! with better link quality."
//!
//! [`LinkMonitor`] keeps an exponentially-weighted delivery estimate per
//! observed link (fed by the simulator's actual delivery outcomes), and
//! [`maintain_tree`] performs a maintenance round: every node whose
//! current parent link is measurably worse than its best candidate
//! switches. For Tributary-Delta trees the candidate set is restricted to
//! ring level *i−1* so the §4.1 epoch-synchronization constraint is
//! preserved.
//!
//! Two maintenance paths exist:
//!
//! * [`maintain_tree`] rebuilds a fresh [`Tree`] from the monitor — the
//!   wholesale path, forcing consumers to rebuild topologies and plans;
//! * [`maintain_td`] applies the same policy **in place** on a
//!   [`TdTopology`] through [`TdTopology::switch_parents`], recording
//!   the round as one bounded structural [`TopologyDelta`] that
//!   compiled epoch plans patch instead of recompiling.
//!
//! [`apply_churn`] is the churn counterpart of the in-place path: when
//! nodes leave mid-run their orphaned tree children re-parent onto
//! surviving ring receivers (and rejoining nodes re-attach), again as a
//! single bounded delta.
//!
//! [`TopologyDelta`]: crate::td::TopologyDelta

use crate::rings::Rings;
use crate::td::{Mode, TdTopology};
use crate::tree::Tree;
use td_netsim::node::{NodeId, BASE_STATION};

/// EWMA link-quality estimates over directed links.
///
/// ```
/// use td_netsim::node::NodeId;
/// use td_topology::maintenance::LinkMonitor;
///
/// let mut m = LinkMonitor::new(0.25);
/// for _ in 0..20 { m.observe(NodeId(3), NodeId(1), true); }
/// m.observe(NodeId(3), NodeId(1), false);
/// let q = m.estimate(NodeId(3), NodeId(1)).unwrap();
/// assert!(q > 0.6 && q < 1.0);
/// ```
#[derive(Clone, Debug)]
pub struct LinkMonitor {
    /// `quality[(from, to)]` = smoothed delivery probability.
    quality: std::collections::BTreeMap<(u32, u32), f64>,
    /// EWMA weight of a new observation.
    alpha: f64,
}

impl LinkMonitor {
    /// Create a monitor; `alpha` is the EWMA weight (0 < alpha ≤ 1).
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0);
        LinkMonitor {
            quality: std::collections::BTreeMap::new(),
            alpha,
        }
    }

    /// Record a delivery outcome for `from -> to`.
    pub fn observe(&mut self, from: NodeId, to: NodeId, delivered: bool) {
        let x = if delivered { 1.0 } else { 0.0 };
        self.quality
            .entry((from.0, to.0))
            .and_modify(|q| *q = (1.0 - self.alpha) * *q + self.alpha * x)
            .or_insert(x);
    }

    /// The smoothed delivery estimate, if the link has been observed.
    pub fn estimate(&self, from: NodeId, to: NodeId) -> Option<f64> {
        self.quality.get(&(from.0, to.0)).copied()
    }

    /// Number of links with observations.
    pub fn observed_links(&self) -> usize {
        self.quality.len()
    }
}

/// Outcome of a maintenance round.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MaintenanceReport {
    /// Parents switched this round.
    pub switched: usize,
    /// Nodes with no better candidate.
    pub kept: usize,
}

/// One maintenance round over a ring-restricted tree: each non-base node
/// switches to its best-estimated receiver one ring level down if that
/// estimate beats its current parent's by at least `hysteresis`
/// (hysteresis prevents flapping between statistically tied links).
/// Unobserved links count as quality `default_quality`.
pub fn maintain_tree(
    tree: &Tree,
    rings: &Rings,
    monitor: &LinkMonitor,
    hysteresis: f64,
    default_quality: f64,
) -> (Tree, MaintenanceReport) {
    let mut parent: Vec<Option<NodeId>> = (0..tree.len() as u32)
        .map(|i| tree.parent(NodeId(i)))
        .collect();
    let mut report = MaintenanceReport::default();
    for u in tree.tree_nodes() {
        let Some(current) = tree.parent(u) else {
            continue;
        };
        let q = |to: NodeId| monitor.estimate(u, to).unwrap_or(default_quality);
        let current_q = q(current);
        let best = rings
            .receivers(u)
            .iter()
            .copied()
            .max_by(|&a, &b| {
                q(a).partial_cmp(&q(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
                    // Deterministic tie-break by id.
                    .then(b.0.cmp(&a.0))
            })
            .unwrap_or(current);
        if best != current && q(best) > current_q + hysteresis {
            parent[u.index()] = Some(best);
            report.switched += 1;
        } else {
            report.kept += 1;
        }
    }
    (Tree::from_parents(parent), report)
}

/// One in-place maintenance round over a Tributary-Delta topology: the
/// [`maintain_tree`] policy (best-estimated ring receiver, hysteresis
/// against flapping) applied through [`TdTopology::switch_parents`], so
/// the round lands in the topology's delta log as **one** structural
/// [`crate::td::TopologyDelta`] and a cached epoch plan patches in
/// O(|switches|·depth) instead of being rebuilt. Candidates are
/// label-compatible by construction: an `M` vertex only considers `M`
/// receivers (upward closure), a `T` vertex considers them all.
pub fn maintain_td(
    topo: &mut TdTopology,
    monitor: &LinkMonitor,
    hysteresis: f64,
    default_quality: f64,
) -> MaintenanceReport {
    let mut moves = Vec::new();
    let mut report = MaintenanceReport::default();
    for u in topo.rings().connected_nodes() {
        let Some(current) = topo.tree().parent(u) else {
            continue;
        };
        let q = |to: NodeId| monitor.estimate(u, to).unwrap_or(default_quality);
        let needs_m = topo.mode(u) == Mode::M;
        let best = topo
            .rings()
            .receivers(u)
            .iter()
            .copied()
            .filter(|&r| !needs_m || topo.mode(r) == Mode::M)
            .max_by(|&a, &b| {
                q(a).partial_cmp(&q(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
                    // Deterministic tie-break by id.
                    .then(b.0.cmp(&a.0))
            })
            .unwrap_or(current);
        if best != current && q(best) > q(current) + hysteresis {
            moves.push((u, best));
            report.switched += 1;
        } else {
            report.kept += 1;
        }
    }
    let applied = topo
        .switch_parents(&moves)
        .expect("maintenance candidates are validated ring receivers");
    debug_assert_eq!(applied, report.switched);
    report
}

/// Outcome of applying one epoch's churn events to a topology.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChurnReport {
    /// Orphaned children re-parented onto a surviving receiver.
    pub reparented: usize,
    /// Orphans with no label-compatible surviving receiver: they keep
    /// their absent parent and simply lose data until it returns (no
    /// alternative route exists).
    pub stranded: usize,
    /// Rejoining nodes re-attached away from a still-absent parent.
    pub rejoined: usize,
}

/// Route around one epoch's churn with a **bounded structural delta**:
///
/// * every tree child of a node in `left` switches to its lowest-id
///   surviving ring receiver (label-compatible: `M` children need an
///   `M` parent), through the same parent-switch path link-quality
///   maintenance uses;
/// * every node in `joined` whose parent is still absent re-attaches
///   the same way (its ring level is fixed by geometry, so rejoining
///   *is* attaching at the nearest ring level).
///
/// All moves land in **one** [`crate::td::TopologyDelta`], so a small
/// churn event patches the cached epoch plan instead of rebuilding the
/// `Tree`/`TdTopology`/plan wholesale. The policy is deterministic —
/// no RNG — so patched and rebuilt sessions stay bit-identical.
///
/// `absent` is the full post-event absent set (leavers included):
/// candidates are drawn from present nodes only, falling back to
/// "stranded" (keep the dead parent, lose the data) when no compatible
/// present receiver exists — the realistic outcome when a region's only
/// uplink is down.
pub fn apply_churn(
    topo: &mut TdTopology,
    left: &[NodeId],
    joined: &[NodeId],
    absent: &[NodeId],
) -> ChurnReport {
    let mut is_absent = vec![false; topo.len()];
    for n in absent {
        if n.index() < is_absent.len() {
            is_absent[n.index()] = true;
        }
    }
    let mut report = ChurnReport::default();
    // Deterministic move set: BTreeMap keyed by child id, last write
    // wins (a child can be both orphaned and rejoining in one epoch).
    let mut moves: std::collections::BTreeMap<NodeId, NodeId> = std::collections::BTreeMap::new();
    let best_alternative =
        |topo: &TdTopology, c: NodeId, avoid: NodeId| -> Option<NodeId> {
            let needs_m = topo.mode(c) == Mode::M;
            topo.rings().receivers(c).iter().copied().find(|&r| {
                r != avoid && !is_absent[r.index()] && (!needs_m || topo.mode(r) == Mode::M)
            })
        };
    for &u in left {
        if u == BASE_STATION || topo.rings().level(u).is_none() {
            continue;
        }
        for c in topo.tree().children(u).to_vec() {
            match best_alternative(topo, c, u) {
                Some(best) => {
                    moves.insert(c, best);
                    report.reparented += 1;
                }
                None => report.stranded += 1,
            }
        }
    }
    for &j in joined {
        if j == BASE_STATION || topo.rings().level(j).is_none() {
            continue;
        }
        let Some(p) = topo.tree().parent(j) else {
            continue;
        };
        if !is_absent[p.index()] {
            continue;
        }
        if let Some(best) = best_alternative(topo, j, p) {
            moves.insert(j, best);
            report.rejoined += 1;
        }
    }
    let moves: Vec<(NodeId, NodeId)> = moves.into_iter().collect();
    topo.switch_parents(&moves)
        .expect("churn reroutes are validated ring receivers");
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bushy::{build_bushy_tree, BushyOptions};
    use td_netsim::loss::{DistanceLoss, LossModel};
    use td_netsim::network::Network;
    use td_netsim::node::Position;
    use td_netsim::rng::rng_from_seed;

    fn setup(seed: u64) -> (Network, Rings, Tree) {
        let mut rng = rng_from_seed(seed);
        let net =
            Network::random_connected(120, 12.0, 12.0, Position::new(6.0, 6.0), 3.0, &mut rng);
        let rings = Rings::build(&net);
        let tree = build_bushy_tree(&net, &rings, BushyOptions::default(), &mut rng);
        (net, rings, tree)
    }

    #[test]
    fn monitor_ewma_converges() {
        let mut m = LinkMonitor::new(0.2);
        for _ in 0..100 {
            m.observe(NodeId(1), NodeId(0), true);
        }
        assert!(m.estimate(NodeId(1), NodeId(0)).unwrap() > 0.99);
        for _ in 0..100 {
            m.observe(NodeId(1), NodeId(0), false);
        }
        assert!(m.estimate(NodeId(1), NodeId(0)).unwrap() < 0.01);
        assert_eq!(m.estimate(NodeId(2), NodeId(0)), None);
    }

    #[test]
    fn maintenance_preserves_ring_restriction() {
        let (net, rings, tree) = setup(81);
        let model = DistanceLoss::new(0.05, 0.7, 2.0);
        let mut monitor = LinkMonitor::new(0.3);
        let mut rng = rng_from_seed(82);
        // Feed real delivery observations for every candidate link.
        for u in rings.connected_nodes() {
            for &r in rings.receivers(u) {
                for _ in 0..30 {
                    monitor.observe(u, r, model.delivered(u, r, &net, 0, &mut rng));
                }
            }
        }
        let (maintained, report) = maintain_tree(&tree, &rings, &monitor, 0.05, 0.5);
        assert_eq!(maintained.tree_size(), tree.tree_size());
        let level_of = |id: NodeId| rings.level(id);
        assert!(maintained.respects_links(&net, Some(&level_of)));
        assert!(report.switched + report.kept > 0);
    }

    #[test]
    fn maintenance_improves_mean_parent_quality() {
        let (net, rings, tree) = setup(83);
        let model = DistanceLoss::new(0.05, 0.8, 2.0);
        let mut monitor = LinkMonitor::new(0.3);
        let mut rng = rng_from_seed(84);
        for u in rings.connected_nodes() {
            for &r in rings.receivers(u) {
                for _ in 0..50 {
                    monitor.observe(u, r, model.delivered(u, r, &net, 0, &mut rng));
                }
            }
        }
        let mean_quality = |t: &Tree| -> f64 {
            let mut total = 0.0;
            let mut n = 0;
            for u in t.tree_nodes() {
                if let Some(p) = t.parent(u) {
                    total += 1.0 - model.loss_rate(u, p, &net, 0);
                    n += 1;
                }
            }
            total / n as f64
        };
        let before = mean_quality(&tree);
        let (maintained, report) = maintain_tree(&tree, &rings, &monitor, 0.02, 0.5);
        let after = mean_quality(&maintained);
        assert!(report.switched > 0, "nothing switched");
        assert!(
            after > before,
            "maintenance did not improve quality: {before} -> {after}"
        );
    }

    #[test]
    fn maintain_td_matches_policy_in_one_delta() {
        let (net, rings, tree) = setup(86);
        let model = DistanceLoss::new(0.05, 0.8, 2.0);
        let mut monitor = LinkMonitor::new(0.3);
        let mut rng = rng_from_seed(87);
        for u in rings.connected_nodes() {
            for &r in rings.receivers(u) {
                for _ in 0..50 {
                    monitor.observe(u, r, model.delivered(u, r, &net, 0, &mut rng));
                }
            }
        }
        let mut topo = TdTopology::all_tree(rings, tree);
        let v0 = topo.version();
        let report = maintain_td(&mut topo, &monitor, 0.02, 0.5);
        assert!(report.switched > 0, "nothing switched");
        assert!(topo.validate().is_ok());
        let level_of = |id: NodeId| topo.rings().level(id);
        assert!(topo.tree().respects_links(&net, Some(&level_of)));
        // The whole round is one structural delta with every reparent.
        let deltas: Vec<_> = topo.deltas_since(v0).expect("log covers").collect();
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].reparented.len(), report.switched);
        assert!(deltas[0].relabeled.is_empty());
    }

    #[test]
    fn maintain_td_keeps_m_children_under_m_parents() {
        let (net, rings, tree) = setup(88);
        // A monitor that adores every link equally except each M
        // vertex's current parent — pushing toward switches everywhere.
        let mut topo = TdTopology::new(rings, tree, 2);
        let mut monitor = LinkMonitor::new(0.5);
        for u in topo.rings().connected_nodes() {
            let parent = topo.tree().parent(u);
            for &r in topo.rings().receivers(u) {
                monitor.observe(u, r, Some(r) != parent);
            }
        }
        maintain_td(&mut topo, &monitor, 0.05, 0.0);
        assert!(topo.validate().is_ok(), "upward closure broken");
        let _ = net;
    }

    #[test]
    fn apply_churn_reroutes_orphans_and_reattaches_joins() {
        let (_, rings, tree) = setup(89);
        let mut topo = TdTopology::all_tree(rings, tree);
        // Pick a departing node with children and a surviving
        // alternative receiver for at least one child.
        let u = topo
            .rings()
            .connected_nodes()
            .find(|&u| {
                u != BASE_STATION
                    && topo
                        .tree()
                        .children(u)
                        .iter()
                        .any(|&c| topo.rings().receivers(c).len() > 1)
            })
            .expect("some parent with reroutable children");
        let orphans: Vec<NodeId> = topo.tree().children(u).to_vec();
        let v0 = topo.version();
        let report = apply_churn(&mut topo, &[u], &[], &[u]);
        assert_eq!(report.reparented + report.stranded, orphans.len());
        assert!(report.reparented > 0);
        assert!(topo.validate().is_ok());
        for &c in &orphans {
            let p = topo.tree().parent(c).unwrap();
            if p == u {
                continue; // stranded: no alternative existed
            }
            assert!(topo.rings().receivers(c).contains(&p));
        }
        // One delta for the whole event.
        assert_eq!(topo.deltas_since(v0).unwrap().count(), 1);

        // The node rejoins; its own parent is fine, so nothing moves —
        // but a child of a *still-absent* parent re-attaches on join.
        let vr = topo.version();
        let rejoin = apply_churn(&mut topo, &[], &[u], &[]);
        assert_eq!(rejoin, ChurnReport::default());
        assert_eq!(topo.version(), vr, "no-op churn must not mint versions");
    }

    #[test]
    fn apply_churn_is_deterministic() {
        let (_, rings, tree) = setup(90);
        let left: Vec<NodeId> = rings
            .connected_nodes()
            .filter(|n| n.0 % 7 == 1)
            .take(6)
            .collect();
        let run = || {
            let mut topo = TdTopology::new(rings.clone(), tree.clone(), 1);
            apply_churn(&mut topo, &left, &[], &left);
            (0..topo.len() as u32)
                .map(|i| topo.tree().parent(NodeId(i)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn hysteresis_prevents_switching_on_ties() {
        let (_, rings, tree) = setup(85);
        // A monitor that thinks every link is identical: nothing switches.
        let mut monitor = LinkMonitor::new(0.5);
        for u in rings.connected_nodes() {
            for &r in rings.receivers(u) {
                monitor.observe(u, r, true);
            }
        }
        let (maintained, report) = maintain_tree(&tree, &rings, &monitor, 0.05, 0.5);
        assert_eq!(report.switched, 0);
        for u in tree.tree_nodes() {
            assert_eq!(maintained.parent(u), tree.parent(u));
        }
    }
}
