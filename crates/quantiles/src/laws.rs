//! Law checks for quantile summaries, in the style of
//! `td_aggregates::laws::assert_merge_laws`: the algebraic laws are
//! asserted **up to canonical form**, i.e. through evaluated
//! rank/quantile answers rather than structural equality. GK's combine
//! resolves value ties differently depending on argument order, so the
//! stored tuple lists may differ while every answer the protocol can
//! extract agrees; q-digest combine is node-wise addition and holds the
//! laws on the representation itself (its tests pin that separately).

use crate::summary::QuantileSummary;

/// Assert combine commutativity and associativity up to canonical form:
/// populations and uncertainties must match exactly; rank answers at
/// each probe must agree within `2E` (each side is independently within
/// `E` of the same true rank — for exact inputs `E = 0` and the check
/// is exact equality). Panics with a diagnostic on violation.
pub fn assert_combine_laws<S: QuantileSummary>(a: &S, b: &S, c: &S, probes: &[u64]) {
    let check = |x: &S, y: &S, law: &str| {
        assert_eq!(x.population(), y.population(), "{law}: population");
        assert_eq!(x.uncertainty(), y.uncertainty(), "{law}: uncertainty");
        x.check_invariant()
            .unwrap_or_else(|e| panic!("{law}: left invariant: {e}"));
        y.check_invariant()
            .unwrap_or_else(|e| panic!("{law}: right invariant: {e}"));
        let tol = 2 * x.uncertainty();
        for &p in probes {
            let (rx, ry) = (x.rank(p), y.rank(p));
            assert!(
                rx.abs_diff(ry) <= tol,
                "{law}: rank({p}) = {rx} vs {ry}, tolerance {tol}"
            );
        }
    };
    check(&a.combine(b), &b.combine(a), "commutativity");
    check(
        &a.combine(b).combine(c),
        &a.combine(&b.combine(c)),
        "associativity",
    );
}

/// Assert `reduce(E)` never exceeds its budget: the reduced summary's
/// self-reported uncertainty stays within `max(E, E_before)`, the
/// structural invariant still holds, the population is untouched, and
/// every probe's rank error against the raw `values` is within the
/// self-reported uncertainty.
pub fn assert_reduce_budget<S: QuantileSummary>(template: &S, values: &[u64], e_target: u64) {
    let exact = template.exact_from(values);
    let mut reduced = exact.clone();
    reduced.reduce(e_target);
    assert!(
        reduced.uncertainty() <= e_target.max(exact.uncertainty()),
        "reduce({e_target}) reported E = {}",
        reduced.uncertainty()
    );
    assert_eq!(
        reduced.population(),
        exact.population(),
        "reduce population"
    );
    reduced
        .check_invariant()
        .unwrap_or_else(|e| panic!("reduce invariant: {e}"));
    for &p in values {
        let truth = values.iter().filter(|&&x| x <= p).count() as u64;
        let err = reduced.rank(p).abs_diff(truth);
        assert!(
            err <= reduced.uncertainty(),
            "rank({p}) error {err} exceeds self-reported E = {}",
            reduced.uncertainty()
        );
    }
}

/// Assert `quantile(φ)` is monotone non-decreasing in φ over `steps`
/// evenly spaced probes in `[0, 1]`.
pub fn assert_quantile_monotone<S: QuantileSummary>(s: &S, steps: u32) {
    if s.population() == 0 {
        assert_eq!(s.quantile(0.5), None, "empty summary must answer None");
        return;
    }
    let mut prev = None;
    for i in 0..=steps {
        let q = s
            .quantile(i as f64 / steps as f64)
            .expect("non-empty summary");
        if let Some(p) = prev {
            assert!(q >= p, "quantile not monotone at step {i}: {q} < {p}");
        }
        prev = Some(q);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qdigest::QDigest;
    use crate::summary::GkSummary;
    use proptest::prelude::*;

    const PROBES: [u64; 8] = [0, 7, 100, 511, 1024, 2047, 3000, 4095];

    fn vals() -> impl Strategy<Value = Vec<u64>> {
        proptest::collection::vec(0u64..4096, 0..120)
    }

    proptest! {
        #[test]
        fn gk_combine_laws(a in vals(), b in vals(), c in vals(), ea in 0u64..30, eb in 0u64..30) {
            let t = GkSummary::empty();
            let mut sa = t.exact_from(&a);
            sa.reduce(ea);
            let mut sb = t.exact_from(&b);
            sb.reduce(eb);
            let sc = t.exact_from(&c);
            assert_combine_laws(&sa, &sb, &sc, &PROBES);
        }

        #[test]
        fn qdigest_combine_laws(a in vals(), b in vals(), c in vals(), ea in 0u64..30, eb in 0u64..30) {
            let t = QDigest::empty(12);
            let mut sa = t.exact_from(&a);
            sa.reduce(ea);
            let mut sb = t.exact_from(&b);
            sb.reduce(eb);
            let sc = t.exact_from(&c);
            assert_combine_laws(&sa, &sb, &sc, &PROBES);
            // q-digest combine is node-wise addition: the laws hold on
            // the representation, not just up to evaluation.
            prop_assert_eq!(sa.combine(&sb), sb.combine(&sa));
            prop_assert_eq!(
                sa.combine(&sb).combine(&sc),
                sa.combine(&sb.combine(&sc))
            );
        }

        #[test]
        fn reduce_never_exceeds_budget(v in vals(), e in 0u64..200) {
            assert_reduce_budget(&GkSummary::empty(), &v, e);
            assert_reduce_budget(&QDigest::empty(12), &v, e);
        }

        #[test]
        fn quantile_monotone(v in vals(), e in 0u64..100) {
            let mut gk = GkSummary::exact(&v);
            gk.reduce(e);
            assert_quantile_monotone(&gk, 40);
            let mut qd = QDigest::exact(&v, 12);
            qd.reduce(e);
            assert_quantile_monotone(&qd, 40);
        }
    }
}
