//! The q-digest summary ("Medians and Beyond" — Shrivastava, Buragohain,
//! Agrawal, Suri) with the same combine/reduce surface as
//! [`GkSummary`](crate::summary::GkSummary).
//!
//! A q-digest covers the integer domain `[0, 2^bits)` with a set of
//! dyadic ranges (nodes of the implicit complete binary tree over the
//! domain), each carrying a count. An exact digest stores only leaves
//! (width-1 ranges); `reduce` moves counts from children into parents,
//! trading rank precision for size. Two properties make it the natural
//! *windowed* quantile summary here:
//!
//! * `combine` is node-wise count addition — exact, associative, and
//!   commutative **on the representation**, not just up to evaluation;
//! * node-wise addition is invertible, so [`QDigest::retract`] can
//!   subtract a previously-combined digest back out — the O(1)
//!   subtract-on-evict path the stream layer's window accumulators use
//!   (GK's combine is not invertible, so GK panes re-fold instead).

use std::collections::BTreeMap;

/// A q-digest ε-approximate quantile summary over `[0, 2^bits)`.
///
/// Like [`GkSummary`](crate::summary::GkSummary), the digest tracks its
/// own **absolute** rank uncertainty `E` (`uncertainty()`): any rank
/// query is within `E` of the true rank. An exact digest has `E = 0`;
/// `combine` adds uncertainties; `reduce(E_target)` compresses.
///
/// ```
/// use td_quantiles::qdigest::QDigest;
///
/// // Two sensors summarize locally, a parent combines and compresses.
/// let a = QDigest::exact(&(0..500).collect::<Vec<_>>(), 10);
/// let b = QDigest::exact(&(500..1000).collect::<Vec<_>>(), 10);
/// let mut merged = a.combine(&b);
/// merged.reduce(50); // rank error budget E = 50
/// let median = merged.quantile(0.5).unwrap();
/// // Rank error is at most E, and the reported value rounds up to a
/// // dyadic node boundary — within 2E in value on this dense domain.
/// let tol = 2 * merged.uncertainty() as i64;
/// assert!((median as i64 - 500).abs() <= tol, "median {median}");
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QDigest {
    /// Domain width exponent: values live in `[0, 2^bits)`.
    bits: u32,
    /// Dyadic node `(depth, prefix)` → count, where `prefix` is the
    /// value's top `depth` bits. Depth `bits` nodes are exact leaves;
    /// shallower nodes cover `2^(bits − depth)` values.
    nodes: BTreeMap<(u32, u64), u64>,
    n: u64,
    uncertainty: u64,
}

impl QDigest {
    /// An empty digest over `[0, 2^bits)`. `bits` must be in `1..=48`.
    pub fn empty(bits: u32) -> Self {
        assert!((1..=48).contains(&bits), "QDigest bits must be in 1..=48");
        QDigest {
            bits,
            nodes: BTreeMap::new(),
            n: 0,
            uncertainty: 0,
        }
    }

    /// Exact digest of a collection: one leaf per distinct value (counts
    /// absorb duplicates — node-wise addition keeps exactness, unlike
    /// GK where duplicate tuples must stay separate). Values at or above
    /// `2^bits` saturate to the domain maximum.
    pub fn exact(values: &[u64], bits: u32) -> Self {
        let mut d = QDigest::empty(bits);
        let max = (1u64 << bits) - 1;
        for &v in values {
            *d.nodes.entry((bits, v.min(max))).or_insert(0) += 1;
        }
        d.n = values.len() as u64;
        d
    }

    /// Domain width exponent.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of items summarized.
    pub fn population(&self) -> u64 {
        self.n
    }

    /// Absolute rank uncertainty `E`.
    pub fn uncertainty(&self) -> u64 {
        self.uncertainty
    }

    /// Number of stored dyadic nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the digest holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Wire size in 32-bit words (2 words per node: packed node id and
    /// count — the same unit [`GkSummary`](crate::summary::GkSummary)
    /// reports at 3 words per tuple).
    pub fn wire_words(&self) -> usize {
        self.nodes.len() * 2
    }

    /// The value range `[lo, hi]` covered by node `(depth, prefix)`.
    fn span(&self, depth: u32, prefix: u64) -> (u64, u64) {
        let width = 1u64 << (self.bits - depth);
        let lo = prefix * width;
        (lo, lo + width - 1)
    }

    /// Check the structural invariant: counts sum to `n`, prefixes are
    /// in range, and the maximum root-to-node *path lift* — the total
    /// count parked on internal (non-leaf) nodes along any root path,
    /// which is exactly the rank slack a query can see — is at most the
    /// claimed uncertainty `E`.
    pub fn check_invariant(&self) -> Result<(), String> {
        let total: u64 = self.nodes.values().sum();
        if total != self.n {
            return Err(format!("Σcounts = {total} != n = {}", self.n));
        }
        for (&(depth, prefix), &c) in &self.nodes {
            if depth > self.bits {
                return Err(format!("node depth {depth} exceeds bits {}", self.bits));
            }
            if prefix >> depth != 0 {
                return Err(format!("prefix {prefix} out of range at depth {depth}"));
            }
            if c == 0 {
                return Err(format!("zero count stored at ({depth}, {prefix})"));
            }
        }
        for &(depth, prefix) in self.nodes.keys() {
            let mut lift = 0u64;
            for d in 0..=depth.min(self.bits - 1) {
                if let Some(&c) = self.nodes.get(&(d, prefix >> (depth - d))) {
                    lift += c;
                }
            }
            if lift > self.uncertainty {
                return Err(format!("path lift {lift} exceeds E = {}", self.uncertainty));
            }
        }
        Ok(())
    }

    /// Combine with another digest over the same domain (the union of
    /// the two populations): node-wise count addition. Absolute
    /// uncertainties add, exactly as for GK — so the precision
    /// gradient's per-level error *differences* pay for compression on
    /// either summary family.
    pub fn combine(&self, other: &Self) -> Self {
        assert_eq!(
            self.bits, other.bits,
            "cannot combine q-digests over different domains"
        );
        let (big, small) = if self.nodes.len() >= other.nodes.len() {
            (self, other)
        } else {
            (other, self)
        };
        let mut nodes = big.nodes.clone();
        for (&k, &c) in &small.nodes {
            *nodes.entry(k).or_insert(0) += c;
        }
        QDigest {
            bits: self.bits,
            nodes,
            n: self.n + other.n,
            uncertainty: self.uncertainty + other.uncertainty,
        }
    }

    /// Subtract a digest that was previously combined in: the exact
    /// inverse of [`combine`](Self::combine), node-wise. Returns `None`
    /// if `evicted` is not contained in `self` (different domain, or a
    /// count/uncertainty would go negative) — the caller should re-fold
    /// from scratch in that case. This is what gives windowed q-digest
    /// panes an O(1) eviction where GK panes must re-fold.
    pub fn retract(&self, evicted: &Self) -> Option<Self> {
        if evicted.bits != self.bits || evicted.n > self.n || evicted.uncertainty > self.uncertainty
        {
            return None;
        }
        let mut nodes = self.nodes.clone();
        for (k, &c) in &evicted.nodes {
            let mine = nodes.get_mut(k)?;
            if *mine < c {
                return None;
            }
            *mine -= c;
            if *mine == 0 {
                nodes.remove(k);
            }
        }
        Some(QDigest {
            bits: self.bits,
            nodes,
            n: self.n - evicted.n,
            uncertainty: self.uncertainty - evicted.uncertainty,
        })
    }

    /// Reduce (compress) the digest toward the budget: repeatedly merge
    /// the cheapest pair of span-adjacent nodes into their **least
    /// common dyadic ancestor** while the digest's exact worst-case
    /// path lift stays within `e_target`. A no-op if `e_target ≤ E` or
    /// no merge fits the budget.
    ///
    /// Merging straight into the LCA matters on sparse domains: sensor
    /// readings rarely occupy sibling leaves, so a level-by-level
    /// sibling merge would spend the whole budget lifting singletons
    /// through empty levels without ever removing a node. Jumping to
    /// the join point charges each merge once (the combined count lands
    /// on one interior node) and always removes a node. After every
    /// merge the uncertainty is re-derived as the *exact* maximum
    /// root-path interior mass — the quantity rank queries actually
    /// see — so small budgets buy real compression and the advertised
    /// `E` is tight rather than a telescoped upper bound.
    pub fn reduce(&mut self, e_target: u64) {
        if e_target <= self.uncertainty || self.nodes.len() <= 1 {
            return;
        }
        loop {
            // Nodes in value-span order (shallow container before its
            // descendants at equal `lo`): candidate merges are adjacent
            // pairs in this order.
            let entries: Vec<((u32, u64), u64)> = {
                let mut v: Vec<_> = self.nodes.iter().map(|(&k, &c)| (k, c)).collect();
                v.sort_unstable_by_key(|&((d, p), _)| (p << (self.bits - d), d));
                v
            };
            // Cheapest pair first (smallest combined count, then the
            // deepest join — prefer local merges), deterministically.
            let mut best: Option<(u64, std::cmp::Reverse<u32>, usize)> = None;
            for (i, w) in entries.windows(2).enumerate() {
                let (((d1, p1), c1), ((d2, p2), c2)) = (w[0], w[1]);
                let dm = d1.min(d2);
                let diff = (p1 >> (d1 - dm)) ^ (p2 >> (d2 - dm));
                let lca = dm - (u64::BITS - diff.leading_zeros());
                let key = (c1 + c2, std::cmp::Reverse(lca), i);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
            let Some((_, std::cmp::Reverse(lca), i)) = best else {
                break;
            };
            let (((d1, p1), c1), ((d2, p2), c2)) = (entries[i], entries[i + 1]);
            let mut trial = self.nodes.clone();
            trial.remove(&(d1, p1));
            trial.remove(&(d2, p2));
            *trial.entry((lca, p1 >> (d1 - lca))).or_insert(0) += c1 + c2;
            let lift = Self::max_path_lift(&trial, self.bits);
            if lift > e_target {
                break;
            }
            self.nodes = trial;
            self.uncertainty = lift;
        }
    }

    /// The exact worst-case root-path interior mass of a node set: the
    /// largest total count parked on internal (non-leaf) nodes along
    /// any root path — precisely the rank slack a query can see.
    fn max_path_lift(nodes: &BTreeMap<(u32, u64), u64>, bits: u32) -> u64 {
        nodes
            .keys()
            .map(|&(depth, prefix)| {
                (0..=depth.min(bits - 1))
                    .filter_map(|d| nodes.get(&(d, prefix >> (depth - d))))
                    .sum()
            })
            .max()
            .unwrap_or(0)
    }

    /// Estimate the rank of `value` (number of items ≤ value), with
    /// absolute error at most `E`: nodes entirely at or below `value`
    /// count in full, nodes straddling it count half — the straddlers
    /// all sit on one root path, so their total is bounded by the path
    /// lift, i.e. by `E`.
    pub fn rank(&self, value: u64) -> u64 {
        let mut full = 0u64;
        let mut straddle = 0u64;
        for (&(depth, prefix), &c) in &self.nodes {
            let (lo, hi) = self.span(depth, prefix);
            if hi <= value {
                full += c;
            } else if lo <= value {
                straddle += c;
            }
        }
        full + straddle / 2
    }

    /// The φ-quantile (0 ≤ φ ≤ 1): walk nodes in post-order (ascending
    /// range end, smaller ranges first) accumulating counts, and report
    /// the range end where the accumulation crosses `⌈φ·n⌉` — a value
    /// whose rank is within the digest's uncertainty of the target.
    /// Monotone in φ by construction. `None` on an empty digest.
    pub fn quantile(&self, phi: f64) -> Option<u64> {
        if self.n == 0 {
            return None;
        }
        let target = (phi.clamp(0.0, 1.0) * self.n as f64).ceil() as u64;
        let mut order: Vec<(u64, u64, u64)> = self
            .nodes
            .iter()
            .map(|(&(d, p), &c)| {
                let (lo, hi) = self.span(d, p);
                (hi, hi - lo, c)
            })
            .collect();
        order.sort_unstable();
        let mut acc = 0u64;
        for &(hi, _, c) in &order {
            acc += c;
            if acc >= target {
                return Some(hi);
            }
        }
        order.last().map(|&(hi, _, _)| hi)
    }

    /// Estimated frequency of the exact value `u`: `rank(u) − rank(u−1)`,
    /// within `2E` of the true frequency (the same derivation as
    /// [`GkSummary::frequency`](crate::summary::GkSummary::frequency)).
    pub fn frequency(&self, u: u64) -> u64 {
        let hi = self.rank(u);
        let lo = if u == 0 { 0 } else { self.rank(u - 1) };
        hi.saturating_sub(lo)
    }

    /// The stored dyadic nodes `((depth, prefix), count)` — exposed for
    /// tests and diagnostics.
    pub fn nodes(&self) -> impl Iterator<Item = ((u32, u64), u64)> + '_ {
        self.nodes.iter().map(|(&k, &c)| (k, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn true_rank(values: &[u64], v: u64) -> u64 {
        values.iter().filter(|&&x| x <= v).count() as u64
    }

    #[test]
    fn exact_digest_ranks() {
        let vals = vec![5, 1, 9, 1, 7];
        let d = QDigest::exact(&vals, 4);
        d.check_invariant().unwrap();
        assert_eq!(d.population(), 5);
        assert_eq!(d.uncertainty(), 0);
        for v in 0..16 {
            assert_eq!(d.rank(v), true_rank(&vals, v), "rank({v})");
        }
        assert_eq!(d.frequency(1), 2);
        assert_eq!(d.frequency(9), 1);
        assert_eq!(d.frequency(4), 0);
    }

    #[test]
    fn empty_digest() {
        let d = QDigest::empty(8);
        assert!(d.is_empty());
        assert_eq!(d.quantile(0.5), None);
        assert_eq!(d.rank(10), 0);
        d.check_invariant().unwrap();
    }

    #[test]
    fn out_of_domain_values_saturate() {
        let d = QDigest::exact(&[1000, 3], 4);
        assert_eq!(d.population(), 2);
        assert_eq!(d.rank(15), 2);
        assert_eq!(d.rank(3), 1);
    }

    #[test]
    fn combine_is_exact_nodewise_addition() {
        let a = QDigest::exact(&[1, 3, 5], 4);
        let b = QDigest::exact(&[2, 4, 5], 4);
        let c = a.combine(&b);
        c.check_invariant().unwrap();
        assert_eq!(c.population(), 6);
        assert_eq!(c.uncertainty(), 0);
        assert_eq!(c, b.combine(&a), "representation-level commutativity");
        for v in 0..16 {
            assert_eq!(c.rank(v), true_rank(&[1, 3, 5, 2, 4, 5], v));
        }
    }

    #[test]
    fn reduce_shrinks_and_stays_valid() {
        let vals: Vec<u64> = (0..1000).collect();
        let mut d = QDigest::exact(&vals, 10);
        let before = d.len();
        d.reduce(50);
        d.check_invariant().unwrap();
        assert!(d.len() < before / 2, "{} nodes after reduce", d.len());
        assert!(d.uncertainty() <= 50);
        for &v in &[0u64, 100, 499, 900, 999] {
            let err = d.rank(v).abs_diff(true_rank(&vals, v));
            assert!(err <= d.uncertainty(), "rank({v}) err {err}");
        }
    }

    #[test]
    fn retract_inverts_combine() {
        let a = QDigest::exact(&[1, 5, 9, 200], 10);
        let mut b = QDigest::exact(&(0..300).collect::<Vec<_>>(), 10);
        b.reduce(30);
        let c = a.combine(&b);
        assert_eq!(c.retract(&b).unwrap(), a);
        assert_eq!(c.retract(&a).unwrap(), b);
        // Retracting something never combined in fails cleanly.
        let stranger = QDigest::exact(&[1, 1, 1, 1, 1], 10);
        assert!(c.retract(&stranger).is_none());
        // Domain mismatch fails cleanly.
        assert!(c.retract(&QDigest::exact(&[1], 8)).is_none());
    }

    #[test]
    fn retract_matches_refold_over_a_window() {
        // Fold 6 panes, retract the oldest two: must equal folding the
        // remaining four from scratch, bit for bit.
        let panes: Vec<QDigest> = (0..6)
            .map(|i| {
                let vals: Vec<u64> = (i * 37..i * 37 + 40).collect();
                let mut d = QDigest::exact(&vals, 9);
                d.reduce(4 + i);
                d
            })
            .collect();
        let mut acc = panes[0].clone();
        for p in &panes[1..] {
            acc = acc.combine(p);
        }
        let acc = acc.retract(&panes[0]).unwrap();
        let acc = acc.retract(&panes[1]).unwrap();
        let mut refold = panes[2].clone();
        for p in &panes[3..] {
            refold = refold.combine(p);
        }
        assert_eq!(acc, refold);
    }

    #[test]
    fn quantile_error_bounded() {
        let vals: Vec<u64> = (0..2000).collect();
        let mut d = QDigest::exact(&vals, 11);
        d.reduce(100);
        let e = d.uncertainty();
        for &phi in &[0.1, 0.25, 0.5, 0.75, 0.9] {
            let q = d.quantile(phi).unwrap();
            let target = (phi * 2000.0).ceil() as u64;
            // q is valid iff rank(q) reaches the target and rank just
            // below q does not overshoot it by more than the slack.
            assert!(
                true_rank(&vals, q) + e >= target,
                "phi {phi}: rank({q}) too low"
            );
            assert!(
                true_rank(&vals, q.saturating_sub(1)) <= target + 2 * e,
                "phi {phi}: rank below {q} too high"
            );
        }
    }

    #[test]
    fn quantile_monotone_in_phi() {
        let vals: Vec<u64> = (0..997).map(|i| (i * 31) % 2048).collect();
        let mut d = QDigest::exact(&vals, 11);
        d.reduce(60);
        let mut prev = 0u64;
        for i in 0..=20 {
            let q = d.quantile(i as f64 / 20.0).unwrap();
            assert!(q >= prev, "quantile not monotone at step {i}");
            prev = q;
        }
    }

    proptest! {
        #[test]
        fn prop_rank_error_within_uncertainty(
            vals in proptest::collection::vec(0u64..4096, 10..400),
            e in 1u64..80,
        ) {
            let mut d = QDigest::exact(&vals, 12);
            d.reduce(e);
            prop_assert!(d.check_invariant().is_ok());
            for &probe in vals.iter().take(20) {
                let err = d.rank(probe).abs_diff(true_rank(&vals, probe));
                prop_assert!(err <= d.uncertainty(), "rank err {err} > E {}", d.uncertainty());
            }
        }

        #[test]
        fn prop_combine_retract_roundtrip(
            a in proptest::collection::vec(0u64..512, 1..120),
            b in proptest::collection::vec(0u64..512, 1..120),
            ea in 0u64..40,
            eb in 0u64..40,
        ) {
            let mut da = QDigest::exact(&a, 9);
            da.reduce(ea);
            let mut db = QDigest::exact(&b, 9);
            db.reduce(eb);
            let c = da.combine(&db);
            prop_assert!(c.check_invariant().is_ok());
            prop_assert_eq!(c.retract(&db).unwrap(), da.clone());
            prop_assert_eq!(c.retract(&da).unwrap(), db);
        }
    }
}
