//! The Greenwald–Khanna summary with combine/reduce operations.

/// One summary tuple: `value` occurs with minimum rank `rmin(i) = Σ_{j≤i}
/// g_j` and maximum rank `rmin(i) + delta`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Tuple {
    /// The sample value.
    pub value: u64,
    /// Rank increment over the previous tuple.
    pub g: u64,
    /// Rank uncertainty of this tuple.
    pub delta: u64,
}

/// A Greenwald–Khanna ε-approximate quantile summary.
///
/// `E` (`uncertainty()`) is the summary's **absolute** rank uncertainty:
/// any rank query answered from the summary is within `E` of the true
/// rank. An exact summary has `E = 0`; `combine` adds uncertainties;
/// `reduce(E_target)` compresses, trading size for uncertainty.
/// ```
/// use td_quantiles::summary::GkSummary;
///
/// // Two sensors summarize locally, a parent combines and compresses.
/// let a = GkSummary::exact(&(0..500).collect::<Vec<_>>());
/// let b = GkSummary::exact(&(500..1000).collect::<Vec<_>>());
/// let mut merged = a.combine(&b);
/// merged.reduce(50); // rank error budget E = 50
/// let median = merged.quantile(0.5).unwrap();
/// // The query is within E in rank and the lookup adds up to E of
/// // slack, so on this dense 0..1000 domain the reported value is
/// // within 2·E of the true median — derived, not a magic constant.
/// let tol = 2 * merged.uncertainty() as i64;
/// assert!((median as i64 - 500).abs() <= tol, "median {median}");
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GkSummary {
    tuples: Vec<Tuple>,
    n: u64,
    uncertainty: u64,
}

impl GkSummary {
    /// An empty summary.
    pub fn empty() -> Self {
        GkSummary {
            tuples: Vec::new(),
            n: 0,
            uncertainty: 0,
        }
    }

    /// Exact summary of a collection: one tuple **per observation**
    /// (`g = 1`, `delta = 0`), duplicates included. Keeping copies as
    /// separate tuples (rather than collapsing into `g`) is what makes
    /// `combine` of exact summaries exact; `reduce` collapses them the
    /// moment a nonzero error budget is available.
    pub fn exact(values: &[u64]) -> Self {
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        let tuples = sorted
            .into_iter()
            .map(|v| Tuple {
                value: v,
                g: 1,
                delta: 0,
            })
            .collect();
        GkSummary {
            tuples,
            n: values.len() as u64,
            uncertainty: 0,
        }
    }

    /// Number of items summarized.
    pub fn population(&self) -> u64 {
        self.n
    }

    /// Absolute rank uncertainty `E`.
    pub fn uncertainty(&self) -> u64 {
        self.uncertainty
    }

    /// Number of stored tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the summary holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The stored tuples, ascending by value.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Wire size in 32-bit words (3 words per tuple: value, g, delta —
    /// the unit Figure 8 plots for the Quantiles-based baseline).
    pub fn wire_words(&self) -> usize {
        self.tuples.len() * 3
    }

    /// Check the structural invariant: `Σ g = n` and per-tuple rank bounds
    /// consistent with the claimed uncertainty (`g + delta − 1 ≤ 2E` for
    /// interior tuples of a non-exact summary).
    pub fn check_invariant(&self) -> Result<(), String> {
        let total: u64 = self.tuples.iter().map(|t| t.g).sum();
        if total != self.n {
            return Err(format!("Σg = {total} != n = {}", self.n));
        }
        for (i, t) in self.tuples.iter().enumerate() {
            if t.g == 0 && i > 0 {
                return Err(format!("tuple {i} has g = 0"));
            }
            if t.delta > 2 * self.uncertainty {
                return Err(format!(
                    "tuple {i} delta {} exceeds 2E = {}",
                    t.delta,
                    2 * self.uncertainty
                ));
            }
        }
        Ok(())
    }

    /// Combine with another summary (the union of the two populations).
    /// Absolute uncertainties add: `E = E_a + E_b` (\[8\] §3; this is what
    /// makes the precision gradient's per-level error *differences* pay
    /// for compression).
    pub fn combine(&self, other: &Self) -> Self {
        if self.is_empty() {
            return other.clone();
        }
        if other.is_empty() {
            return self.clone();
        }
        let a = &self.tuples;
        let b = &other.tuples;
        let mut out: Vec<Tuple> = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() || j < b.len() {
            // Take the smaller next value; ties take from `a` first (any
            // deterministic rule works).
            let from_a = match (a.get(i), b.get(j)) {
                (Some(x), Some(y)) => x.value <= y.value,
                (Some(_), None) => true,
                _ => false,
            };
            let t = if from_a {
                let x = a[i];
                i += 1;
                // Uncertainty contributed by the *other* summary around
                // this value: the next-not-yet-consumed tuple of b.
                let extra = match b.get(j) {
                    Some(y) => y.g + y.delta - 1,
                    None => 0,
                };
                Tuple {
                    value: x.value,
                    g: x.g,
                    delta: x.delta + extra,
                }
            } else {
                let y = b[j];
                j += 1;
                let extra = match a.get(i) {
                    Some(x) => x.g + x.delta - 1,
                    None => 0,
                };
                Tuple {
                    value: y.value,
                    g: y.g,
                    delta: y.delta + extra,
                }
            };
            out.push(t);
        }
        GkSummary {
            tuples: out,
            n: self.n + other.n,
            uncertainty: self.uncertainty + other.uncertainty,
        }
    }

    /// Reduce (compress) the summary so that its size is bounded by
    /// `O(n / E_target)` tuples, raising the uncertainty to `E_target`.
    /// A no-op if `E_target <= E` or the summary is already tiny.
    pub fn reduce(&mut self, e_target: u64) {
        if e_target <= self.uncertainty || self.tuples.len() <= 2 {
            return;
        }
        let cap = 2 * e_target;
        let mut out: Vec<Tuple> = Vec::with_capacity(self.tuples.len() / 2 + 2);
        // Keep the first tuple verbatim: merging drops the *earlier*
        // value, and losing the first tuple would lose the minimum.
        let mut iter = self.tuples.iter();
        out.push(*iter.next().expect("non-empty"));
        let mut pending = match iter.next() {
            Some(&t) => t,
            None => {
                self.uncertainty = e_target;
                return;
            }
        };
        for &t in iter {
            // Merging `pending` into `t` discards pending's value; the
            // merged tuple covers both with g summed and t's delta.
            let merged_g = pending.g + t.g;
            if merged_g + t.delta <= cap {
                pending = Tuple {
                    value: t.value,
                    g: merged_g,
                    delta: t.delta,
                };
            } else {
                out.push(pending);
                pending = t;
            }
        }
        out.push(pending);
        self.tuples = out;
        self.uncertainty = e_target;
    }

    /// `rmin` of tuple `i`.
    fn rmin(&self, i: usize) -> u64 {
        self.tuples[..=i].iter().map(|t| t.g).sum()
    }

    /// Estimate the rank of `value` (number of items ≤ value), with
    /// absolute error at most `E`.
    ///
    /// For `value` between stored tuples `i` and `i+1`, the true rank lies
    /// in `[rmin_i, rmax_{i+1} − 1]`: at least the elements up to the
    /// stored copy `i` are ≤ `value`, and everything from the stored copy
    /// `i+1` onward is > `value`. The estimate is the interval midpoint;
    /// the reduce invariant `g + Δ ≤ 2E` bounds the interval width by
    /// `2E − 1`.
    pub fn rank(&self, value: u64) -> u64 {
        if self.tuples.is_empty() {
            return 0;
        }
        let mut rmin_acc = 0u64;
        let mut next: Option<&Tuple> = None;
        for t in &self.tuples {
            if t.value > value {
                next = Some(t);
                break;
            }
            rmin_acc += t.g;
        }
        match next {
            // value >= max stored value: everything is ≤ value.
            None => self.n,
            Some(succ) => {
                let upper = rmin_acc + succ.g + succ.delta - 1;
                rmin_acc + (upper - rmin_acc) / 2
            }
        }
    }

    /// The φ-quantile (0 ≤ φ ≤ 1): a value whose rank is within `E` of
    /// `φ·n`. Returns `None` on an empty summary.
    pub fn quantile(&self, phi: f64) -> Option<u64> {
        if self.tuples.is_empty() {
            return None;
        }
        let target = (phi.clamp(0.0, 1.0) * self.n as f64).ceil() as u64;
        let mut rmin_acc = 0u64;
        for (i, t) in self.tuples.iter().enumerate() {
            rmin_acc += t.g;
            let rmax = rmin_acc + t.delta;
            if rmax + self.uncertainty >= target {
                let _ = i;
                return Some(t.value);
            }
        }
        self.tuples.last().map(|t| t.value)
    }

    /// Estimated frequency of the exact value `u`: `rank(u) − rank(u−1)`,
    /// within `2E` of the true frequency. This is how the Quantiles-based
    /// frequent-items baseline extracts counts (§7.4.2 footnote 5).
    pub fn frequency(&self, u: u64) -> u64 {
        let hi = self.rank(u);
        let lo = if u == 0 { 0 } else { self.rank(u - 1) };
        hi.saturating_sub(lo)
    }

    /// Distinct values currently represented (candidates for frequent
    /// items — any value with true frequency > 2E must still be present).
    pub fn values(&self) -> impl Iterator<Item = u64> + '_ {
        self.tuples.iter().map(|t| t.value)
    }

    /// True rank bounds `(rmin, rmax)` of tuple `i` — exposed for tests.
    pub fn rank_bounds(&self, i: usize) -> (u64, u64) {
        let rmin = self.rmin(i);
        (rmin, rmin + self.tuples[i].delta)
    }
}

/// The combine/reduce surface shared by the quantile summary families
/// ([`GkSummary`] and [`crate::qdigest::QDigest`]), written
/// prototype-style: constructors go through a template value carrying
/// the summary's configuration (domain bits for q-digest, nothing for
/// GK), so protocol and law-check code stays generic over the family.
///
/// Every implementation upholds the same contract `GkSummary` documents:
/// `uncertainty()` is an **absolute** rank error bound `E`, `combine`
/// adds uncertainties, `reduce(E)` compresses without ever exceeding the
/// budget, and `rank`/`quantile` answers are within `E` of the truth.
pub trait QuantileSummary: Clone + PartialEq + Send + Sync + std::fmt::Debug + 'static {
    /// An exact summary of `values` with this summary's configuration
    /// (an empty template works: `template.exact_from(&[])` is empty).
    fn exact_from(&self, values: &[u64]) -> Self;

    /// Union of the two populations; absolute uncertainties add.
    fn combine(&self, other: &Self) -> Self;

    /// Compress to rank-error budget `e_target` (no-op if the summary
    /// is already within budget).
    fn reduce(&mut self, e_target: u64);

    /// Number of items summarized.
    fn population(&self) -> u64;

    /// Absolute rank uncertainty `E`.
    fn uncertainty(&self) -> u64;

    /// Estimated rank of `value`, within `E` of the true rank.
    fn rank(&self, value: u64) -> u64;

    /// The φ-quantile; `None` on an empty summary.
    fn quantile(&self, phi: f64) -> Option<u64>;

    /// Estimated frequency of the exact value `u`, within `2E`.
    fn frequency(&self, u: u64) -> u64;

    /// Wire size in 32-bit words.
    fn wire_words(&self) -> usize;

    /// Check the family's structural invariant against the claimed `E`.
    fn check_invariant(&self) -> Result<(), String>;

    /// Short family name for labels and CSV cells ("gk", "qdigest").
    fn kind_name(&self) -> &'static str;
}

impl QuantileSummary for GkSummary {
    fn exact_from(&self, values: &[u64]) -> Self {
        GkSummary::exact(values)
    }

    fn combine(&self, other: &Self) -> Self {
        GkSummary::combine(self, other)
    }

    fn reduce(&mut self, e_target: u64) {
        GkSummary::reduce(self, e_target)
    }

    fn population(&self) -> u64 {
        GkSummary::population(self)
    }

    fn uncertainty(&self) -> u64 {
        GkSummary::uncertainty(self)
    }

    fn rank(&self, value: u64) -> u64 {
        GkSummary::rank(self, value)
    }

    fn quantile(&self, phi: f64) -> Option<u64> {
        GkSummary::quantile(self, phi)
    }

    fn frequency(&self, u: u64) -> u64 {
        GkSummary::frequency(self, u)
    }

    fn wire_words(&self) -> usize {
        GkSummary::wire_words(self)
    }

    fn check_invariant(&self) -> Result<(), String> {
        GkSummary::check_invariant(self)
    }

    fn kind_name(&self) -> &'static str {
        "gk"
    }
}

impl QuantileSummary for crate::qdigest::QDigest {
    fn exact_from(&self, values: &[u64]) -> Self {
        crate::qdigest::QDigest::exact(values, self.bits())
    }

    fn combine(&self, other: &Self) -> Self {
        crate::qdigest::QDigest::combine(self, other)
    }

    fn reduce(&mut self, e_target: u64) {
        crate::qdigest::QDigest::reduce(self, e_target)
    }

    fn population(&self) -> u64 {
        crate::qdigest::QDigest::population(self)
    }

    fn uncertainty(&self) -> u64 {
        crate::qdigest::QDigest::uncertainty(self)
    }

    fn rank(&self, value: u64) -> u64 {
        crate::qdigest::QDigest::rank(self, value)
    }

    fn quantile(&self, phi: f64) -> Option<u64> {
        crate::qdigest::QDigest::quantile(self, phi)
    }

    fn frequency(&self, u: u64) -> u64 {
        crate::qdigest::QDigest::frequency(self, u)
    }

    fn wire_words(&self) -> usize {
        crate::qdigest::QDigest::wire_words(self)
    }

    fn check_invariant(&self) -> Result<(), String> {
        crate::qdigest::QDigest::check_invariant(self)
    }

    fn kind_name(&self) -> &'static str {
        "qdigest"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    fn true_rank(values: &[u64], v: u64) -> u64 {
        values.iter().filter(|&&x| x <= v).count() as u64
    }

    #[test]
    fn exact_summary_ranks() {
        let vals = vec![5, 1, 9, 1, 7];
        let s = GkSummary::exact(&vals);
        s.check_invariant().unwrap();
        assert_eq!(s.population(), 5);
        assert_eq!(s.uncertainty(), 0);
        assert_eq!(s.rank(0), 0);
        assert_eq!(s.rank(1), 2);
        assert_eq!(s.rank(6), 3);
        assert_eq!(s.rank(100), 5);
        assert_eq!(s.frequency(1), 2);
        assert_eq!(s.frequency(9), 1);
        assert_eq!(s.frequency(4), 0);
    }

    #[test]
    fn empty_summary() {
        let s = GkSummary::empty();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.rank(10), 0);
        s.check_invariant().unwrap();
    }

    #[test]
    fn combine_exact_is_exact() {
        let a = GkSummary::exact(&[1, 3, 5]);
        let b = GkSummary::exact(&[2, 4, 6]);
        let c = a.combine(&b);
        c.check_invariant().unwrap();
        assert_eq!(c.population(), 6);
        assert_eq!(c.uncertainty(), 0);
        for v in 1..=6 {
            assert_eq!(c.rank(v), v);
        }
    }

    #[test]
    fn combine_uncertainties_add() {
        let mut a = GkSummary::exact(&(0..100).collect::<Vec<_>>());
        a.reduce(5);
        let mut b = GkSummary::exact(&(100..200).collect::<Vec<_>>());
        b.reduce(7);
        let c = a.combine(&b);
        assert_eq!(c.uncertainty(), 12);
        c.check_invariant().unwrap();
    }

    #[test]
    fn reduce_shrinks_and_stays_valid() {
        let vals: Vec<u64> = (0..1000).collect();
        let mut s = GkSummary::exact(&vals);
        s.reduce(50); // E = 50 -> ~ n/(2E) = 10 tuples
        s.check_invariant().unwrap();
        assert!(s.len() <= 22, "{} tuples after reduce", s.len());
        for &v in &[0u64, 100, 499, 900, 999] {
            let err = (s.rank(v) as i64 - true_rank(&vals, v) as i64).abs();
            assert!(err <= 50, "rank({v}) err {err}");
        }
    }

    #[test]
    fn reduce_preserves_extremes() {
        let vals: Vec<u64> = (0..500).map(|i| i * 2).collect();
        let mut s = GkSummary::exact(&vals);
        s.reduce(20);
        assert_eq!(s.quantile(0.0), Some(0));
        let max = s.quantile(1.0).unwrap();
        assert!(max >= 900, "max quantile {max}");
    }

    #[test]
    fn quantile_error_bounded() {
        let vals: Vec<u64> = (0..2000).collect();
        let mut s = GkSummary::exact(&vals);
        s.reduce(100);
        for &phi in &[0.1, 0.25, 0.5, 0.75, 0.9] {
            let q = s.quantile(phi).unwrap();
            let true_q = (phi * 2000.0) as u64;
            let rank_err = (q as i64 - true_q as i64).abs();
            assert!(rank_err <= 220, "phi {phi}: got {q} want ~{true_q}");
        }
    }

    #[test]
    fn tree_of_combines_matches_error_budget() {
        // 8 leaves, each 100 values, combined pairwise then reduced at
        // each level: uncertainty must track the reduce targets.
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut all: Vec<u64> = (0..800).collect();
        all.shuffle(&mut rng);
        let mut level: Vec<GkSummary> = all.chunks(100).map(GkSummary::exact).collect();
        let mut e_target = 4u64;
        while level.len() > 1 {
            let mut next = Vec::new();
            for pair in level.chunks(2) {
                let mut c = if pair.len() == 2 {
                    pair[0].combine(&pair[1])
                } else {
                    pair[0].clone()
                };
                c.reduce(e_target);
                c.check_invariant().unwrap();
                assert!(c.uncertainty() <= e_target);
                next.push(c);
            }
            level = next;
            e_target *= 2;
        }
        let root = &level[0];
        assert_eq!(root.population(), 800);
        // Final uncertainty 16; check a few ranks within 2x the budget.
        for &v in &[100u64, 400, 700] {
            let err = (root.rank(v) as i64 - (v as i64 + 1)).abs();
            assert!(
                err <= 2 * root.uncertainty() as i64 + 1,
                "rank({v}) err {err}"
            );
        }
    }

    #[test]
    fn frequency_of_heavy_hitter_survives_reduce() {
        // 500 copies of 42 among 1000 other items; E = 50 must keep the
        // estimate within 2E = 100.
        let mut vals: Vec<u64> = (0..1000).collect();
        vals.extend(std::iter::repeat_n(42, 500));
        let mut s = GkSummary::exact(&vals);
        s.reduce(50);
        let f = s.frequency(42);
        assert!(
            (f as i64 - 501).abs() <= 100,
            "frequency estimate {f} for true 501"
        );
    }

    proptest! {
        #[test]
        fn prop_rank_error_within_uncertainty(
            vals in proptest::collection::vec(0u64..10_000, 10..400),
            e in 1u64..50,
        ) {
            let mut s = GkSummary::exact(&vals);
            s.reduce(e);
            prop_assert!(s.check_invariant().is_ok());
            for &probe in vals.iter().take(20) {
                let err = (s.rank(probe) as i64 - true_rank(&vals, probe) as i64).abs();
                prop_assert!(err <= e as i64, "rank err {err} > E {e}");
            }
        }

        #[test]
        fn prop_combine_populations_add(
            a in proptest::collection::vec(0u64..1000, 0..100),
            b in proptest::collection::vec(0u64..1000, 0..100),
        ) {
            let sa = GkSummary::exact(&a);
            let sb = GkSummary::exact(&b);
            let c = sa.combine(&sb);
            prop_assert_eq!(c.population(), (a.len() + b.len()) as u64);
            prop_assert!(c.check_invariant().is_ok());
        }

        #[test]
        fn prop_combine_exact_ranks(
            a in proptest::collection::vec(0u64..200, 1..80),
            b in proptest::collection::vec(0u64..200, 1..80),
        ) {
            let c = GkSummary::exact(&a).combine(&GkSummary::exact(&b));
            let mut all = a.clone();
            all.extend(&b);
            for probe in (0..200).step_by(17) {
                prop_assert_eq!(c.rank(probe), true_rank(&all, probe));
            }
        }
    }
}
