//! Precision gradients (§6.1): how the error budget ε is spread across
//! tree heights.
//!
//! A node of height `k` compresses its outgoing partial result to error
//! `ε(k)`; correctness needs `ε(1) ≤ ε(2) ≤ … ≤ ε(h) ≤ ε`, and the
//! communication cost of height-`k` nodes is governed by the *difference*
//! `ε(k) − ε(k−1)` (at most `1/(ε(k)−ε(k−1))` counters cross each link —
//! Algorithm 1 Step 3, and the same for GK summaries via `reduce`). The
//! gradients here are shared by the frequent-items algorithms and the
//! §6.1.4 quantiles extension:
//!
//! * [`MinTotalLoad`] — the paper's new gradient (Lemma 3):
//!   `ε(i) = ε·(1−t)(1+t+…+t^{i−1}) = ε·(1−t^i)` with `t = 1/√d` for a
//!   d-dominating tree; total communication ≤ `(1 + 2/(√d−1))·m/ε`.
//! * [`MinMaxLoad`] — the prior art \[13\]: `ε(i) = ε·i/h` for a tree of
//!   height `h`, minimizing the *maximum* load (≤ `h/ε` per link).
//! * [`Hybrid`] — §6.1.4: the average of the two, within a factor 2 of
//!   both optima simultaneously (each per-level difference is at least
//!   half of each component's difference).
//! * [`Uniform`] — naive baseline: the whole budget at every level
//!   (pruning only with the leaf threshold; maximal communication).

/// A precision gradient: ε as a function of node height (leaves = 1).
pub trait PrecisionGradient: Sync {
    /// The error budget for partial results sent by height-`i` nodes.
    fn eps_at(&self, height: u32) -> f64;

    /// The user-facing error tolerance ε (an upper bound on every
    /// `eps_at`).
    fn final_eps(&self) -> f64;

    /// The per-level budget difference `ε(i) − ε(i−1)` (with
    /// `ε(0) = 0`), which bounds communication at height `i`.
    fn diff_at(&self, height: u32) -> f64 {
        if height <= 1 {
            self.eps_at(1)
        } else {
            self.eps_at(height) - self.eps_at(height - 1)
        }
    }
}

/// The paper's Min Total-load gradient (Lemma 3).
#[derive(Clone, Copy, Debug)]
pub struct MinTotalLoad {
    eps: f64,
    /// `t = 1/√d` where `d` is the tree's domination factor.
    t: f64,
}

impl MinTotalLoad {
    /// Gradient for error `eps` on a `d`-dominating tree.
    ///
    /// # Panics
    /// Panics unless `eps > 0` and `d > 1` (Lemma 3 requires `d > 1`).
    pub fn new(eps: f64, d: f64) -> Self {
        assert!(eps > 0.0, "eps must be positive");
        assert!(d > 1.0, "Min Total-load requires a domination factor > 1");
        MinTotalLoad {
            eps,
            t: 1.0 / d.sqrt(),
        }
    }

    /// Lemma 3's bound on total communication for `m` nodes:
    /// `(1 + 2/(√d−1)) · m/ε` words.
    pub fn total_load_bound(&self, m: usize) -> f64 {
        let sqrt_d = 1.0 / self.t;
        (1.0 + 2.0 / (sqrt_d - 1.0)) * m as f64 / self.eps
    }
}

impl PrecisionGradient for MinTotalLoad {
    fn eps_at(&self, height: u32) -> f64 {
        // ε·(1−t)(1 + t + … + t^{i−1}) = ε·(1 − t^i)
        self.eps * (1.0 - self.t.powi(height as i32))
    }

    fn final_eps(&self) -> f64 {
        self.eps
    }
}

/// The Min Max-load gradient of \[13\]: linear in height.
#[derive(Clone, Copy, Debug)]
pub struct MinMaxLoad {
    eps: f64,
    tree_height: u32,
}

impl MinMaxLoad {
    /// Gradient for error `eps` on a tree of height `tree_height`.
    ///
    /// # Panics
    /// Panics unless `eps > 0` and `tree_height >= 1`.
    pub fn new(eps: f64, tree_height: u32) -> Self {
        assert!(eps > 0.0);
        assert!(tree_height >= 1);
        MinMaxLoad { eps, tree_height }
    }

    /// The per-link load bound `h/ε` counters.
    pub fn max_load_bound(&self) -> f64 {
        self.tree_height as f64 / self.eps
    }
}

impl PrecisionGradient for MinMaxLoad {
    fn eps_at(&self, height: u32) -> f64 {
        self.eps * height.min(self.tree_height) as f64 / self.tree_height as f64
    }

    fn final_eps(&self) -> f64 {
        self.eps
    }
}

/// §6.1.4's Hybrid gradient: the average of [`MinTotalLoad`] and
/// [`MinMaxLoad`], simultaneously within 2× of both optima.
#[derive(Clone, Copy, Debug)]
pub struct Hybrid {
    total: MinTotalLoad,
    max: MinMaxLoad,
}

impl Hybrid {
    /// Hybrid gradient for error `eps` on a `d`-dominating tree of height
    /// `tree_height`.
    pub fn new(eps: f64, d: f64, tree_height: u32) -> Self {
        Hybrid {
            total: MinTotalLoad::new(eps, d),
            max: MinMaxLoad::new(eps, tree_height),
        }
    }
}

impl PrecisionGradient for Hybrid {
    fn eps_at(&self, height: u32) -> f64 {
        0.5 * (self.total.eps_at(height) + self.max.eps_at(height))
    }

    fn final_eps(&self) -> f64 {
        self.total.final_eps()
    }
}

/// Naive gradient: full budget at every height. Minimal answer error but
/// no compression paid for along the way — communication-maximal among
/// correct settings; useful as an ablation baseline.
#[derive(Clone, Copy, Debug)]
pub struct Uniform {
    eps: f64,
}

impl Uniform {
    /// Uniform gradient with error `eps`.
    pub fn new(eps: f64) -> Self {
        assert!(eps > 0.0);
        Uniform { eps }
    }
}

impl PrecisionGradient for Uniform {
    fn eps_at(&self, _height: u32) -> f64 {
        self.eps
    }

    fn final_eps(&self) -> f64 {
        self.eps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_monotone_and_bounded<G: PrecisionGradient>(g: &G, h_max: u32) {
        let mut prev = 0.0;
        for h in 1..=h_max {
            let e = g.eps_at(h);
            assert!(e >= prev - 1e-12, "not monotone at height {h}");
            assert!(
                e <= g.final_eps() + 1e-12,
                "eps({h}) = {e} exceeds final {}",
                g.final_eps()
            );
            assert!(g.diff_at(h) >= -1e-12);
            prev = e;
        }
    }

    #[test]
    fn min_total_load_shape() {
        let g = MinTotalLoad::new(0.1, 4.0); // t = 1/2
        check_monotone_and_bounded(&g, 20);
        // ε(1) = ε(1−t) = 0.05; ε(2) = ε(1−t²) = 0.075 …
        assert!((g.eps_at(1) - 0.05).abs() < 1e-12);
        assert!((g.eps_at(2) - 0.075).abs() < 1e-12);
        // Differences decay geometrically by t.
        let r = g.diff_at(3) / g.diff_at(2);
        assert!((r - 0.5).abs() < 1e-9);
    }

    #[test]
    fn min_total_load_bound_formula() {
        let g = MinTotalLoad::new(0.01, 4.0);
        // (1 + 2/(2-1)) * m/ε = 3 * 100 * 100 = 30_000 for m = 100
        assert!((g.total_load_bound(100) - 30_000.0).abs() < 1e-6);
    }

    #[test]
    fn min_max_load_linear() {
        let g = MinMaxLoad::new(0.1, 5);
        check_monotone_and_bounded(&g, 10);
        assert!((g.eps_at(1) - 0.02).abs() < 1e-12);
        assert!((g.eps_at(5) - 0.1).abs() < 1e-12);
        // Heights past the tree height clamp at ε.
        assert!((g.eps_at(9) - 0.1).abs() < 1e-12);
        assert!((g.max_load_bound() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn hybrid_dominates_half_of_each() {
        let eps = 0.05;
        let d = 2.25;
        let h = 8;
        let total = MinTotalLoad::new(eps, d);
        let max = MinMaxLoad::new(eps, h);
        let hybrid = Hybrid::new(eps, d, h);
        check_monotone_and_bounded(&hybrid, 12);
        for i in 1..=h {
            assert!(hybrid.diff_at(i) >= 0.5 * total.diff_at(i) - 1e-12);
            assert!(hybrid.diff_at(i) >= 0.5 * max.diff_at(i) - 1e-12);
        }
    }

    #[test]
    fn uniform_constant() {
        let g = Uniform::new(0.2);
        check_monotone_and_bounded(&g, 6);
        assert_eq!(g.eps_at(1), 0.2);
        assert_eq!(g.eps_at(6), 0.2);
        assert_eq!(g.diff_at(3), 0.0);
    }

    #[test]
    #[should_panic(expected = "domination factor > 1")]
    fn min_total_load_rejects_d_1() {
        let _ = MinTotalLoad::new(0.1, 1.0);
    }
}
