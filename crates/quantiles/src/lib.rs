//! # td-quantiles — Greenwald–Khanna quantile summaries for sensor trees
//!
//! The Greenwald–Khanna (GK) summary \[8\] is the classic deterministic
//! ε-approximate quantile structure, and the basis of two pieces of the
//! paper:
//!
//! * the **Quantiles-based frequent-items baseline** of §7.4.2 ("frequent
//!   items can be computed from quantiles"), and
//! * §6.1.4's extension of the paper's precision-gradient machinery to
//!   quantiles — "the first quantiles algorithms" with optimal total
//!   communication on d-dominating trees.
//!
//! This implementation follows the *power-conserving* formulation of
//! GK \[8\], which is built for sensor trees: each node builds an exact
//! summary of its local collection, **combines** its children's summaries
//! (absolute rank uncertainties add), then **reduces** (compresses) the
//! result to its height's error budget before transmitting. The
//! [`summary::GkSummary`] type tracks its own absolute uncertainty `E` so
//! validity is checkable at every step.
//!
//! Two summary families share one combine/reduce surface
//! ([`summary::QuantileSummary`]):
//!
//! * [`summary::GkSummary`] — the power-conserving GK formulation;
//! * [`qdigest::QDigest`] — the q-digest of "Medians and Beyond"
//!   (dyadic-range counts), whose node-wise combine is additionally
//!   *invertible*, giving windowed quantile panes an exact
//!   subtract-on-evict path.
//!
//! See [`summary`] and [`qdigest`] for the data structures,
//! [`gradient`] for the precision-gradient helpers shared with the
//! frequent-items crate, and [`laws`] for the algebraic law checks
//! (combine commutativity/associativity up to canonical form, reduce
//! budget adherence, quantile monotonicity).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gradient;
pub mod laws;
pub mod qdigest;
pub mod summary;

pub use gradient::PrecisionGradient;
pub use qdigest::QDigest;
pub use summary::{GkSummary, QuantileSummary};
