//! One tenant: an independent stream-aggregation world (network,
//! workload, loss model, optional churn schedule, registered stream
//! queries) plus its private RNG, packaged for a worker thread to
//! drive epoch-by-epoch.

use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};

use rand::rngs::StdRng;
use td_netsim::churn::ChurnSchedule;
use td_netsim::loss::LossModel;
use td_stream::StreamSession;
use tributary_delta::driver::Workload;

use crate::tenant_rng;

/// Identifies one tenant within a [`ServiceRuntime`](crate::ServiceRuntime).
/// Assigned at submission; its hash picks the owning shard.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u64);

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant#{}", self.0)
    }
}

/// Where a tenant currently is in its lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TenantPhase {
    /// Submitted, not yet picked up by its worker.
    Queued,
    /// Owned by a worker and advancing epochs.
    Running,
    /// Backpressured: its outbox is full and undrained reports are
    /// staged worker-side, so the epoch loop skips it until a drain
    /// makes room. Nothing is dropped.
    Parked,
    /// Reached its [`run_until`](TenantBuilder::run_until) epoch bound
    /// and is idling; epoch-addressed operations still apply, and
    /// [`TenantHandle::resume`](crate::TenantHandle::resume) extends it.
    Paused,
    /// Removed (or the runtime shut down); its outbox is closed but
    /// still drainable.
    Removed,
}

impl TenantPhase {
    pub(crate) fn as_u8(self) -> u8 {
        match self {
            TenantPhase::Queued => 0,
            TenantPhase::Running => 1,
            TenantPhase::Parked => 2,
            TenantPhase::Paused => 3,
            TenantPhase::Removed => 4,
        }
    }

    pub(crate) fn from_u8(v: u8) -> Self {
        match v {
            0 => TenantPhase::Queued,
            1 => TenantPhase::Running,
            2 => TenantPhase::Parked,
            3 => TenantPhase::Paused,
            _ => TenantPhase::Removed,
        }
    }
}

/// Lock-free tenant state shared between the owning worker and the
/// [`TenantHandle`](crate::TenantHandle).
#[derive(Debug)]
pub(crate) struct TenantShared {
    phase: AtomicU8,
    epochs: AtomicU64,
    /// Next stream-query registration index — the handle claims indices
    /// client-side so it can hand out `WindowHandle`s without a
    /// round-trip; the worker verifies the claim when the registration
    /// applies.
    pub next_query: AtomicUsize,
}

impl TenantShared {
    pub fn new(registered_queries: usize) -> Self {
        TenantShared {
            phase: AtomicU8::new(TenantPhase::Queued.as_u8()),
            epochs: AtomicU64::new(0),
            next_query: AtomicUsize::new(registered_queries),
        }
    }

    pub fn set_phase(&self, phase: TenantPhase) {
        self.phase.store(phase.as_u8(), Ordering::Relaxed);
    }

    pub fn phase(&self) -> TenantPhase {
        TenantPhase::from_u8(self.phase.load(Ordering::Relaxed))
    }

    pub fn bump_epochs(&self) {
        self.epochs.fetch_add(1, Ordering::Relaxed);
    }

    pub fn epochs(&self) -> u64 {
        self.epochs.load(Ordering::Relaxed)
    }
}

/// A [`TenantHandle::status`](crate::TenantHandle::status) snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TenantStatus {
    /// Lifecycle phase.
    pub phase: TenantPhase,
    /// Epochs the worker has driven for this tenant (warmup included).
    pub epochs_driven: u64,
    /// Reports currently queued in the tenant's outbox.
    pub queued_reports: usize,
}

/// One tenant's complete, self-contained simulation state. Build with
/// [`Tenant::builder`]; submit with
/// [`ServiceRuntime::submit`](crate::ServiceRuntime::submit).
///
/// Everything a tenant's epochs touch lives here — session, workload,
/// loss model, churn schedule, RNG — so workers never share mutable
/// state across tenants and a tenant's output stream is bit-identical
/// to stepping the same pieces in a serial loop.
pub struct Tenant {
    pub(crate) session: StreamSession,
    pub(crate) workload: Box<dyn Workload>,
    pub(crate) model: Box<dyn LossModel>,
    pub(crate) churn: Option<ChurnSchedule>,
    pub(crate) rng: StdRng,
    pub(crate) run_until: Option<u64>,
    pub(crate) outbox_capacity: usize,
}

impl Tenant {
    /// Start building a tenant around a session (with its stream
    /// queries already registered — more can be added live through the
    /// handle), an epoch workload, and a loss model.
    pub fn builder<W, M>(session: StreamSession, workload: W, model: M) -> TenantBuilder
    where
        W: Workload + 'static,
        M: LossModel + 'static,
    {
        TenantBuilder {
            session,
            workload: Box::new(workload),
            model: Box::new(model),
            churn: None,
            rng: None,
            run_until: None,
            outbox_capacity: 1024,
        }
    }
}

/// Builder for [`Tenant`].
pub struct TenantBuilder {
    session: StreamSession,
    workload: Box<dyn Workload>,
    model: Box<dyn LossModel>,
    churn: Option<ChurnSchedule>,
    rng: Option<StdRng>,
    run_until: Option<u64>,
    outbox_capacity: usize,
}

impl TenantBuilder {
    /// Seed the tenant's private RNG via [`tenant_rng`] — the
    /// substream discipline that keeps its epoch draws independent of
    /// every other tenant and identical to a serial run with the same
    /// seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.rng = Some(tenant_rng(seed));
        self
    }

    /// Hand the tenant an explicit RNG (escape hatch for callers mid
    /// rng-stream; prefer [`seed`](Self::seed)).
    pub fn rng(mut self, rng: StdRng) -> Self {
        self.rng = Some(rng);
        self
    }

    /// Drive the tenant under this churn schedule (each epoch applies
    /// the schedule's membership transitions and overlays its loss).
    pub fn churn(mut self, schedule: ChurnSchedule) -> Self {
        self.churn = Some(schedule);
        self
    }

    /// Pause the tenant once its next epoch would be `epoch` (it runs
    /// epochs `0..epoch`, then idles until
    /// [`resumed`](crate::TenantHandle::resume) or removed). The
    /// deterministic rendezvous point for live reconfiguration: an
    /// operation addressed at `epoch` can never arrive late while the
    /// tenant is paused there.
    pub fn run_until(mut self, epoch: u64) -> Self {
        self.run_until = Some(epoch);
        self
    }

    /// Bound the tenant's outbox (default 1024 reports). A full outbox
    /// parks the tenant; it never drops.
    pub fn outbox_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "outbox capacity must be at least 1");
        self.outbox_capacity = capacity;
        self
    }

    /// Finish the tenant.
    ///
    /// # Panics
    /// Panics if no seed/RNG was set or the session has no active
    /// stream query (a tenant must be runnable as submitted).
    pub fn build(self) -> Tenant {
        assert!(
            self.session.active_query_count() > 0,
            "a tenant's session needs at least one active stream query"
        );
        let rng = self
            .rng
            .expect("a tenant needs a seed (TenantBuilder::seed) or an explicit RNG");
        Tenant {
            session: self.session,
            workload: self.workload,
            model: self.model,
            churn: self.churn,
            rng,
            run_until: self.run_until,
            outbox_capacity: self.outbox_capacity,
        }
    }
}
