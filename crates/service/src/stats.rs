//! Runtime-wide accounting: the shared counters every shard, outbox,
//! and handle bumps, and the [`ServiceStats`] snapshot they aggregate
//! into.
//!
//! The counters are [`td_telemetry::Counter`] handles registered in the
//! runtime's per-instance [`td_telemetry::Registry`] under `service.*`
//! names — the same sharded lock-free cells the phase histograms use,
//! so a telemetry snapshot and [`ServiceStats`] read one source of
//! truth. Handles are cached here at runtime construction; the
//! registry lock is never taken on the epoch hot path.

use std::fmt;
use std::time::Duration;

use td_telemetry::{Counter, Registry};

/// The runtime's shared counters. Lock-free: workers bump these on the
/// epoch hot path, outboxes on drains — never under a cross-shard lock.
pub(crate) struct Counters {
    pub tenants_added: Counter,
    pub tenants_removed: Counter,
    pub epochs_driven: Counter,
    pub reports_emitted: Counter,
    pub reports_drained: Counter,
    pub reports_dropped: Counter,
    pub parks: Counter,
    pub park_nanos: Counter,
    pub late_ops: Counter,
    pub rejected_ops: Counter,
}

impl Counters {
    /// Register (or re-attach to) the `service.*` counters in
    /// `registry` and cache the handles.
    pub fn new(registry: &Registry) -> Self {
        Counters {
            tenants_added: registry.counter("service.tenants_added"),
            tenants_removed: registry.counter("service.tenants_removed"),
            epochs_driven: registry.counter("service.epochs_driven"),
            reports_emitted: registry.counter("service.reports_emitted"),
            reports_drained: registry.counter("service.reports_drained"),
            reports_dropped: registry.counter("service.reports_dropped"),
            parks: registry.counter("service.parks"),
            park_nanos: registry.counter("service.park_nanos"),
            late_ops: registry.counter("service.late_ops"),
            rejected_ops: registry.counter("service.rejected_ops"),
        }
    }
}

/// A point-in-time snapshot of the whole runtime's accounting — what a
/// bench logs per sweep point and what
/// [`ServiceRuntime::shutdown`](crate::ServiceRuntime::shutdown)
/// returns.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Worker threads (= shards) the runtime owns.
    pub workers: usize,
    /// Tenants ever submitted.
    pub tenants_added: u64,
    /// Tenants explicitly removed ([`TenantHandle::remove`]); tenants
    /// that simply finished their epoch budget are not counted here.
    ///
    /// [`TenantHandle::remove`]: crate::TenantHandle::remove
    pub tenants_removed: u64,
    /// Tenants currently owned by a worker (neither finished nor
    /// removed).
    pub tenants_live: u64,
    /// Epochs driven across all tenants (warmup epochs included) — the
    /// numerator of the headline tenant-epochs/sec metric.
    pub epochs_driven: u64,
    /// Window reports produced by tenant epochs.
    pub reports_emitted: u64,
    /// Reports consumers have drained from outboxes so far.
    pub reports_drained: u64,
    /// Reports discarded because their outbox was closed with **no
    /// handle left alive to drain it**. Backpressure parks instead of
    /// dropping, so with any live handle this stays 0 — the isolation
    /// tests assert exactly that.
    pub reports_dropped: u64,
    /// Times a tenant's epoch loop parked on a full outbox.
    pub parks: u64,
    /// Total wall-clock nanoseconds tenants spent parked.
    pub park_nanos: u64,
    /// Epoch-addressed operations that arrived after their target epoch
    /// had already run (applied before the next epoch instead).
    pub late_ops: u64,
    /// Operations refused (unknown tenant, deregistering the last
    /// active query, a registration index conflict).
    pub rejected_ops: u64,
    /// Live tenants per shard — the occupancy picture of the
    /// hash-assignment.
    pub shard_occupancy: Vec<u64>,
}

impl ServiceStats {
    /// Total parked wall-clock time.
    pub fn park_time(&self) -> Duration {
        Duration::from_nanos(self.park_nanos)
    }

    /// Reports emitted but neither drained nor dropped yet (still
    /// queued in outboxes).
    pub fn reports_queued(&self) -> u64 {
        self.reports_emitted
            .saturating_sub(self.reports_drained)
            .saturating_sub(self.reports_dropped)
    }
}

impl fmt::Display for ServiceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} workers, {} tenants live ({} added, {} removed; shard occupancy [",
            self.workers, self.tenants_live, self.tenants_added, self.tenants_removed
        )?;
        for (i, n) in self.shard_occupancy.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{n}")?;
        }
        write!(
            f,
            "]); {} epochs driven; {} reports emitted, {} drained, {} queued, {} dropped; \
             {} parks ({:.2?} parked); {} late ops, {} rejected",
            self.epochs_driven,
            self.reports_emitted,
            self.reports_drained,
            self.reports_queued(),
            self.reports_dropped,
            self.parks,
            self.park_time(),
            self.late_ops,
            self.rejected_ops
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_one_readable_line() {
        let stats = ServiceStats {
            workers: 2,
            tenants_added: 5,
            tenants_removed: 1,
            tenants_live: 3,
            epochs_driven: 420,
            reports_emitted: 100,
            reports_drained: 90,
            reports_dropped: 0,
            parks: 2,
            park_nanos: 1_500_000,
            late_ops: 0,
            rejected_ops: 1,
            shard_occupancy: vec![2, 1],
        };
        let line = stats.to_string();
        assert!(line.contains("2 workers"), "{line}");
        assert!(line.contains("[2 1]"), "{line}");
        assert!(line.contains("420 epochs driven"), "{line}");
        assert!(line.contains("10 queued"), "{line}");
        assert!(!line.contains('\n'), "single line: {line}");
    }
}
