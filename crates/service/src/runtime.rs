//! The service runtime: a fixed pool of worker threads, each owning a
//! disjoint shard of tenants, multiplexed epoch-by-epoch.
//!
//! ## Sharding and determinism
//!
//! A tenant is hash-assigned to one shard at submission
//! ([`splitmix64`] of its id modulo the worker count) and never
//! migrates, so on the hot path a worker touches only state it owns —
//! no cross-worker locking, just its inbox (a mutex swapped empty once
//! per scheduling pass) and per-tenant atomics. Every mutable thing an
//! epoch touches (session, workload, loss model, churn schedule, RNG)
//! lives inside the tenant, so interleaving tenants on a worker — or
//! spreading them over any number of workers — cannot perturb any
//! tenant's draws: each output stream is bit-identical to stepping
//! that tenant alone in a serial loop.
//!
//! ## Epoch-addressed reconfiguration
//!
//! Live operations (register/deregister a query, inject churn) carry a
//! target epoch and are applied *before* that epoch runs, in epoch
//! order — so "what happened at epoch k" is part of the tenant's
//! definition, not a race against the scheduler. An operation arriving
//! after its epoch already ran still applies (before the next epoch)
//! but is counted in [`ServiceStats::late_ops`]; pair operations with
//! [`TenantBuilder::run_until`](crate::TenantBuilder::run_until)
//! pauses to make them race-free.
//!
//! ## Backpressure
//!
//! Each tenant's reports flow through a bounded [`Outbox`]. When it
//! fills, the worker keeps the overflow staged and **parks** the
//! tenant — skipping its epochs until a drain makes room. Reports are
//! never dropped while the tenant's handle is alive; a park is time
//! (visible in [`ServiceStats`]), not data loss.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use td_netsim::churn::ChurnEvents;
use td_netsim::rng::splitmix64;
use td_stream::{PaneProtocol, StreamQuery, StreamSession, WindowHandle, WindowReport};
// NOTE: event macros are invoked fully qualified (`td_telemetry::td_event!`)
// so no imports go unused when the `telemetry` feature is off and the
// macro expands to nothing.
use td_telemetry::Registry;

use crate::outbox::{Outbox, TenantReport};
use crate::stats::{Counters, ServiceStats};
use crate::tenant::{Tenant, TenantId, TenantPhase, TenantShared, TenantStatus};

/// How long an idle worker sleeps between inbox checks when no wakeup
/// arrives (drains and submissions notify immediately; this only
/// bounds the cost of a missed signal).
const IDLE_WAIT: Duration = Duration::from_millis(5);

struct Waker {
    signal: Mutex<bool>,
    cv: Condvar,
}

impl Waker {
    fn new() -> Self {
        Waker {
            signal: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    fn notify(&self) {
        *self.signal.lock().expect("waker lock") = true;
        self.cv.notify_all();
    }

    fn wait(&self, timeout: Duration) {
        let mut signal = self.signal.lock().expect("waker lock");
        if !*signal {
            let (guard, _) = self.cv.wait_timeout(signal, timeout).expect("waker wait");
            signal = guard;
        }
        *signal = false;
    }
}

type RegisterFn = Box<dyn FnOnce(&mut StreamSession) -> Vec<WindowHandle> + Send>;

/// A live reconfiguration of one tenant, applied by its owning worker
/// at the operation's target epoch.
enum TenantOp {
    Register { expect: usize, apply: RegisterFn },
    Deregister(usize),
    InjectChurn(ChurnEvents),
    RunUntil(Option<u64>),
}

enum Command {
    Submit {
        id: TenantId,
        tenant: Box<Tenant>,
        shared: Arc<TenantShared>,
        outbox: Arc<Outbox>,
    },
    Op {
        id: TenantId,
        at_epoch: u64,
        op: TenantOp,
    },
    Remove {
        id: TenantId,
        ack: Sender<()>,
    },
}

/// One worker's share of the runtime: its command inbox, wakeup
/// signal, and live-tenant count. Everything else a worker touches is
/// thread-local.
struct Shard {
    inbox: Mutex<Vec<Command>>,
    waker: Waker,
    stop: AtomicBool,
    live: AtomicU64,
}

impl Shard {
    fn new() -> Self {
        Shard {
            inbox: Mutex::new(Vec::new()),
            waker: Waker::new(),
            stop: AtomicBool::new(false),
            live: AtomicU64::new(0),
        }
    }

    fn push(&self, cmd: Command) {
        self.inbox.lock().expect("shard inbox lock").push(cmd);
        self.waker.notify();
    }

    fn take(&self) -> Vec<Command> {
        std::mem::take(&mut *self.inbox.lock().expect("shard inbox lock"))
    }
}

fn shard_of(id: TenantId, workers: usize) -> usize {
    (splitmix64(id.0) % workers as u64) as usize
}

/// Worker-local per-tenant state.
struct Entry {
    tenant: Box<Tenant>,
    shared: Arc<TenantShared>,
    outbox: Arc<Outbox>,
    /// Reports emitted but not yet accepted by the (full) outbox.
    staged: VecDeque<(WindowReport, Instant)>,
    /// Pending operations keyed by target epoch.
    ops: BTreeMap<u64, Vec<TenantOp>>,
    park_started: Option<Instant>,
    removing: Option<Sender<()>>,
}

fn worker_loop(shard: Arc<Shard>, counters: Arc<Counters>) {
    let mut tenants: BTreeMap<u64, Entry> = BTreeMap::new();
    loop {
        let commands = shard.take();
        let mut progress = !commands.is_empty();
        for cmd in commands {
            match cmd {
                Command::Submit {
                    id,
                    tenant,
                    shared,
                    outbox,
                } => {
                    shared.set_phase(TenantPhase::Running);
                    shard.live.fetch_add(1, Ordering::Relaxed);
                    tenants.insert(
                        id.0,
                        Entry {
                            tenant,
                            shared,
                            outbox,
                            staged: VecDeque::new(),
                            ops: BTreeMap::new(),
                            park_started: None,
                            removing: None,
                        },
                    );
                }
                Command::Op { id, at_epoch, op } => match tenants.get_mut(&id.0) {
                    Some(e) => e.ops.entry(at_epoch).or_default().push(op),
                    // Unknown tenant: refuse (the ack-less op just
                    // vanishes; the count is the caller's signal).
                    None => counters.rejected_ops.inc(),
                },
                Command::Remove { id, ack } => match tenants.get_mut(&id.0) {
                    Some(e) => e.removing = Some(ack),
                    // Dropping `ack` disconnects the handle's wait.
                    None => counters.rejected_ops.inc(),
                },
            }
        }
        let stopping = shard.stop.load(Ordering::Relaxed);
        let ids: Vec<u64> = tenants.keys().copied().collect();
        for id in ids {
            let retire = if stopping {
                true
            } else {
                let e = tenants.get_mut(&id).expect("tenant id just listed");
                step_entry(id, e, &counters, &mut progress)
            };
            if retire {
                let e = tenants.remove(&id).expect("tenant id just listed");
                retire_entry(id, e, &counters);
                shard.live.fetch_sub(1, Ordering::Relaxed);
                progress = true;
            }
        }
        if stopping {
            return;
        }
        if !progress {
            shard.waker.wait(IDLE_WAIT);
        }
    }
}

/// Advance one tenant by at most one epoch. Returns whether the entry
/// should be retired (removal requested and its epoch boundary
/// reached).
#[cfg_attr(not(feature = "telemetry"), allow(unused_variables))]
fn step_entry(id: u64, e: &mut Entry, counters: &Counters, progress: &mut bool) -> bool {
    // 1. Backpressure: move staged reports into the outbox; if any
    // remain it is full — park (never drop) until a drain makes room.
    if !e.staged.is_empty() {
        if e.outbox.offer(&mut e.staged) > 0 {
            *progress = true;
        }
        if !e.staged.is_empty() && e.removing.is_none() {
            if e.park_started.is_none() {
                e.park_started = Some(Instant::now());
                e.shared.set_phase(TenantPhase::Parked);
                counters.parks.inc();
                td_telemetry::td_event!(
                    td_telemetry::Level::Debug,
                    "service",
                    "park",
                    td_telemetry::LogicalClock::NONE.with_tenant(id),
                    staged = e.staged.len(),
                    queued = e.outbox.len(),
                );
            }
            return false;
        }
    }
    if let Some(since) = e.park_started.take() {
        let parked = since.elapsed();
        counters.park_nanos.add(parked.as_nanos() as u64);
        td_telemetry::td_event!(
            td_telemetry::Level::Debug,
            "service",
            "unpark",
            td_telemetry::LogicalClock::NONE.with_tenant(id),
            parked_ns = parked.as_nanos() as u64,
        );
    }
    // 2. Removal happens at an epoch boundary — never mid-epoch.
    if e.removing.is_some() {
        return true;
    }
    // 3. Apply operations due at (or, late, before) the next epoch, in
    // epoch order.
    let next = e.tenant.session.driver().next_epoch();
    let due: Vec<u64> = e.ops.range(..=next).map(|(at, _)| *at).collect();
    for at in due {
        for op in e.ops.remove(&at).expect("due epoch just listed") {
            *progress = true;
            apply_op(e, at, next, op, counters);
        }
    }
    // 4. Paused at its epoch bound: idle but live (ops still apply).
    if e.tenant.run_until.is_some_and(|until| next >= until) {
        e.shared.set_phase(TenantPhase::Paused);
        return false;
    }
    // 5. Drive exactly one epoch. Everything mutable is tenant-owned,
    // so this is bit-identical to the same step in a serial loop.
    let t = &mut *e.tenant;
    let reports = match &t.churn {
        Some(schedule) => t
            .session
            .step_under_churn(&*t.workload, &t.model, schedule, &mut t.rng),
        None => t.session.step(&*t.workload, &t.model, &mut t.rng),
    };
    e.shared.set_phase(TenantPhase::Running);
    e.shared.bump_epochs();
    counters.epochs_driven.inc();
    counters.reports_emitted.add(reports.len() as u64);
    let emitted = Instant::now();
    e.staged.extend(reports.into_iter().map(|r| (r, emitted)));
    if !e.staged.is_empty() {
        e.outbox.offer(&mut e.staged);
    }
    *progress = true;
    false
}

fn apply_op(e: &mut Entry, at: u64, next: u64, op: TenantOp, counters: &Counters) {
    // RunUntil is a pacing control, not an epoch-k event — never late.
    if at < next && !matches!(op, TenantOp::RunUntil(_)) {
        counters.late_ops.inc();
    }
    match op {
        TenantOp::Register { expect, apply } => {
            // The handle claimed index `expect` client-side; refuse if
            // the session moved on (a conflicting registration won).
            if e.tenant.session.query_count() == expect {
                let _ = apply(&mut e.tenant.session);
            } else {
                counters.rejected_ops.inc();
            }
        }
        TenantOp::Deregister(query) => {
            if e.tenant.session.deregister(query).is_err() {
                counters.rejected_ops.inc();
            }
        }
        TenantOp::InjectChurn(events) => e.tenant.session.inject_churn(&events),
        TenantOp::RunUntil(until) => e.tenant.run_until = until,
    }
}

/// Final flush at removal or shutdown: everything staged goes into the
/// (now unbounded, closed) outbox so a live handle can still drain it;
/// if no handle is left, the queue is discarded and counted dropped.
#[cfg_attr(not(feature = "telemetry"), allow(unused_variables))]
fn retire_entry(id: u64, mut e: Entry, counters: &Counters) {
    e.outbox.flush_and_close(&mut e.staged);
    if let Some(since) = e.park_started.take() {
        counters.park_nanos.add(since.elapsed().as_nanos() as u64);
    }
    e.shared.set_phase(TenantPhase::Removed);
    let removed = e.removing.is_some();
    if let Some(ack) = e.removing.take() {
        counters.tenants_removed.inc();
        let _ = ack.send(());
    }
    td_telemetry::td_event!(
        td_telemetry::Level::Info,
        "service",
        "retire",
        td_telemetry::LogicalClock::NONE.with_tenant(id),
        removed = removed,
        epochs = e.shared.epochs(),
    );
    e.outbox.discard_if_unreachable();
}

/// The caller's side of one submitted tenant: drain its reports,
/// reconfigure it live, watch it, remove it. Not cloneable — one
/// consumer per tenant keeps drain order (and the registration-index
/// handshake) simple.
pub struct TenantHandle {
    id: TenantId,
    shard: Arc<Shard>,
    outbox: Arc<Outbox>,
    shared: Arc<TenantShared>,
}

impl TenantHandle {
    /// The tenant's runtime-assigned id.
    pub fn id(&self) -> TenantId {
        self.id
    }

    /// Register another stream query on the tenant's session before
    /// epoch `at_epoch` runs, returning its window handles immediately
    /// (indices are claimed client-side and verified by the worker;
    /// see [`ServiceStats::rejected_ops`]).
    pub fn register_at<P: PaneProtocol + 'static>(
        &self,
        at_epoch: u64,
        query: StreamQuery<P>,
    ) -> Vec<WindowHandle> {
        let windows = query.windows().len();
        assert!(windows > 0, "a stream query needs at least one window");
        let expect = self.shared.next_query.fetch_add(1, Ordering::Relaxed);
        let handles = (0..windows)
            .map(|window| WindowHandle {
                query: expect,
                window,
            })
            .collect();
        let apply: RegisterFn = Box::new(move |session| session.register(query));
        self.shard.push(Command::Op {
            id: self.id,
            at_epoch,
            op: TenantOp::Register { expect, apply },
        });
        handles
    }

    /// Deregister stream query `query` (a [`WindowHandle::query`]
    /// index) before epoch `at_epoch` runs.
    pub fn deregister_at(&self, at_epoch: u64, query: usize) {
        self.shard.push(Command::Op {
            id: self.id,
            at_epoch,
            op: TenantOp::Deregister(query),
        });
    }

    /// Apply a batch of membership transitions to the tenant's session
    /// before epoch `at_epoch` runs (see
    /// [`StreamSession::inject_churn`]).
    pub fn inject_churn_at(&self, at_epoch: u64, events: ChurnEvents) {
        self.shard.push(Command::Op {
            id: self.id,
            at_epoch,
            op: TenantOp::InjectChurn(events),
        });
    }

    /// Move the tenant's epoch bound: run until its next epoch would
    /// be `until` (then pause), or forever with `None`. Applies
    /// immediately, not epoch-addressed.
    pub fn resume(&self, until: Option<u64>) {
        self.shard.push(Command::Op {
            id: self.id,
            at_epoch: 0,
            op: TenantOp::RunUntil(until),
        });
    }

    /// Take up to `max` queued reports, oldest first. Draining wakes
    /// the shard so a parked tenant resumes.
    pub fn drain(&self, max: usize) -> Vec<TenantReport> {
        let out = self.outbox.drain(max);
        if !out.is_empty() {
            self.shard.waker.notify();
        }
        out
    }

    /// Lifecycle snapshot (phase, epochs driven, queued reports).
    pub fn status(&self) -> TenantStatus {
        TenantStatus {
            phase: self.shared.phase(),
            epochs_driven: self.shared.epochs(),
            queued_reports: self.outbox.len(),
        }
    }

    /// Gracefully remove the tenant: it stops at its next epoch
    /// boundary, every already-emitted report is flushed, and the full
    /// remaining report stream is returned — the drain-on-remove is
    /// deterministic because removal never splits an epoch. Keeps
    /// draining while it waits, so a full outbox cannot deadlock the
    /// removal.
    pub fn remove(self) -> Vec<TenantReport> {
        let (ack, done) = mpsc::channel();
        self.shard.push(Command::Remove { id: self.id, ack });
        let mut drained = Vec::new();
        loop {
            drained.extend(self.outbox.drain(usize::MAX));
            self.shard.waker.notify();
            match done.recv_timeout(Duration::from_millis(1)) {
                Ok(()) => break,
                Err(RecvTimeoutError::Disconnected) => break,
                Err(RecvTimeoutError::Timeout) => {
                    // Runtime already shut down: the worker is gone but
                    // it closed the outbox on its way out.
                    if self.shard.stop.load(Ordering::Relaxed) && self.outbox.is_closed() {
                        break;
                    }
                }
            }
        }
        drained.extend(self.outbox.drain(usize::MAX));
        drained
    }
}

/// A fixed pool of worker threads multiplexing many independent
/// tenants — see the [crate docs](crate) for the sharding, determinism,
/// and backpressure discipline.
///
/// Dropping the runtime stops the workers (flushing every tenant's
/// outbox); [`shutdown`](Self::shutdown) does the same and returns the
/// final [`ServiceStats`]. Handles outlive the runtime: closed
/// outboxes stay drainable.
pub struct ServiceRuntime {
    shards: Vec<Arc<Shard>>,
    workers: Vec<JoinHandle<()>>,
    registry: Arc<Registry>,
    counters: Arc<Counters>,
    next_id: AtomicU64,
}

impl ServiceRuntime {
    /// Spawn `workers` worker threads (one shard each).
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "a service runtime needs at least one worker");
        // Each runtime owns its registry so concurrent runtimes (tests,
        // embedded services) never share counters — the isolation the
        // old per-runtime atomics had.
        let registry = Arc::new(Registry::new());
        let counters = Arc::new(Counters::new(&registry));
        let shards: Vec<Arc<Shard>> = (0..workers).map(|_| Arc::new(Shard::new())).collect();
        let handles = shards
            .iter()
            .map(|shard| {
                let shard = Arc::clone(shard);
                let counters = Arc::clone(&counters);
                thread::spawn(move || worker_loop(shard, counters))
            })
            .collect();
        ServiceRuntime {
            shards,
            workers: handles,
            registry,
            counters,
            next_id: AtomicU64::new(0),
        }
    }

    /// Worker-thread (= shard) count.
    pub fn workers(&self) -> usize {
        self.shards.len()
    }

    /// The runtime's metric registry — the `service.*` counters live
    /// here; callers can register their own metrics alongside or take
    /// a [`td_telemetry::Snapshot`] of everything at once.
    pub fn telemetry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Hand a tenant to its worker. Returns immediately; the tenant
    /// starts running as soon as its shard's next scheduling pass picks
    /// it up.
    pub fn submit(&self, mut tenant: Tenant) -> TenantHandle {
        // Tenants run serial-per-tenant: the runtime's worker pool is
        // the parallelism here, and a tenant fanning its own epochs
        // across cores would oversubscribe it. Results are unaffected —
        // the intra-epoch parallel path is bit-identical — so this is
        // purely a scheduling decision.
        tenant.session.set_workers(1);
        let id = TenantId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let shard = Arc::clone(&self.shards[shard_of(id, self.shards.len())]);
        let shared = Arc::new(TenantShared::new(tenant.session.query_count()));
        let outbox = Arc::new(Outbox::new(
            tenant.outbox_capacity,
            Arc::clone(&self.counters),
        ));
        self.counters.tenants_added.inc();
        td_telemetry::td_event!(
            td_telemetry::Level::Info,
            "service",
            "submit",
            td_telemetry::LogicalClock::NONE.with_tenant(id.0),
            queries = tenant.session.query_count(),
        );
        shard.push(Command::Submit {
            id,
            tenant: Box::new(tenant),
            shared: Arc::clone(&shared),
            outbox: Arc::clone(&outbox),
        });
        TenantHandle {
            id,
            shard,
            outbox,
            shared,
        }
    }

    /// Point-in-time accounting snapshot.
    pub fn stats(&self) -> ServiceStats {
        let shard_occupancy: Vec<u64> = self
            .shards
            .iter()
            .map(|s| s.live.load(Ordering::Relaxed))
            .collect();
        let c = &self.counters;
        ServiceStats {
            workers: self.shards.len(),
            tenants_added: c.tenants_added.value(),
            tenants_removed: c.tenants_removed.value(),
            tenants_live: shard_occupancy.iter().sum(),
            epochs_driven: c.epochs_driven.value(),
            reports_emitted: c.reports_emitted.value(),
            reports_drained: c.reports_drained.value(),
            reports_dropped: c.reports_dropped.value(),
            parks: c.parks.value(),
            park_nanos: c.park_nanos.value(),
            late_ops: c.late_ops.value(),
            rejected_ops: c.rejected_ops.value(),
            shard_occupancy,
        }
    }

    /// Stop every worker (each flushes and closes its tenants'
    /// outboxes — still drainable through live handles) and return the
    /// final stats.
    pub fn shutdown(mut self) -> ServiceStats {
        self.halt();
        self.stats()
    }

    fn halt(&mut self) {
        for shard in &self.shards {
            shard.stop.store(true, Ordering::Relaxed);
            shard.waker.notify();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServiceRuntime {
    fn drop(&mut self) {
        self.halt();
    }
}
