//! The per-tenant report queue between a worker thread and whoever
//! holds the [`TenantHandle`](crate::TenantHandle).
//!
//! An [`Outbox`] is bounded: when it is full the owning worker keeps
//! the overflow in a worker-local staging queue and **parks the
//! tenant** — reports are never dropped while a handle is alive to
//! drain them. Draining wakes the shard so parked tenants resume.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use td_stream::WindowReport;
use td_telemetry::phase::{self, Phase};

use crate::stats::Counters;

/// A drained window report plus how long it sat queued (emission to
/// drain) — the latency the service bench reports percentiles of.
#[derive(Clone, Debug)]
pub struct TenantReport {
    /// The report exactly as the tenant's [`StreamSession`] emitted it.
    ///
    /// [`StreamSession`]: td_stream::StreamSession
    pub report: WindowReport,
    /// Wall-clock time from the epoch that emitted the report to the
    /// drain that returned it.
    pub waited: Duration,
}

struct OutboxState {
    queue: VecDeque<(WindowReport, Instant)>,
    closed: bool,
}

/// The bounded tenant → consumer report queue. Shared (`Arc`) between
/// the owning worker and the tenant's handle.
pub(crate) struct Outbox {
    capacity: usize,
    state: Mutex<OutboxState>,
    counters: Arc<Counters>,
}

impl Outbox {
    pub fn new(capacity: usize, counters: Arc<Counters>) -> Self {
        assert!(capacity > 0, "outbox capacity must be at least 1");
        Outbox {
            capacity,
            state: Mutex::new(OutboxState {
                queue: VecDeque::new(),
                closed: false,
            }),
            counters,
        }
    }

    /// Move staged reports in until full. Returns how many moved; what
    /// remains in `staged` is the worker's cue to park the tenant.
    pub fn offer(&self, staged: &mut VecDeque<(WindowReport, Instant)>) -> usize {
        let mut st = self.state.lock().expect("outbox lock");
        let room = self.capacity.saturating_sub(st.queue.len());
        let take = room.min(staged.len());
        for _ in 0..take {
            let item = staged.pop_front().expect("staged len checked");
            st.queue.push_back(item);
        }
        take
    }

    /// Teardown flush: move **everything** in, capacity ignored, and
    /// close. Only remove/shutdown paths use this — it trades the bound
    /// for the no-drop guarantee at the moment the tenant stops
    /// producing.
    pub fn flush_and_close(&self, staged: &mut VecDeque<(WindowReport, Instant)>) {
        let mut st = self.state.lock().expect("outbox lock");
        st.queue.extend(staged.drain(..));
        st.closed = true;
    }

    /// If the worker holds the only reference (the handle is gone —
    /// nobody can ever drain), discard the queue and account the loss.
    pub fn discard_if_unreachable(self: &Arc<Self>) {
        if Arc::strong_count(self) == 1 {
            let mut st = self.state.lock().expect("outbox lock");
            let lost = st.queue.len() as u64;
            if lost > 0 {
                st.queue.clear();
                self.counters.reports_dropped.add(lost);
            }
        }
    }

    /// Take up to `max` queued reports, oldest first, stamping each
    /// with its queue wait.
    pub fn drain(&self, max: usize) -> Vec<TenantReport> {
        let sw = phase::stopwatch();
        let now = Instant::now();
        let mut st = self.state.lock().expect("outbox lock");
        let take = max.min(st.queue.len());
        let out: Vec<TenantReport> = st
            .queue
            .drain(..take)
            .map(|(report, emitted)| TenantReport {
                report,
                waited: now.saturating_duration_since(emitted),
            })
            .collect();
        drop(st);
        self.counters.reports_drained.add(out.len() as u64);
        phase::record(Phase::OutboxDrain, sw);
        out
    }

    /// Queued report count.
    pub fn len(&self) -> usize {
        self.state.lock().expect("outbox lock").queue.len()
    }

    /// Whether the owning worker has stopped feeding this outbox (the
    /// tenant finished, was removed, or the runtime shut down).
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("outbox lock").closed
    }
}
