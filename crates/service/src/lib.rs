//! # td-service — a multi-tenant aggregation service
//!
//! The rest of the workspace simulates **one** sensor-network
//! aggregation at a time; a deployment hosts thousands. This crate is
//! the hosting layer: a [`ServiceRuntime`] owns a fixed pool of worker
//! threads and multiplexes many independent *tenants* across them,
//! where each tenant is a complete simulation — network, workload,
//! loss model, optional churn schedule, and a
//! [`StreamSession`](td_stream::StreamSession) of registered window
//! queries — advanced epoch-by-epoch through the same
//! [`Driver`](tributary_delta::Driver) machinery a standalone run
//! uses.
//!
//! Three disciplines define the layer:
//!
//! * **Sharded ownership.** Each tenant is hash-assigned to one worker
//!   and never migrates; workers share nothing mutable, so the hot
//!   path takes no cross-worker locks.
//! * **Bit-exact isolation.** Every tenant draws from its own
//!   [`tenant_rng`] substream and owns all of its mutable state, so
//!   its report stream is bit-identical to running it alone in a
//!   serial loop — on any worker count, under live add/remove and
//!   churn injection. The isolation tests pin exactly this.
//! * **Park, never drop.** Reports flow through a bounded per-tenant
//!   outbox; a full outbox parks the tenant until the consumer drains,
//!   and the pressure is visible in [`ServiceStats`] rather than paid
//!   in lost data.
//!
//! ## Quickstart
//!
//! ```
//! use td_aggregates::sum::Sum;
//! use td_netsim::loss::Global;
//! use td_netsim::network::Network;
//! use td_netsim::node::Position;
//! use td_netsim::rng::rng_from_seed;
//! use td_service::{ServiceRuntime, Tenant};
//! use td_stream::{EpochMerge, StreamQuery, StreamSession, WindowSpec};
//! use tributary_delta::driver::{Driver, FixedReadings};
//! use tributary_delta::session::{Scheme, SessionBuilder};
//!
//! // One tenant = one self-contained aggregation world.
//! let mut rng = rng_from_seed(7);
//! let net = Network::random_connected(40, 10.0, 10.0, Position::new(5.0, 5.0), 2.5, &mut rng);
//! let session = SessionBuilder::new(Scheme::Td).build(&net, &mut rng);
//! let mut stream = StreamSession::new(Driver::new(session, 0));
//! stream.register(
//!     StreamQuery::scalar(Sum::default()).window(WindowSpec::sliding(4, 1), EpochMerge::Add),
//! );
//! let tenant = Tenant::builder(stream, FixedReadings(vec![1; net.len()]), Global::new(0.05))
//!     .seed(7)
//!     .run_until(12) // pause after epochs 0..12 — a deterministic stop
//!     .build();
//!
//! // Submit it to a two-worker runtime and drain its reports.
//! let runtime = ServiceRuntime::new(2);
//! let handle = runtime.submit(tenant);
//! let mut reports = Vec::new();
//! while handle.status().epochs_driven < 12 || handle.status().queued_reports > 0 {
//!     reports.extend(handle.drain(64));
//! }
//! assert!(reports.iter().all(|r| r.report.answer > 0.0));
//! let stats = runtime.shutdown();
//! println!("{stats}");
//! assert_eq!(stats.epochs_driven, 12);
//! assert_eq!(stats.reports_dropped, 0); // park-not-drop
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod outbox;
mod runtime;
mod stats;
mod tenant;

pub use outbox::TenantReport;
pub use runtime::{ServiceRuntime, TenantHandle};
pub use stats::ServiceStats;
pub use tenant::{Tenant, TenantBuilder, TenantId, TenantPhase, TenantStatus};

use rand::rngs::StdRng;
use td_netsim::rng::substream;

/// Substream salt separating tenant RNGs from every other named
/// consumer of an experiment seed (trial RNGs use the driver's
/// `TRIAL_STREAM_SALT`; this must differ so a tenant seeded `s` and a
/// trial seeded `s` never share draws).
pub const TENANT_STREAM_SALT: u64 = 0x7D5E_7E4A;

/// The RNG for the tenant seeded `seed` — the substream discipline
/// that makes a tenant's draws independent of every other tenant and
/// of scheduling. [`TenantBuilder::seed`] uses this; a serial
/// reference run must use it too to reproduce a service tenant
/// bit-for-bit.
pub fn tenant_rng(seed: u64) -> StdRng {
    substream(seed, TENANT_STREAM_SALT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn tenant_rng_is_the_pinned_substream() {
        let mut a = tenant_rng(42);
        let mut b = substream(42, TENANT_STREAM_SALT);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        // Distinct from the trial-pool substreams of the same seed.
        for trial in 0..4 {
            let mut c = tributary_delta::driver::TrialPool::trial_rng(42, trial);
            assert_ne!(tenant_rng(42).gen::<u64>(), c.gen::<u64>());
        }
    }
}
