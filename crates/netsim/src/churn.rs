//! Node churn: seeded join/leave schedules and their channel overlay.
//!
//! [`crate::loss::DeadNodes`] injects *permanent* failures; real
//! deployments see **churn** — nodes dropping out mid-run (battery
//! swap, reboot, duty cycle) and rejoining later. [`ChurnSchedule`]
//! models that as one up/down two-state Markov chain per node
//! ([`crate::markov::BinaryMarkov`]), stepped once per epoch: an alive
//! node leaves with probability `leave_rate` each epoch and stays away
//! for a geometric downtime of mean `mean_downtime` epochs. Everything
//! is a pure function of `(seed, node, epoch)`, so trials replay
//! bit-for-bit and every scheme sees the identical churn trajectory.
//!
//! The schedule has two consumers, deliberately decoupled:
//!
//! * **Channel**: [`ChurnLoss`] (via [`ChurnSchedule::overlay`]) wraps
//!   any inner [`LossModel`] — an absent sender or receiver loses every
//!   transmission, exactly like [`crate::loss::DeadNodes`] but
//!   epoch-dependent. It composes with `DeadNodes` in either order.
//! * **Topology**: [`ChurnSchedule::events_at`] reports the epoch's
//!   join/leave transitions so the aggregation layer can route around
//!   absent parents (see `td_topology::maintenance::apply_churn`) as a
//!   bounded structural delta instead of a rebuild.
//!
//! The base station (node 0) never churns.
//!
//! ```
//! use td_netsim::churn::ChurnSchedule;
//! use td_netsim::loss::{LossModel, NoLoss};
//! use td_netsim::network::Network;
//! use td_netsim::node::{NodeId, Position};
//!
//! let schedule = ChurnSchedule::new(50, 0.05, 10.0, 42);
//! // Deterministic per (node, epoch); the deployment starts complete.
//! assert!(schedule.absent_at(0).is_empty());
//! let events = schedule.events_at(30);
//! assert_eq!(events.epoch, 30);
//! // The channel overlay silences absent nodes.
//! let net = Network::new(vec![Position::new(0.0, 0.0), Position::new(1.0, 0.0)], 1.5);
//! let model = schedule.overlay(NoLoss);
//! let expect = if schedule.is_absent(NodeId(1), 30) { 1.0 } else { 0.0 };
//! assert_eq!(model.loss_rate(NodeId(1), NodeId(0), &net, 30), expect);
//! ```

use crate::loss::LossModel;
use crate::markov::{BinaryMarkov, StartState};
use crate::network::Network;
use crate::node::{NodeId, BASE_STATION};

/// The membership transitions of one epoch, plus the resulting absent
/// set — everything the topology layer needs to route around churn and
/// everything the accounting layer surfaces per pane.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChurnEvents {
    /// The epoch these events fire at.
    pub epoch: u64,
    /// Nodes that came back up this epoch (down at `epoch − 1`).
    pub joined: Vec<NodeId>,
    /// Nodes that went down this epoch (up at `epoch − 1`).
    pub left: Vec<NodeId>,
    /// Every node absent *at* this epoch (after the transitions).
    pub absent: Vec<NodeId>,
}

impl ChurnEvents {
    /// Whether the epoch saw any membership change.
    pub fn is_empty(&self) -> bool {
        self.joined.is_empty() && self.left.is_empty()
    }
}

/// A seeded per-node join/leave schedule: each sensor is an independent
/// up/down Markov chain stepped per epoch (`leave_rate` = P(up→down),
/// `1/mean_downtime` = P(down→up)). All nodes start up at epoch 0 —
/// deployments begin complete and decay — and the base station is
/// pinned up forever.
#[derive(Clone, Debug)]
pub struct ChurnSchedule {
    num_nodes: usize,
    chain: BinaryMarkov,
}

impl ChurnSchedule {
    /// Create a schedule over `num_nodes` nodes. `leave_rate` is the
    /// per-epoch probability an alive node goes down;
    /// `mean_downtime` is the mean absence length in epochs.
    ///
    /// # Panics
    /// Panics unless `0 <= leave_rate <= 1` and `mean_downtime >= 1`.
    pub fn new(num_nodes: usize, leave_rate: f64, mean_downtime: f64, seed: u64) -> Self {
        assert!(mean_downtime >= 1.0, "downtime lasts at least one epoch");
        ChurnSchedule {
            num_nodes,
            chain: BinaryMarkov::new(
                leave_rate,
                1.0 / mean_downtime,
                StartState::Fixed(false),
                seed,
            ),
        }
    }

    /// A schedule that never fires (the churn-free baseline of sweeps).
    pub fn disabled(num_nodes: usize) -> Self {
        ChurnSchedule::new(num_nodes, 0.0, 1.0, 0)
    }

    /// Whether any node can ever leave.
    pub fn is_enabled(&self) -> bool {
        self.chain.rates().0 > 0.0
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.num_nodes
    }

    /// Whether the schedule covers zero nodes.
    pub fn is_empty(&self) -> bool {
        self.num_nodes == 0
    }

    /// The long-run fraction of each sensor's time spent absent.
    pub fn stationary_absence(&self) -> f64 {
        self.chain.stationary_p1()
    }

    /// Whether `node` is absent at `epoch` (the base station never is).
    pub fn is_absent(&self, node: NodeId, epoch: u64) -> bool {
        node != BASE_STATION
            && node.index() < self.num_nodes
            && self.chain.state_at(node.0 as u64, epoch)
    }

    /// Every absent node at `epoch`, in id order.
    pub fn absent_at(&self, epoch: u64) -> Vec<NodeId> {
        (1..self.num_nodes as u32)
            .map(NodeId)
            .filter(|&n| self.is_absent(n, epoch))
            .collect()
    }

    /// The membership transitions between `epoch − 1` and `epoch`
    /// (empty transitions at epoch 0: the run starts complete), plus
    /// the absent set at `epoch`.
    pub fn events_at(&self, epoch: u64) -> ChurnEvents {
        let mut events = ChurnEvents {
            epoch,
            ..ChurnEvents::default()
        };
        for node in (1..self.num_nodes as u32).map(NodeId) {
            // Epoch-monotone queries (`epoch − 1` before `epoch`) keep
            // the chain memo advancing instead of replaying from 0.
            let before = epoch > 0 && self.is_absent(node, epoch - 1);
            let now = self.is_absent(node, epoch);
            if now {
                events.absent.push(node);
            }
            if epoch == 0 {
                continue;
            }
            match (before, now) {
                (false, true) => events.left.push(node),
                (true, false) => events.joined.push(node),
                _ => {}
            }
        }
        events
    }

    /// Overlay this schedule on an inner loss model: transmissions to
    /// or from an absent node are always lost.
    pub fn overlay<M: LossModel>(&self, inner: M) -> ChurnLoss<'_, M> {
        ChurnLoss {
            schedule: self,
            inner,
        }
    }
}

/// A [`LossModel`] adapter silencing nodes their [`ChurnSchedule`]
/// marks absent; present pairs defer to the inner model. Composes with
/// [`crate::loss::DeadNodes`] (and any other wrapper) in either order.
#[derive(Clone, Debug)]
pub struct ChurnLoss<'a, M> {
    schedule: &'a ChurnSchedule,
    inner: M,
}

impl<M: LossModel> LossModel for ChurnLoss<'_, M> {
    fn loss_rate(&self, from: NodeId, to: NodeId, net: &Network, epoch: u64) -> f64 {
        if self.schedule.is_absent(from, epoch) || self.schedule.is_absent(to, epoch) {
            1.0
        } else {
            self.inner.loss_rate(from, to, net, epoch)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{DeadNodes, NoLoss};
    use crate::node::Position;

    fn net3() -> Network {
        Network::new(
            vec![
                Position::new(0.0, 0.0),
                Position::new(1.0, 0.0),
                Position::new(2.0, 0.0),
            ],
            1.5,
        )
    }

    #[test]
    fn starts_complete_and_base_never_churns() {
        let s = ChurnSchedule::new(100, 0.2, 5.0, 3);
        assert!(s.absent_at(0).is_empty());
        for epoch in 0..500 {
            assert!(!s.is_absent(BASE_STATION, epoch));
        }
    }

    #[test]
    fn events_partition_transitions_and_match_absent_sets() {
        let s = ChurnSchedule::new(60, 0.1, 4.0, 9);
        let mut prev_absent = s.absent_at(0);
        let mut any_left = false;
        let mut any_joined = false;
        for epoch in 1..200 {
            let ev = s.events_at(epoch);
            assert_eq!(ev.absent, s.absent_at(epoch));
            // absent(e) = absent(e-1) + left − joined.
            let mut expect = prev_absent.clone();
            expect.retain(|n| !ev.joined.contains(n));
            expect.extend(ev.left.iter().copied());
            expect.sort_unstable();
            assert_eq!(ev.absent, expect, "epoch {epoch}");
            any_left |= !ev.left.is_empty();
            any_joined |= !ev.joined.is_empty();
            prev_absent = ev.absent;
        }
        assert!(any_left && any_joined, "no churn ever fired");
    }

    #[test]
    fn stationary_absence_matches_occupancy() {
        let s = ChurnSchedule::new(80, 0.05, 5.0, 21);
        let pi = s.stationary_absence();
        assert!((pi - 0.2).abs() < 1e-12);
        let mut down = 0usize;
        let mut total = 0usize;
        // Skip the all-up transient at the start.
        for epoch in 200..600 {
            down += s.absent_at(epoch).len();
            total += 79;
        }
        let frac = down as f64 / total as f64;
        assert!((frac - pi).abs() < 0.03, "absence {frac} vs {pi}");
    }

    #[test]
    fn disabled_schedule_never_fires() {
        let s = ChurnSchedule::disabled(40);
        assert!(!s.is_enabled());
        for epoch in 0..100 {
            assert!(s.absent_at(epoch).is_empty());
            assert!(s.events_at(epoch).is_empty());
        }
    }

    #[test]
    fn overlay_silences_absent_nodes_and_composes() {
        let net = net3();
        let s = ChurnSchedule::new(3, 0.3, 4.0, 17);
        let epoch = (1..500)
            .find(|&e| s.is_absent(NodeId(1), e))
            .expect("node 1 eventually leaves");
        let m = s.overlay(NoLoss);
        assert_eq!(m.loss_rate(NodeId(1), NodeId(0), &net, epoch), 1.0);
        assert_eq!(m.loss_rate(NodeId(0), NodeId(1), &net, epoch), 1.0);
        let present = (1..500).find(|&e| !s.is_absent(NodeId(2), e)).unwrap();
        assert_eq!(m.loss_rate(NodeId(2), NodeId(0), &net, present), 0.0);
        // Composition with DeadNodes: both failure sources apply.
        let dead = DeadNodes::new(&[NodeId(2)], 3, s.overlay(NoLoss));
        assert_eq!(dead.loss_rate(NodeId(2), NodeId(0), &net, present), 1.0);
        assert_eq!(dead.loss_rate(NodeId(1), NodeId(0), &net, epoch), 1.0);
    }

    #[test]
    fn schedule_is_deterministic_across_clones() {
        let a = ChurnSchedule::new(50, 0.1, 6.0, 33);
        let b = a.clone();
        for epoch in (0..120).rev() {
            assert_eq!(a.absent_at(epoch), b.absent_at(epoch));
        }
    }
}
