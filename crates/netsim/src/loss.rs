//! Message-loss models and delivery primitives.
//!
//! Wireless sensor networks commonly see up to 30% message loss ([23] in
//! the paper), and the evaluation sweeps loss rates from 0 to 1 under two
//! failure models (§7.1):
//!
//! * [`Global`]`(p)` — every transmission is dropped independently with
//!   probability `p`.
//! * [`Regional`]`(p1, p2)` — transmissions *sent by* nodes inside a
//!   rectangular failure region are dropped with probability `p1`, everyone
//!   else with `p2`. (The paper attributes the loss rate to nodes in the
//!   region; we interpret this as sender-side loss, which matches how the
//!   delta region reacts in Figure 4.)
//! * [`DistanceLoss`] — per-link loss rising with distance, used by the
//!   LabData reconstruction where link quality was measured per pair.
//! * [`Timeline`] — switches between models at given epochs, for the
//!   dynamic scenario of Figure 6.
//! * [`DeadNodes`] — failure injection: listed nodes never deliver.
//!
//! Loss is receiver-independent for unicast and receiver-*dependent* for
//! broadcast: when a node broadcasts, each potential receiver flips its own
//! coin, which is what gives multi-path its robustness (each reading must be
//! lost on *all* paths to disappear).

use crate::network::Network;
use crate::node::{NodeId, Rect};
use rand::Rng;

/// A message-loss model: the probability that a single transmission from
/// `from` to `to` at `epoch` is lost.
///
/// Implementations must be pure functions of their arguments so simulations
/// are reproducible; all randomness happens in the delivery helpers.
pub trait LossModel: Send + Sync {
    /// Probability in `[0, 1]` that a transmission `from -> to` during
    /// `epoch` is lost.
    fn loss_rate(&self, from: NodeId, to: NodeId, net: &Network, epoch: u64) -> f64;

    /// Sample whether a single transmission is delivered.
    fn delivered<R: Rng + ?Sized>(
        &self,
        from: NodeId,
        to: NodeId,
        net: &Network,
        epoch: u64,
        rng: &mut R,
    ) -> bool
    where
        Self: Sized,
    {
        let p = self.loss_rate(from, to, net, epoch);
        debug_assert!((0.0..=1.0).contains(&p), "loss rate {p} out of range");
        // A draw below `p` drops the message; p = 0 never drops, p = 1
        // always drops (`gen` is in [0, 1)).
        rng.gen::<f64>() >= p
    }
}

/// Blanket impl so `&M` and boxed models are usable wherever a model is.
impl<M: LossModel + ?Sized> LossModel for &M {
    fn loss_rate(&self, from: NodeId, to: NodeId, net: &Network, epoch: u64) -> f64 {
        (**self).loss_rate(from, to, net, epoch)
    }
}

impl LossModel for Box<dyn LossModel> {
    fn loss_rate(&self, from: NodeId, to: NodeId, net: &Network, epoch: u64) -> f64 {
        (**self).loss_rate(from, to, net, epoch)
    }
}

/// Perfect channel: nothing is ever lost.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoLoss;

impl LossModel for NoLoss {
    fn loss_rate(&self, _: NodeId, _: NodeId, _: &Network, _: u64) -> f64 {
        0.0
    }
}

/// The paper's `Global(p)` failure model: uniform loss everywhere.
#[derive(Clone, Copy, Debug)]
pub struct Global {
    p: f64,
}

impl Global {
    /// Create a global loss model with rate `p`.
    ///
    /// # Panics
    /// Panics unless `0 <= p <= 1`.
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "loss rate {p} out of [0,1]");
        Global { p }
    }

    /// The loss rate.
    pub fn rate(&self) -> f64 {
        self.p
    }
}

impl LossModel for Global {
    fn loss_rate(&self, _: NodeId, _: NodeId, _: &Network, _: u64) -> f64 {
        self.p
    }
}

/// The paper's `Regional(p1, p2)` failure model: senders inside `region`
/// lose messages at `p_inside`, all other senders at `p_outside`.
#[derive(Clone, Copy, Debug)]
pub struct Regional {
    region: Rect,
    p_inside: f64,
    p_outside: f64,
}

impl Regional {
    /// Create a regional loss model.
    ///
    /// # Panics
    /// Panics unless both rates are in `[0, 1]`.
    pub fn new(region: Rect, p_inside: f64, p_outside: f64) -> Self {
        assert!((0.0..=1.0).contains(&p_inside), "p_inside out of [0,1]");
        assert!((0.0..=1.0).contains(&p_outside), "p_outside out of [0,1]");
        Regional {
            region,
            p_inside,
            p_outside,
        }
    }

    /// The failure region.
    pub fn region(&self) -> Rect {
        self.region
    }

    /// Loss rate for senders inside the region.
    pub fn p_inside(&self) -> f64 {
        self.p_inside
    }

    /// Loss rate for senders outside the region.
    pub fn p_outside(&self) -> f64 {
        self.p_outside
    }
}

impl LossModel for Regional {
    fn loss_rate(&self, from: NodeId, _: NodeId, net: &Network, _: u64) -> f64 {
        if self.region.contains(net.position(from)) {
            self.p_inside
        } else {
            self.p_outside
        }
    }
}

/// Distance-dependent link loss: `p(d) = floor + (ceiling - floor) *
/// (d / range)^steepness`, clamped to `[floor, ceiling]`.
///
/// This is the standard empirical shape for mote radios (loss low in the
/// connected region, rising sharply near the range edge [23]) and is what
/// the LabData reconstruction uses in place of the measured per-link rates.
#[derive(Clone, Copy, Debug)]
pub struct DistanceLoss {
    floor: f64,
    ceiling: f64,
    steepness: f64,
}

impl DistanceLoss {
    /// Create a distance-based loss model.
    ///
    /// # Panics
    /// Panics unless `0 <= floor <= ceiling <= 1` and `steepness > 0`.
    pub fn new(floor: f64, ceiling: f64, steepness: f64) -> Self {
        assert!((0.0..=1.0).contains(&floor));
        assert!((0.0..=1.0).contains(&ceiling));
        assert!(floor <= ceiling, "floor {floor} > ceiling {ceiling}");
        assert!(steepness > 0.0);
        DistanceLoss {
            floor,
            ceiling,
            steepness,
        }
    }
}

impl LossModel for DistanceLoss {
    fn loss_rate(&self, from: NodeId, to: NodeId, net: &Network, _: u64) -> f64 {
        let frac = (net.distance(from, to) / net.range()).clamp(0.0, 1.0);
        self.floor + (self.ceiling - self.floor) * frac.powf(self.steepness)
    }
}

/// A loss model that switches between phases at fixed epochs — the dynamic
/// scenario of Figure 6 (`Global(0)` → `Regional(0.3,0)` at t=100 →
/// `Global(0.3)` at t=200 → `Global(0)` at t=300).
pub struct Timeline {
    /// `(start_epoch, model)` phases, sorted by `start_epoch`; the phase in
    /// effect at epoch `e` is the last one with `start_epoch <= e`.
    phases: Vec<(u64, Box<dyn LossModel>)>,
}

impl Timeline {
    /// Create a timeline from `(start_epoch, model)` phases.
    ///
    /// # Panics
    /// Panics if `phases` is empty, unsorted, or does not start at epoch 0.
    pub fn new(phases: Vec<(u64, Box<dyn LossModel>)>) -> Self {
        assert!(!phases.is_empty(), "timeline needs at least one phase");
        assert_eq!(phases[0].0, 0, "first phase must start at epoch 0");
        assert!(
            phases.windows(2).all(|w| w[0].0 < w[1].0),
            "phases must be strictly sorted by start epoch"
        );
        Timeline { phases }
    }

    /// Which phase index is in effect at `epoch`.
    pub fn phase_at(&self, epoch: u64) -> usize {
        match self.phases.binary_search_by_key(&epoch, |p| p.0) {
            Ok(i) => i,
            Err(i) => i - 1,
        }
    }
}

impl LossModel for Timeline {
    fn loss_rate(&self, from: NodeId, to: NodeId, net: &Network, epoch: u64) -> f64 {
        self.phases[self.phase_at(epoch)]
            .1
            .loss_rate(from, to, net, epoch)
    }
}

/// Failure injection: the listed nodes are dead — every transmission they
/// send is lost (receivers never hear them). Wraps an inner model for the
/// remaining nodes.
pub struct DeadNodes<M> {
    dead: Vec<bool>,
    inner: M,
}

impl<M: LossModel> DeadNodes<M> {
    /// Mark `dead` nodes on top of `inner`.
    pub fn new(dead_ids: &[NodeId], num_nodes: usize, inner: M) -> Self {
        let mut dead = vec![false; num_nodes];
        for id in dead_ids {
            dead[id.index()] = true;
        }
        DeadNodes { dead, inner }
    }
}

impl<M: LossModel> LossModel for DeadNodes<M> {
    fn loss_rate(&self, from: NodeId, to: NodeId, net: &Network, epoch: u64) -> f64 {
        if self.dead.get(from.index()).copied().unwrap_or(false)
            || self.dead.get(to.index()).copied().unwrap_or(false)
        {
            1.0
        } else {
            self.inner.loss_rate(from, to, net, epoch)
        }
    }
}

/// Per-link loss-rate table; links not in the table fall back to `default`.
/// Used to replay measured link-quality matrices.
#[derive(Clone, Debug)]
pub struct PerLink {
    rates: std::collections::BTreeMap<(u32, u32), f64>,
    default: f64,
}

impl PerLink {
    /// Create a per-link table with a default rate for unlisted pairs.
    pub fn new(default: f64) -> Self {
        assert!((0.0..=1.0).contains(&default));
        PerLink {
            rates: std::collections::BTreeMap::new(),
            default,
        }
    }

    /// Set the loss rate of the directed link `from -> to`.
    pub fn set(&mut self, from: NodeId, to: NodeId, rate: f64) -> &mut Self {
        assert!((0.0..=1.0).contains(&rate));
        self.rates.insert((from.0, to.0), rate);
        self
    }

    /// Set the loss rate in both directions.
    pub fn set_symmetric(&mut self, a: NodeId, b: NodeId, rate: f64) -> &mut Self {
        self.set(a, b, rate);
        self.set(b, a, rate)
    }
}

impl LossModel for PerLink {
    fn loss_rate(&self, from: NodeId, to: NodeId, _: &Network, _: u64) -> f64 {
        self.rates
            .get(&(from.0, to.0))
            .copied()
            .unwrap_or(self.default)
    }
}

/// Retransmission policy for tree links (§7.4.3): a sender retries a failed
/// unicast up to `retries` extra times. Each retry costs a transmission and
/// waits for an acknowledgment, so latency and channel capacity suffer
/// (modeled by the caller via [`attempts_used`](RetransmitOutcome)).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Retransmit {
    /// Number of retries after the first attempt (0 = plain unicast).
    pub retries: u32,
}

/// Result of a (possibly retransmitted) unicast.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetransmitOutcome {
    /// Whether any attempt succeeded.
    pub delivered: bool,
    /// How many transmissions were actually sent (1..=1+retries).
    pub attempts_used: u32,
}

/// Send one message over a tree link with optional retransmissions.
pub fn unicast<M: LossModel, R: Rng + ?Sized>(
    model: &M,
    policy: Retransmit,
    from: NodeId,
    to: NodeId,
    net: &Network,
    epoch: u64,
    rng: &mut R,
) -> RetransmitOutcome {
    let mut attempts_used = 0;
    for _ in 0..=policy.retries {
        attempts_used += 1;
        if model.delivered(from, to, net, epoch, rng) {
            return RetransmitOutcome {
                delivered: true,
                attempts_used,
            };
        }
    }
    RetransmitOutcome {
        delivered: false,
        attempts_used,
    }
}

/// Broadcast one message to a set of potential receivers: each receiver
/// independently hears it or not. Returns the receivers that heard it.
///
/// This is the physical-layer behaviour multi-path aggregation exploits:
/// one transmission, many chances to be heard.
pub fn broadcast<M: LossModel, R: Rng + ?Sized>(
    model: &M,
    from: NodeId,
    receivers: &[NodeId],
    net: &Network,
    epoch: u64,
    rng: &mut R,
) -> Vec<NodeId> {
    receivers
        .iter()
        .copied()
        .filter(|&to| model.delivered(from, to, net, epoch, rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Position;
    use crate::rng::rng_from_seed;

    fn line_net() -> Network {
        Network::new(
            vec![
                Position::new(0.0, 0.0),
                Position::new(1.0, 0.0),
                Position::new(2.0, 0.0),
                Position::new(11.0, 0.0),
            ],
            1.5,
        )
    }

    #[test]
    fn no_loss_always_delivers() {
        let net = line_net();
        let mut rng = rng_from_seed(0);
        for _ in 0..100 {
            assert!(NoLoss.delivered(NodeId(1), NodeId(0), &net, 0, &mut rng));
        }
    }

    #[test]
    fn global_one_never_delivers() {
        let net = line_net();
        let mut rng = rng_from_seed(0);
        let m = Global::new(1.0);
        for _ in 0..100 {
            assert!(!m.delivered(NodeId(1), NodeId(0), &net, 0, &mut rng));
        }
    }

    #[test]
    fn global_rate_empirical() {
        let net = line_net();
        let mut rng = rng_from_seed(42);
        let m = Global::new(0.3);
        let trials = 20_000;
        let delivered = (0..trials)
            .filter(|_| m.delivered(NodeId(1), NodeId(0), &net, 0, &mut rng))
            .count();
        let rate = delivered as f64 / trials as f64;
        assert!((rate - 0.7).abs() < 0.02, "delivery rate {rate}");
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn global_rejects_bad_rate() {
        let _ = Global::new(1.5);
    }

    #[test]
    fn regional_rates_by_sender_position() {
        let net = line_net();
        let region = Rect::from_coords(0.0, -1.0, 1.5, 1.0); // contains nodes 0,1
        let m = Regional::new(region, 0.8, 0.05);
        assert_eq!(m.loss_rate(NodeId(1), NodeId(2), &net, 0), 0.8);
        assert_eq!(m.loss_rate(NodeId(2), NodeId(1), &net, 0), 0.05);
    }

    #[test]
    fn distance_loss_monotonic() {
        let net = line_net();
        let m = DistanceLoss::new(0.05, 0.6, 2.0);
        let near = m.loss_rate(NodeId(0), NodeId(1), &net, 0); // d = 1.0
        let base_adj = m.loss_rate(NodeId(1), NodeId(2), &net, 0); // d = 1.0
        assert!((near - base_adj).abs() < 1e-12);
        // distance 2 > range 1.5 clamps to ceiling
        let far = m.loss_rate(NodeId(0), NodeId(2), &net, 0);
        assert!((far - 0.6).abs() < 1e-12);
        assert!(near < far);
        assert!(near >= 0.05);
    }

    #[test]
    fn timeline_switches_phases() {
        let net = line_net();
        let t = Timeline::new(vec![
            (0, Box::new(NoLoss) as Box<dyn LossModel>),
            (100, Box::new(Global::new(0.3))),
            (200, Box::new(NoLoss)),
        ]);
        assert_eq!(t.loss_rate(NodeId(1), NodeId(0), &net, 0), 0.0);
        assert_eq!(t.loss_rate(NodeId(1), NodeId(0), &net, 99), 0.0);
        assert_eq!(t.loss_rate(NodeId(1), NodeId(0), &net, 100), 0.3);
        assert_eq!(t.loss_rate(NodeId(1), NodeId(0), &net, 199), 0.3);
        assert_eq!(t.loss_rate(NodeId(1), NodeId(0), &net, 200), 0.0);
        assert_eq!(t.loss_rate(NodeId(1), NodeId(0), &net, 5000), 0.0);
        assert_eq!(t.phase_at(150), 1);
    }

    #[test]
    #[should_panic(expected = "first phase must start at epoch 0")]
    fn timeline_must_start_at_zero() {
        let _ = Timeline::new(vec![(5, Box::new(NoLoss) as Box<dyn LossModel>)]);
    }

    #[test]
    fn dead_nodes_never_send_or_receive() {
        let net = line_net();
        let m = DeadNodes::new(&[NodeId(1)], net.len(), NoLoss);
        assert_eq!(m.loss_rate(NodeId(1), NodeId(0), &net, 0), 1.0);
        assert_eq!(m.loss_rate(NodeId(2), NodeId(1), &net, 0), 1.0);
        assert_eq!(m.loss_rate(NodeId(2), NodeId(0), &net, 0), 0.0);
    }

    #[test]
    fn per_link_overrides_and_default() {
        let net = line_net();
        let mut m = PerLink::new(0.1);
        m.set(NodeId(1), NodeId(0), 0.5);
        assert_eq!(m.loss_rate(NodeId(1), NodeId(0), &net, 0), 0.5);
        assert_eq!(m.loss_rate(NodeId(0), NodeId(1), &net, 0), 0.1);
        m.set_symmetric(NodeId(1), NodeId(2), 0.9);
        assert_eq!(m.loss_rate(NodeId(1), NodeId(2), &net, 0), 0.9);
        assert_eq!(m.loss_rate(NodeId(2), NodeId(1), &net, 0), 0.9);
    }

    #[test]
    fn retransmission_improves_delivery() {
        let net = line_net();
        let m = Global::new(0.5);
        let trials = 10_000;
        let mut rng = rng_from_seed(9);
        let mut plain = 0;
        let mut retried = 0;
        for _ in 0..trials {
            if unicast(
                &m,
                Retransmit { retries: 0 },
                NodeId(1),
                NodeId(0),
                &net,
                0,
                &mut rng,
            )
            .delivered
            {
                plain += 1;
            }
            if unicast(
                &m,
                Retransmit { retries: 2 },
                NodeId(1),
                NodeId(0),
                &net,
                0,
                &mut rng,
            )
            .delivered
            {
                retried += 1;
            }
        }
        let p_plain = plain as f64 / trials as f64;
        let p_retried = retried as f64 / trials as f64;
        assert!((p_plain - 0.5).abs() < 0.03, "{p_plain}");
        // 1 - 0.5^3 = 0.875
        assert!((p_retried - 0.875).abs() < 0.03, "{p_retried}");
    }

    #[test]
    fn retransmit_attempts_accounting() {
        let net = line_net();
        let mut rng = rng_from_seed(1);
        let all_fail = unicast(
            &Global::new(1.0),
            Retransmit { retries: 2 },
            NodeId(1),
            NodeId(0),
            &net,
            0,
            &mut rng,
        );
        assert!(!all_fail.delivered);
        assert_eq!(all_fail.attempts_used, 3);
        let first_try = unicast(
            &NoLoss,
            Retransmit { retries: 2 },
            NodeId(1),
            NodeId(0),
            &net,
            0,
            &mut rng,
        );
        assert!(first_try.delivered);
        assert_eq!(first_try.attempts_used, 1);
    }

    #[test]
    fn broadcast_hits_subset() {
        let net = line_net();
        let mut rng = rng_from_seed(5);
        let receivers = [NodeId(0), NodeId(2)];
        let heard = broadcast(&NoLoss, NodeId(1), &receivers, &net, 0, &mut rng);
        assert_eq!(heard, vec![NodeId(0), NodeId(2)]);
        let none = broadcast(&Global::new(1.0), NodeId(1), &receivers, &net, 0, &mut rng);
        assert!(none.is_empty());
    }

    #[test]
    fn broadcast_receivers_independent() {
        // With p=0.5 and 2 receivers, P(exactly one hears) = 0.5; a
        // correlated implementation would give 0.
        let net = line_net();
        let mut rng = rng_from_seed(11);
        let m = Global::new(0.5);
        let receivers = [NodeId(0), NodeId(2)];
        let mut exactly_one = 0;
        let trials = 10_000;
        for _ in 0..trials {
            if broadcast(&m, NodeId(1), &receivers, &net, 0, &mut rng).len() == 1 {
                exactly_one += 1;
            }
        }
        let frac = exactly_one as f64 / trials as f64;
        assert!((frac - 0.5).abs() < 0.03, "{frac}");
    }
}
