//! Message-loss models and delivery primitives.
//!
//! Wireless sensor networks commonly see up to 30% message loss (\[23\] in
//! the paper), and the evaluation sweeps loss rates from 0 to 1 under two
//! failure models (§7.1):
//!
//! * [`Global`]`(p)` — every transmission is dropped independently with
//!   probability `p`.
//! * [`Regional`]`(p1, p2)` — transmissions *sent by* nodes inside a
//!   rectangular failure region are dropped with probability `p1`, everyone
//!   else with `p2`. (The paper attributes the loss rate to nodes in the
//!   region; we interpret this as sender-side loss, which matches how the
//!   delta region reacts in Figure 4.)
//! * [`DistanceLoss`] — per-link loss rising with distance, used by the
//!   LabData reconstruction where link quality was measured per pair.
//! * [`Timeline`] — switches between models at given epochs, for the
//!   dynamic scenario of Figure 6.
//! * [`DeadNodes`] — failure injection: listed nodes never deliver.
//! * [`GilbertElliott`] — temporally **correlated** burst loss: a
//!   per-sender (or per-link) two-state Good/Bad Markov channel stepped
//!   once per epoch. With equal Good/Bad drop rates it reduces bit for
//!   bit to [`Global`] — the state machinery draws from its own seeded
//!   substream, never from the delivery RNG.
//!
//! Loss is receiver-independent for unicast and receiver-*dependent* for
//! broadcast: when a node broadcasts, each potential receiver flips its own
//! coin, which is what gives multi-path its robustness (each reading must be
//! lost on *all* paths to disappear).

use crate::network::Network;
use crate::node::{NodeId, Rect};
use rand::Rng;

/// A message-loss model: the probability that a single transmission from
/// `from` to `to` at `epoch` is lost.
///
/// Implementations must be pure functions of their arguments so simulations
/// are reproducible; all randomness happens in the delivery helpers.
pub trait LossModel: Send + Sync {
    /// Probability in `[0, 1]` that a transmission `from -> to` during
    /// `epoch` is lost.
    fn loss_rate(&self, from: NodeId, to: NodeId, net: &Network, epoch: u64) -> f64;

    /// Sample whether a single transmission is delivered.
    fn delivered<R: Rng + ?Sized>(
        &self,
        from: NodeId,
        to: NodeId,
        net: &Network,
        epoch: u64,
        rng: &mut R,
    ) -> bool
    where
        Self: Sized,
    {
        let p = self.loss_rate(from, to, net, epoch);
        debug_assert!((0.0..=1.0).contains(&p), "loss rate {p} out of range");
        // A draw below `p` drops the message; p = 0 never drops, p = 1
        // always drops (`gen` is in [0, 1)).
        rng.gen::<f64>() >= p
    }
}

/// Blanket impl so `&M` and boxed models are usable wherever a model is.
impl<M: LossModel + ?Sized> LossModel for &M {
    fn loss_rate(&self, from: NodeId, to: NodeId, net: &Network, epoch: u64) -> f64 {
        (**self).loss_rate(from, to, net, epoch)
    }
}

impl LossModel for Box<dyn LossModel> {
    fn loss_rate(&self, from: NodeId, to: NodeId, net: &Network, epoch: u64) -> f64 {
        (**self).loss_rate(from, to, net, epoch)
    }
}

/// Perfect channel: nothing is ever lost.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoLoss;

impl LossModel for NoLoss {
    fn loss_rate(&self, _: NodeId, _: NodeId, _: &Network, _: u64) -> f64 {
        0.0
    }
}

/// The paper's `Global(p)` failure model: uniform loss everywhere.
#[derive(Clone, Copy, Debug)]
pub struct Global {
    p: f64,
}

impl Global {
    /// Create a global loss model with rate `p`.
    ///
    /// # Panics
    /// Panics unless `0 <= p <= 1`.
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "loss rate {p} out of [0,1]");
        Global { p }
    }

    /// The loss rate.
    pub fn rate(&self) -> f64 {
        self.p
    }
}

impl LossModel for Global {
    fn loss_rate(&self, _: NodeId, _: NodeId, _: &Network, _: u64) -> f64 {
        self.p
    }
}

/// The paper's `Regional(p1, p2)` failure model: senders inside `region`
/// lose messages at `p_inside`, all other senders at `p_outside`.
#[derive(Clone, Copy, Debug)]
pub struct Regional {
    region: Rect,
    p_inside: f64,
    p_outside: f64,
}

impl Regional {
    /// Create a regional loss model.
    ///
    /// # Panics
    /// Panics unless both rates are in `[0, 1]`.
    pub fn new(region: Rect, p_inside: f64, p_outside: f64) -> Self {
        assert!((0.0..=1.0).contains(&p_inside), "p_inside out of [0,1]");
        assert!((0.0..=1.0).contains(&p_outside), "p_outside out of [0,1]");
        Regional {
            region,
            p_inside,
            p_outside,
        }
    }

    /// The failure region.
    pub fn region(&self) -> Rect {
        self.region
    }

    /// Loss rate for senders inside the region.
    pub fn p_inside(&self) -> f64 {
        self.p_inside
    }

    /// Loss rate for senders outside the region.
    pub fn p_outside(&self) -> f64 {
        self.p_outside
    }
}

impl LossModel for Regional {
    fn loss_rate(&self, from: NodeId, _: NodeId, net: &Network, _: u64) -> f64 {
        if self.region.contains(net.position(from)) {
            self.p_inside
        } else {
            self.p_outside
        }
    }
}

/// Distance-dependent link loss: `p(d) = floor + (ceiling - floor) *
/// (d / range)^steepness`, clamped to `[floor, ceiling]`.
///
/// This is the standard empirical shape for mote radios (loss low in the
/// connected region, rising sharply near the range edge \[23\]) and is what
/// the LabData reconstruction uses in place of the measured per-link rates.
#[derive(Clone, Copy, Debug)]
pub struct DistanceLoss {
    floor: f64,
    ceiling: f64,
    steepness: f64,
}

impl DistanceLoss {
    /// Create a distance-based loss model.
    ///
    /// # Panics
    /// Panics unless `0 <= floor <= ceiling <= 1` and `steepness > 0`.
    pub fn new(floor: f64, ceiling: f64, steepness: f64) -> Self {
        assert!((0.0..=1.0).contains(&floor));
        assert!((0.0..=1.0).contains(&ceiling));
        assert!(floor <= ceiling, "floor {floor} > ceiling {ceiling}");
        assert!(steepness > 0.0);
        DistanceLoss {
            floor,
            ceiling,
            steepness,
        }
    }
}

impl LossModel for DistanceLoss {
    fn loss_rate(&self, from: NodeId, to: NodeId, net: &Network, _: u64) -> f64 {
        let frac = (net.distance(from, to) / net.range()).clamp(0.0, 1.0);
        self.floor + (self.ceiling - self.floor) * frac.powf(self.steepness)
    }
}

/// A loss model that switches between phases at fixed epochs — the dynamic
/// scenario of Figure 6 (`Global(0)` → `Regional(0.3,0)` at t=100 →
/// `Global(0.3)` at t=200 → `Global(0)` at t=300).
pub struct Timeline {
    /// `(start_epoch, model)` phases, sorted by `start_epoch`; the phase in
    /// effect at epoch `e` is the last one with `start_epoch <= e`.
    phases: Vec<(u64, Box<dyn LossModel>)>,
}

impl Timeline {
    /// Create a timeline from `(start_epoch, model)` phases.
    ///
    /// # Panics
    /// Panics if `phases` is empty, unsorted, or does not start at epoch 0.
    pub fn new(phases: Vec<(u64, Box<dyn LossModel>)>) -> Self {
        assert!(!phases.is_empty(), "timeline needs at least one phase");
        assert_eq!(phases[0].0, 0, "first phase must start at epoch 0");
        assert!(
            phases.windows(2).all(|w| w[0].0 < w[1].0),
            "phases must be strictly sorted by start epoch"
        );
        Timeline { phases }
    }

    /// Which phase index is in effect at `epoch`.
    pub fn phase_at(&self, epoch: u64) -> usize {
        match self.phases.binary_search_by_key(&epoch, |p| p.0) {
            Ok(i) => i,
            Err(i) => i - 1,
        }
    }
}

impl LossModel for Timeline {
    fn loss_rate(&self, from: NodeId, to: NodeId, net: &Network, epoch: u64) -> f64 {
        self.phases[self.phase_at(epoch)]
            .1
            .loss_rate(from, to, net, epoch)
    }
}

/// Failure injection: the listed nodes are dead — every transmission they
/// send is lost (receivers never hear them). Wraps an inner model for the
/// remaining nodes.
pub struct DeadNodes<M> {
    dead: Vec<bool>,
    inner: M,
}

impl<M: LossModel> DeadNodes<M> {
    /// Mark `dead` nodes on top of `inner`.
    pub fn new(dead_ids: &[NodeId], num_nodes: usize, inner: M) -> Self {
        let mut dead = vec![false; num_nodes];
        for id in dead_ids {
            dead[id.index()] = true;
        }
        DeadNodes { dead, inner }
    }
}

impl<M: LossModel> LossModel for DeadNodes<M> {
    fn loss_rate(&self, from: NodeId, to: NodeId, net: &Network, epoch: u64) -> f64 {
        if self.dead.get(from.index()).copied().unwrap_or(false)
            || self.dead.get(to.index()).copied().unwrap_or(false)
        {
            1.0
        } else {
            self.inner.loss_rate(from, to, net, epoch)
        }
    }
}

/// Whose channel state a [`GilbertElliott`] chain tracks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BurstScope {
    /// One Good/Bad chain per **sender**: a node in a bad state loses
    /// every transmission it makes that epoch (interference or a duty
    /// cycle local to the mote). This is the default — it correlates a
    /// sender's unicast and broadcast fates the way a shared radio does.
    #[default]
    PerSender,
    /// One chain per **directed link**: fading is local to a pair, so a
    /// sender can be bad toward one receiver and fine toward another.
    PerLink,
}

/// The Gilbert–Elliott two-state burst-loss channel: each sender (or
/// directed link, per [`BurstScope`]) is in a *Good* or *Bad* state,
/// dropping transmissions with `p_good` / `p_bad` respectively, and the
/// state evolves once per **epoch** as a two-state Markov chain
/// (`p_enter_bad` = P(Good→Bad), `p_exit_bad` = P(Bad→Good), so the
/// mean burst lasts `1/p_exit_bad` epochs). This is the standard model
/// for temporally correlated wireless loss — the failure shape i.i.d.
/// Bernoulli sweeps can't produce: entire epochs where a subtree's
/// uplink is gone, then quiet stretches at the same average rate.
///
/// Chain states start in the stationary distribution (rate-matched from
/// epoch 0) and are a pure function of `(seed, entity, epoch)` drawn
/// from a private hash substream ([`crate::markov::BinaryMarkov`]) —
/// **not** from the delivery RNG passed to
/// [`delivered`](LossModel::delivered). Two consequences:
///
/// * simulations stay bit-for-bit reproducible and scheme-comparable
///   (every scheme sees the identical burst trajectory under one seed);
/// * with `p_good == p_bad == p` the model is **bit-identical** to
///   [`Global`]`(p)`: the returned rate is the constant `p` whatever
///   the hidden state, and the delivery RNG consumption is unchanged.
///
/// ```
/// use td_netsim::loss::{GilbertElliott, Global, LossModel};
/// use td_netsim::network::Network;
/// use td_netsim::node::{NodeId, Position};
/// use td_netsim::rng::rng_from_seed;
///
/// let net = Network::new(vec![Position::new(0.0, 0.0), Position::new(1.0, 0.0)], 1.5);
/// // ~20% average loss arriving in bursts of mean length 8 epochs.
/// let bursty = GilbertElliott::bursty(0.2, 8.0, 0.9, 7);
/// assert!((bursty.stationary_loss() - 0.2).abs() < 1e-12);
///
/// // Equal Good/Bad rates reduce to Bernoulli bit for bit.
/// let ge = GilbertElliott::new(0.3, 0.3, 0.1, 0.2, 7);
/// let (mut a, mut b) = (rng_from_seed(1), rng_from_seed(1));
/// for epoch in 0..50 {
///     assert_eq!(
///         ge.delivered(NodeId(1), NodeId(0), &net, epoch, &mut a),
///         Global::new(0.3).delivered(NodeId(1), NodeId(0), &net, epoch, &mut b),
///     );
/// }
/// ```
#[derive(Clone, Debug)]
pub struct GilbertElliott {
    p_good: f64,
    p_bad: f64,
    chain: crate::markov::BinaryMarkov,
    scope: BurstScope,
}

impl GilbertElliott {
    /// Create a per-sender burst channel. `p_good`/`p_bad` are the drop
    /// probabilities in the Good/Bad states; `p_enter_bad`/`p_exit_bad`
    /// are the per-epoch transition probabilities. `seed` drives the
    /// state chains only (derive it per trial via
    /// [`crate::rng::derive_seed`] so trials see independent bursts).
    ///
    /// # Panics
    /// Panics unless all four probabilities are in `[0, 1]`.
    pub fn new(p_good: f64, p_bad: f64, p_enter_bad: f64, p_exit_bad: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p_good), "p_good out of [0,1]");
        assert!((0.0..=1.0).contains(&p_bad), "p_bad out of [0,1]");
        GilbertElliott {
            p_good,
            p_bad,
            chain: crate::markov::BinaryMarkov::new(
                p_enter_bad,
                p_exit_bad,
                crate::markov::StartState::Stationary,
                seed,
            ),
            scope: BurstScope::PerSender,
        }
    }

    /// A burst channel hitting an average loss rate of `mean_loss` with
    /// bursts of mean length `mean_burst_len` epochs: the Bad state
    /// drops at `p_bad`, the Good state at 0, and the stationary Bad
    /// occupancy is sized to `mean_loss / p_bad`. This is the
    /// rate-matched counterpart of [`Global`]`(mean_loss)` for burst
    /// sweeps: same long-run loss, different temporal clustering.
    ///
    /// # Panics
    /// Panics unless `0 <= mean_loss < p_bad <= 1`,
    /// `mean_burst_len >= 1`, and the combination is feasible: hitting
    /// the target occupancy needs `P(Good→Bad) ≤ 1`, i.e. the mean Good
    /// sojourn `(1 − π_bad)·burst/π_bad` must last at least one epoch.
    /// (Rejecting infeasible points beats silently clamping to a
    /// channel whose realized loss undershoots the requested mean.)
    pub fn bursty(mean_loss: f64, mean_burst_len: f64, p_bad: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p_bad), "p_bad out of [0,1]");
        assert!(
            (0.0..p_bad).contains(&mean_loss),
            "mean_loss {mean_loss} must sit below p_bad {p_bad}"
        );
        assert!(mean_burst_len >= 1.0, "bursts last at least one epoch");
        let pi_bad = mean_loss / p_bad;
        let p_exit = 1.0 / mean_burst_len;
        let p_enter = pi_bad * p_exit / (1.0 - pi_bad);
        assert!(
            p_enter <= 1.0,
            "infeasible burst shape: occupancy {pi_bad:.3} with bursts of \
             {mean_burst_len} epochs needs P(Good->Bad) = {p_enter:.3} > 1; \
             lengthen the bursts or lower mean_loss/raise p_bad"
        );
        GilbertElliott::new(0.0, p_bad, p_enter, p_exit, seed)
    }

    /// Track one chain per directed link instead of per sender.
    pub fn per_link(mut self) -> Self {
        self.scope = BurstScope::PerLink;
        self
    }

    /// The long-run average loss rate
    /// (`π_bad · p_bad + (1 − π_bad) · p_good`).
    pub fn stationary_loss(&self) -> f64 {
        let pi = self.chain.stationary_p1();
        pi * self.p_bad + (1.0 - pi) * self.p_good
    }

    /// Mean Bad-state sojourn in epochs (`1 / p_exit_bad`; infinite if
    /// the Bad state never exits).
    pub fn mean_burst_len(&self) -> f64 {
        1.0 / self.chain.rates().1
    }

    /// Whether the entity behind `from -> to` is in the Bad state at
    /// `epoch` (introspection for tests and telemetry).
    pub fn in_bad_state(&self, from: NodeId, to: NodeId, epoch: u64) -> bool {
        self.chain.state_at(self.key(from, to), epoch)
    }

    /// The chain key of a transmission under the configured scope.
    #[inline]
    fn key(&self, from: NodeId, to: NodeId) -> u64 {
        match self.scope {
            BurstScope::PerSender => from.0 as u64,
            BurstScope::PerLink => ((from.0 as u64) << 32) | to.0 as u64,
        }
    }
}

impl LossModel for GilbertElliott {
    fn loss_rate(&self, from: NodeId, to: NodeId, _: &Network, epoch: u64) -> f64 {
        if self.chain.state_at(self.key(from, to), epoch) {
            self.p_bad
        } else {
            self.p_good
        }
    }
}

/// Per-link loss-rate table; links not in the table fall back to `default`.
/// Used to replay measured link-quality matrices.
#[derive(Clone, Debug)]
pub struct PerLink {
    rates: std::collections::BTreeMap<(u32, u32), f64>,
    default: f64,
}

impl PerLink {
    /// Create a per-link table with a default rate for unlisted pairs.
    pub fn new(default: f64) -> Self {
        assert!((0.0..=1.0).contains(&default));
        PerLink {
            rates: std::collections::BTreeMap::new(),
            default,
        }
    }

    /// Set the loss rate of the directed link `from -> to`.
    pub fn set(&mut self, from: NodeId, to: NodeId, rate: f64) -> &mut Self {
        assert!((0.0..=1.0).contains(&rate));
        self.rates.insert((from.0, to.0), rate);
        self
    }

    /// Set the loss rate in both directions.
    pub fn set_symmetric(&mut self, a: NodeId, b: NodeId, rate: f64) -> &mut Self {
        self.set(a, b, rate);
        self.set(b, a, rate)
    }
}

impl LossModel for PerLink {
    fn loss_rate(&self, from: NodeId, to: NodeId, _: &Network, _: u64) -> f64 {
        self.rates
            .get(&(from.0, to.0))
            .copied()
            .unwrap_or(self.default)
    }
}

/// Retransmission policy for tree links (§7.4.3): a sender retries a failed
/// unicast up to `retries` extra times. Each retry costs a transmission and
/// waits for an acknowledgment, so latency and channel capacity suffer
/// (modeled by the caller via [`attempts_used`](RetransmitOutcome)).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Retransmit {
    /// Number of retries after the first attempt (0 = plain unicast).
    pub retries: u32,
}

/// Result of a (possibly retransmitted) unicast.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetransmitOutcome {
    /// Whether any attempt succeeded.
    pub delivered: bool,
    /// How many transmissions were actually sent (1..=1+retries).
    pub attempts_used: u32,
}

/// Send one message over a tree link with optional retransmissions.
pub fn unicast<M: LossModel, R: Rng + ?Sized>(
    model: &M,
    policy: Retransmit,
    from: NodeId,
    to: NodeId,
    net: &Network,
    epoch: u64,
    rng: &mut R,
) -> RetransmitOutcome {
    let mut attempts_used = 0;
    for _ in 0..=policy.retries {
        attempts_used += 1;
        if model.delivered(from, to, net, epoch, rng) {
            return RetransmitOutcome {
                delivered: true,
                attempts_used,
            };
        }
    }
    RetransmitOutcome {
        delivered: false,
        attempts_used,
    }
}

/// Broadcast one message to a set of potential receivers: each receiver
/// independently hears it or not. Returns the receivers that heard it.
///
/// This is the physical-layer behaviour multi-path aggregation exploits:
/// one transmission, many chances to be heard.
pub fn broadcast<M: LossModel, R: Rng + ?Sized>(
    model: &M,
    from: NodeId,
    receivers: &[NodeId],
    net: &Network,
    epoch: u64,
    rng: &mut R,
) -> Vec<NodeId> {
    receivers
        .iter()
        .copied()
        .filter(|&to| model.delivered(from, to, net, epoch, rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Position;
    use crate::rng::rng_from_seed;

    fn line_net() -> Network {
        Network::new(
            vec![
                Position::new(0.0, 0.0),
                Position::new(1.0, 0.0),
                Position::new(2.0, 0.0),
                Position::new(11.0, 0.0),
            ],
            1.5,
        )
    }

    #[test]
    fn no_loss_always_delivers() {
        let net = line_net();
        let mut rng = rng_from_seed(0);
        for _ in 0..100 {
            assert!(NoLoss.delivered(NodeId(1), NodeId(0), &net, 0, &mut rng));
        }
    }

    #[test]
    fn global_one_never_delivers() {
        let net = line_net();
        let mut rng = rng_from_seed(0);
        let m = Global::new(1.0);
        for _ in 0..100 {
            assert!(!m.delivered(NodeId(1), NodeId(0), &net, 0, &mut rng));
        }
    }

    #[test]
    fn global_rate_empirical() {
        let net = line_net();
        let mut rng = rng_from_seed(42);
        let m = Global::new(0.3);
        let trials = 20_000;
        let delivered = (0..trials)
            .filter(|_| m.delivered(NodeId(1), NodeId(0), &net, 0, &mut rng))
            .count();
        let rate = delivered as f64 / trials as f64;
        assert!((rate - 0.7).abs() < 0.02, "delivery rate {rate}");
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn global_rejects_bad_rate() {
        let _ = Global::new(1.5);
    }

    #[test]
    fn regional_rates_by_sender_position() {
        let net = line_net();
        let region = Rect::from_coords(0.0, -1.0, 1.5, 1.0); // contains nodes 0,1
        let m = Regional::new(region, 0.8, 0.05);
        assert_eq!(m.loss_rate(NodeId(1), NodeId(2), &net, 0), 0.8);
        assert_eq!(m.loss_rate(NodeId(2), NodeId(1), &net, 0), 0.05);
    }

    #[test]
    fn distance_loss_monotonic() {
        let net = line_net();
        let m = DistanceLoss::new(0.05, 0.6, 2.0);
        let near = m.loss_rate(NodeId(0), NodeId(1), &net, 0); // d = 1.0
        let base_adj = m.loss_rate(NodeId(1), NodeId(2), &net, 0); // d = 1.0
        assert!((near - base_adj).abs() < 1e-12);
        // distance 2 > range 1.5 clamps to ceiling
        let far = m.loss_rate(NodeId(0), NodeId(2), &net, 0);
        assert!((far - 0.6).abs() < 1e-12);
        assert!(near < far);
        assert!(near >= 0.05);
    }

    #[test]
    fn timeline_switches_phases() {
        let net = line_net();
        let t = Timeline::new(vec![
            (0, Box::new(NoLoss) as Box<dyn LossModel>),
            (100, Box::new(Global::new(0.3))),
            (200, Box::new(NoLoss)),
        ]);
        assert_eq!(t.loss_rate(NodeId(1), NodeId(0), &net, 0), 0.0);
        assert_eq!(t.loss_rate(NodeId(1), NodeId(0), &net, 99), 0.0);
        assert_eq!(t.loss_rate(NodeId(1), NodeId(0), &net, 100), 0.3);
        assert_eq!(t.loss_rate(NodeId(1), NodeId(0), &net, 199), 0.3);
        assert_eq!(t.loss_rate(NodeId(1), NodeId(0), &net, 200), 0.0);
        assert_eq!(t.loss_rate(NodeId(1), NodeId(0), &net, 5000), 0.0);
        assert_eq!(t.phase_at(150), 1);
    }

    #[test]
    #[should_panic(expected = "first phase must start at epoch 0")]
    fn timeline_must_start_at_zero() {
        let _ = Timeline::new(vec![(5, Box::new(NoLoss) as Box<dyn LossModel>)]);
    }

    #[test]
    fn dead_nodes_never_send_or_receive() {
        let net = line_net();
        let m = DeadNodes::new(&[NodeId(1)], net.len(), NoLoss);
        assert_eq!(m.loss_rate(NodeId(1), NodeId(0), &net, 0), 1.0);
        assert_eq!(m.loss_rate(NodeId(2), NodeId(1), &net, 0), 1.0);
        assert_eq!(m.loss_rate(NodeId(2), NodeId(0), &net, 0), 0.0);
    }

    #[test]
    fn per_link_overrides_and_default() {
        let net = line_net();
        let mut m = PerLink::new(0.1);
        m.set(NodeId(1), NodeId(0), 0.5);
        assert_eq!(m.loss_rate(NodeId(1), NodeId(0), &net, 0), 0.5);
        assert_eq!(m.loss_rate(NodeId(0), NodeId(1), &net, 0), 0.1);
        m.set_symmetric(NodeId(1), NodeId(2), 0.9);
        assert_eq!(m.loss_rate(NodeId(1), NodeId(2), &net, 0), 0.9);
        assert_eq!(m.loss_rate(NodeId(2), NodeId(1), &net, 0), 0.9);
    }

    #[test]
    fn retransmission_improves_delivery() {
        let net = line_net();
        let m = Global::new(0.5);
        let trials = 10_000;
        let mut rng = rng_from_seed(9);
        let mut plain = 0;
        let mut retried = 0;
        for _ in 0..trials {
            if unicast(
                &m,
                Retransmit { retries: 0 },
                NodeId(1),
                NodeId(0),
                &net,
                0,
                &mut rng,
            )
            .delivered
            {
                plain += 1;
            }
            if unicast(
                &m,
                Retransmit { retries: 2 },
                NodeId(1),
                NodeId(0),
                &net,
                0,
                &mut rng,
            )
            .delivered
            {
                retried += 1;
            }
        }
        let p_plain = plain as f64 / trials as f64;
        let p_retried = retried as f64 / trials as f64;
        assert!((p_plain - 0.5).abs() < 0.03, "{p_plain}");
        // 1 - 0.5^3 = 0.875
        assert!((p_retried - 0.875).abs() < 0.03, "{p_retried}");
    }

    #[test]
    fn retransmit_attempts_accounting() {
        let net = line_net();
        let mut rng = rng_from_seed(1);
        let all_fail = unicast(
            &Global::new(1.0),
            Retransmit { retries: 2 },
            NodeId(1),
            NodeId(0),
            &net,
            0,
            &mut rng,
        );
        assert!(!all_fail.delivered);
        assert_eq!(all_fail.attempts_used, 3);
        let first_try = unicast(
            &NoLoss,
            Retransmit { retries: 2 },
            NodeId(1),
            NodeId(0),
            &net,
            0,
            &mut rng,
        );
        assert!(first_try.delivered);
        assert_eq!(first_try.attempts_used, 1);
    }

    #[test]
    fn broadcast_hits_subset() {
        let net = line_net();
        let mut rng = rng_from_seed(5);
        let receivers = [NodeId(0), NodeId(2)];
        let heard = broadcast(&NoLoss, NodeId(1), &receivers, &net, 0, &mut rng);
        assert_eq!(heard, vec![NodeId(0), NodeId(2)]);
        let none = broadcast(&Global::new(1.0), NodeId(1), &receivers, &net, 0, &mut rng);
        assert!(none.is_empty());
    }

    #[test]
    fn broadcast_receivers_independent() {
        // With p=0.5 and 2 receivers, P(exactly one hears) = 0.5; a
        // correlated implementation would give 0.
        let net = line_net();
        let mut rng = rng_from_seed(11);
        let m = Global::new(0.5);
        let receivers = [NodeId(0), NodeId(2)];
        let mut exactly_one = 0;
        let trials = 10_000;
        for _ in 0..trials {
            if broadcast(&m, NodeId(1), &receivers, &net, 0, &mut rng).len() == 1 {
                exactly_one += 1;
            }
        }
        let frac = exactly_one as f64 / trials as f64;
        assert!((frac - 0.5).abs() < 0.03, "{frac}");
    }

    #[test]
    fn gilbert_elliott_equal_rates_is_bernoulli_bit_for_bit() {
        let net = line_net();
        for p in [0.0, 0.3, 1.0] {
            let ge = GilbertElliott::new(p, p, 0.15, 0.4, 99);
            let global = Global::new(p);
            let mut rng_a = rng_from_seed(1234);
            let mut rng_b = rng_from_seed(1234);
            for epoch in 0..200 {
                assert_eq!(
                    ge.delivered(NodeId(1), NodeId(0), &net, epoch, &mut rng_a),
                    global.delivered(NodeId(1), NodeId(0), &net, epoch, &mut rng_b),
                    "p={p} epoch={epoch}"
                );
            }
        }
    }

    #[test]
    fn gilbert_elliott_bursty_hits_target_rate_with_longer_runs() {
        let net = line_net();
        let mean_loss = 0.25;
        let bursty = GilbertElliott::bursty(mean_loss, 10.0, 0.95, 5);
        assert!((bursty.stationary_loss() - mean_loss).abs() < 1e-12);
        assert!((bursty.mean_burst_len() - 10.0).abs() < 1e-12);
        // Empirical rate over many senders and epochs approaches the
        // target, and bad epochs cluster into runs.
        let mut rng = rng_from_seed(6);
        let mut lost = 0usize;
        let mut total = 0usize;
        let mut bad_runs = Vec::new();
        for sender in 1..40u32 {
            let mut run = 0u32;
            for epoch in 0..400 {
                if !bursty.delivered(NodeId(sender), NodeId(0), &net, epoch, &mut rng) {
                    lost += 1;
                }
                total += 1;
                if bursty.in_bad_state(NodeId(sender), NodeId(0), epoch) {
                    run += 1;
                } else if run > 0 {
                    bad_runs.push(run);
                    run = 0;
                }
            }
        }
        let rate = lost as f64 / total as f64;
        assert!((rate - mean_loss).abs() < 0.03, "empirical loss {rate}");
        let mean_run = bad_runs.iter().map(|&r| r as f64).sum::<f64>() / bad_runs.len() as f64;
        assert!(mean_run > 4.0, "bursts too short: {mean_run}");
    }

    #[test]
    fn gilbert_elliott_scopes_key_their_chains_differently() {
        let net = line_net();
        let per_sender = GilbertElliott::bursty(0.4, 6.0, 1.0, 11);
        let per_link = per_sender.clone().per_link();
        // Per-sender: one chain for node 1, whatever the receiver.
        let sender_agrees = (0..300).all(|e| {
            per_sender.in_bad_state(NodeId(1), NodeId(0), e)
                == per_sender.in_bad_state(NodeId(1), NodeId(2), e)
        });
        assert!(sender_agrees, "per-sender state must ignore the receiver");
        // Per-link: the two directed links evolve independently.
        let links_differ = (0..300).any(|e| {
            per_link.in_bad_state(NodeId(1), NodeId(0), e)
                != per_link.in_bad_state(NodeId(1), NodeId(2), e)
        });
        assert!(links_differ, "per-link chains never diverged");
        let _ = &net;
    }

    #[test]
    #[should_panic(expected = "must sit below p_bad")]
    fn gilbert_elliott_bursty_rejects_unreachable_rate() {
        let _ = GilbertElliott::bursty(0.5, 4.0, 0.4, 1);
    }

    #[test]
    #[should_panic(expected = "infeasible burst shape")]
    fn gilbert_elliott_bursty_rejects_infeasible_occupancy() {
        // Occupancy 0.917 with 1-epoch bursts would need P(Good→Bad) = 11.
        let _ = GilbertElliott::bursty(0.55, 1.0, 0.6, 1);
    }
}
