//! The deployment: node positions, radio range, and the induced
//! connectivity graph.

use crate::node::{NodeId, Position, BASE_STATION};
use rand::Rng;

/// A sensor network deployment.
///
/// Node 0 is the base station; nodes `1..n` are sensor motes. Two nodes can
/// hear each other iff their Euclidean distance is at most the radio
/// `range` (the unit-disk model used by the TAG simulator). The adjacency
/// list is symmetric and precomputed at construction.
#[derive(Clone, Debug)]
pub struct Network {
    positions: Vec<Position>,
    range: f64,
    neighbors: Vec<Vec<NodeId>>,
}

impl Network {
    /// Build a network from explicit positions (`positions[0]` is the base
    /// station) and a radio range.
    ///
    /// # Panics
    /// Panics if `positions` is empty or `range` is not positive and finite.
    pub fn new(positions: Vec<Position>, range: f64) -> Self {
        assert!(
            !positions.is_empty(),
            "network needs at least a base station"
        );
        assert!(
            range.is_finite() && range > 0.0,
            "radio range must be positive, got {range}"
        );
        let neighbors = build_neighbors(&positions, range);
        Network {
            positions,
            range,
            neighbors,
        }
    }

    /// The paper's `Synthetic` style deployment: `sensors` motes placed
    /// uniformly at random in a `width × height` rectangle anchored at the
    /// origin, with the base station at `base`.
    pub fn random_in_rect<R: Rng + ?Sized>(
        sensors: usize,
        width: f64,
        height: f64,
        base: Position,
        range: f64,
        rng: &mut R,
    ) -> Self {
        let mut positions = Vec::with_capacity(sensors + 1);
        positions.push(base);
        for _ in 0..sensors {
            positions.push(Position::new(
                rng.gen_range(0.0..width),
                rng.gen_range(0.0..height),
            ));
        }
        Network::new(positions, range)
    }

    /// Like [`random_in_rect`](Self::random_in_rect), but redraws the
    /// placement (up to 100 attempts) until every mote can reach the base
    /// station. Sparse random deployments are frequently disconnected;
    /// experiments that assume full coverage use this constructor.
    ///
    /// # Panics
    /// Panics if no connected placement is found in 100 attempts (the
    /// density is simply too low for the range).
    pub fn random_connected<R: Rng + ?Sized>(
        sensors: usize,
        width: f64,
        height: f64,
        base: Position,
        range: f64,
        rng: &mut R,
    ) -> Self {
        for _ in 0..100 {
            let net = Network::random_in_rect(sensors, width, height, base, range, rng);
            if net.is_connected() {
                return net;
            }
        }
        panic!(
            "no connected placement of {sensors} sensors in {width}x{height} at range {range} \
             after 100 attempts"
        );
    }

    /// A regular grid deployment with `cols × rows` motes spaced `spacing`
    /// apart, plus the base station at `base`. Useful for tests where exact
    /// topology matters.
    pub fn grid(cols: usize, rows: usize, spacing: f64, base: Position, range: f64) -> Self {
        let mut positions = Vec::with_capacity(cols * rows + 1);
        positions.push(base);
        for r in 0..rows {
            for c in 0..cols {
                positions.push(Position::new(c as f64 * spacing, r as f64 * spacing));
            }
        }
        Network::new(positions, range)
    }

    /// Total number of nodes including the base station.
    #[inline]
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// `true` iff the network contains only the base station.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.positions.len() <= 1
    }

    /// Number of sensor motes (excludes the base station).
    #[inline]
    pub fn num_sensors(&self) -> usize {
        self.positions.len() - 1
    }

    /// The radio range.
    #[inline]
    pub fn range(&self) -> f64 {
        self.range
    }

    /// Position of a node.
    #[inline]
    pub fn position(&self, id: NodeId) -> Position {
        self.positions[id.index()]
    }

    /// All positions, indexed by node id.
    #[inline]
    pub fn positions(&self) -> &[Position] {
        &self.positions
    }

    /// Radio neighbors of a node (symmetric; excludes the node itself).
    #[inline]
    pub fn neighbors(&self, id: NodeId) -> &[NodeId] {
        &self.neighbors[id.index()]
    }

    /// Iterator over all node ids, base station first.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.positions.len() as u32).map(NodeId)
    }

    /// Iterator over sensor ids only (excludes the base station).
    pub fn sensor_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (1..self.positions.len() as u32).map(NodeId)
    }

    /// Euclidean distance between two nodes.
    #[inline]
    pub fn distance(&self, a: NodeId, b: NodeId) -> f64 {
        self.position(a).distance(self.position(b))
    }

    /// Whether two distinct nodes are within radio range of each other.
    #[inline]
    pub fn in_range(&self, a: NodeId, b: NodeId) -> bool {
        a != b && self.distance(a, b) <= self.range
    }

    /// Minimum hop count from every node to the base station (BFS over the
    /// connectivity graph). Unreachable nodes get `u32::MAX`.
    pub fn hop_counts(&self) -> Vec<u32> {
        let n = self.len();
        let mut dist = vec![u32::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        dist[BASE_STATION.index()] = 0;
        queue.push_back(BASE_STATION);
        while let Some(u) = queue.pop_front() {
            let du = dist[u.index()];
            for &v in self.neighbors(u) {
                if dist[v.index()] == u32::MAX {
                    dist[v.index()] = du + 1;
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// Whether every node can reach the base station over the radio graph.
    pub fn is_connected(&self) -> bool {
        self.hop_counts().iter().all(|&d| d != u32::MAX)
    }

    /// Average node degree (useful when calibrating deployment density).
    pub fn average_degree(&self) -> f64 {
        if self.positions.is_empty() {
            return 0.0;
        }
        let total: usize = self.neighbors.iter().map(Vec::len).sum();
        total as f64 / self.positions.len() as f64
    }

    /// Sensor density: motes per unit area of the bounding box of all
    /// sensor positions.
    pub fn sensor_density(&self) -> f64 {
        if self.num_sensors() == 0 {
            return 0.0;
        }
        let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
        let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for p in &self.positions[1..] {
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }
        let area = ((max_x - min_x) * (max_y - min_y)).max(f64::MIN_POSITIVE);
        self.num_sensors() as f64 / area
    }
}

/// Unit-disk adjacency via uniform-grid spatial bucketing.
///
/// Nodes are hashed into `range`-wide cells; a node's neighbors can only
/// live in its own or one of the eight adjacent cells, so each node
/// tests `O(density · range²)` candidates instead of all `n − 1` — large
/// deployments (10k+ motes) build in near-linear time where the naive
/// all-pairs scan is quadratic. Lists come out sorted ascending (the
/// same order the all-pairs construction produced), keeping every
/// downstream traversal and RNG draw sequence unchanged.
fn build_neighbors(positions: &[Position], range: f64) -> Vec<Vec<NodeId>> {
    let n = positions.len();
    let mut neighbors: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
    for p in positions {
        min_x = min_x.min(p.x);
        min_y = min_y.min(p.y);
    }
    let cell_of = |p: &Position| -> (i64, i64) {
        (
            ((p.x - min_x) / range).floor() as i64,
            ((p.y - min_y) / range).floor() as i64,
        )
    };
    // Sparse grid: deployments are free to spread over an arbitrarily
    // large area, so cells are keyed rather than stored densely.
    let mut grid: std::collections::HashMap<(i64, i64), Vec<u32>> =
        std::collections::HashMap::new();
    for (i, p) in positions.iter().enumerate() {
        grid.entry(cell_of(p)).or_default().push(i as u32);
    }
    for (i, p) in positions.iter().enumerate() {
        let (cx, cy) = cell_of(p);
        let list = &mut neighbors[i];
        for dx in -1..=1 {
            for dy in -1..=1 {
                let Some(bucket) = grid.get(&(cx + dx, cy + dy)) else {
                    continue;
                };
                for &j in bucket {
                    if j as usize != i && p.distance(positions[j as usize]) <= range {
                        list.push(NodeId(j));
                    }
                }
            }
        }
        list.sort_unstable();
    }
    neighbors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    #[test]
    fn adjacency_is_symmetric_and_irreflexive() {
        let mut rng = rng_from_seed(1);
        let net = Network::random_in_rect(80, 20.0, 20.0, Position::new(10.0, 10.0), 4.0, &mut rng);
        for u in net.node_ids() {
            assert!(!net.neighbors(u).contains(&u), "{u} adjacent to itself");
            for &v in net.neighbors(u) {
                assert!(net.neighbors(v).contains(&u), "asymmetric edge {u} -> {v}");
            }
        }
    }

    #[test]
    fn neighbors_respect_range() {
        let mut rng = rng_from_seed(2);
        let net = Network::random_in_rect(60, 20.0, 20.0, Position::new(10.0, 10.0), 3.0, &mut rng);
        for u in net.node_ids() {
            for v in net.node_ids() {
                if u == v {
                    continue;
                }
                let adjacent = net.neighbors(u).contains(&v);
                assert_eq!(adjacent, net.distance(u, v) <= 3.0);
                assert_eq!(adjacent, net.in_range(u, v));
            }
        }
    }

    #[test]
    fn grid_network_shape() {
        let net = Network::grid(4, 3, 1.0, Position::new(0.0, 0.0), 1.0);
        assert_eq!(net.len(), 13);
        assert_eq!(net.num_sensors(), 12);
        // Interior grid node has 4 grid neighbors (plus possibly the base).
        let center = NodeId(1 + 4 + 1); // row 1, col 1
        assert!(net.neighbors(center).len() >= 4);
    }

    #[test]
    fn hop_counts_bfs_levels() {
        // Chain: base - a - b - c, spacing 1, range 1.
        let net = Network::new(
            vec![
                Position::new(0.0, 0.0),
                Position::new(1.0, 0.0),
                Position::new(2.0, 0.0),
                Position::new(3.0, 0.0),
            ],
            1.0,
        );
        assert_eq!(net.hop_counts(), vec![0, 1, 2, 3]);
        assert!(net.is_connected());
    }

    #[test]
    fn disconnected_network_detected() {
        let net = Network::new(
            vec![
                Position::new(0.0, 0.0),
                Position::new(1.0, 0.0),
                Position::new(10.0, 0.0), // out of range of everyone
            ],
            1.5,
        );
        assert!(!net.is_connected());
        let hops = net.hop_counts();
        assert_eq!(hops[2], u32::MAX);
    }

    #[test]
    fn synthetic_600_in_20x20_is_connected_at_range_2() {
        // The paper's Synthetic scenario: 600 sensors in 20ft x 20ft,
        // base station at (10,10). At range 2.0 the expected degree is
        // ~ pi * 4 * 1.5 ≈ 19, far above the connectivity threshold.
        let mut rng = rng_from_seed(7);
        let net =
            Network::random_in_rect(600, 20.0, 20.0, Position::new(10.0, 10.0), 2.0, &mut rng);
        assert_eq!(net.num_sensors(), 600);
        assert!(net.is_connected());
        assert!(net.average_degree() > 8.0);
    }

    #[test]
    fn density_estimate_close_to_nominal() {
        let mut rng = rng_from_seed(3);
        let net =
            Network::random_in_rect(600, 20.0, 20.0, Position::new(10.0, 10.0), 2.0, &mut rng);
        let d = net.sensor_density();
        assert!((1.0..2.2).contains(&d), "density {d} out of expected band");
    }

    #[test]
    #[should_panic(expected = "radio range must be positive")]
    fn zero_range_rejected() {
        let _ = Network::new(vec![Position::new(0.0, 0.0)], 0.0);
    }

    /// Grid bucketing must reproduce the naive all-pairs adjacency
    /// exactly — same neighbors, same (ascending) order — across ranges
    /// that put many, few, or no nodes per cell, and with negative
    /// coordinates in play.
    #[test]
    fn grid_bucketing_matches_all_pairs_reference() {
        let mut rng = rng_from_seed(91);
        for &(sensors, width, range) in
            &[(120usize, 20.0f64, 2.5f64), (80, 20.0, 7.0), (50, 5.0, 0.4)]
        {
            let mut positions = vec![Position::new(width / 2.0, width / 2.0)];
            for _ in 0..sensors {
                positions.push(Position::new(
                    rng.gen_range(0.0..width) - width / 3.0,
                    rng.gen_range(0.0..width) - width / 3.0,
                ));
            }
            let net = Network::new(positions.clone(), range);
            for i in 0..positions.len() {
                let reference: Vec<NodeId> = (0..positions.len())
                    .filter(|&j| j != i && positions[i].distance(positions[j]) <= range)
                    .map(|j| NodeId(j as u32))
                    .collect();
                assert_eq!(
                    net.neighbors(NodeId(i as u32)),
                    &reference[..],
                    "node {i} at range {range}"
                );
            }
        }
    }

    #[test]
    fn large_deployment_builds_quickly_and_connected() {
        // 10k motes would be ~50M pair tests under the all-pairs scan;
        // bucketing keeps this test effectively instant.
        let mut rng = rng_from_seed(92);
        let net =
            Network::random_in_rect(10_000, 80.0, 80.0, Position::new(40.0, 40.0), 2.0, &mut rng);
        assert_eq!(net.num_sensors(), 10_000);
        assert!(net.is_connected());
        assert!(net.average_degree() > 8.0);
    }
}
