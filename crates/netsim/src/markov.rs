//! Seeded two-state Markov processes with memoized random access.
//!
//! Both correlated-failure models in this crate — Gilbert–Elliott burst
//! loss ([`crate::loss::GilbertElliott`]) and node churn
//! ([`crate::churn::ChurnSchedule`]) — are per-entity two-state Markov
//! chains stepped once per epoch. [`BinaryMarkov`] is that shared core:
//! a family of independent chains, one per caller-chosen `key` (a node,
//! a directed link), whose entire trajectory is a pure function of
//! `(seed, key)`. Transition draws come from a counter-based hash of
//! `(seed, key, epoch)` — **never** from the simulation's shared RNG —
//! so a correlated model consumes exactly the same delivery-RNG stream
//! as the memoryless model it generalizes, and reduces to it bit for
//! bit when its two states behave identically.
//!
//! Random access (`state_at(key, epoch)`) is O(1) amortized for the
//! epoch-monotone access pattern simulations produce: each key caches
//! its last `(epoch, state)` pair and advances incrementally; a query
//! behind the cache replays from epoch 0 (the trajectory is
//! deterministic, so the memo is only ever a speedup, never state).
//!
//! ```
//! use td_netsim::markov::{BinaryMarkov, StartState};
//!
//! // P(0→1) = 0.1 per epoch, P(1→0) = 0.5, started in state 0.
//! let chain = BinaryMarkov::new(0.1, 0.5, StartState::Fixed(false), 42);
//! // Deterministic: the same (key, epoch) always answers the same.
//! assert_eq!(chain.state_at(7, 100), chain.state_at(7, 100));
//! // Independent keys evolve independently but reproducibly.
//! let trajectory: Vec<bool> = (0..50).map(|e| chain.state_at(3, e)).collect();
//! assert!(!trajectory[0], "fixed start state");
//! ```

use std::collections::HashMap;
use std::sync::Mutex;

use crate::rng::splitmix64;

/// How a chain's state at epoch 0 is chosen.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum StartState {
    /// Every key starts in the given state (e.g. all nodes up).
    Fixed(bool),
    /// Every key draws its start from the chain's stationary
    /// distribution (so the process is rate-matched from epoch 0,
    /// with no burn-in transient). A chain that never transitions
    /// (`p01 + p10 == 0`) starts in state 0.
    Stationary,
}

/// A family of independent, seeded two-state Markov chains (one per
/// `key`), stepped once per epoch, with memoized O(1)-amortized random
/// access. State `false`/`true` is caller-defined (Good/Bad channel,
/// node up/down).
#[derive(Debug)]
pub struct BinaryMarkov {
    /// P(state 0 → state 1) per epoch step.
    p01: f64,
    /// P(state 1 → state 0) per epoch step.
    p10: f64,
    start: StartState,
    seed: u64,
    /// Per-key memo of the last computed `(epoch, state)`.
    cache: Mutex<HashMap<u64, (u64, bool)>>,
}

impl Clone for BinaryMarkov {
    /// Clones the chain *definition*; the memo starts empty (it is a
    /// pure cache — trajectories are identical).
    fn clone(&self) -> Self {
        BinaryMarkov {
            p01: self.p01,
            p10: self.p10,
            start: self.start,
            seed: self.seed,
            cache: Mutex::new(HashMap::new()),
        }
    }
}

/// Map a 64-bit hash to a uniform draw in `[0, 1)`.
#[inline]
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl BinaryMarkov {
    /// Create a chain family with the given per-epoch transition
    /// probabilities and start rule.
    ///
    /// # Panics
    /// Panics unless both probabilities are in `[0, 1]`.
    pub fn new(p01: f64, p10: f64, start: StartState, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p01), "p01 {p01} out of [0,1]");
        assert!((0.0..=1.0).contains(&p10), "p10 {p10} out of [0,1]");
        BinaryMarkov {
            p01,
            p10,
            start,
            seed,
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// The stationary probability of being in state 1
    /// (`p01 / (p01 + p10)`; 0 for a chain that never transitions).
    pub fn stationary_p1(&self) -> f64 {
        let denom = self.p01 + self.p10;
        if denom == 0.0 {
            0.0
        } else {
            self.p01 / denom
        }
    }

    /// The per-epoch transition probabilities `(p01, p10)`.
    pub fn rates(&self) -> (f64, f64) {
        (self.p01, self.p10)
    }

    /// The uniform draw deciding key `k`'s transition *into* `epoch`
    /// (epoch 0 uses a distinct initialization label).
    #[inline]
    fn draw(&self, key: u64, epoch: u64) -> f64 {
        unit(splitmix64(
            splitmix64(self.seed ^ splitmix64(key)) ^ epoch.wrapping_add(1),
        ))
    }

    /// Key `k`'s state at epoch 0 per the start rule.
    fn initial(&self, key: u64) -> bool {
        match self.start {
            StartState::Fixed(s) => s,
            StartState::Stationary => self.draw(key, 0) < self.stationary_p1(),
        }
    }

    /// Advance `state` by one epoch step using `epoch`'s draw.
    #[inline]
    fn step(&self, key: u64, epoch: u64, state: bool) -> bool {
        let u = self.draw(key, epoch);
        if state {
            u >= self.p10
        } else {
            u < self.p01
        }
    }

    /// The chain state of `key` at `epoch` — a pure function of
    /// `(seed, key, epoch)`, memoized per key for epoch-monotone
    /// access.
    pub fn state_at(&self, key: u64, epoch: u64) -> bool {
        let mut cache = self.cache.lock().expect("markov memo poisoned");
        let cached = cache.get(&key).copied();
        let (mut e, mut s) = match cached {
            Some((e, s)) if e <= epoch => (e, s),
            _ => (0, self.initial(key)),
        };
        while e < epoch {
            e += 1;
            s = self.step(key, e, s);
        }
        // Only ever advance the memo: a behind-the-cache query (a
        // replay from 0) must not regress it, or alternating
        // `epoch, epoch − 1` access would replay from 0 every time.
        if cached.is_none_or(|(e0, _)| e0 < e) {
            cache.insert(key, (e, s));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_start_and_determinism() {
        let m = BinaryMarkov::new(0.2, 0.4, StartState::Fixed(false), 9);
        assert!(!m.state_at(0, 0));
        assert!(!m.state_at(123, 0));
        let a: Vec<bool> = (0..200).map(|e| m.state_at(5, e)).collect();
        let fresh = m.clone();
        let b: Vec<bool> = (0..200).map(|e| fresh.state_at(5, e)).collect();
        assert_eq!(a, b, "clone with empty memo replays the trajectory");
    }

    #[test]
    fn backwards_queries_replay_from_zero() {
        let m = BinaryMarkov::new(0.3, 0.3, StartState::Fixed(false), 4);
        let forward: Vec<bool> = (0..64).map(|e| m.state_at(1, e)).collect();
        // Query out of order: answers must match the forward pass.
        for e in (0..64).rev() {
            assert_eq!(m.state_at(1, e), forward[e as usize], "epoch {e}");
        }
    }

    #[test]
    fn stationary_fraction_matches_theory() {
        let m = BinaryMarkov::new(0.05, 0.2, StartState::Stationary, 77);
        let pi = m.stationary_p1();
        assert!((pi - 0.2).abs() < 1e-12);
        // Empirical occupancy over many keys and epochs.
        let mut ones = 0usize;
        let mut total = 0usize;
        for key in 0..200 {
            for epoch in 0..100 {
                if m.state_at(key, epoch) {
                    ones += 1;
                }
                total += 1;
            }
        }
        let frac = ones as f64 / total as f64;
        assert!((frac - pi).abs() < 0.02, "occupancy {frac} vs {pi}");
    }

    #[test]
    fn sojourn_times_follow_exit_rate() {
        // Mean sojourn in state 1 should be ~1/p10 epochs.
        let m = BinaryMarkov::new(0.1, 0.25, StartState::Fixed(false), 31);
        let mut runs = Vec::new();
        for key in 0..80 {
            let mut len = 0u32;
            for epoch in 0..400 {
                if m.state_at(key, epoch) {
                    len += 1;
                } else if len > 0 {
                    runs.push(len);
                    len = 0;
                }
            }
        }
        let mean = runs.iter().map(|&l| l as f64).sum::<f64>() / runs.len() as f64;
        assert!((mean - 4.0).abs() < 0.8, "mean sojourn {mean} vs 4.0");
    }

    #[test]
    fn keys_are_independent_streams() {
        let m = BinaryMarkov::new(0.5, 0.5, StartState::Stationary, 3);
        let a: Vec<bool> = (0..64).map(|e| m.state_at(10, e)).collect();
        let b: Vec<bool> = (0..64).map(|e| m.state_at(11, e)).collect();
        assert_ne!(a, b, "adjacent keys share a trajectory");
    }

    #[test]
    fn degenerate_chain_never_moves() {
        let m = BinaryMarkov::new(0.0, 0.0, StartState::Stationary, 8);
        assert_eq!(m.stationary_p1(), 0.0);
        for e in 0..50 {
            assert!(!m.state_at(2, e));
        }
    }
}
