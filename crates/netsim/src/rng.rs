//! Deterministic randomness: seeded RNGs and named substreams.
//!
//! Every stochastic component in the workspace draws from an RNG that is
//! ultimately derived from a single experiment seed, so whole simulations
//! replay bit-for-bit. Substreams decouple unrelated consumers (placement,
//! loss draws, sketch salts, …) so adding draws to one does not perturb the
//! others — essential when comparing schemes on identical loss sequences.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64 finalizer: a fast, well-mixed 64→64-bit function used to fan a
/// single seed out into independent substream seeds.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Construct a deterministic RNG from a seed.
pub fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Construct a deterministic RNG for a named substream of `seed`.
///
/// Different `(seed, stream)` pairs give statistically independent RNGs;
/// identical pairs give identical streams.
pub fn substream(seed: u64, stream: u64) -> StdRng {
    rng_from_seed(splitmix64(seed ^ splitmix64(stream)))
}

/// Derive a new seed from a parent seed and a label. Useful when a
/// component needs to hand seeds (not RNGs) further down.
pub fn derive_seed(seed: u64, label: u64) -> u64 {
    splitmix64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ label)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = rng_from_seed(99);
        let mut b = rng_from_seed(99);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn substreams_differ() {
        let mut a = substream(99, 0);
        let mut b = substream(99, 1);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn substream_is_reproducible() {
        let mut a = substream(123, 7);
        let mut b = substream(123, 7);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn splitmix_mixes_consecutive_inputs() {
        // Consecutive seeds should produce wildly different outputs.
        let a = splitmix64(1);
        let b = splitmix64(2);
        assert_ne!(a, b);
        assert!((a ^ b).count_ones() > 10);
    }

    #[test]
    fn derive_seed_is_label_sensitive() {
        assert_ne!(derive_seed(5, 0), derive_seed(5, 1));
        assert_eq!(derive_seed(5, 3), derive_seed(5, 3));
    }
}
