//! Epoch scheduling and latency accounting.
//!
//! TAG-style aggregation is level-synchronized: nodes are allotted time
//! slots by level, level *i* listening while level *i+1* transmits, and
//! "the latency of a query result is dominated by the product of the epoch
//! duration and the number of levels" (§2). Table 1 tracks latency as a
//! first-class metric, and §7.4.3 notes the two costs retransmission adds:
//! each retry waits for an acknowledgment (latency grows linearly with
//! retries), and the ack traffic costs ~25% of channel capacity \[23\].
//!
//! This module models those costs explicitly so experiments can report
//! latency next to energy and error.

/// Per-slot timing parameters (milliseconds, mica2/TinyDB-flavored).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SlotTiming {
    /// Time for one 48-byte message on air plus MAC overhead.
    pub message_ms: f64,
    /// Extra wait per retransmission attempt (ack timeout), §7.4.3.
    pub ack_wait_ms: f64,
}

impl Default for SlotTiming {
    fn default() -> Self {
        // 48 bytes at 38.4 kbps ≈ 10 ms on air; CSMA + preamble brings a
        // slot to ~25 ms; ack timeout comparable to a slot.
        SlotTiming {
            message_ms: 25.0,
            ack_wait_ms: 25.0,
        }
    }
}

/// Latency model for one epoch of level-synchronized aggregation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencyModel {
    /// Slot timing.
    pub timing: SlotTiming,
    /// Messages a node may need to send in its slot (the widest partial
    /// result observed, in TinyDB messages).
    pub messages_per_slot: u32,
    /// Retransmission attempts configured on tree links.
    pub retransmissions: u32,
}

impl LatencyModel {
    /// A model for plain single-message aggregation.
    pub fn simple() -> Self {
        LatencyModel {
            timing: SlotTiming::default(),
            messages_per_slot: 1,
            retransmissions: 0,
        }
    }

    /// Duration of one level's slot: every message fragment, plus ack
    /// waits for each retry round.
    pub fn slot_ms(&self) -> f64 {
        let base = self.timing.message_ms * self.messages_per_slot as f64;
        let retry = self.retransmissions as f64
            * (self.timing.ack_wait_ms + self.timing.message_ms * self.messages_per_slot as f64);
        base + retry
    }

    /// End-to-end latency of one answer over `levels` ring/tree levels
    /// (§2: epoch duration × number of levels).
    pub fn epoch_latency_ms(&self, levels: u16) -> f64 {
        self.slot_ms() * levels as f64
    }

    /// The §7.4.3 comparison: two retransmissions of one message versus a
    /// single transmission of a payload three times as long. Returns the
    /// ratio `retransmit_latency / long_message_latency` (> 1: the paper's
    /// footnote 6 argues retransmission is the slower option).
    pub fn retransmit_vs_long_message_ratio(&self) -> f64 {
        let retransmit = LatencyModel {
            messages_per_slot: 1,
            retransmissions: 2,
            timing: self.timing,
        }
        .slot_ms();
        let long = LatencyModel {
            messages_per_slot: 3,
            retransmissions: 0,
            timing: self.timing,
        }
        .slot_ms();
        retransmit / long
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_scales_with_levels() {
        let m = LatencyModel::simple();
        assert_eq!(m.epoch_latency_ms(4), 4.0 * m.slot_ms());
        assert!(m.epoch_latency_ms(8) > m.epoch_latency_ms(4));
    }

    #[test]
    fn retransmissions_grow_latency_linearly() {
        let base = LatencyModel::simple();
        let two = LatencyModel {
            retransmissions: 2,
            ..base
        };
        // Each retry adds an ack wait plus a resend.
        let per_retry = base.timing.ack_wait_ms + base.timing.message_ms;
        assert!((two.slot_ms() - (base.slot_ms() + 2.0 * per_retry)).abs() < 1e-9);
    }

    #[test]
    fn multi_message_payloads_stretch_slots() {
        let one = LatencyModel::simple();
        let three = LatencyModel {
            messages_per_slot: 3,
            ..one
        };
        assert!((three.slot_ms() - 3.0 * one.timing.message_ms).abs() < 1e-9);
    }

    #[test]
    fn footnote6_retransmission_slower_than_long_message() {
        // "two retransmissions would incur more latency than a single
        // transmission of a 3 times longer message" (§7.4.3, footnote 6).
        let m = LatencyModel::simple();
        assert!(
            m.retransmit_vs_long_message_ratio() > 1.0,
            "ratio {}",
            m.retransmit_vs_long_message_ratio()
        );
    }
}
