//! Message-size quantization: TinyDB packets and wire-size accounting.
//!
//! The paper uses 48-byte messages "as used by the TinyDB system" (§7.1).
//! Partial results larger than one payload are fragmented into multiple
//! messages — this is what makes multi-path frequent-items synopses cost
//! ~3× the messages of tree summaries (§7.4.3), and it is the "Message
//! size" column of Table 1.

/// TinyDB message payload in bytes (§7.1).
pub const TINYDB_PAYLOAD_BYTES: usize = 48;

/// Size of one word (one item id or one counter) on the wire, in bytes.
/// The paper counts communication in 32-bit words (§6.1: "a word holds one
/// item or one counter").
pub const WORD_BYTES: usize = 4;

/// Number of whole TinyDB messages needed to carry `bytes` of payload.
/// Zero-byte payloads still cost one message (the paper's schemes always
/// transmit once per node per epoch, even for empty partial results).
#[inline]
pub fn messages_for_bytes(bytes: usize) -> u64 {
    if bytes == 0 {
        1
    } else {
        bytes.div_ceil(TINYDB_PAYLOAD_BYTES) as u64
    }
}

/// Number of whole TinyDB messages needed to carry `words` 32-bit words.
#[inline]
pub fn messages_for_words(words: usize) -> u64 {
    messages_for_bytes(words * WORD_BYTES)
}

/// How many words fit in a single TinyDB message.
#[inline]
pub fn words_per_message() -> usize {
    TINYDB_PAYLOAD_BYTES / WORD_BYTES
}

/// A partial result's wire footprint, reported by every aggregate so the
/// simulator can charge energy. `words` is the paper's unit for the
/// frequent-items load plots (Figure 8); `bytes` feeds message
/// quantization.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireSize {
    /// Payload size in bytes (after any encoding such as RLE).
    pub bytes: usize,
    /// Payload size in 32-bit words (counters/items), before encoding.
    pub words: usize,
}

impl WireSize {
    /// A wire size measured in words (bytes derived at 4 bytes/word).
    pub fn from_words(words: usize) -> Self {
        WireSize {
            bytes: words * WORD_BYTES,
            words,
        }
    }

    /// A wire size measured in bytes (words derived, rounding up).
    pub fn from_bytes(bytes: usize) -> Self {
        WireSize {
            bytes,
            words: bytes.div_ceil(WORD_BYTES),
        }
    }

    /// Number of TinyDB messages this payload occupies.
    pub fn messages(&self) -> u64 {
        messages_for_bytes(self.bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_payload_costs_one_message() {
        assert_eq!(messages_for_bytes(0), 1);
    }

    #[test]
    fn exact_fit_is_one_message() {
        assert_eq!(messages_for_bytes(48), 1);
        assert_eq!(messages_for_bytes(1), 1);
        assert_eq!(messages_for_bytes(49), 2);
        assert_eq!(messages_for_bytes(96), 2);
        assert_eq!(messages_for_bytes(97), 3);
    }

    #[test]
    fn words_quantization() {
        assert_eq!(words_per_message(), 12);
        assert_eq!(messages_for_words(12), 1);
        assert_eq!(messages_for_words(13), 2);
    }

    #[test]
    fn wire_size_conversions() {
        let w = WireSize::from_words(10);
        assert_eq!(w.bytes, 40);
        assert_eq!(w.messages(), 1);
        let b = WireSize::from_bytes(50);
        assert_eq!(b.words, 13);
        assert_eq!(b.messages(), 2);
    }

    #[test]
    fn forty_sum_synopses_fit_one_message_only_if_encoded() {
        // 40 x 32-bit bitmaps raw = 160 bytes = 4 messages; the paper packs
        // them into one 48-byte message with RLE (§7.1). The sketches crate
        // tests the actual encoded size; here we pin the raw arithmetic.
        assert_eq!(messages_for_bytes(40 * 4), 4);
    }
}
