//! # td-netsim — discrete-epoch wireless sensor network simulator
//!
//! The substrate underneath the Tributary-Delta reproduction. It models the
//! aspects of a TinyDB/TAG-class sensor network that the paper's evaluation
//! (§7.1) depends on:
//!
//! * **Nodes and placement** ([`node`], [`network`]): `m` sensor motes plus a
//!   base station, positioned in a 2-D deployment area, with a fixed radio
//!   range inducing a symmetric connectivity graph.
//! * **Lossy communication** ([`loss`]): every transmission is dropped
//!   according to a pluggable [`loss::LossModel`] — the paper's
//!   `Global(p)` and `Regional(p1,p2)` failure models, distance-based link
//!   quality for the LabData reconstruction, epoch-indexed timelines for
//!   the dynamic scenarios of Figure 6, and the correlated
//!   [`loss::GilbertElliott`] burst channel (a seeded per-sender/per-link
//!   Good/Bad Markov chain, [`markov`]).
//! * **Node churn** ([`churn`]): seeded join/leave schedules
//!   ([`churn::ChurnSchedule`]) with a [`churn::ChurnLoss`] channel
//!   overlay silencing absent nodes — the epoch-dependent counterpart of
//!   [`loss::DeadNodes`].
//! * **Epoch-synchronized rounds**: aggregation proceeds level-by-level,
//!   one level per slot within an epoch (TAG-style). The scheduling loop
//!   itself lives in the `tributary-delta` crate; this crate supplies the
//!   deterministic delivery primitives ([`loss::unicast`], [`loss::broadcast`])
//!   and retransmission policy ([`loss::Retransmit`]).
//! * **Message and energy accounting** ([`message`], [`stats`]): TinyDB's
//!   48-byte message payloads, quantization of partial results into whole
//!   messages, and per-node transmission/byte/energy counters — the "Energy
//!   Components" of the paper's Table 1.
//! * **Determinism** ([`rng`]): every random choice flows from a caller-
//!   provided 64-bit seed through named substreams, so simulations replay
//!   bit-for-bit.
//!
//! ## Quick example
//!
//! ```
//! use td_netsim::network::Network;
//! use td_netsim::node::Position;
//! use td_netsim::loss::{Global, LossModel};
//! use td_netsim::rng::rng_from_seed;
//!
//! let mut rng = rng_from_seed(42);
//! // 100 nodes in a 20x20 area, base station at the center, radio range 4.
//! let net = Network::random_in_rect(100, 20.0, 20.0, Position::new(10.0, 10.0), 4.0, &mut rng);
//! assert!(net.is_connected());
//! let model = Global::new(0.25);
//! let from = net.node_ids().nth(1).unwrap();
//! let to = td_netsim::node::BASE_STATION;
//! let _delivered = model.delivered(from, to, &net, 0, &mut rng);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod epoch;
pub mod loss;
pub mod markov;
pub mod message;
pub mod network;
pub mod node;
pub mod rng;
pub mod stats;

pub use churn::{ChurnEvents, ChurnSchedule};
pub use loss::LossModel;
pub use message::TINYDB_PAYLOAD_BYTES;
pub use network::Network;
pub use node::{NodeId, Position, BASE_STATION};
