//! Communication and energy accounting.
//!
//! Battery drain in motes is dominated by radio transmissions — "the drain
//! for sending a message between two neighboring sensors exceeds by several
//! orders of magnitude the drain for local operations" (§1). We therefore
//! charge energy per transmitted message and per transmitted byte and keep
//! per-node counters so experiments can report average and maximum load
//! (Figure 8) and total energy (Table 1's energy components).

use crate::node::NodeId;

/// Per-node communication counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeComm {
    /// Send rounds: logical per-epoch send events (one unicast or
    /// broadcast slot, however large its payload and however many
    /// packets it fragments into). A multi-query bundle costs one round.
    pub rounds: u64,
    /// Radio transmissions (incl. retransmissions; a broadcast counts once).
    pub transmissions: u64,
    /// TinyDB messages sent (one transmission may carry one message; a
    /// multi-message payload costs several transmissions).
    pub messages: u64,
    /// Payload bytes sent.
    pub bytes: u64,
    /// 32-bit words (counters/items) sent — the unit of Figure 8.
    pub words: u64,
}

/// Aggregated communication statistics for a simulation run.
///
/// Equality is per-node counter equality — what the determinism tests
/// use to pin parallel trial execution to its sequential baseline.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CommStats {
    per_node: Vec<NodeComm>,
    /// Churn arrivals observed over the run (see
    /// [`record_churn`](Self::record_churn)).
    nodes_joined: u64,
    /// Churn departures observed over the run.
    nodes_left: u64,
}

impl CommStats {
    /// Create counters for `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        CommStats {
            per_node: vec![NodeComm::default(); num_nodes],
            nodes_joined: 0,
            nodes_left: 0,
        }
    }

    /// Record that `node` transmitted a payload of `bytes`/`words`.
    ///
    /// `attempts` is how many times the payload went on the air (1 for a
    /// plain send, more under retransmission). The logical payload
    /// (`messages`, `words`) is counted once; the physical cost
    /// (`transmissions`, `bytes`) is multiplied by `attempts`.
    pub fn record_send(&mut self, node: NodeId, bytes: usize, words: usize, attempts: u64) {
        debug_assert!(attempts >= 1, "a send uses at least one attempt");
        let msgs = crate::message::messages_for_bytes(bytes);
        let c = &mut self.per_node[node.index()];
        c.rounds += 1;
        c.transmissions += msgs * attempts;
        c.messages += msgs;
        c.bytes += bytes as u64 * attempts;
        c.words += words as u64;
    }

    /// Record a churn event batch: `joined` nodes (re)appeared and
    /// `left` nodes went absent this epoch. Kept alongside the radio
    /// counters so per-epoch snapshots ([`diff`](Self::diff)) attribute
    /// churn to the same panes/windows they attribute traffic to —
    /// lossy-under-churn windows degrade visibly.
    pub fn record_churn(&mut self, joined: u64, left: u64) {
        self.nodes_joined += joined;
        self.nodes_left += left;
    }

    /// Total churn arrivals recorded (0 unless the run applied churn).
    pub fn nodes_joined(&self) -> u64 {
        self.nodes_joined
    }

    /// Total churn departures recorded.
    pub fn nodes_left(&self) -> u64 {
        self.nodes_left
    }

    /// Counters of one node.
    pub fn node(&self, node: NodeId) -> NodeComm {
        self.per_node[node.index()]
    }

    /// Total send rounds across all nodes (the per-traversal unit: N
    /// bundled queries still cost one round per sending node per epoch).
    pub fn total_rounds(&self) -> u64 {
        self.per_node.iter().map(|c| c.rounds).sum()
    }

    /// Total messages across all nodes.
    pub fn total_messages(&self) -> u64 {
        self.per_node.iter().map(|c| c.messages).sum()
    }

    /// Total transmissions across all nodes.
    pub fn total_transmissions(&self) -> u64 {
        self.per_node.iter().map(|c| c.transmissions).sum()
    }

    /// Total payload bytes across all nodes.
    pub fn total_bytes(&self) -> u64 {
        self.per_node.iter().map(|c| c.bytes).sum()
    }

    /// Total words across all nodes (Figure 8's "total communication").
    pub fn total_words(&self) -> u64 {
        self.per_node.iter().map(|c| c.words).sum()
    }

    /// Average words per sensor node, excluding the base station.
    pub fn average_words_per_sensor(&self) -> f64 {
        let sensors = self.per_node.len().saturating_sub(1);
        if sensors == 0 {
            return 0.0;
        }
        self.per_node[1..].iter().map(|c| c.words).sum::<u64>() as f64 / sensors as f64
    }

    /// Maximum words sent by any single sensor (Figure 8's "max load").
    pub fn max_words_per_sensor(&self) -> u64 {
        self.per_node[1..]
            .iter()
            .map(|c| c.words)
            .max()
            .unwrap_or(0)
    }

    /// Merge another stats object into this one (same node count).
    pub fn merge(&mut self, other: &CommStats) {
        assert_eq!(self.per_node.len(), other.per_node.len());
        for (a, b) in self.per_node.iter_mut().zip(&other.per_node) {
            a.rounds += b.rounds;
            a.transmissions += b.transmissions;
            a.messages += b.messages;
            a.bytes += b.bytes;
            a.words += b.words;
        }
        self.nodes_joined += other.nodes_joined;
        self.nodes_left += other.nodes_left;
    }

    /// Per-node counter difference `self − earlier`: the activity
    /// recorded between two snapshots of one accumulating stats object.
    /// This is how the stream engine attributes communication to a
    /// single epoch pane out of a session's cumulative counters.
    ///
    /// # Panics
    /// Panics if node counts differ or `earlier` is not actually an
    /// earlier snapshot (any of its counters exceeds `self`'s).
    pub fn diff(&self, earlier: &CommStats) -> CommStats {
        assert_eq!(
            self.per_node.len(),
            earlier.per_node.len(),
            "snapshot node counts differ"
        );
        let sub = |a: u64, b: u64| {
            a.checked_sub(b)
                .expect("diff baseline is not an earlier snapshot")
        };
        CommStats {
            per_node: self
                .per_node
                .iter()
                .zip(&earlier.per_node)
                .map(|(a, b)| NodeComm {
                    rounds: sub(a.rounds, b.rounds),
                    transmissions: sub(a.transmissions, b.transmissions),
                    messages: sub(a.messages, b.messages),
                    bytes: sub(a.bytes, b.bytes),
                    words: sub(a.words, b.words),
                })
                .collect(),
            nodes_joined: sub(self.nodes_joined, earlier.nodes_joined),
            nodes_left: sub(self.nodes_left, earlier.nodes_left),
        }
    }

    /// Number of nodes tracked.
    pub fn len(&self) -> usize {
        self.per_node.len()
    }

    /// Whether the stats track zero nodes.
    pub fn is_empty(&self) -> bool {
        self.per_node.is_empty()
    }
}

/// One-line totals — what bench log lines print. Per-node detail stays
/// behind [`node`](CommStats::node).
impl std::fmt::Display for CommStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} nodes: {} rounds, {} msgs ({} tx), {} bytes, {} words",
            self.per_node.len(),
            self.total_rounds(),
            self.total_messages(),
            self.total_transmissions(),
            self.total_bytes(),
            self.total_words()
        )?;
        if self.nodes_joined > 0 || self.nodes_left > 0 {
            write!(f, "; churn +{}/-{}", self.nodes_joined, self.nodes_left)?;
        }
        Ok(())
    }
}

/// A simple radio energy model: `E = per_message * messages +
/// per_byte * bytes`, in microjoules. Defaults follow mica2-class motes
/// (dominated by the per-message fixed cost of preamble + MAC).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyModel {
    /// Fixed cost per transmitted message, in µJ.
    pub per_message_uj: f64,
    /// Cost per transmitted payload byte, in µJ.
    pub per_byte_uj: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        // Mica2 CC1000-class numbers: ~20 µJ/byte on air at 38.4 kbps,
        // ~300 µJ fixed per packet (preamble, sync, MAC backoff).
        EnergyModel {
            per_message_uj: 300.0,
            per_byte_uj: 20.0,
        }
    }
}

impl EnergyModel {
    /// Total transmit energy for a stats object, in µJ.
    pub fn total_uj(&self, stats: &CommStats) -> f64 {
        self.per_message_uj * stats.total_messages() as f64
            + self.per_byte_uj * stats.total_bytes() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_totals() {
        let mut s = CommStats::new(3);
        s.record_send(NodeId(1), 48, 12, 1);
        s.record_send(NodeId(2), 96, 24, 2); // 2-message payload sent twice
        assert_eq!(s.node(NodeId(1)).messages, 1);
        assert_eq!(s.node(NodeId(1)).transmissions, 1);
        assert_eq!(s.node(NodeId(1)).bytes, 48);
        assert_eq!(s.node(NodeId(1)).words, 12);
        assert_eq!(s.node(NodeId(2)).messages, 2);
        assert_eq!(s.node(NodeId(2)).transmissions, 4);
        assert_eq!(s.total_bytes(), 48 + 192);
        assert_eq!(s.total_words(), 12 + 24);
        assert_eq!(s.total_messages(), 3);
        assert_eq!(s.total_transmissions(), 5);
        assert_eq!(s.total_rounds(), 2);
    }

    #[test]
    fn sensor_load_excludes_base() {
        let mut s = CommStats::new(3);
        s.record_send(NodeId(0), 480, 120, 1); // base station chatter
        s.record_send(NodeId(1), 4, 1, 1);
        s.record_send(NodeId(2), 12, 3, 1);
        assert_eq!(s.max_words_per_sensor(), 3);
        assert!((s.average_words_per_sensor() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = CommStats::new(2);
        a.record_send(NodeId(1), 4, 1, 1);
        a.record_churn(2, 1);
        let mut b = CommStats::new(2);
        b.record_send(NodeId(1), 8, 2, 1);
        b.record_churn(0, 3);
        a.merge(&b);
        assert_eq!(a.node(NodeId(1)).bytes, 12);
        assert_eq!(a.node(NodeId(1)).words, 3);
        assert_eq!(a.node(NodeId(1)).messages, 2);
        assert_eq!(a.nodes_joined(), 2);
        assert_eq!(a.nodes_left(), 4);
    }

    #[test]
    fn churn_counters_flow_through_diff() {
        let mut s = CommStats::new(2);
        s.record_churn(1, 2);
        let snapshot = s.clone();
        s.record_churn(3, 0);
        let d = s.diff(&snapshot);
        assert_eq!(d.nodes_joined(), 3);
        assert_eq!(d.nodes_left(), 0);
    }

    #[test]
    fn diff_isolates_the_activity_between_snapshots() {
        let mut s = CommStats::new(3);
        s.record_send(NodeId(1), 48, 12, 2);
        let snapshot = s.clone();
        s.record_send(NodeId(2), 8, 2, 1);
        s.record_send(NodeId(1), 4, 1, 1);
        let d = s.diff(&snapshot);
        assert_eq!(d.node(NodeId(1)).bytes, 4);
        assert_eq!(d.node(NodeId(1)).rounds, 1);
        assert_eq!(d.node(NodeId(2)).words, 2);
        assert_eq!(d.total_rounds(), 2);
        // Adding the diff back onto the snapshot reproduces the total.
        let mut roundtrip = snapshot.clone();
        roundtrip.merge(&d);
        assert_eq!(roundtrip, s);
        // A diff against the current state is all-zero.
        assert_eq!(s.diff(&s).total_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "not an earlier snapshot")]
    fn diff_rejects_a_later_baseline() {
        let mut s = CommStats::new(2);
        s.record_send(NodeId(1), 4, 1, 1);
        let later = s.clone();
        let _ = CommStats::new(2).diff(&later);
    }

    #[test]
    fn energy_model_charges_messages_and_bytes() {
        let mut s = CommStats::new(2);
        s.record_send(NodeId(1), 48, 12, 1);
        let e = EnergyModel::default();
        let expected = 300.0 + 20.0 * 48.0;
        assert!((e.total_uj(&s) - expected).abs() < 1e-9);
    }
}
