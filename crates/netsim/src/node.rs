//! Node identifiers and 2-D positions.

use std::fmt;

/// Identifier of a node in the network.
///
/// Node `0` is always the base station ([`BASE_STATION`]); sensor motes are
/// numbered `1..=m`. The identifier doubles as an index into the dense
/// per-node vectors used throughout the workspace.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// The base station: the root of every aggregation topology.
pub const BASE_STATION: NodeId = NodeId(0);

impl NodeId {
    /// The node id as a `usize` index into per-node vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this node is the base station.
    #[inline]
    pub fn is_base(self) -> bool {
        self == BASE_STATION
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_base() {
            write!(f, "base")
        } else {
            write!(f, "n{}", self.0)
        }
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// A position in the 2-D deployment area (units are whatever the scenario
/// chooses: feet for the Synthetic grid, meters for LabData).
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Position {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Position {
    /// Create a position.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Position { x, y }
    }

    /// Euclidean distance to another position.
    #[inline]
    pub fn distance(self, other: Position) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }
}

/// An axis-aligned rectangle, used by the `Regional(p1, p2)` failure model
/// (§7.1: the failure region `{(0,0),(10,10)}` of the 20×20 deployment).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Rect {
    /// Lower-left corner.
    pub min: Position,
    /// Upper-right corner.
    pub max: Position,
}

impl Rect {
    /// Create a rectangle from its lower-left and upper-right corners.
    ///
    /// # Panics
    /// Panics if the corners are not ordered (`min.x > max.x` etc.).
    pub fn new(min: Position, max: Position) -> Self {
        assert!(
            min.x <= max.x && min.y <= max.y,
            "Rect corners must be ordered: {min:?} vs {max:?}"
        );
        Rect { min, max }
    }

    /// Convenience constructor from scalar corner coordinates.
    pub fn from_coords(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        Rect::new(Position::new(x0, y0), Position::new(x1, y1))
    }

    /// Whether `p` lies inside the rectangle (boundaries inclusive).
    #[inline]
    pub fn contains(&self, p: Position) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Rectangle width.
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Rectangle height.
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_index_roundtrip() {
        let id = NodeId(17);
        assert_eq!(id.index(), 17);
        assert_eq!(NodeId::from(17u32), id);
    }

    #[test]
    fn base_station_is_node_zero() {
        assert_eq!(BASE_STATION, NodeId(0));
        assert!(BASE_STATION.is_base());
        assert!(!NodeId(1).is_base());
    }

    #[test]
    fn node_id_debug_formats() {
        assert_eq!(format!("{:?}", BASE_STATION), "base");
        assert_eq!(format!("{:?}", NodeId(5)), "n5");
        assert_eq!(format!("{}", NodeId(5)), "n5");
    }

    #[test]
    fn distance_is_euclidean() {
        let a = Position::new(0.0, 0.0);
        let b = Position::new(3.0, 4.0);
        assert!((a.distance(b) - 5.0).abs() < 1e-12);
        assert!((b.distance(a) - 5.0).abs() < 1e-12);
        assert_eq!(a.distance(a), 0.0);
    }

    #[test]
    fn rect_contains_boundary_and_interior() {
        let r = Rect::from_coords(0.0, 0.0, 10.0, 10.0);
        assert!(r.contains(Position::new(0.0, 0.0)));
        assert!(r.contains(Position::new(10.0, 10.0)));
        assert!(r.contains(Position::new(5.0, 5.0)));
        assert!(!r.contains(Position::new(10.01, 5.0)));
        assert!(!r.contains(Position::new(-0.01, 5.0)));
        assert_eq!(r.width(), 10.0);
        assert_eq!(r.height(), 10.0);
    }

    #[test]
    #[should_panic(expected = "Rect corners must be ordered")]
    fn rect_rejects_unordered_corners() {
        let _ = Rect::from_coords(5.0, 0.0, 0.0, 10.0);
    }
}
