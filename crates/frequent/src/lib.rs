//! # td-frequent — frequent-items aggregation (§6 of the paper)
//!
//! Finding frequent items is the paper's "difficult aggregate": exact
//! counting would ship every distinct item to the base station, so both
//! schemes work with ε-deficient counts — every reported count `c̃(u)`
//! satisfies `max(0, c(u) − ε·N) ≤ c̃(u) ≤ c(u)`, and all items with
//! `c̃(u) > (s−ε)·N` are reported (no false negatives among items with
//! frequency ≥ `s·N`; false positives have frequency ≥ `(s−ε)·N`).
//!
//! * [`items`] — item collections and exact counting (ground truth).
//! * [`summary`] — the ε-deficient summary and **Algorithm 1** (generate
//!   an ε(k)-summary at a height-k node).
//! * [`tree`] — the tree algorithms: Algorithm 1 driven over an
//!   aggregation tree under a precision gradient — `Min Total-load`
//!   (Lemma 3), `Min Max-load` \[13\], `Hybrid` (§6.1.4) — with
//!   communication-load accounting for Figure 8.
//! * [`quantile_based`] — the Quantiles-based baseline \[8\]: GK summaries
//!   up the tree, frequencies extracted from ranks.
//! * [`multipath`] — the paper's new multi-path algorithm (§6.2):
//!   class-indexed synopses with duplicate-insensitive counters, rising
//!   thresholds in place of subtraction, and the η slack (**Algorithm 2**).
//! * [`convert`] — the Tributary-Delta conversion function (§6.3): a tree
//!   summary re-expressed as a multi-path synopsis via the SG threshold.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod convert;
pub mod items;
pub mod multipath;
pub mod quantile_based;
pub mod summary;
pub mod tree;

pub use items::{count_items, Item, ItemBag};
pub use multipath::{MultipathConfig, SynopsisSet};
pub use summary::FreqSummary;
pub use tree::TreeFrequentConfig;
