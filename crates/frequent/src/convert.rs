//! The Tributary-Delta conversion function for frequent items (§6.3).
//!
//! When a tributary root hands its ε(k)-summary to its delta parent, the
//! parent re-expresses it as a multi-path synopsis by applying the SG
//! function to the summary's estimated frequencies: each `c̃(u)` is
//! treated as an actual frequency (its pseudo-occurrences salted by the
//! *tributary root*, which path correctness guarantees is the root of a
//! unique subtree), and the SG pruning threshold is applied with
//! `n' = n` from the summary. The final error is at most the sum of the
//! tree error ε_a and the multi-path error ε_b, so a deployment targeting
//! ε splits the budget as `ε_a + ε_b = ε`.

use crate::multipath::{generate, ClassSynopsis, MultipathConfig};
use crate::summary::FreqSummary;
use td_netsim::node::NodeId;
use td_sketches::counter::CounterFactory;
use td_sketches::hash::keyed;

/// Salt namespace for tree-root populations (kept distinct from live node
/// populations so a root's converted items never collide with its own
/// multi-path contributions in some other epoch).
const CONVERT_KEY: u64 = 0x7DC0;

/// Convert a tree summary from tributary root `root` into a multi-path
/// synopsis. Returns `None` if the summary covers no items.
pub fn convert_summary<F: CounterFactory>(
    cfg: &MultipathConfig<F>,
    root: NodeId,
    summary: &FreqSummary,
) -> Option<ClassSynopsis<F::Counter>> {
    generate(
        cfg,
        keyed(CONVERT_KEY, root.0 as u64),
        summary.iter(),
        summary.n,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::ItemBag;
    use crate::multipath::{generate_from_bag, SynopsisSet};
    use td_sketches::counter::ExactFactory;

    fn cfg(eps: f64) -> MultipathConfig<ExactFactory> {
        MultipathConfig::new(eps, 1.5, 1 << 20, ExactFactory)
    }

    #[test]
    fn conversion_preserves_population_and_heavy_counts() {
        let cfg = cfg(0.01);
        let bag = ItemBag::from_counts([(1, 5000), (2, 2000), (3, 10)]);
        let tree = FreqSummary::combine(&[FreqSummary::local(&bag)], &FreqSummary::empty(), 0.001);
        let synopsis = convert_summary(&cfg, NodeId(7), &tree).unwrap();
        let mut set = SynopsisSet::new();
        set.insert(synopsis);
        let est = set.evaluate();
        // ñ equals the tree summary's population exactly (exact counters).
        assert!((est.n_est - tree.n as f64).abs() < 1e-9);
        // Heavy counts carried through within the tree deficiency.
        let c1 = est.counts[&1];
        assert!(c1 <= 5000.0 && c1 >= 5000.0 - 0.001 * tree.n as f64 - 1.0);
    }

    #[test]
    fn conversion_is_deterministic_and_dedups() {
        // The same summary converted twice (e.g. a duplicated delivery)
        // fuses to the same estimates.
        let cfg = cfg(0.01);
        let bag = ItemBag::from_counts([(1, 3000), (2, 1500)]);
        let tree = FreqSummary::local(&bag);
        let a = convert_summary(&cfg, NodeId(3), &tree).unwrap();
        let b = convert_summary(&cfg, NodeId(3), &tree).unwrap();
        let mut set = SynopsisSet::new();
        set.insert(a);
        set.insert(b);
        set.compact(&cfg);
        let est = set.evaluate();
        assert!((est.n_est - 4500.0).abs() < 1e-9);
        assert!((est.counts[&1] - 3000.0).abs() < 1e-9);
    }

    #[test]
    fn different_roots_are_disjoint_populations() {
        let cfg = cfg(0.01);
        let bag = ItemBag::from_counts([(1, 1000)]);
        let tree = FreqSummary::local(&bag);
        let a = convert_summary(&cfg, NodeId(3), &tree).unwrap();
        let b = convert_summary(&cfg, NodeId(4), &tree).unwrap();
        let mut set = SynopsisSet::new();
        set.insert(a);
        set.insert(b);
        set.compact(&cfg);
        let est = set.evaluate();
        assert!((est.n_est - 2000.0).abs() < 1e-9);
        assert!((est.counts[&1] - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn converted_and_native_synopses_mix() {
        // The Figure 3 situation: a delta node fuses native multi-path
        // synopses with a converted tributary summary.
        let cfg = cfg(0.01);
        let tree = FreqSummary::local(&ItemBag::from_counts([(1, 1024), (9, 600)]));
        let converted = convert_summary(&cfg, NodeId(2), &tree).unwrap();
        let native = generate_from_bag(
            &cfg,
            NodeId(5),
            &ItemBag::from_counts([(1, 1024), (7, 512)]),
        )
        .unwrap();
        let mut set = SynopsisSet::new();
        set.insert(converted);
        set.insert(native);
        set.compact(&cfg);
        let est = set.evaluate();
        assert!((est.n_est - (1624.0 + 1536.0)).abs() < 1e-9);
        assert!((est.counts[&1] - 2048.0).abs() < 1e-9);
        assert!((est.counts[&7] - 512.0).abs() < 1e-9);
    }

    #[test]
    fn empty_summary_converts_to_none() {
        let cfg = cfg(0.01);
        assert!(convert_summary(&cfg, NodeId(1), &FreqSummary::empty()).is_none());
    }
}
