//! Tree-based frequent items: Algorithm 1 driven over an aggregation tree
//! under a precision gradient (§6.1).
//!
//! Proceeding level-by-level up the tree, each node of height `k` runs
//! Algorithm 1 to produce an `ε(k)`-summary and unicasts it to its parent
//! (with optional retransmissions, §7.4.3). The gradient determines the
//! communication profile measured in Figure 8:
//!
//! * `Min Total-load` (the paper's contribution, Lemma 3) — total
//!   communication ≤ `(1 + 2/(√d−1))·m/ε` words on a d-dominating tree;
//! * `Min Max-load` \[13\] — per-link load ≤ `h/ε` words;
//! * `Hybrid` (§6.1.4) — within 2× of both simultaneously;
//! * `Uniform` — naive baseline (no intermediate pruning budget).

use crate::items::ItemBag;
use crate::summary::FreqSummary;
use td_netsim::loss::{unicast, LossModel, Retransmit};
use td_netsim::network::Network;
use td_netsim::node::BASE_STATION;
use td_netsim::stats::CommStats;
use td_quantiles::gradient::{Hybrid, MinMaxLoad, MinTotalLoad, PrecisionGradient, Uniform};
use td_topology::domination::DominationProfile;
use td_topology::tree::Tree;

/// Which precision gradient to run Algorithm 1 with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GradientKind {
    /// The paper's Min Total-load (Lemma 3).
    MinTotalLoad,
    /// Min Max-load of \[13\].
    MinMaxLoad,
    /// §6.1.4's Hybrid of the two.
    Hybrid,
    /// The whole budget at every level (ablation baseline).
    Uniform,
}

/// Configuration for a tree frequent-items run.
#[derive(Clone, Copy, Debug)]
pub struct TreeFrequentConfig {
    /// The user-facing error tolerance ε.
    pub eps: f64,
    /// Gradient selection.
    pub gradient: GradientKind,
    /// Granularity for the domination factor (paper: 0.05).
    pub granularity: f64,
    /// Retransmission policy on tree links.
    pub retransmit: Retransmit,
}

impl TreeFrequentConfig {
    /// Config with the paper's defaults (ε, Min Total-load, 0.05 grid, no
    /// retransmission).
    pub fn new(eps: f64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps {eps} out of (0,1)");
        TreeFrequentConfig {
            eps,
            gradient: GradientKind::MinTotalLoad,
            granularity: 0.05,
            retransmit: Retransmit::default(),
        }
    }

    /// Same config with a different gradient.
    pub fn with_gradient(mut self, gradient: GradientKind) -> Self {
        self.gradient = gradient;
        self
    }

    /// Same config with retransmissions.
    pub fn with_retransmit(mut self, retries: u32) -> Self {
        self.retransmit = Retransmit { retries };
        self
    }
}

/// Result of a tree frequent-items run.
#[derive(Clone, Debug)]
pub struct TreeRunResult {
    /// The ε-deficient summary at the base station.
    pub summary: FreqSummary,
    /// Communication accounting (words = counters, the Figure 8 unit).
    pub stats: CommStats,
    /// The domination factor used (relevant for `MinTotalLoad`/`Hybrid`).
    pub domination_factor: f64,
}

/// Build the gradient for a tree. `d` is clamped to a hair above 1 when
/// the tree is barely dominating, since Lemma 3 requires `d > 1`.
fn make_gradient(kind: GradientKind, eps: f64, d: f64, height: u32) -> Box<dyn PrecisionGradient> {
    let d = d.max(1.1);
    match kind {
        GradientKind::MinTotalLoad => Box::new(MinTotalLoad::new(eps, d)),
        GradientKind::MinMaxLoad => Box::new(MinMaxLoad::new(eps, height.max(1))),
        GradientKind::Hybrid => Box::new(Hybrid::new(eps, d, height.max(1))),
        GradientKind::Uniform => Box::new(Uniform::new(eps)),
    }
}

/// Run Algorithm 1 over `tree` with per-node item bags (`bags[i]` for node
/// `i`; the base station's bag should be empty). Message loss is governed
/// by `model` (use [`td_netsim::loss::NoLoss`] for the load measurements
/// of Figure 8) and the config's retransmission policy.
pub fn run_tree<M: LossModel, R: rand::Rng + ?Sized>(
    net: &Network,
    tree: &Tree,
    config: &TreeFrequentConfig,
    bags: &[ItemBag],
    model: &M,
    epoch: u64,
    rng: &mut R,
) -> TreeRunResult {
    assert_eq!(bags.len(), tree.len(), "one bag per node required");
    let heights = tree.heights();
    let profile = DominationProfile::from_tree(tree);
    let d = profile.domination_factor(config.granularity);
    let tree_height = heights[BASE_STATION.index()].max(1);
    let gradient = make_gradient(config.gradient, config.eps, d, tree_height);

    let mut inbox: Vec<Vec<FreqSummary>> = vec![Vec::new(); tree.len()];
    let mut stats = CommStats::new(tree.len());
    let mut result = FreqSummary::empty();

    for u in tree.bottom_up_order() {
        let own = FreqSummary::local(&bags[u.index()]);
        let k = heights[u.index()];
        let children = std::mem::take(&mut inbox[u.index()]);
        let summary = FreqSummary::combine(&children, &own, gradient.eps_at(k));
        match tree.parent(u) {
            None => result = summary,
            Some(p) => {
                let words = summary.wire_words();
                let outcome = unicast(model, config.retransmit, u, p, net, epoch, rng);
                stats.record_send(u, words * 4, words, outcome.attempts_used as u64);
                if outcome.delivered {
                    inbox[p.index()].push(summary);
                }
            }
        }
    }
    TreeRunResult {
        summary: result,
        stats,
        domination_factor: d,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::{count_items, true_frequent};
    use td_netsim::loss::{Global, NoLoss};
    use td_netsim::node::Position;
    use td_netsim::rng::rng_from_seed;
    use td_topology::bushy::{build_bushy_tree, BushyOptions};
    use td_topology::rings::Rings;

    /// Build a deployment + bushy tree + per-node bags with a few heavy
    /// hitters and a long tail of rare items.
    fn setup(nodes: usize, items_per_node: usize, seed: u64) -> (Network, Tree, Vec<ItemBag>) {
        let mut rng = rng_from_seed(seed);
        let net =
            Network::random_connected(nodes, 20.0, 20.0, Position::new(10.0, 10.0), 4.5, &mut rng);
        let rings = Rings::build(&net);
        let tree = build_bushy_tree(&net, &rings, BushyOptions::default(), &mut rng);
        let mut bags = vec![ItemBag::new(); net.len()];
        use rand::Rng;
        for u in net.sensor_ids() {
            let bag = &mut bags[u.index()];
            for _ in 0..items_per_node {
                // 30%: heavy items {1, 2, 3}; 70%: uniform tail.
                if rng.gen_bool(0.3) {
                    bag.add(rng.gen_range(1u64..4), 1);
                } else {
                    bag.add(rng.gen_range(100u64..10_000), 1);
                }
            }
        }
        (net, tree, bags)
    }

    #[test]
    fn lossless_run_meets_deficiency_invariant() {
        let (net, tree, bags) = setup(60, 200, 71);
        let cfg = TreeFrequentConfig::new(0.01);
        let mut rng = rng_from_seed(72);
        let res = run_tree(&net, &tree, &cfg, &bags, &NoLoss, 0, &mut rng);
        let truth = count_items(&bags);
        res.summary.check_invariant(&truth).unwrap();
        assert_eq!(res.summary.n, truth.total());
    }

    #[test]
    fn no_false_negatives_lossless() {
        let (net, tree, bags) = setup(60, 200, 73);
        let s = 0.05; // heavy items are ~10% each
        let cfg = TreeFrequentConfig::new(0.005);
        let mut rng = rng_from_seed(74);
        let res = run_tree(&net, &tree, &cfg, &bags, &NoLoss, 0, &mut rng);
        let reported = res.summary.report_frequent(s);
        for item in true_frequent(&bags, s) {
            assert!(reported.contains(&item), "missing frequent item {item}");
        }
    }

    #[test]
    fn all_gradients_correct_and_paper_load_ordering() {
        let (net, tree, bags) = setup(80, 300, 75);
        let truth = count_items(&bags);
        let mut totals = std::collections::BTreeMap::new();
        let mut maxes = std::collections::BTreeMap::new();
        for kind in [
            GradientKind::MinTotalLoad,
            GradientKind::MinMaxLoad,
            GradientKind::Hybrid,
            GradientKind::Uniform,
        ] {
            let cfg = TreeFrequentConfig::new(0.01).with_gradient(kind);
            let mut rng = rng_from_seed(76);
            let res = run_tree(&net, &tree, &cfg, &bags, &NoLoss, 0, &mut rng);
            // Every gradient yields a valid ε-deficient summary.
            res.summary.check_invariant(&truth).unwrap();
            totals.insert(format!("{kind:?}"), res.stats.total_words());
            maxes.insert(format!("{kind:?}"), res.stats.max_words_per_sensor());
        }
        // The paper's headline (Figure 8): Min Total-load transmits fewer
        // total words than Min Max-load (whose tiny leaf budgets cannot
        // prune the long tail near the leaves).
        assert!(
            totals["MinTotalLoad"] < totals["MinMaxLoad"],
            "MTL {} !< MML {}",
            totals["MinTotalLoad"],
            totals["MinMaxLoad"]
        );
        // Hybrid halves the leaf budget relative to Min Total-load, so it
        // prunes less near the leaves: its measured total sits at or above
        // Min Total-load's. (The §6.1.4 factor-2 guarantee is about the
        // worst-case per-level counter caps, which the gradient tests in
        // td-quantiles verify; actual loads are data-dependent.)
        assert!(
            totals["MinTotalLoad"] <= totals["Hybrid"],
            "MTL {} > Hybrid {}",
            totals["MinTotalLoad"],
            totals["Hybrid"]
        );
        // Max load is never degenerate (someone always transmits).
        for (k, &v) in &maxes {
            assert!(v > 0, "{k} max load is zero");
        }
    }

    #[test]
    fn min_total_load_within_lemma3_bound() {
        let (net, tree, bags) = setup(100, 100, 77);
        let cfg = TreeFrequentConfig::new(0.02);
        let mut rng = rng_from_seed(78);
        let res = run_tree(&net, &tree, &cfg, &bags, &NoLoss, 0, &mut rng);
        let d = res.domination_factor.max(1.1);
        let bound = (1.0 + 2.0 / (d.sqrt() - 1.0)) * net.len() as f64 / cfg.eps;
        assert!(
            (res.stats.total_words() as f64) <= bound,
            "total load {} exceeds Lemma 3 bound {bound}",
            res.stats.total_words()
        );
    }

    #[test]
    fn loss_drops_subtrees() {
        let (net, tree, bags) = setup(60, 100, 79);
        let cfg = TreeFrequentConfig::new(0.01);
        let mut rng = rng_from_seed(80);
        let res = run_tree(&net, &tree, &cfg, &bags, &Global::new(0.4), 0, &mut rng);
        let truth = count_items(&bags);
        // Loss can only lose occurrences, never invent them.
        assert!(res.summary.n < truth.total());
        for (u, c) in res.summary.iter() {
            assert!(c <= truth.count(u), "estimate exceeds truth for {u}");
        }
    }

    #[test]
    fn retransmission_recovers_population() {
        let (net, tree, bags) = setup(60, 100, 81);
        let cfg = TreeFrequentConfig::new(0.01);
        let mut rng = rng_from_seed(82);
        let lossy = run_tree(&net, &tree, &cfg, &bags, &Global::new(0.3), 0, &mut rng);
        let mut rng = rng_from_seed(82);
        let cfg2 = cfg.with_retransmit(2);
        let retried = run_tree(&net, &tree, &cfg2, &bags, &Global::new(0.3), 0, &mut rng);
        assert!(
            retried.summary.n > lossy.summary.n,
            "retransmission did not help: {} vs {}",
            retried.summary.n,
            lossy.summary.n
        );
        // ... at the cost of more transmissions.
        assert!(retried.stats.total_transmissions() > lossy.stats.total_transmissions());
    }

    #[test]
    fn deterministic_given_seed() {
        let (net, tree, bags) = setup(40, 50, 83);
        let cfg = TreeFrequentConfig::new(0.02);
        let a = run_tree(
            &net,
            &tree,
            &cfg,
            &bags,
            &Global::new(0.2),
            0,
            &mut rng_from_seed(84),
        );
        let b = run_tree(
            &net,
            &tree,
            &cfg,
            &bags,
            &Global::new(0.2),
            0,
            &mut rng_from_seed(84),
        );
        assert_eq!(a.summary, b.summary);
        assert_eq!(a.stats.total_words(), b.stats.total_words());
    }
}
