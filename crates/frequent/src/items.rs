//! Item collections and exact counting.
//!
//! Following [13, 14] and §6: each sensor node generates a collection of
//! items (e.g. discretized readings); the same item may appear many times
//! at one or more nodes. `c(u)` is an item's total frequency and
//! `N = Σ_u c(u)` the total number of occurrences.

use std::collections::BTreeMap;

/// An item identifier (e.g. a discretized sensor value).
pub type Item = u64;

/// A node's local collection of items, as `(item, count)` pairs.
///
/// ```
/// use td_frequent::items::ItemBag;
///
/// let mut bag = ItemBag::from_stream([3, 3, 9]);
/// bag.add(3, 2);
/// assert_eq!(bag.count(3), 4);
/// assert_eq!(bag.total(), 5);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ItemBag {
    counts: BTreeMap<Item, u64>,
}

impl ItemBag {
    /// An empty bag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from a stream of items.
    pub fn from_stream(items: impl IntoIterator<Item = Item>) -> Self {
        let mut bag = ItemBag::new();
        for i in items {
            bag.add(i, 1);
        }
        bag
    }

    /// Build from `(item, count)` pairs.
    pub fn from_counts(pairs: impl IntoIterator<Item = (Item, u64)>) -> Self {
        let mut bag = ItemBag::new();
        for (i, c) in pairs {
            bag.add(i, c);
        }
        bag
    }

    /// Add `count` occurrences of `item`.
    pub fn add(&mut self, item: Item, count: u64) {
        if count > 0 {
            *self.counts.entry(item).or_insert(0) += count;
        }
    }

    /// Merge another bag into this one (multiset union).
    pub fn merge(&mut self, other: &ItemBag) {
        for (&i, &c) in &other.counts {
            self.add(i, c);
        }
    }

    /// Frequency of one item.
    pub fn count(&self, item: Item) -> u64 {
        self.counts.get(&item).copied().unwrap_or(0)
    }

    /// Total occurrences `N` in this bag.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Number of distinct items.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Whether the bag is empty.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Iterate `(item, count)` in item order.
    pub fn iter(&self) -> impl Iterator<Item = (Item, u64)> + '_ {
        self.counts.iter().map(|(&i, &c)| (i, c))
    }

    /// The items with frequency strictly greater than `threshold`.
    pub fn items_above(&self, threshold: f64) -> Vec<Item> {
        self.counts
            .iter()
            .filter(|(_, &c)| c as f64 > threshold)
            .map(|(&i, _)| i)
            .collect()
    }

    /// Expand back into a stream of individual occurrences (for feeding
    /// value-based structures like GK summaries).
    pub fn expand(&self) -> Vec<Item> {
        let mut out = Vec::with_capacity(self.total() as usize);
        for (&i, &c) in &self.counts {
            out.extend(std::iter::repeat_n(i, c as usize));
        }
        out
    }
}

/// Exact global counts over per-node bags — the ground truth used to
/// measure false positives/negatives (Figure 9).
pub fn count_items(bags: &[ItemBag]) -> ItemBag {
    let mut all = ItemBag::new();
    for b in bags {
        all.merge(b);
    }
    all
}

/// The ground-truth frequent items: frequency > `s · N` where `N` is the
/// total over all bags.
pub fn true_frequent(bags: &[ItemBag], s: f64) -> Vec<Item> {
    let all = count_items(bags);
    let n = all.total() as f64;
    all.items_above(s * n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bag_basics() {
        let mut b = ItemBag::from_stream([1, 2, 2, 3, 3, 3]);
        assert_eq!(b.count(3), 3);
        assert_eq!(b.total(), 6);
        assert_eq!(b.distinct(), 3);
        b.add(1, 4);
        assert_eq!(b.count(1), 5);
        assert_eq!(b.total(), 10);
    }

    #[test]
    fn zero_count_add_is_noop() {
        let mut b = ItemBag::new();
        b.add(7, 0);
        assert!(b.is_empty());
        assert_eq!(b.count(7), 0);
    }

    #[test]
    fn merge_is_multiset_union() {
        let mut a = ItemBag::from_counts([(1, 2), (2, 1)]);
        let b = ItemBag::from_counts([(2, 3), (4, 1)]);
        a.merge(&b);
        assert_eq!(a.count(1), 2);
        assert_eq!(a.count(2), 4);
        assert_eq!(a.count(4), 1);
    }

    #[test]
    fn global_counts_and_frequent() {
        let bags = vec![
            ItemBag::from_counts([(1, 50), (2, 5)]),
            ItemBag::from_counts([(1, 50), (3, 5)]),
        ];
        let all = count_items(&bags);
        assert_eq!(all.total(), 110);
        // s = 0.5: threshold 55 -> only item 1 (count 100).
        assert_eq!(true_frequent(&bags, 0.5), vec![1]);
        // s = 0.01: threshold 1.1 -> all three.
        assert_eq!(true_frequent(&bags, 0.01), vec![1, 2, 3]);
    }

    #[test]
    fn expand_roundtrip() {
        let b = ItemBag::from_counts([(5, 2), (9, 1)]);
        let e = b.expand();
        assert_eq!(e, vec![5, 5, 9]);
        assert_eq!(ItemBag::from_stream(e), b);
    }
}
