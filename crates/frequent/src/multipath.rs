//! The paper's multi-path frequent-items algorithm (§6.2, Algorithm 2).
//!
//! Three ideas make Algorithm 1 duplicate-insensitive:
//!
//! 1. **⊕ everywhere** — Steps 1 and 2 replace addition with a
//!    duplicate-insensitive sum (any [`DiCounter`]); populations are
//!    salted by `(item, node)` so multi-path re-delivery dedups exactly.
//! 2. **Rising thresholds instead of subtraction** — no known
//!    duplicate-insensitive *subtraction* preserves small synopses, so
//!    instead of decrementing estimates, an item is dropped once
//!    `ε·ñ / log N ≥ η·c̃(u)`: the threshold rises with the (estimated)
//!    population ñ, and the slack factor `η > 1` absorbs ⊕'s estimation
//!    error so items are not dropped wrongly.
//! 3. **Classes** — a synopsis is in class `i` when it represents ≈ `2^i`
//!    items; only same-class synopses fuse, and a fusion whose ñ exceeds
//!    `2^{i+1}` promotes to class `i+1` and re-applies the drop rule.
//!    With at most `log N + 1` classes, each node transmits at most one
//!    synopsis per class.
//!
//! Synopsis generation prunes items with frequency ≤ `i·n0·ε / log N`
//! (`i = ⌊log n0⌋`), charging the thresholds a leaf "skipped" by starting
//! at class `i`. Synopsis evaluation ⊕-sums an item's counters across all
//! classes — safe because copies of the same population carry the same
//! salts and dedup.

use crate::items::{Item, ItemBag};
use std::collections::BTreeMap;
use td_netsim::loss::{broadcast, LossModel};
use td_netsim::network::Network;
use td_netsim::node::{NodeId, BASE_STATION};
use td_netsim::stats::CommStats;
use td_sketches::counter::{CounterFactory, DiCounter};
use td_sketches::hash::keyed_pair;

/// Hash key for item-occurrence populations.
const ITEM_POP_KEY: u64 = 0xF4E9;

/// Configuration of the multi-path algorithm.
#[derive(Clone, Debug)]
pub struct MultipathConfig<F> {
    /// Error tolerance ε (the multi-path share ε_b in a TD deployment).
    pub eps: f64,
    /// Threshold slack η > 1 (absorbs ⊕ estimation error).
    pub eta: f64,
    /// Upper bound on the total number of occurrences N (fixes the class
    /// count `log N + 1`).
    pub n_upper: u64,
    /// Factory for the duplicate-insensitive counters.
    pub factory: F,
}

impl<F> MultipathConfig<F> {
    /// Create a config.
    ///
    /// # Panics
    /// Panics unless `0 < eps < 1`, `eta > 1`, `n_upper ≥ 2`.
    pub fn new(eps: f64, eta: f64, n_upper: u64, factory: F) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps {eps} out of (0,1)");
        assert!(eta > 1.0, "the paper restricts η > 1, got {eta}");
        assert!(n_upper >= 2);
        MultipathConfig {
            eps,
            eta,
            n_upper,
            factory,
        }
    }

    /// `log₂ N` used by the thresholds (at least 1).
    pub fn log_n(&self) -> f64 {
        (self.n_upper as f64).log2().max(1.0)
    }
}

/// A class-`i` synopsis: a duplicate-insensitive count ñ of the items it
/// represents plus per-item duplicate-insensitive counters.
#[derive(Clone, Debug)]
pub struct ClassSynopsis<C> {
    /// The synopsis class `i` (ñ ≈ 2^i).
    pub class: u32,
    /// Duplicate-insensitive count of total represented occurrences ñ.
    pub total: C,
    items: BTreeMap<Item, C>,
}

impl<C: DiCounter> ClassSynopsis<C> {
    /// Number of items carried.
    pub fn num_items(&self) -> usize {
        self.items.len()
    }

    /// Iterate `(item, estimated count)`.
    pub fn estimates(&self) -> impl Iterator<Item = (Item, f64)> + '_ {
        self.items.iter().map(|(&u, c)| (u, c.estimate()))
    }

    /// Wire size in 32-bit words: per class 2 header words (class, item
    /// count) + the ñ counter + each item id with its counter.
    pub fn wire_words(&self) -> usize {
        2 + self.total.wire_words()
            + self
                .items
                .values()
                .map(|c| 2 + c.wire_words())
                .sum::<usize>()
    }
}

/// Synopsis generation (SG): build a class-`⌊log n0⌋` synopsis from
/// `(item, count)` pairs totalling `n0` occurrences, salted by
/// `source_salt` (the node id, or the tributary root for conversions).
/// Items with frequency ≤ `i·n0·ε / log N` are pruned. Returns `None` for
/// an empty collection.
pub fn generate<F: CounterFactory>(
    cfg: &MultipathConfig<F>,
    source_salt: u64,
    pairs: impl Iterator<Item = (Item, u64)>,
    n0: u64,
) -> Option<ClassSynopsis<F::Counter>> {
    if n0 == 0 {
        return None;
    }
    let class = (n0 as f64).log2().floor() as u32;
    let threshold = class as f64 * n0 as f64 * cfg.eps / cfg.log_n();
    let mut items = BTreeMap::new();
    for (u, c) in pairs {
        if (c as f64) > threshold {
            let mut counter = cfg.factory.new_counter();
            counter.add_occurrences(keyed_pair(ITEM_POP_KEY, u, source_salt), c);
            items.insert(u, counter);
        }
    }
    let mut total = cfg.factory.new_counter();
    total.add_occurrences(source_salt, n0);
    Some(ClassSynopsis {
        class,
        total,
        items,
    })
}

/// SG from a node's item bag.
pub fn generate_from_bag<F: CounterFactory>(
    cfg: &MultipathConfig<F>,
    node: NodeId,
    bag: &ItemBag,
) -> Option<ClassSynopsis<F::Counter>> {
    generate(cfg, node.0 as u64, bag.iter(), bag.total())
}

/// **Algorithm 2**: fuse two synopses of the same class. The result is of
/// class `i` or higher (promotion re-applies the rising-threshold drop).
pub fn fuse<F: CounterFactory>(
    cfg: &MultipathConfig<F>,
    mut a: ClassSynopsis<F::Counter>,
    b: ClassSynopsis<F::Counter>,
) -> ClassSynopsis<F::Counter> {
    assert_eq!(a.class, b.class, "only same-class synopses fuse");
    // Step 1: ñ := ñ1 ⊕ ñ2.
    a.total.merge(&b.total);
    // Step 2: per-item ⊕.
    for (u, c) in b.items {
        match a.items.entry(u) {
            std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().merge(&c),
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(c);
            }
        }
    }
    // Step 3: promote while ñ exceeds the class budget, dropping items
    // below the rising threshold each time.
    let n_est = a.total.estimate();
    while n_est > 2f64.powi(a.class as i32 + 1) && (a.class as f64) < cfg.log_n() {
        a.class += 1;
        let log_n = cfg.log_n();
        let eps = cfg.eps;
        let eta = cfg.eta;
        a.items
            .retain(|_, c| eps * n_est / log_n < eta * c.estimate());
    }
    a
}

/// The collection of synopses a node holds/transmits: at most one per
/// class after [`SynopsisSet::compact`].
#[derive(Clone, Debug)]
pub struct SynopsisSet<C> {
    slots: BTreeMap<u32, Vec<ClassSynopsis<C>>>,
}

impl<C: DiCounter> Default for SynopsisSet<C> {
    fn default() -> Self {
        SynopsisSet {
            slots: BTreeMap::new(),
        }
    }
}

impl<C: DiCounter> SynopsisSet<C> {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the set holds no synopses.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total synopses held (before compaction there may be several per
    /// class).
    pub fn num_synopses(&self) -> usize {
        self.slots.values().map(Vec::len).sum()
    }

    /// Add one synopsis.
    pub fn insert(&mut self, s: ClassSynopsis<C>) {
        self.slots.entry(s.class).or_default().push(s);
    }

    /// Absorb all synopses of another set.
    pub fn absorb(&mut self, other: SynopsisSet<C>) {
        for (_, list) in other.slots {
            for s in list {
                self.insert(s);
            }
        }
    }

    /// Fuse down to at most one synopsis per class, beginning with the
    /// smallest class (§6.2 "Synopsis Fusion").
    pub fn compact<F: CounterFactory<Counter = C>>(&mut self, cfg: &MultipathConfig<F>) {
        // Repeatedly fuse the smallest class holding two or more synopses.
        while let Some((&class, _)) = self.slots.iter().find(|(_, v)| v.len() >= 2) {
            let list = self.slots.get_mut(&class).expect("class exists");
            let a = list.pop().expect("len >= 2");
            let b = list.pop().expect("len >= 2");
            if list.is_empty() {
                self.slots.remove(&class);
            }
            let fused = fuse(cfg, a, b);
            self.insert(fused);
        }
    }

    /// Wire size in words across all synopses.
    pub fn wire_words(&self) -> usize {
        self.slots
            .values()
            .flatten()
            .map(ClassSynopsis::wire_words)
            .sum()
    }

    /// Synopsis evaluation (SE): ⊕-combine each item's counters across
    /// all classes and estimate; also estimate the total N̂.
    pub fn evaluate(&self) -> FreqEstimates {
        let mut per_item: BTreeMap<Item, C> = BTreeMap::new();
        let mut total: Option<C> = None;
        for s in self.slots.values().flatten() {
            match &mut total {
                Some(t) => t.merge(&s.total),
                None => total = Some(s.total.clone()),
            }
            for (u, c) in &s.items {
                match per_item.entry(*u) {
                    std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().merge(c),
                    std::collections::btree_map::Entry::Vacant(e) => {
                        e.insert(c.clone());
                    }
                }
            }
        }
        FreqEstimates {
            n_est: total.map_or(0.0, |t| t.estimate()),
            counts: per_item
                .into_iter()
                .map(|(u, c)| (u, c.estimate()))
                .collect(),
        }
    }
}

/// The output of synopsis evaluation.
#[derive(Clone, Debug, Default)]
pub struct FreqEstimates {
    /// Estimated total occurrences N̂.
    pub n_est: f64,
    /// Estimated per-item counts.
    pub counts: BTreeMap<Item, f64>,
}

impl FreqEstimates {
    /// Report items whose estimate exceeds `fraction · N̂` (callers pass
    /// `s − ε` per the paper's reporting rule).
    pub fn report(&self, fraction: f64) -> Vec<Item> {
        let threshold = fraction * self.n_est;
        self.counts
            .iter()
            .filter(|(_, &c)| c > threshold)
            .map(|(&u, _)| u)
            .collect()
    }
}

/// Result of a rings (synopsis diffusion) frequent-items run.
#[derive(Clone, Debug)]
pub struct RingsRunResult {
    /// The estimates evaluated at the base station.
    pub estimates: FreqEstimates,
    /// Communication accounting.
    pub stats: CommStats,
}

/// Run the multi-path algorithm over a rings topology: level-by-level
/// broadcasts, each receiver one ring closer folding in whatever it hears.
pub fn run_rings<F: CounterFactory, M: LossModel, R: rand::Rng + ?Sized>(
    net: &Network,
    rings: &td_topology::rings::Rings,
    cfg: &MultipathConfig<F>,
    bags: &[ItemBag],
    model: &M,
    epoch: u64,
    rng: &mut R,
) -> RingsRunResult {
    assert_eq!(bags.len(), net.len(), "one bag per node required");
    let mut holding: Vec<SynopsisSet<F::Counter>> =
        (0..net.len()).map(|_| SynopsisSet::new()).collect();
    let mut stats = CommStats::new(net.len());

    for level in (1..=rings.max_level()).rev() {
        for u in rings.nodes_at_level(level) {
            let set = &mut holding[u.index()];
            if let Some(local) = generate_from_bag(cfg, u, &bags[u.index()]) {
                set.insert(local);
            }
            set.compact(cfg);
            let words = set.wire_words();
            stats.record_send(u, words * 4, words, 1);
            if set.is_empty() {
                continue;
            }
            let receivers = broadcast(model, u, rings.receivers(u), net, epoch, rng);
            let payload = std::mem::take(&mut holding[u.index()]);
            for r in &receivers {
                holding[r.index()].absorb(payload.clone());
            }
        }
    }
    let mut base = std::mem::take(&mut holding[BASE_STATION.index()]);
    if let Some(local) = generate_from_bag(cfg, BASE_STATION, &bags[BASE_STATION.index()]) {
        base.insert(local);
    }
    base.compact(cfg);
    RingsRunResult {
        estimates: base.evaluate(),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::{count_items, true_frequent};
    use td_netsim::loss::{Global, NoLoss};
    use td_netsim::node::Position;
    use td_netsim::rng::rng_from_seed;
    use td_sketches::counter::{ExactFactory, FmFactory};
    use td_topology::rings::Rings;

    fn cfg_exact(eps: f64, n_upper: u64) -> MultipathConfig<ExactFactory> {
        MultipathConfig::new(eps, 1.5, n_upper, ExactFactory)
    }

    #[test]
    fn sg_prunes_rare_items_and_sets_class() {
        let cfg = cfg_exact(0.1, 1 << 20);
        let bag = ItemBag::from_counts([(1, 900), (2, 80), (3, 20), (4, 1)]);
        // n0 = 1001, class = 9, threshold = 9 * 1001 * 0.1 / 20 ≈ 45.
        let s = generate_from_bag(&cfg, NodeId(5), &bag).unwrap();
        assert_eq!(s.class, 9);
        let items: Vec<Item> = s.estimates().map(|(u, _)| u).collect();
        assert_eq!(items, vec![1, 2]);
        assert!((s.total.estimate() - 1001.0).abs() < 1e-9);
    }

    #[test]
    fn empty_bag_generates_nothing() {
        let cfg = cfg_exact(0.1, 1024);
        assert!(generate_from_bag(&cfg, NodeId(1), &ItemBag::new()).is_none());
    }

    #[test]
    fn fuse_dedups_duplicate_populations() {
        let cfg = cfg_exact(0.01, 1 << 16);
        let bag = ItemBag::from_counts([(1, 500), (2, 300)]);
        let a = generate_from_bag(&cfg, NodeId(1), &bag).unwrap();
        let b = a.clone();
        let fused = fuse(&cfg, a, b.clone());
        // Fusing a synopsis with its own copy must not change estimates.
        assert!((fused.total.estimate() - 800.0).abs() < 1e-9);
        let est: BTreeMap<Item, f64> = fused.estimates().collect();
        assert!((est[&1] - 500.0).abs() < 1e-9);
    }

    #[test]
    fn fuse_promotes_class_and_drops() {
        let cfg = cfg_exact(0.2, 1 << 10);
        // Two nodes, each n0 = 612 (class 9): fused ñ = 1224 > 2^10 -> promote.
        let a =
            generate_from_bag(&cfg, NodeId(1), &ItemBag::from_counts([(1, 600), (2, 12)])).unwrap();
        let b =
            generate_from_bag(&cfg, NodeId(2), &ItemBag::from_counts([(1, 600), (3, 12)])).unwrap();
        assert_eq!(a.class, b.class);
        let fused = fuse(&cfg, a, b);
        assert!(fused.class >= 10, "class {}", fused.class);
        // Threshold at promotion: 0.2 * 1224 / 10 = 24.5; η = 1.5 ->
        // items with est < 16.3 drop: items 2 and 3 (12) go, item 1 stays.
        let items: Vec<Item> = fused.estimates().map(|(u, _)| u).collect();
        assert_eq!(items, vec![1]);
    }

    #[test]
    #[should_panic(expected = "same-class")]
    fn fuse_rejects_different_classes() {
        let cfg = cfg_exact(0.1, 1 << 10);
        let a = generate_from_bag(&cfg, NodeId(1), &ItemBag::from_counts([(1, 4)])).unwrap();
        let b = generate_from_bag(&cfg, NodeId(2), &ItemBag::from_counts([(1, 100)])).unwrap();
        let _ = fuse(&cfg, a, b);
    }

    #[test]
    fn compact_leaves_one_per_class() {
        let cfg = cfg_exact(0.05, 1 << 16);
        let mut set = SynopsisSet::new();
        for node in 1..=8u32 {
            let bag = ItemBag::from_counts([(1, 100), (node as u64 + 10, 40)]);
            set.insert(generate_from_bag(&cfg, NodeId(node), &bag).unwrap());
        }
        set.compact(&cfg);
        let mut seen = std::collections::BTreeSet::new();
        for (class, list) in &set.slots {
            assert!(list.len() <= 1, "class {class} has {}", list.len());
            seen.insert(*class);
        }
        assert!(!seen.is_empty());
    }

    fn rings_setup(seed: u64, nodes: usize) -> (Network, Rings) {
        let mut rng = rng_from_seed(seed);
        let net =
            Network::random_connected(nodes, 20.0, 20.0, Position::new(10.0, 10.0), 4.0, &mut rng);
        let rings = Rings::build(&net);
        (net, rings)
    }

    fn skewed_bags(net: &Network, per_node: usize, seed: u64) -> Vec<ItemBag> {
        use rand::Rng;
        let mut rng = rng_from_seed(seed);
        let mut bags = vec![ItemBag::new(); net.len()];
        for u in net.sensor_ids() {
            for _ in 0..per_node {
                if rng.gen_bool(0.4) {
                    bags[u.index()].add(rng.gen_range(1u64..4), 1);
                } else {
                    bags[u.index()].add(rng.gen_range(100u64..5000), 1);
                }
            }
        }
        bags
    }

    #[test]
    fn rings_lossless_exact_counters_find_frequent() {
        let (net, rings) = rings_setup(91, 60);
        let bags = skewed_bags(&net, 200, 92);
        let n: u64 = bags.iter().map(|b| b.total()).sum();
        let cfg = cfg_exact(0.002, n * 2);
        let mut rng = rng_from_seed(93);
        let res = run_rings(&net, &rings, &cfg, &bags, &NoLoss, 0, &mut rng);
        // Exact counters + no loss: N̂ = N exactly.
        assert!((res.estimates.n_est - n as f64).abs() < 1e-6);
        let s = 0.05;
        let reported = res.estimates.report(s - cfg.eps);
        for item in true_frequent(&bags, s) {
            assert!(reported.contains(&item), "missing {item}");
        }
        // All reported items are at least somewhat frequent (no junk).
        let truth = count_items(&bags);
        for item in &reported {
            assert!(
                truth.count(*item) as f64 > (s - cfg.eps) * n as f64 * 0.5,
                "false positive {item} with count {}",
                truth.count(*item)
            );
        }
    }

    #[test]
    fn rings_estimates_never_exceed_truth_with_exact_counters() {
        let (net, rings) = rings_setup(94, 50);
        let bags = skewed_bags(&net, 100, 95);
        let n: u64 = bags.iter().map(|b| b.total()).sum();
        let cfg = cfg_exact(0.01, n * 2);
        let mut rng = rng_from_seed(96);
        let res = run_rings(&net, &rings, &cfg, &bags, &NoLoss, 0, &mut rng);
        let truth = count_items(&bags);
        for (&u, &est) in &res.estimates.counts {
            assert!(
                est <= truth.count(u) as f64 + 1e-6,
                "item {u}: est {est} > truth {}",
                truth.count(u)
            );
        }
    }

    #[test]
    fn rings_robust_to_loss() {
        // At 30% loss, multi-path still accounts for nearly everything.
        let (net, rings) = rings_setup(97, 150);
        let bags = skewed_bags(&net, 100, 98);
        let n: u64 = bags.iter().map(|b| b.total()).sum();
        let cfg = cfg_exact(0.01, n * 2);
        let mut rng = rng_from_seed(99);
        let res = run_rings(&net, &rings, &cfg, &bags, &Global::new(0.3), 0, &mut rng);
        // Outer-ring nodes with a single receiver can still lose whole
        // subtrees, so multi-path is not lossless — but it accounts for
        // the large majority where a tree would lose most of the network
        // (the tree expectation at ~6 hops and p=0.3 is ~0.7^6 ≈ 12%).
        assert!(
            res.estimates.n_est > 0.75 * n as f64,
            "only {:.0}/{n} accounted for",
            res.estimates.n_est
        );
    }

    #[test]
    fn rings_with_fm_counters_reports_heavy_hitters() {
        let (net, rings) = rings_setup(101, 60);
        let bags = skewed_bags(&net, 200, 102);
        let n: u64 = bags.iter().map(|b| b.total()).sum();
        let cfg = MultipathConfig::new(0.005, 2.0, n * 2, FmFactory { bitmaps: 16 });
        let mut rng = rng_from_seed(103);
        let res = run_rings(&net, &rings, &cfg, &bags, &NoLoss, 0, &mut rng);
        // Items 1..3 each carry ~13% of N; report at s = 5%.
        let reported = res.estimates.report(0.05 - cfg.eps);
        for item in true_frequent(&bags, 0.05) {
            assert!(reported.contains(&item), "missing heavy hitter {item}");
        }
    }

    #[test]
    fn multipath_message_cost_exceeds_tree_cost() {
        // §7.4.3: a multi-path partial result spans ~3x the TinyDB
        // messages of a tree summary. Sanity-check the direction.
        let (net, rings) = rings_setup(104, 60);
        let bags = skewed_bags(&net, 150, 105);
        let n: u64 = bags.iter().map(|b| b.total()).sum();
        let cfg = MultipathConfig::new(0.01, 2.0, n * 2, FmFactory { bitmaps: 16 });
        let mut rng = rng_from_seed(106);
        let res = run_rings(&net, &rings, &cfg, &bags, &NoLoss, 0, &mut rng);
        let avg_messages = res.stats.total_messages() as f64 / net.num_sensors() as f64;
        assert!(
            avg_messages > 1.0,
            "expected multi-message synopses, got {avg_messages}"
        );
    }
}
