//! The Quantiles-based frequent-items baseline (\[8\], Figure 8).
//!
//! "Frequent items can be computed from quantiles" (§7.4.2, footnote 5):
//! run Greenwald–Khanna summaries up the tree under a precision gradient,
//! then read item frequencies out of the rank structure at the base
//! station — `freq(u) = rank(u) − rank(u−1)`, within `2E` of truth. The
//! summaries carry 3 words per tuple versus 2 per item for ε-deficient
//! summaries, and GK's compression is value-ordered rather than
//! frequency-aware, which is why this baseline pays more communication on
//! the bushy trees the paper evaluates (Figure 8's tallest bars).

use crate::items::ItemBag;
use crate::tree::GradientKind;
use td_netsim::loss::{unicast, LossModel, Retransmit};
use td_netsim::network::Network;
use td_netsim::stats::CommStats;
use td_quantiles::gradient::{Hybrid, MinMaxLoad, MinTotalLoad, PrecisionGradient, Uniform};
use td_quantiles::summary::GkSummary;
use td_topology::domination::DominationProfile;
use td_topology::tree::Tree;

/// Configuration for the quantiles-based run.
#[derive(Clone, Copy, Debug)]
pub struct QuantileBasedConfig {
    /// Error tolerance ε (rank error budget as a fraction of N).
    pub eps: f64,
    /// Precision gradient (the baseline historically pairs with
    /// Min Max-load's linear gradient).
    pub gradient: GradientKind,
    /// Domination-factor granularity.
    pub granularity: f64,
    /// Retransmission policy.
    pub retransmit: Retransmit,
}

impl QuantileBasedConfig {
    /// Defaults matching the paper's baseline.
    pub fn new(eps: f64) -> Self {
        assert!(eps > 0.0 && eps < 1.0);
        QuantileBasedConfig {
            eps,
            gradient: GradientKind::MinMaxLoad,
            granularity: 0.05,
            retransmit: Retransmit::default(),
        }
    }
}

/// Result of a quantiles-based run.
#[derive(Clone, Debug)]
pub struct QuantileRunResult {
    /// The GK summary at the base station.
    pub summary: GkSummary,
    /// Communication accounting (words; 3 per GK tuple).
    pub stats: CommStats,
}

impl QuantileRunResult {
    /// Report items with estimated frequency > `(s − eps) · N`.
    pub fn report_frequent(&self, s: f64, eps: f64) -> Vec<u64> {
        let n = self.summary.population() as f64;
        let threshold = (s - eps) * n;
        let mut out: Vec<u64> = Vec::new();
        let mut last = None;
        for v in self.summary.values() {
            if last == Some(v) {
                continue; // summaries may carry duplicate values
            }
            last = Some(v);
            if self.summary.frequency(v) as f64 > threshold {
                out.push(v);
            }
        }
        out
    }
}

fn make_gradient(kind: GradientKind, eps: f64, d: f64, height: u32) -> Box<dyn PrecisionGradient> {
    let d = d.max(1.1);
    match kind {
        GradientKind::MinTotalLoad => Box::new(MinTotalLoad::new(eps, d)),
        GradientKind::MinMaxLoad => Box::new(MinMaxLoad::new(eps, height.max(1))),
        GradientKind::Hybrid => Box::new(Hybrid::new(eps, d, height.max(1))),
        GradientKind::Uniform => Box::new(Uniform::new(eps)),
    }
}

/// Run GK summaries up `tree` under the configured gradient. Each node of
/// height `k` combines its children with its local exact summary and
/// reduces to absolute uncertainty `ε(k) · n_subtree` before transmitting.
pub fn run_tree_gk<M: LossModel, R: rand::Rng + ?Sized>(
    net: &Network,
    tree: &Tree,
    config: &QuantileBasedConfig,
    bags: &[ItemBag],
    model: &M,
    epoch: u64,
    rng: &mut R,
) -> QuantileRunResult {
    assert_eq!(bags.len(), tree.len());
    let heights = tree.heights();
    let d = DominationProfile::from_tree(tree).domination_factor(config.granularity);
    let tree_height = heights[td_netsim::node::BASE_STATION.index()].max(1);
    let gradient = make_gradient(config.gradient, config.eps, d, tree_height);

    let mut inbox: Vec<Vec<GkSummary>> = vec![Vec::new(); tree.len()];
    let mut stats = CommStats::new(tree.len());
    let mut result = GkSummary::empty();

    for u in tree.bottom_up_order() {
        let mut acc = GkSummary::exact(&bags[u.index()].expand());
        for child in std::mem::take(&mut inbox[u.index()]) {
            acc = acc.combine(&child);
        }
        let k = heights[u.index()];
        let budget = (gradient.eps_at(k) * acc.population() as f64).floor() as u64;
        acc.reduce(budget);
        match tree.parent(u) {
            None => result = acc,
            Some(p) => {
                let words = acc.wire_words();
                let outcome = unicast(model, config.retransmit, u, p, net, epoch, rng);
                stats.record_send(u, words * 4, words, outcome.attempts_used as u64);
                if outcome.delivered {
                    inbox[p.index()].push(acc);
                }
            }
        }
    }
    QuantileRunResult {
        summary: result,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::{count_items, true_frequent};
    use crate::tree::{run_tree, TreeFrequentConfig};
    use td_netsim::loss::NoLoss;
    use td_netsim::node::Position;
    use td_netsim::rng::rng_from_seed;
    use td_topology::bushy::{build_bushy_tree, BushyOptions};
    use td_topology::rings::Rings;

    fn setup(seed: u64) -> (Network, Tree, Vec<ItemBag>) {
        let mut rng = rng_from_seed(seed);
        let net =
            Network::random_connected(50, 20.0, 20.0, Position::new(10.0, 10.0), 5.0, &mut rng);
        let rings = Rings::build(&net);
        let tree = build_bushy_tree(&net, &rings, BushyOptions::default(), &mut rng);
        use rand::Rng;
        let mut bags = vec![ItemBag::new(); net.len()];
        for u in net.sensor_ids() {
            for _ in 0..150 {
                if rng.gen_bool(0.4) {
                    bags[u.index()].add(rng.gen_range(1u64..4), 1);
                } else {
                    bags[u.index()].add(rng.gen_range(50u64..2000), 1);
                }
            }
        }
        (net, tree, bags)
    }

    #[test]
    fn finds_frequent_items_lossless() {
        let (net, tree, bags) = setup(111);
        let cfg = QuantileBasedConfig::new(0.01);
        let mut rng = rng_from_seed(112);
        let res = run_tree_gk(&net, &tree, &cfg, &bags, &NoLoss, 0, &mut rng);
        let truth = count_items(&bags);
        assert_eq!(res.summary.population(), truth.total());
        let s = 0.05;
        let reported = res.report_frequent(s, cfg.eps);
        for item in true_frequent(&bags, s) {
            assert!(reported.contains(&item), "missing frequent item {item}");
        }
    }

    #[test]
    fn frequency_estimates_within_error() {
        let (net, tree, bags) = setup(113);
        let cfg = QuantileBasedConfig::new(0.02);
        let mut rng = rng_from_seed(114);
        let res = run_tree_gk(&net, &tree, &cfg, &bags, &NoLoss, 0, &mut rng);
        let truth = count_items(&bags);
        let n = truth.total() as f64;
        for item in [1u64, 2, 3] {
            let est = res.summary.frequency(item) as f64;
            let err = (est - truth.count(item) as f64).abs();
            assert!(
                err <= 2.0 * cfg.eps * n + 2.0,
                "item {item}: est {est} truth {} err {err}",
                truth.count(item)
            );
        }
    }

    #[test]
    fn costs_more_than_min_total_load() {
        // Figure 8's qualitative claim: Quantiles-based transmits more
        // words than the paper's Min Total-load at the same ε.
        let (net, tree, bags) = setup(115);
        let eps = 0.01;
        let mut rng = rng_from_seed(116);
        let gk = run_tree_gk(
            &net,
            &tree,
            &QuantileBasedConfig::new(eps),
            &bags,
            &NoLoss,
            0,
            &mut rng,
        );
        let mut rng = rng_from_seed(116);
        let mtl = run_tree(
            &net,
            &tree,
            &TreeFrequentConfig::new(eps),
            &bags,
            &NoLoss,
            0,
            &mut rng,
        );
        assert!(
            gk.stats.total_words() > mtl.stats.total_words(),
            "GK {} words vs MTL {} words",
            gk.stats.total_words(),
            mtl.stats.total_words()
        );
    }
}
