//! ε-deficient summaries and Algorithm 1.
//!
//! A summary `S = ⟨N, ε, {(u, c̃(u))}⟩` (§6.1.1) over the readings of some
//! subtree satisfies, for every item `u`:
//!
//! ```text
//! max(0, c(u) − ε·N)  ≤  c̃(u)  ≤  c(u)
//! ```
//!
//! where `c(u)` is `u`'s true frequency in the subtree and `N` the
//! subtree's total occurrences. Items with small counts need not be
//! stored — that is the whole point: a node of height `k` decrements every
//! estimate by its *budget gain* `ε(k)·n − Σ_j ε_j·n_j` (Algorithm 1,
//! Step 3) and drops non-positive entries, so at most
//! `1/(ε(k)−ε(k−1))` estimates survive on its outgoing link.

use crate::items::{Item, ItemBag};
use std::collections::BTreeMap;

/// An ε-deficient frequent-items summary.
///
/// ```
/// use td_frequent::items::ItemBag;
/// use td_frequent::summary::FreqSummary;
///
/// // Algorithm 1 at a height-2 node: combine two children at ε(2) = 5%.
/// let a = FreqSummary::local(&ItemBag::from_counts([(7, 90), (1, 10)]));
/// let b = FreqSummary::local(&ItemBag::from_counts([(7, 80), (2, 20)]));
/// let s = FreqSummary::combine(&[a, b], &FreqSummary::empty(), 0.05);
/// // The heavy item survives with a deficient (never inflated) count…
/// assert!(s.count(7) <= 170 && s.count(7) >= 170 - 10);
/// // …and is reported at support 50%.
/// assert_eq!(s.report_frequent(0.5), vec![7]);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FreqSummary {
    /// Total item occurrences `N` covered by this summary.
    pub n: u64,
    /// The summary's deficiency bound ε (each count may undershoot by up
    /// to `ε·N`).
    pub eps: f64,
    counts: BTreeMap<Item, u64>,
}

impl FreqSummary {
    /// An empty summary (no items, ε = 0).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Exact (ε = 0) summary of a local item collection — the `S0` input
    /// of Algorithm 1.
    pub fn local(bag: &ItemBag) -> Self {
        FreqSummary {
            n: bag.total(),
            eps: 0.0,
            counts: bag.iter().collect(),
        }
    }

    /// Assemble a summary from raw parts. The caller is responsible for
    /// the deficiency invariant — used by the Tributary-Delta protocol,
    /// which accumulates children raw (tracking spent budget in `eps`)
    /// and applies the Step-3 decrement once per node.
    pub fn from_parts(n: u64, eps: f64, counts: BTreeMap<Item, u64>) -> Self {
        FreqSummary { n, eps, counts }
    }

    /// **Algorithm 1**: generate an ε(k)-summary from children summaries
    /// plus the node's own exact summary.
    ///
    /// Steps: (1) `n := Σ n_j + n_0`; (2) pointwise-sum the estimates;
    /// (3) decrement every estimate by `ε(k)·n − Σ_j ε_j·n_j` and drop
    /// non-positive entries.
    ///
    /// # Panics
    /// Panics if `eps_k` is smaller than any input's ε·n share would
    /// allow (a negative decrement means the precision gradient was not
    /// monotone — a caller bug).
    pub fn combine(children: &[FreqSummary], own: &FreqSummary, eps_k: f64) -> FreqSummary {
        // Step 1: total population.
        let n: u64 = children.iter().map(|s| s.n).sum::<u64>() + own.n;
        // Step 2: pointwise sums.
        let mut counts: BTreeMap<Item, u64> = BTreeMap::new();
        for s in children.iter().chain(std::iter::once(own)) {
            for (&u, &c) in &s.counts {
                *counts.entry(u).or_insert(0) += c;
            }
        }
        // Step 3: uniform decrement by the budget gain.
        let spent: f64 =
            children.iter().map(|s| s.eps * s.n as f64).sum::<f64>() + own.eps * own.n as f64;
        let decrement = eps_k * n as f64 - spent;
        assert!(
            decrement >= -1e-9,
            "non-monotone precision gradient: eps_k {eps_k} cannot cover inputs ({spent} over n={n})"
        );
        let dec = decrement.max(0.0);
        counts.retain(|_, c| {
            let v = *c as f64 - dec;
            if v > 0.0 {
                *c = v.ceil() as u64;
                true
            } else {
                false
            }
        });
        FreqSummary {
            n,
            eps: eps_k,
            counts,
        }
    }

    /// The ε-deficient count of an item (0 if dropped).
    pub fn count(&self, u: Item) -> u64 {
        self.counts.get(&u).copied().unwrap_or(0)
    }

    /// Number of stored items.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether no items are stored.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Iterate `(item, c̃)` in item order.
    pub fn iter(&self) -> impl Iterator<Item = (Item, u64)> + '_ {
        self.counts.iter().map(|(&u, &c)| (u, c))
    }

    /// Report items with `c̃(u) > (s − ε)·N` — all truly frequent items
    /// (frequency ≥ `s·N`) are included; false positives have frequency
    /// at least `(s − ε)·N` (§6 preliminaries).
    pub fn report_frequent(&self, s: f64) -> Vec<Item> {
        let threshold = (s - self.eps) * self.n as f64;
        self.counts
            .iter()
            .filter(|(_, &c)| c as f64 > threshold)
            .map(|(&u, _)| u)
            .collect()
    }

    /// Wire size in 32-bit words: one word per item id + one per count,
    /// plus 2 header words (`n`, ε) — the unit Figure 8 plots.
    pub fn wire_words(&self) -> usize {
        2 + self.counts.len() * 2
    }

    /// Test helper: check the ε-deficiency invariant against ground truth.
    pub fn check_invariant(&self, truth: &ItemBag) -> Result<(), String> {
        if truth.total() != self.n {
            return Err(format!(
                "population mismatch: summary n={} truth N={}",
                self.n,
                truth.total()
            ));
        }
        let slack = self.eps * self.n as f64 + 1e-9;
        for (u, true_c) in truth.iter() {
            let est = self.count(u);
            if est > true_c {
                return Err(format!("item {u}: estimate {est} > true {true_c}"));
            }
            if (true_c as f64) - (est as f64) > slack {
                return Err(format!(
                    "item {u}: estimate {est} undershoots true {true_c} by more than ε·N = {slack}"
                ));
            }
        }
        // No phantom items.
        for (u, _) in self.iter() {
            if truth.count(u) == 0 {
                return Err(format!("item {u} not present in ground truth"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn bag(pairs: &[(Item, u64)]) -> ItemBag {
        ItemBag::from_counts(pairs.iter().copied())
    }

    #[test]
    fn local_summary_is_exact() {
        let b = bag(&[(1, 5), (2, 3)]);
        let s = FreqSummary::local(&b);
        assert_eq!(s.n, 8);
        assert_eq!(s.eps, 0.0);
        assert_eq!(s.count(1), 5);
        s.check_invariant(&b).unwrap();
    }

    #[test]
    fn combine_sums_and_decrements() {
        // Two children with 100 items each, eps 0; own empty; eps_k = 0.05
        // -> decrement = 0.05 * 200 = 10.
        let a = FreqSummary::local(&bag(&[(1, 60), (2, 40)]));
        let b = FreqSummary::local(&bag(&[(1, 60), (3, 40)]));
        let own = FreqSummary::empty();
        let s = FreqSummary::combine(&[a, b], &own, 0.05);
        assert_eq!(s.n, 200);
        assert_eq!(s.count(1), 110); // 120 - 10
        assert_eq!(s.count(2), 30);
        assert_eq!(s.count(3), 30);
    }

    #[test]
    fn combine_drops_small_items() {
        let a = FreqSummary::local(&bag(&[(1, 95), (2, 5)]));
        let s = FreqSummary::combine(&[a], &FreqSummary::empty(), 0.10);
        // decrement = 0.1 * 100 = 10 -> item 2 (5) dropped.
        assert_eq!(s.count(2), 0);
        assert_eq!(s.count(1), 85);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn budget_gain_accounts_for_children_eps() {
        // Child already spent eps 0.04 on its 100 items; raising to 0.05
        // over the same population decrements only by 0.01*100 = 1.
        let child = {
            let local = FreqSummary::local(&bag(&[(1, 50), (2, 50)]));
            FreqSummary::combine(&[local], &FreqSummary::empty(), 0.04)
        };
        let before = child.count(1);
        let s = FreqSummary::combine(&[child], &FreqSummary::empty(), 0.05);
        assert_eq!(s.count(1), before - 1);
    }

    #[test]
    #[should_panic(expected = "non-monotone precision gradient")]
    fn non_monotone_gradient_panics() {
        let child = {
            let local = FreqSummary::local(&bag(&[(1, 100)]));
            FreqSummary::combine(&[local], &FreqSummary::empty(), 0.10)
        };
        let _ = FreqSummary::combine(&[child], &FreqSummary::empty(), 0.05);
    }

    #[test]
    fn report_frequent_no_false_negatives() {
        // Item 1 has frequency 0.3 of N; with s = 0.2, eps = 0.05 it must
        // be reported even after deficiency.
        let a = FreqSummary::local(&bag(&[(1, 300), (2, 150), (3, 550)]));
        let s = FreqSummary::combine(&[a], &FreqSummary::empty(), 0.05);
        let reported = s.report_frequent(0.2);
        assert!(reported.contains(&1));
        assert!(reported.contains(&3));
    }

    #[test]
    fn size_bound_counters_per_link() {
        // Paper §6.1.1: at most 1/(ε(k) − ε(k−1)) items survive Step 3.
        // 1000 distinct items of count 1 each, eps step 0 -> 0.02: at
        // most 50 items (here: zero, since every count ≤ decrement).
        let many: Vec<(Item, u64)> = (0..1000).map(|i| (i, 1)).collect();
        let local = FreqSummary::local(&bag(&many));
        let s = FreqSummary::combine(&[local], &FreqSummary::empty(), 0.02);
        assert!(
            s.len() as f64 <= 1.0 / 0.02 + 1.0,
            "{} items survive",
            s.len()
        );
    }

    #[test]
    fn empty_inputs() {
        let s = FreqSummary::combine(&[], &FreqSummary::empty(), 0.1);
        assert_eq!(s.n, 0);
        assert!(s.is_empty());
        assert_eq!(s.report_frequent(0.01), Vec::<Item>::new());
    }

    #[test]
    fn wire_words_counts_pairs() {
        let s = FreqSummary::local(&bag(&[(1, 5), (2, 3), (9, 1)]));
        assert_eq!(s.wire_words(), 2 + 6);
    }

    proptest! {
        /// The ε-deficiency invariant holds through arbitrary two-level
        /// combines with any monotone pair of budgets.
        #[test]
        fn prop_invariant_through_combines(
            bags in proptest::collection::vec(
                proptest::collection::btree_map(0u64..20, 1u64..50, 1..10), 1..6),
            e1 in 0.0f64..0.1,
            e2_extra in 0.0f64..0.1,
        ) {
            let bags: Vec<ItemBag> = bags
                .into_iter()
                .map(ItemBag::from_counts)
                .collect();
            // Level 1: each bag summarized at eps e1.
            let level1: Vec<FreqSummary> = bags
                .iter()
                .map(|b| FreqSummary::combine(&[FreqSummary::local(b)], &FreqSummary::empty(), e1))
                .collect();
            // Level 2: combine all at eps e1 + e2_extra.
            let root = FreqSummary::combine(&level1, &FreqSummary::empty(), e1 + e2_extra);
            let mut truth = ItemBag::new();
            for b in &bags { truth.merge(b); }
            prop_assert!(root.check_invariant(&truth).is_ok(),
                         "{:?}", root.check_invariant(&truth));
        }

        /// Step 3's counter bound: items surviving a combine with budget
        /// difference d are at most 1/d (+1 rounding).
        #[test]
        fn prop_size_bound(
            counts in proptest::collection::btree_map(0u64..1000, 1u64..20, 1..200),
            d in 0.01f64..0.2,
        ) {
            let b = ItemBag::from_counts(counts);
            let local = FreqSummary::local(&b);
            let s = FreqSummary::combine(&[local], &FreqSummary::empty(), d);
            prop_assert!(s.len() as f64 <= 1.0 / d + 1.0,
                         "{} items > 1/{d}", s.len());
        }
    }
}
