//! Property tests for snapshot algebra: merge is associative and
//! commutative, and quantile estimation is monotone in `q` across
//! bucket boundaries.

use proptest::prelude::*;
use td_telemetry::{HistogramSnapshot, Snapshot};

/// Build a histogram snapshot on the shared 8-bucket bounds from a
/// per-bucket count vector.
fn hist(counts: &[u64]) -> HistogramSnapshot {
    let bounds: Vec<u64> = (0..7).map(|i| 16u64 << i).collect();
    let mut c = counts.to_vec();
    c.resize(8, 0);
    let sum = c
        .iter()
        .enumerate()
        .map(|(i, &n)| n * (8 * (i as u64 + 1)))
        .sum();
    HistogramSnapshot {
        bounds,
        counts: c,
        sum,
    }
}

/// Build a full snapshot from three counter values and one histogram.
fn snap(c1: u64, c2: u64, g: i64, counts: &[u64]) -> Snapshot {
    let mut s = Snapshot::default();
    s.counters.insert("a".to_string(), c1);
    s.counters.insert("b".to_string(), c2);
    s.gauges.insert("g".to_string(), g);
    s.histograms.insert("h".to_string(), hist(counts));
    s
}

fn merged(a: &Snapshot, b: &Snapshot) -> Snapshot {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_is_commutative(
        xs in proptest::collection::vec(0u64..1000, 8..9),
        ys in proptest::collection::vec(0u64..1000, 8..9),
        c1 in 0u64..1_000_000, c2 in 0u64..1_000_000,
        d1 in 0u64..1_000_000, d2 in 0u64..1_000_000,
        g1 in 0i64..1000, g2 in 0i64..1000,
    ) {
        let a = snap(c1, c2, g1, &xs);
        let b = snap(d1, d2, g2, &ys);
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    #[test]
    fn merge_is_associative(
        xs in proptest::collection::vec(0u64..1000, 8..9),
        ys in proptest::collection::vec(0u64..1000, 8..9),
        zs in proptest::collection::vec(0u64..1000, 8..9),
        c in 0u64..1_000_000, d in 0u64..1_000_000, e in 0u64..1_000_000,
    ) {
        let a = snap(c, c / 2, 1, &xs);
        let b = snap(d, d / 2, 2, &ys);
        let z = snap(e, e / 2, 3, &zs);
        prop_assert_eq!(merged(&merged(&a, &b), &z), merged(&a, &merged(&b, &z)));
    }

    #[test]
    fn quantile_is_monotone_across_buckets(
        counts in proptest::collection::vec(0u64..50, 8..9),
    ) {
        let h = hist(&counts);
        // Sweep a fine grid of quantiles, crossing every bucket
        // boundary; estimates must never decrease.
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=200 {
            let q = i as f64 / 200.0;
            let v = h.quantile(q);
            prop_assert!(
                v >= prev,
                "quantile({q}) = {v} < quantile at previous grid point {prev}"
            );
            prev = v;
        }
    }

    #[test]
    fn quantile_stays_within_bucket_bounds(
        counts in proptest::collection::vec(0u64..50, 8..9),
        qi in 0u32..101,
    ) {
        let h = hist(&counts);
        if h.count() == 0 {
            return Ok(());
        }
        let v = h.quantile(qi as f64 / 100.0);
        // Never below zero, never above the overflow bucket's
        // interpolation ceiling (2 × last bound).
        let ceiling = (h.bounds.last().unwrap() * 2) as f64;
        prop_assert!((0.0..=ceiling).contains(&v), "quantile {v} outside [0, {ceiling}]");
    }

    #[test]
    fn merged_count_and_sum_add(
        xs in proptest::collection::vec(0u64..1000, 8..9),
        ys in proptest::collection::vec(0u64..1000, 8..9),
    ) {
        let mut a = hist(&xs);
        let b = hist(&ys);
        let (ca, cb) = (a.count(), b.count());
        let (sa, sb) = (a.sum, b.sum);
        a.merge(&b);
        prop_assert_eq!(a.count(), ca + cb);
        prop_assert_eq!(a.sum, sa.wrapping_add(sb));
    }
}
