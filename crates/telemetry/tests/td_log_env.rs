//! Regression test for the `TD_LOG` environment-driven init path.
//!
//! The filter is parsed inside a `std::sync::Once` closure the first
//! time `events::enabled` runs; a re-entrant `set_level` /
//! `set_target_level` call from that closure deadlocks the process
//! (recursive `Once::call_once`). The in-process tests can never see
//! this — the env var must be present before first telemetry use — so
//! this test re-executes itself as a child with `TD_LOG` set and a
//! hard deadline.

use std::process::Command;
use std::time::{Duration, Instant};

use td_telemetry::{events, Level};

const CHILD_ENV: &str = "TD_LOG_ENV_CHILD";
const CHILD_OK: &str = "TD_LOG_ENV_CHILD_OK";

#[test]
fn td_log_env_filter_initializes_without_deadlock() {
    if std::env::var(CHILD_ENV).is_ok() {
        child();
        return;
    }

    let exe = std::env::current_exe().expect("test binary path");
    let mut child = Command::new(exe)
        .args([
            "td_log_env_filter_initializes_without_deadlock",
            "--exact",
            "--nocapture",
        ])
        .env(CHILD_ENV, "1")
        .env("TD_LOG", "info,adapt=trace")
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn child test process");

    // Generous deadline: the child does one enabled() check and exits.
    // A deadlocked Once never returns, so poll rather than wait.
    let deadline = Instant::now() + Duration::from_secs(60);
    let status = loop {
        match child.try_wait().expect("poll child") {
            Some(status) => break status,
            None if Instant::now() >= deadline => {
                let _ = child.kill();
                let _ = child.wait();
                panic!("child with TD_LOG set hung — filter init deadlocked");
            }
            None => std::thread::sleep(Duration::from_millis(20)),
        }
    };
    let out = child.wait_with_output().expect("collect child output");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        status.success(),
        "child with TD_LOG set failed:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains(CHILD_OK),
        "child exited cleanly but never ran the TD_LOG assertions:\n{stdout}"
    );
}

/// Runs in the child process, with `TD_LOG=info,adapt=trace` in the
/// environment since before any telemetry call. The first `enabled()`
/// triggers the env-driven init; with telemetry compiled out the spec
/// is ignored and every check is `false`.
fn child() {
    let compiled = td_telemetry::compiled();
    assert_eq!(events::enabled(Level::Info, "anything"), compiled);
    assert_eq!(events::enabled(Level::Trace, "adapt"), compiled);
    assert!(!events::enabled(Level::Trace, "anything"));
    println!("{CHILD_OK}");
}
