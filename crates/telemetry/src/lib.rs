//! Observability layer for the Tributary-Delta suite.
//!
//! Three pieces, designed so the hot path never takes a cross-thread
//! lock and the whole layer can be compiled out:
//!
//! - [`registry`] — a metrics registry of counters, gauges, and
//!   fixed-bucket latency histograms. Every metric is **sharded**: each
//!   recording thread updates its own cache-padded atomic slot with
//!   `Relaxed` ordering, and shards are merged only when a
//!   [`Snapshot`] is taken. The registry's lock is touched only at
//!   metric registration and snapshot time, never per-record.
//! - [`events`] — structured events keyed by the *logical* clock of
//!   the system ([`LogicalClock`]: epoch, ring level, schedule slot,
//!   tenant id) with wall-clock attached as an annotation, filtered at
//!   runtime by a `TD_LOG`-style level filter (silent by default),
//!   buffered in a bounded ring, and exportable as JSONL.
//! - [`phase`] — stopwatches for the seven epoch-lifecycle phases
//!   (compile, patch, precompute-randomness, per-level execute, merge,
//!   window fold, outbox drain), recorded into histograms in the
//!   process-global registry.
//!
//! # Compile-out guarantee
//!
//! The registry type is available in every configuration (the service
//! layer's counters are built on it), but everything with a hot-path
//! cost — event recording, the [`td_event!`] macro, phase stopwatches
//! — is gated behind `feature = "telemetry"` (on by default). Building
//! with `--no-default-features` turns those into inline no-ops;
//! [`compiled()`] reports which build this is. Telemetry never touches
//! an RNG or a result path, so enabled and disabled builds are
//! bit-identical — pinned by the workspace's `e2e_telemetry` tests.
//!
//! # Example
//!
//! ```
//! use td_telemetry::{global, phase, Level, LogicalClock};
//!
//! // Metrics: handles are cheap clones; recording is lock-free.
//! let reqs = global().counter("doc.requests");
//! reqs.add(3);
//!
//! // Phases: time a block into a global histogram.
//! let sw = phase::stopwatch();
//! let answer = 6 * 7;
//! phase::record(phase::Phase::Merge, sw);
//!
//! // Events: silent unless a level filter enables them.
//! td_telemetry::td_event!(
//!     Level::Debug, "doc", "answer",
//!     LogicalClock::at_epoch(1),
//!     value = answer as u64,
//! );
//!
//! let snap = global().snapshot();
//! assert_eq!(snap.counter("doc.requests"), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod json;
pub mod phase;
pub mod registry;
pub mod snapshot;

pub use events::{Event, FieldValue, Level, LogicalClock};
pub use registry::{Counter, Gauge, Histogram, Registry};
pub use snapshot::{HistogramSnapshot, Snapshot};

use std::sync::OnceLock;

/// Whether the `telemetry` feature was compiled in.
///
/// `false` in `--no-default-features` builds: events and phase
/// stopwatches are no-ops there, and only explicitly-created metrics
/// (e.g. the service layer's counters) record anything.
pub const fn compiled() -> bool {
    cfg!(feature = "telemetry")
}

/// The process-global registry used by [`phase`] hooks and the
/// [`td_event!`]-adjacent counters.
///
/// Layers that need isolation (one [`Registry`] per service runtime,
/// say) create their own instances; the global one aggregates
/// process-wide phase profiles.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}
