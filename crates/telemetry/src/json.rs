//! A tiny dependency-free JSON encoder.
//!
//! Shared by the telemetry snapshot export and (via `td_bench::json`)
//! every bench binary, replacing the hand-rolled `format!` JSON that
//! used to be duplicated across `bench_engine` / `bench_service` /
//! the perf-gate fixtures. Encode-only: the decode side for the flat
//! results files lives in `td_bench::gate`, and the pairing is pinned
//! by a round-trip test there.
//!
//! Insertion order is preserved ([`JsonObject`] is a `Vec` of pairs),
//! so results files keep their hand-authored key order and diffs stay
//! readable. Floats carry an optional fixed number of decimals, which
//! is how the bench files control precision per key.

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Float, optionally rendered with a fixed number of decimals.
    /// Non-finite values render as `null` (JSON has no NaN/Inf).
    Float {
        /// The value itself.
        value: f64,
        /// `Some(d)` renders `{value:.d$}`; `None` uses the shortest
        /// round-trip form.
        decimals: Option<usize>,
    },
    /// String (escaped on output).
    Str(String),
    /// Array of values.
    Array(Vec<JsonValue>),
    /// Nested object.
    Object(JsonObject),
}

/// A float rendered with a fixed number of decimals: `num(x, 3)`
/// encodes as `{x:.3}`.
pub fn num(value: f64, decimals: usize) -> JsonValue {
    JsonValue::Float {
        value,
        decimals: Some(decimals),
    }
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}
impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::UInt(v)
    }
}
impl From<u32> for JsonValue {
    fn from(v: u32) -> Self {
        JsonValue::UInt(v as u64)
    }
}
impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::UInt(v as u64)
    }
}
impl From<i64> for JsonValue {
    fn from(v: i64) -> Self {
        JsonValue::Int(v)
    }
}
impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Float {
            value: v,
            decimals: None,
        }
    }
}
impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}
impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}
impl From<JsonObject> for JsonValue {
    fn from(v: JsonObject) -> Self {
        JsonValue::Object(v)
    }
}

/// An insertion-ordered JSON object.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct JsonObject {
    entries: Vec<(String, JsonValue)>,
}

impl JsonObject {
    /// An empty object.
    pub fn new() -> Self {
        JsonObject::default()
    }

    /// Append (or overwrite) `key` with `value`; returns `self` for
    /// chaining.
    pub fn set(&mut self, key: &str, value: impl Into<JsonValue>) -> &mut Self {
        let value = value.into();
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key.to_string(), value));
        }
        self
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the object has no keys.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Render with two-space indentation and a trailing newline — the
    /// layout the committed `results/*.json` files use.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        write_value_pretty(&JsonValue::Object(self.clone()), &mut out, 0);
        out.push('\n');
        out
    }

    /// Render on a single line (no trailing newline) — the JSONL form.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        write_value_compact(&JsonValue::Object(self.clone()), &mut out);
        out
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_scalar(v: &JsonValue, out: &mut String) -> bool {
    match v {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        JsonValue::Int(i) => out.push_str(&i.to_string()),
        JsonValue::UInt(u) => out.push_str(&u.to_string()),
        JsonValue::Float { value, decimals } => {
            if !value.is_finite() {
                out.push_str("null");
            } else {
                match decimals {
                    Some(d) => out.push_str(&format!("{value:.prec$}", prec = *d)),
                    None => out.push_str(&format!("{value}")),
                }
            }
        }
        JsonValue::Str(s) => escape_into(s, out),
        _ => return false,
    }
    true
}

fn write_value_compact(v: &JsonValue, out: &mut String) {
    if write_scalar(v, out) {
        return;
    }
    match v {
        JsonValue::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value_compact(item, out);
            }
            out.push(']');
        }
        JsonValue::Object(obj) => {
            out.push('{');
            for (i, (k, val)) in obj.entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(k, out);
                out.push(':');
                write_value_compact(val, out);
            }
            out.push('}');
        }
        _ => unreachable!("scalars handled above"),
    }
}

fn write_value_pretty(v: &JsonValue, out: &mut String, indent: usize) {
    if write_scalar(v, out) {
        return;
    }
    let pad = "  ".repeat(indent + 1);
    let close_pad = "  ".repeat(indent);
    match v {
        // Arrays stay compact even in pretty mode: the only arrays in
        // the exported files are short bucket pairs.
        JsonValue::Array(_) => write_value_compact(v, out),
        JsonValue::Object(obj) => {
            if obj.entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, val)) in obj.entries.iter().enumerate() {
                out.push_str(&pad);
                escape_into(k, out);
                out.push_str(": ");
                write_value_pretty(val, out, indent + 1);
                if i + 1 < obj.entries.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&close_pad);
            out.push('}');
        }
        _ => unreachable!("scalars handled above"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_flat_object_matches_results_layout() {
        let mut obj = JsonObject::new();
        obj.set("sensors", 150u64)
            .set("speedup", num(1.2345, 3))
            .set("label", "pool");
        assert_eq!(
            obj.to_string_pretty(),
            "{\n  \"sensors\": 150,\n  \"speedup\": 1.234,\n  \"label\": \"pool\"\n}\n"
        );
    }

    #[test]
    fn strings_are_escaped() {
        let mut obj = JsonObject::new();
        obj.set("k", "a\"b\\c\nd\u{1}");
        assert_eq!(
            obj.to_string_compact(),
            "{\"k\":\"a\\\"b\\\\c\\nd\\u0001\"}"
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut obj = JsonObject::new();
        obj.set("bad", f64::NAN).set("inf", f64::INFINITY);
        assert_eq!(obj.to_string_compact(), "{\"bad\":null,\"inf\":null}");
    }

    #[test]
    fn nested_objects_and_arrays_render() {
        let mut inner = JsonObject::new();
        inner.set("p50", num(10.0, 1));
        let mut obj = JsonObject::new();
        obj.set("hist", inner);
        obj.set(
            "buckets",
            JsonValue::Array(vec![JsonValue::from(1u64), JsonValue::from(2u64)]),
        );
        assert_eq!(
            obj.to_string_compact(),
            "{\"hist\":{\"p50\":10.0},\"buckets\":[1,2]}"
        );
    }

    #[test]
    fn set_overwrites_in_place() {
        let mut obj = JsonObject::new();
        obj.set("a", 1u64).set("b", 2u64).set("a", 9u64);
        assert_eq!(obj.to_string_compact(), "{\"a\":9,\"b\":2}");
    }
}
