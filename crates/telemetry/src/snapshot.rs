//! Point-in-time snapshots of a [`Registry`](crate::Registry), with
//! quantile estimation, merge, and JSON / Prometheus-text export.
//!
//! Snapshot merge is **associative and commutative** (counters and
//! histogram buckets add; gauges add, which is the right semantics for
//! the occupancy-style gauges this suite uses) — pinned by property
//! tests — so snapshots from per-runtime registries, per-process
//! registries, or repeated scrapes can be folded in any order.

use std::collections::BTreeMap;

use crate::json::{num, JsonObject, JsonValue};

/// Merged view of one histogram: bucket counts plus total sum.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Inclusive bucket upper bounds (strictly increasing).
    pub bounds: Vec<u64>,
    /// Per-bucket sample counts; `counts.len() == bounds.len() + 1`,
    /// the final entry being the overflow bucket.
    pub counts: Vec<u64>,
    /// Sum of all recorded samples (wrapping).
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Mean sample value, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Estimate the `q`-quantile (`q` in `[0, 1]`) by linear
    /// interpolation inside the bucket holding the target rank.
    ///
    /// The overflow bucket interpolates toward twice the last bound
    /// (the geometric continuation of the default bucket layout).
    /// Returns 0.0 for an empty histogram. Monotone in `q` by
    /// construction: a larger `q` lands at the same bucket with a
    /// larger in-bucket fraction, or at a later bucket whose range
    /// starts where the earlier one ended.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * total as f64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let prev = cum;
            cum += c;
            if cum as f64 >= rank {
                let lower = if i == 0 { 0 } else { self.bounds[i - 1] };
                let upper = if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    self.bounds.last().copied().unwrap_or(0).saturating_mul(2)
                };
                let frac = ((rank - prev as f64) / c as f64).clamp(0.0, 1.0);
                return lower as f64 + (upper - lower) as f64 * frac;
            }
        }
        // Unreachable for total > 0, but fall back to the top bound.
        self.bounds.last().copied().unwrap_or(0) as f64
    }

    /// Fold `other` into `self` (bucket-wise add).
    ///
    /// # Panics
    /// If the two snapshots have different bucket bounds.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different bucket bounds"
        );
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.sum = self.sum.wrapping_add(other.sum);
    }
}

/// Point-in-time values of every metric in a registry.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// Counter value by name, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value by name, 0 when absent.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Histogram snapshot by name, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// True when the snapshot holds no metrics at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Fold `other` into `self`: counters and gauges add, histograms
    /// merge bucket-wise. Associative and commutative.
    ///
    /// # Panics
    /// If a histogram name collides with different bucket bounds.
    pub fn merge(&mut self, other: &Snapshot) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            *self.gauges.entry(name.clone()).or_insert(0) += v;
        }
        for (name, h) in &other.histograms {
            match self.histograms.get_mut(name) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(name.clone(), h.clone());
                }
            }
        }
    }

    /// Render the snapshot as a pretty-printed JSON document.
    ///
    /// Histograms carry `count`, `sum`, `mean`, interpolated
    /// `p50`/`p90`/`p99`, and the non-empty `[upper_bound, count]`
    /// bucket pairs. This is the encoder behind
    /// `results/telemetry_snapshot.json`.
    pub fn to_json(&self) -> String {
        let mut root = JsonObject::new();
        root.set("telemetry_compiled", crate::compiled());
        let mut counters = JsonObject::new();
        for (name, v) in &self.counters {
            counters.set(name, *v);
        }
        root.set("counters", counters);
        let mut gauges = JsonObject::new();
        for (name, v) in &self.gauges {
            gauges.set(name, *v);
        }
        root.set("gauges", gauges);
        let mut hists = JsonObject::new();
        for (name, h) in &self.histograms {
            let mut obj = JsonObject::new();
            obj.set("count", h.count());
            obj.set("sum", h.sum);
            obj.set("mean", num(h.mean(), 1));
            obj.set("p50", num(h.quantile(0.50), 1));
            obj.set("p90", num(h.quantile(0.90), 1));
            obj.set("p99", num(h.quantile(0.99), 1));
            let buckets: Vec<JsonValue> = h
                .counts
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| {
                    let bound = if i < h.bounds.len() {
                        JsonValue::from(h.bounds[i])
                    } else {
                        // Overflow bucket: no finite upper bound.
                        JsonValue::Str("+inf".to_string())
                    };
                    JsonValue::Array(vec![bound, JsonValue::from(c)])
                })
                .collect();
            obj.set("buckets", JsonValue::Array(buckets));
            hists.set(name, obj);
        }
        root.set("histograms", hists);
        root.to_string_pretty()
    }

    /// Render the snapshot in the Prometheus text exposition format.
    ///
    /// Metric names are sanitized (`.` and `-` become `_`) and
    /// prefixed with `td_`; histograms emit cumulative `_bucket{le=}`
    /// series plus `_sum` and `_count`.
    pub fn to_prometheus(&self) -> String {
        fn sanitize(name: &str) -> String {
            let mut s = String::with_capacity(name.len() + 3);
            s.push_str("td_");
            for ch in name.chars() {
                if ch.is_ascii_alphanumeric() {
                    s.push(ch);
                } else {
                    s.push('_');
                }
            }
            s
        }
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
        }
        for (name, v) in &self.gauges {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
        }
        for (name, h) in &self.histograms {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} histogram\n"));
            let mut cum = 0u64;
            for (i, &c) in h.counts.iter().enumerate() {
                cum += c;
                if i < h.bounds.len() {
                    out.push_str(&format!("{n}_bucket{{le=\"{}\"}} {cum}\n", h.bounds[i]));
                } else {
                    out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {cum}\n"));
                }
            }
            out.push_str(&format!("{n}_sum {}\n{n}_count {}\n", h.sum, h.count()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(counts: Vec<u64>) -> HistogramSnapshot {
        let bounds: Vec<u64> = (0..counts.len() as u64 - 1).map(|i| 10 * (i + 1)).collect();
        let sum = counts.iter().sum::<u64>() * 5;
        HistogramSnapshot {
            bounds,
            counts,
            sum,
        }
    }

    #[test]
    fn quantile_interpolates_within_bucket() {
        // 10 samples, all in the (10, 20] bucket.
        let h = HistogramSnapshot {
            bounds: vec![10, 20, 30],
            counts: vec![0, 10, 0, 0],
            sum: 150,
        };
        // Median interpolates to the bucket midpoint.
        assert_eq!(h.quantile(0.5), 15.0);
        assert_eq!(h.quantile(0.0), 10.0);
        assert_eq!(h.quantile(1.0), 20.0);
    }

    #[test]
    fn quantile_empty_is_zero() {
        let h = hist(vec![0, 0, 0]);
        assert_eq!(h.quantile(0.5), 0.0);
    }

    #[test]
    fn overflow_bucket_interpolates_past_last_bound() {
        let h = HistogramSnapshot {
            bounds: vec![10],
            counts: vec![0, 4],
            sum: 100,
        };
        let p50 = h.quantile(0.5);
        assert!(p50 > 10.0 && p50 <= 20.0, "p50 {p50}");
    }

    #[test]
    fn snapshot_merge_adds_everything() {
        let mut a = Snapshot::default();
        a.counters.insert("c".into(), 2);
        a.gauges.insert("g".into(), 5);
        a.histograms.insert("h".into(), hist(vec![1, 2, 0]));
        let mut b = Snapshot::default();
        b.counters.insert("c".into(), 3);
        b.counters.insert("d".into(), 1);
        b.gauges.insert("g".into(), -2);
        b.histograms.insert("h".into(), hist(vec![0, 1, 4]));
        a.merge(&b);
        assert_eq!(a.counter("c"), 5);
        assert_eq!(a.counter("d"), 1);
        assert_eq!(a.gauge("g"), 3);
        assert_eq!(a.histogram("h").unwrap().counts, vec![1, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "different bucket bounds")]
    fn merge_rejects_mismatched_bounds() {
        let mut a = hist(vec![1, 0]);
        let b = HistogramSnapshot {
            bounds: vec![99],
            counts: vec![0, 1],
            sum: 0,
        };
        a.merge(&b);
    }

    #[test]
    fn prometheus_buckets_are_cumulative() {
        let mut s = Snapshot::default();
        s.histograms.insert("h".into(), hist(vec![1, 2, 3]));
        let text = s.to_prometheus();
        assert!(text.contains("td_h_bucket{le=\"10\"} 1\n"));
        assert!(text.contains("td_h_bucket{le=\"20\"} 3\n"));
        assert!(text.contains("td_h_bucket{le=\"+Inf\"} 6\n"));
        assert!(text.contains("td_h_count 6\n"));
    }
}
