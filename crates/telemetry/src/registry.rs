//! Sharded lock-free metrics: counters, gauges, histograms, and the
//! registry that names them.
//!
//! Each counter/histogram owns a small fixed array of cache-padded
//! atomic shards. A recording thread picks a shard once (round-robin
//! at first use, cached in a thread-local) and then only ever touches
//! that slot with `Relaxed` atomics — no CAS loops on a shared cell,
//! no lock. The per-shard values are summed when a snapshot is taken,
//! which is the only cross-shard read. `Relaxed` is sufficient because
//! the values are statistics: a snapshot racing a recording thread may
//! miss that thread's in-flight increment, but never reads a torn or
//! invented value, and increments are never lost.
//!
//! The registry itself holds a `Mutex` over the name → metric map, but
//! that lock is taken only when a metric is first created (call sites
//! cache the returned handle) and at snapshot time.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::snapshot::{HistogramSnapshot, Snapshot};

/// Number of atomic shards per metric. A small power of two: enough to
/// keep the worker pools (≤ 8 threads in the benches) from contending
/// on one cache line, cheap enough that snapshots stay trivial.
pub const SHARDS: usize = 16;

/// One cache line worth of atomic counter, so two shards never share a
/// line (the entire point of sharding).
#[derive(Default)]
#[repr(align(64))]
struct PaddedU64(AtomicU64);

fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
    }
    SHARD.with(|s| *s)
}

fn new_shards() -> Box<[PaddedU64]> {
    (0..SHARDS).map(|_| PaddedU64::default()).collect()
}

/// A monotonically increasing counter. Clones share the same cells.
#[derive(Clone)]
pub struct Counter(Arc<CounterCore>);

struct CounterCore {
    shards: Box<[PaddedU64]>,
}

impl Counter {
    fn new() -> Self {
        Counter(Arc::new(CounterCore {
            shards: new_shards(),
        }))
    }

    /// Add `n` to the counter (lock-free, relaxed).
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.shards[shard_index()]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Add one to the counter.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Sum of all shards. Snapshot-path only; not linearizable with
    /// concurrent `add`s (see module docs).
    pub fn value(&self) -> u64 {
        self.0
            .shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A signed gauge: last writer wins on `set`, `add` is atomic.
///
/// Gauges are a single cell rather than sharded — they model a current
/// level (queue depth, live tenants), where per-thread partial sums
/// have no meaning for `set`.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    fn new() -> Self {
        Gauge(Arc::new(AtomicI64::new(0)))
    }

    /// Overwrite the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjust the gauge by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Default histogram bucket upper bounds: geometric ×2 from 128 ns to
/// ~137 s. Tight enough that linear interpolation inside a bucket
/// gives useful p50/p99 estimates, small enough (31 buckets) that a
/// sharded histogram is a few KiB.
pub fn default_time_bounds() -> Vec<u64> {
    (0..31).map(|i| 128u64 << i).collect()
}

/// A fixed-bucket histogram of `u64` samples (by convention,
/// nanoseconds). Clones share the same cells.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCore>);

struct HistogramCore {
    /// Sorted inclusive upper bounds; samples above the last bound land
    /// in a final overflow bucket, so there are `bounds.len() + 1`
    /// buckets.
    bounds: Arc<[u64]>,
    shards: Box<[HistogramShard]>,
}

struct HistogramShard {
    counts: Box<[AtomicU64]>,
    sum: AtomicU64,
}

impl Histogram {
    fn new(bounds: Arc<[u64]>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let buckets = bounds.len() + 1;
        let shards = (0..SHARDS)
            .map(|_| HistogramShard {
                counts: (0..buckets).map(|_| AtomicU64::new(0)).collect(),
                sum: AtomicU64::new(0),
            })
            .collect();
        Histogram(Arc::new(HistogramCore { bounds, shards }))
    }

    /// Record one sample (lock-free, relaxed).
    #[inline]
    pub fn record(&self, value: u64) {
        // First bucket whose upper bound holds the sample; all-bounds-
        // exceeded lands on the trailing overflow bucket.
        let bucket = self.0.bounds.partition_point(|&b| b < value);
        let shard = &self.0.shards[shard_index()];
        shard.counts[bucket].fetch_add(1, Ordering::Relaxed);
        shard.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Record a duration as nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Merge all shards into an owned snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self.0.bounds.len() + 1;
        let mut counts = vec![0u64; buckets];
        let mut sum = 0u64;
        for shard in self.0.shards.iter() {
            for (acc, c) in counts.iter_mut().zip(shard.counts.iter()) {
                *acc += c.load(Ordering::Relaxed);
            }
            sum = sum.wrapping_add(shard.sum.load(Ordering::Relaxed));
        }
        HistogramSnapshot {
            bounds: self.0.bounds.to_vec(),
            counts,
            sum,
        }
    }
}

enum MetricSlot {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl MetricSlot {
    fn kind(&self) -> &'static str {
        match self {
            MetricSlot::Counter(_) => "counter",
            MetricSlot::Gauge(_) => "gauge",
            MetricSlot::Histogram(_) => "histogram",
        }
    }
}

/// A named collection of metrics.
///
/// `counter`/`gauge`/`histogram` get-or-create by name and hand back a
/// cheap clonable handle; call sites are expected to cache the handle
/// so the registry lock is off the hot path entirely.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, MetricSlot>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get or create the counter named `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.metrics.lock().unwrap();
        let slot = map
            .entry(name.to_string())
            .or_insert_with(|| MetricSlot::Counter(Counter::new()));
        match slot {
            MetricSlot::Counter(c) => c.clone(),
            other => panic!("metric {name:?} is a {}, not a counter", other.kind()),
        }
    }

    /// Get or create the gauge named `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.metrics.lock().unwrap();
        let slot = map
            .entry(name.to_string())
            .or_insert_with(|| MetricSlot::Gauge(Gauge::new()));
        match slot {
            MetricSlot::Gauge(g) => g.clone(),
            other => panic!("metric {name:?} is a {}, not a gauge", other.kind()),
        }
    }

    /// Get or create a latency histogram named `name` with the default
    /// time buckets ([`default_time_bounds`]).
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with_bounds(name, &default_time_bounds())
    }

    /// Get or create the histogram named `name` with explicit bucket
    /// upper bounds (strictly increasing, non-empty).
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind or as
    /// a histogram with different bounds, or `bounds` is empty / not
    /// strictly increasing.
    pub fn histogram_with_bounds(&self, name: &str, bounds: &[u64]) -> Histogram {
        let mut map = self.metrics.lock().unwrap();
        let slot = map
            .entry(name.to_string())
            .or_insert_with(|| MetricSlot::Histogram(Histogram::new(bounds.into())));
        match slot {
            MetricSlot::Histogram(h) => {
                // Fail at the registration site: a silently reused
                // histogram with the wrong buckets only surfaces much
                // later, as a panic in Snapshot::merge.
                assert_eq!(
                    &*h.0.bounds, bounds,
                    "metric {name:?} is already a histogram with different bounds"
                );
                h.clone()
            }
            other => panic!("metric {name:?} is a {}, not a histogram", other.kind()),
        }
    }

    /// Merge every metric's shards into a point-in-time [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        let map = self.metrics.lock().unwrap();
        let mut snap = Snapshot::default();
        for (name, slot) in map.iter() {
            match slot {
                MetricSlot::Counter(c) => {
                    snap.counters.insert(name.clone(), c.value());
                }
                MetricSlot::Gauge(g) => {
                    snap.gauges.insert(name.clone(), g.value());
                }
                MetricSlot::Histogram(h) => {
                    snap.histograms.insert(name.clone(), h.snapshot());
                }
            }
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_threads() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.value(), 8000);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let h = Histogram::new(vec![10u64, 100, 1000].into());
        for v in [5, 10, 11, 100, 5000] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.counts, vec![2, 2, 0, 1]);
        assert_eq!(snap.sum, 5 + 10 + 11 + 100 + 5000);
        assert_eq!(snap.count(), 5);
    }

    #[test]
    fn registry_handles_alias_one_metric() {
        let r = Registry::new();
        r.counter("x").add(2);
        r.counter("x").add(3);
        assert_eq!(r.snapshot().counter("x"), 5);
    }

    #[test]
    #[should_panic(expected = "is a counter, not a gauge")]
    fn registry_rejects_kind_mismatch() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn registry_histogram_same_bounds_alias() {
        let r = Registry::new();
        r.histogram_with_bounds("h", &[10, 100]).record(7);
        r.histogram_with_bounds("h", &[10, 100]).record(50);
        assert_eq!(r.snapshot().histogram("h").unwrap().count(), 2);
    }

    #[test]
    #[should_panic(expected = "already a histogram with different bounds")]
    fn registry_rejects_histogram_bounds_mismatch() {
        let r = Registry::new();
        r.histogram_with_bounds("h", &[10, 100]);
        r.histogram_with_bounds("h", &[10, 100, 1000]);
    }

    #[test]
    fn gauge_set_and_add() {
        let g = Gauge::new();
        g.set(7);
        g.add(-3);
        assert_eq!(g.value(), 4);
    }
}
