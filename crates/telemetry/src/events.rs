//! Structured events keyed by the logical clock, with a `TD_LOG`-style
//! runtime level filter, a bounded ring-buffer sink, and JSONL export.
//!
//! # Logical clock
//!
//! Wall-clock timestamps are nearly useless for correlating a
//! deterministic simulation: two runs of the same seed differ in every
//! nanosecond but agree in every *(epoch, level, slot, tenant)*
//! coordinate. Events here are therefore keyed by [`LogicalClock`] —
//! the coordinates the engine actually schedules by — with wall time
//! (nanoseconds since first telemetry use) attached as an annotation.
//!
//! # Filtering
//!
//! The filter is off by default, so instrumented code is silent unless
//! asked. `TD_LOG` accepts a comma list of a bare level and/or
//! `target=level` overrides, e.g. `TD_LOG=info,adapt=trace`. Tests and
//! tools can call [`set_level`] / [`set_target_level`] instead. The
//! hot-path check ([`enabled`]) is one relaxed atomic load when
//! everything is off.
//!
//! Enabled events go to a bounded in-memory ring (oldest dropped
//! first; capacity via `TD_LOG_RING`, default 4096) and — when `TD_LOG`
//! came from the environment — are echoed to stderr, preserving the
//! "set an env var, see the decisions" workflow that the old
//! `TD_DEBUG_ADAPT` `eprintln!`s provided. Programmatic callers can
//! turn the echo off with [`set_echo`].
//!
//! With `--no-default-features` the recording side compiles out: the
//! [`td_event!`](crate::td_event) macro expands to nothing and the
//! functions here become inert stubs (always-false filter, empty
//! ring), so call sites need no `cfg` of their own.

use std::fmt;

/// Event severity, ordered from most to least severe.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Unexpected, needs attention.
    Error = 1,
    /// Suspicious but tolerated.
    Warn = 2,
    /// High-level lifecycle (tenant added, adapter decision).
    Info = 3,
    /// Per-epoch detail.
    Debug = 4,
    /// Per-report / per-node detail.
    Trace = 5,
}

impl Level {
    /// Parse a level name (`error`/`warn`/`info`/`debug`/`trace`,
    /// case-insensitive; `off`/`0` yields `None`).
    pub fn parse(s: &str) -> Option<Option<Level>> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "none" => Some(None),
            "error" => Some(Some(Level::Error)),
            "warn" => Some(Some(Level::Warn)),
            "info" => Some(Some(Level::Info)),
            "debug" => Some(Some(Level::Debug)),
            "trace" => Some(Some(Level::Trace)),
            _ => None,
        }
    }

    fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The logical coordinates an event is keyed by: where in the
/// deterministic schedule it happened, independent of wall time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LogicalClock {
    /// Epoch number, when the event is inside an epoch.
    pub epoch: Option<u64>,
    /// Ring level (distance band from the base station).
    pub level: Option<u32>,
    /// Schedule slot within the epoch plan.
    pub slot: Option<u32>,
    /// Tenant id, for service-layer events.
    pub tenant: Option<u64>,
}

impl LogicalClock {
    /// A clock with no coordinates (process-level events).
    pub const NONE: LogicalClock = LogicalClock {
        epoch: None,
        level: None,
        slot: None,
        tenant: None,
    };

    /// Clock positioned at `epoch`.
    pub fn at_epoch(epoch: u64) -> Self {
        LogicalClock {
            epoch: Some(epoch),
            ..LogicalClock::NONE
        }
    }

    /// Attach a ring level.
    pub fn with_level(mut self, level: u32) -> Self {
        self.level = Some(level);
        self
    }

    /// Attach a schedule slot.
    pub fn with_slot(mut self, slot: u32) -> Self {
        self.slot = Some(slot);
        self
    }

    /// Attach a tenant id.
    pub fn with_tenant(mut self, tenant: u64) -> Self {
        self.tenant = Some(tenant);
        self
    }
}

/// A typed event field value.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

macro_rules! field_from {
    ($($t:ty => $variant:ident as $conv:ty),* $(,)?) => {$(
        impl From<$t> for FieldValue {
            fn from(v: $t) -> Self { FieldValue::$variant(v as $conv) }
        }
    )*};
}
field_from!(u64 => U64 as u64, u32 => U64 as u64, usize => U64 as u64,
            i64 => I64 as i64, i32 => I64 as i64, f64 => F64 as f64);
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v:.4}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
        }
    }
}

/// One structured event.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Severity.
    pub level: Level,
    /// Subsystem the event belongs to (`"adapt"`, `"service"`, ...).
    pub target: &'static str,
    /// Event name within the target (`"expand"`, `"park"`, ...).
    pub name: &'static str,
    /// Logical-clock coordinates.
    pub clock: LogicalClock,
    /// Wall-clock annotation: nanoseconds since first telemetry use.
    pub wall_ns: u64,
    /// Named payload fields, in call-site order.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl Event {
    /// Render as one JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        use crate::json::JsonObject;
        let mut obj = JsonObject::new();
        obj.set("level", self.level.name());
        obj.set("target", self.target);
        obj.set("name", self.name);
        if let Some(e) = self.clock.epoch {
            obj.set("epoch", e);
        }
        if let Some(l) = self.clock.level {
            obj.set("ring_level", l);
        }
        if let Some(s) = self.clock.slot {
            obj.set("slot", s);
        }
        if let Some(t) = self.clock.tenant {
            obj.set("tenant", t);
        }
        obj.set("wall_ns", self.wall_ns);
        for (k, v) in &self.fields {
            match v {
                FieldValue::U64(x) => obj.set(k, *x),
                FieldValue::I64(x) => obj.set(k, *x),
                FieldValue::F64(x) => obj.set(k, *x),
                FieldValue::Bool(x) => obj.set(k, *x),
                FieldValue::Str(x) => obj.set(k, x.as_str()),
            };
        }
        obj.to_string_compact()
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} {}/{}", self.level, self.target, self.name)?;
        if let Some(e) = self.clock.epoch {
            write!(f, " epoch={e}")?;
        }
        if let Some(l) = self.clock.level {
            write!(f, " level={l}")?;
        }
        if let Some(s) = self.clock.slot {
            write!(f, " slot={s}")?;
        }
        if let Some(t) = self.clock.tenant {
            write!(f, " tenant={t}")?;
        }
        write!(f, "]")?;
        for (k, v) in &self.fields {
            write!(f, " {k}={v}")?;
        }
        Ok(())
    }
}

#[cfg(feature = "telemetry")]
mod imp {
    use super::{Event, Level};
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
    use std::sync::{Mutex, Once, OnceLock};
    use std::time::Instant;

    /// Highest level any filter enables — the one-load fast-path gate.
    static MAX_LEVEL: AtomicU8 = AtomicU8::new(0);
    /// Global (target-less) level.
    static GLOBAL_LEVEL: AtomicU8 = AtomicU8::new(0);
    static ECHO: AtomicBool = AtomicBool::new(false);
    static INIT: Once = Once::new();

    struct TargetFilter {
        overrides: Mutex<Vec<(String, u8)>>,
    }

    fn targets() -> &'static TargetFilter {
        static T: OnceLock<TargetFilter> = OnceLock::new();
        T.get_or_init(|| TargetFilter {
            overrides: Mutex::new(Vec::new()),
        })
    }

    fn ring() -> &'static Mutex<VecDeque<Event>> {
        static RING: OnceLock<Mutex<VecDeque<Event>>> = OnceLock::new();
        RING.get_or_init(|| Mutex::new(VecDeque::new()))
    }

    fn ring_capacity() -> usize {
        static CAP: OnceLock<usize> = OnceLock::new();
        *CAP.get_or_init(|| {
            std::env::var("TD_LOG_RING")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(4096)
        })
    }

    fn epoch_instant() -> Instant {
        static T0: OnceLock<Instant> = OnceLock::new();
        *T0.get_or_init(Instant::now)
    }

    fn recompute_max() {
        let global = GLOBAL_LEVEL.load(Ordering::Relaxed);
        let overrides = targets().overrides.lock().unwrap();
        let max = overrides
            .iter()
            .map(|(_, l)| *l)
            .chain(std::iter::once(global))
            .max()
            .unwrap_or(0);
        MAX_LEVEL.store(max, Ordering::Relaxed);
    }

    /// Apply a `TD_LOG`-style spec (`info,adapt=trace`) to the filters.
    /// Must stay `ensure_init`-free: it runs inside the `INIT` closure,
    /// and `Once` deadlocks on recursive `call_once`.
    fn apply_spec(spec: &str) {
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            if let Some((target, level)) = part.split_once('=') {
                if let Some(l) = Level::parse(level) {
                    apply_target_level(target, l);
                }
            } else if let Some(l) = Level::parse(part) {
                apply_level(l);
            }
        }
    }

    fn ensure_init() {
        INIT.call_once(|| {
            epoch_instant();
            let Ok(spec) = std::env::var("TD_LOG") else {
                return;
            };
            // Env-driven filters echo to stderr, like the old
            // TD_DEBUG_ADAPT debugging flow.
            ECHO.store(true, Ordering::Relaxed);
            apply_spec(&spec);
        });
    }

    pub fn enabled(level: Level, target: &str) -> bool {
        ensure_init();
        let max = MAX_LEVEL.load(Ordering::Relaxed);
        if level as u8 > max {
            return false;
        }
        if level as u8 <= GLOBAL_LEVEL.load(Ordering::Relaxed) {
            return true;
        }
        let overrides = targets().overrides.lock().unwrap();
        overrides
            .iter()
            .any(|(t, l)| t == target && level as u8 <= *l)
    }

    fn apply_level(level: Option<Level>) {
        GLOBAL_LEVEL.store(level.map_or(0, |l| l as u8), Ordering::Relaxed);
        recompute_max();
    }

    fn apply_target_level(target: &str, level: Option<Level>) {
        let mut overrides = targets().overrides.lock().unwrap();
        overrides.retain(|(t, _)| t != target);
        if let Some(l) = level {
            overrides.push((target.to_string(), l as u8));
        }
        drop(overrides);
        recompute_max();
    }

    pub fn set_level(level: Option<Level>) {
        ensure_init();
        apply_level(level);
    }

    pub fn set_target_level(target: &str, level: Option<Level>) {
        ensure_init();
        apply_target_level(target, level);
    }

    pub fn set_echo(on: bool) {
        ECHO.store(on, Ordering::Relaxed);
    }

    pub fn wall_ns() -> u64 {
        u64::try_from(epoch_instant().elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    pub fn record(event: Event) {
        if ECHO.load(Ordering::Relaxed) {
            eprintln!("{event}");
        }
        let mut ring = ring().lock().unwrap();
        if ring.len() >= ring_capacity() {
            ring.pop_front();
        }
        ring.push_back(event);
    }

    pub fn events() -> Vec<Event> {
        ring().lock().unwrap().iter().cloned().collect()
    }

    pub fn drain() -> Vec<Event> {
        ring().lock().unwrap().drain(..).collect()
    }
}

#[cfg(not(feature = "telemetry"))]
mod imp {
    //! Inert stubs: with telemetry compiled out the filter is always
    //! off and the ring is always empty, at zero cost.
    use super::{Event, Level};

    #[inline(always)]
    pub fn enabled(_level: Level, _target: &str) -> bool {
        false
    }
    pub fn set_level(_level: Option<Level>) {}
    pub fn set_target_level(_target: &str, _level: Option<Level>) {}
    pub fn set_echo(_on: bool) {}
    #[inline(always)]
    pub fn wall_ns() -> u64 {
        0
    }
    pub fn record(_event: Event) {}
    pub fn events() -> Vec<Event> {
        Vec::new()
    }
    pub fn drain() -> Vec<Event> {
        Vec::new()
    }
}

/// Whether an event at `level` for `target` would be recorded.
///
/// One relaxed atomic load when every filter is off; always `false`
/// with telemetry compiled out.
#[inline]
pub fn enabled(level: Level, target: &str) -> bool {
    imp::enabled(level, target)
}

/// Set the global level filter (`None` = off). Overrides `TD_LOG`.
pub fn set_level(level: Option<Level>) {
    imp::set_level(level)
}

/// Set (or with `None`, clear) a per-target level override.
pub fn set_target_level(target: &str, level: Option<Level>) {
    imp::set_target_level(target, level)
}

/// Enable or disable echoing recorded events to stderr. Defaults to
/// on only when the filter came from the `TD_LOG` environment
/// variable.
pub fn set_echo(on: bool) {
    imp::set_echo(on)
}

/// Nanoseconds since first telemetry use (the wall-clock annotation).
#[inline]
pub fn wall_ns() -> u64 {
    imp::wall_ns()
}

/// Push an event into the ring sink (and stderr, when echo is on).
/// Call sites normally go through [`td_event!`](crate::td_event),
/// which checks [`enabled`] first.
pub fn record(event: Event) {
    imp::record(event)
}

/// Copy of the ring's current contents, oldest first.
pub fn events() -> Vec<Event> {
    imp::events()
}

/// Drain the ring, returning its contents oldest first.
pub fn drain() -> Vec<Event> {
    imp::drain()
}

/// Write every buffered event as JSONL into `w` (one event per line),
/// returning how many were written. Does not drain the ring.
pub fn export_jsonl<W: std::io::Write>(w: &mut W) -> std::io::Result<usize> {
    let evs = events();
    for e in &evs {
        writeln!(w, "{}", e.to_jsonl())?;
    }
    Ok(evs.len())
}

/// Record a structured event: severity, target, name, logical clock,
/// then `key = value` fields.
///
/// ```
/// use td_telemetry::{td_event, Level, LogicalClock};
/// td_event!(Level::Debug, "adapt", "expand", LogicalClock::at_epoch(4),
///           switched = 3u64, pct = 0.82);
/// ```
///
/// Expands to nothing when the `telemetry` feature is off — field
/// expressions are not even evaluated. The filter check happens
/// before any field is materialized, so a disabled event costs one
/// atomic load.
#[cfg(feature = "telemetry")]
#[macro_export]
macro_rules! td_event {
    ($lvl:expr, $target:expr, $name:expr, $clock:expr $(, $k:ident = $v:expr)* $(,)?) => {{
        let lvl = $lvl;
        if $crate::events::enabled(lvl, $target) {
            $crate::events::record($crate::events::Event {
                level: lvl,
                target: $target,
                name: $name,
                clock: $clock,
                wall_ns: $crate::events::wall_ns(),
                fields: vec![
                    $((stringify!($k), $crate::events::FieldValue::from($v))),*
                ],
            });
        }
    }};
}

/// Record a structured event (no-op: telemetry compiled out).
#[cfg(not(feature = "telemetry"))]
#[macro_export]
macro_rules! td_event {
    ($($tt:tt)*) => {};
}

#[cfg(all(test, feature = "telemetry"))]
mod tests {
    use super::*;

    #[test]
    fn parse_levels() {
        assert_eq!(Level::parse("TRACE"), Some(Some(Level::Trace)));
        assert_eq!(Level::parse("off"), Some(None));
        assert_eq!(Level::parse("bogus"), None);
    }

    #[test]
    fn target_override_enables_only_that_target() {
        set_echo(false);
        set_level(None);
        set_target_level("evtest", Some(Level::Debug));
        assert!(enabled(Level::Debug, "evtest"));
        assert!(!enabled(Level::Trace, "evtest"));
        assert!(!enabled(Level::Debug, "other-target"));
        set_target_level("evtest", None);
        assert!(!enabled(Level::Debug, "evtest"));
    }

    #[test]
    fn event_jsonl_and_display() {
        let e = Event {
            level: Level::Info,
            target: "svc",
            name: "park",
            clock: LogicalClock::at_epoch(7).with_tenant(3),
            wall_ns: 42,
            fields: vec![("queued", FieldValue::U64(5)), ("why", "full".into())],
        };
        assert_eq!(
            e.to_jsonl(),
            "{\"level\":\"info\",\"target\":\"svc\",\"name\":\"park\",\
             \"epoch\":7,\"tenant\":3,\"wall_ns\":42,\"queued\":5,\"why\":\"full\"}"
        );
        assert_eq!(
            format!("{e}"),
            "[info svc/park epoch=7 tenant=3] queued=5 why=full"
        );
    }

    #[test]
    fn macro_records_into_ring() {
        set_echo(false);
        set_target_level("ringtest", Some(Level::Trace));
        crate::td_event!(
            Level::Trace,
            "ringtest",
            "ping",
            LogicalClock::NONE,
            n = 1u64
        );
        set_target_level("ringtest", None);
        let evs = events();
        assert!(evs
            .iter()
            .any(|e| e.target == "ringtest" && e.name == "ping"));
    }
}
