//! Epoch-lifecycle phase profiling.
//!
//! The epoch runner's time goes to seven places: plan **compile**,
//! incremental **patch**, **precompute-randomness** (the sequential
//! RNG draw pass that makes parallel execution bit-identical),
//! **per-level execute**, **merge** (base-station fold), the stream
//! layer's **window fold**, and the service layer's **outbox drain**.
//! Each hook wraps its phase in a [`stopwatch`]/[`record`] pair; the
//! samples land in per-phase histograms (`phase.*_ns`) in the
//! process-global registry, from which benches read p50/p99
//! breakdowns and exporters write `results/telemetry_snapshot.json`.
//!
//! With the `telemetry` feature off, [`Stopwatch`] is a zero-sized
//! type and both functions are empty inline stubs — the hooks cost
//! nothing, which the perf gate's disabled-telemetry key verifies.

/// The profiled phases of an epoch's lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Full schedule compilation (`compile_td` / `compile_tag`).
    Compile,
    /// Incremental plan patch after topology churn.
    Patch,
    /// Sequential pre-draw of per-node randomness for parallel runs.
    Randomness,
    /// Executing one ring level's sends (sequential or sharded).
    LevelExecute,
    /// Base-station fold and final evaluation.
    Merge,
    /// Stream-layer pane absorption and window re-fold.
    WindowFold,
    /// Service-layer outbox drain call.
    OutboxDrain,
}

impl Phase {
    /// Every phase, in lifecycle order.
    pub const ALL: [Phase; 7] = [
        Phase::Compile,
        Phase::Patch,
        Phase::Randomness,
        Phase::LevelExecute,
        Phase::Merge,
        Phase::WindowFold,
        Phase::OutboxDrain,
    ];

    /// Name of the histogram this phase records into.
    pub const fn metric_name(self) -> &'static str {
        match self {
            Phase::Compile => "phase.compile_ns",
            Phase::Patch => "phase.patch_ns",
            Phase::Randomness => "phase.randomness_ns",
            Phase::LevelExecute => "phase.level_execute_ns",
            Phase::Merge => "phase.merge_ns",
            Phase::WindowFold => "phase.window_fold_ns",
            Phase::OutboxDrain => "phase.outbox_drain_ns",
        }
    }

    #[cfg_attr(not(feature = "telemetry"), allow(dead_code))]
    const fn index(self) -> usize {
        match self {
            Phase::Compile => 0,
            Phase::Patch => 1,
            Phase::Randomness => 2,
            Phase::LevelExecute => 3,
            Phase::Merge => 4,
            Phase::WindowFold => 5,
            Phase::OutboxDrain => 6,
        }
    }
}

#[cfg(feature = "telemetry")]
mod imp {
    use super::Phase;
    use crate::registry::Histogram;
    use std::sync::OnceLock;
    use std::time::Instant;

    /// A started phase timer.
    #[derive(Clone, Copy, Debug)]
    pub struct Stopwatch(Instant);

    fn histograms() -> &'static [Histogram; 7] {
        static HISTS: OnceLock<[Histogram; 7]> = OnceLock::new();
        HISTS.get_or_init(|| Phase::ALL.map(|p| crate::global().histogram(p.metric_name())))
    }

    #[inline]
    pub fn stopwatch() -> Stopwatch {
        Stopwatch(Instant::now())
    }

    #[inline]
    pub fn record(phase: Phase, sw: Stopwatch) {
        histograms()[phase.index()].record_duration(sw.0.elapsed());
    }
}

#[cfg(not(feature = "telemetry"))]
mod imp {
    use super::Phase;

    /// A started phase timer (zero-sized: telemetry compiled out).
    #[derive(Clone, Copy, Debug)]
    pub struct Stopwatch;

    #[inline(always)]
    pub fn stopwatch() -> Stopwatch {
        Stopwatch
    }

    #[inline(always)]
    pub fn record(_phase: Phase, _sw: Stopwatch) {}
}

pub use imp::Stopwatch;

/// Start timing a phase. Free when telemetry is compiled out.
#[inline]
pub fn stopwatch() -> Stopwatch {
    imp::stopwatch()
}

/// Record the elapsed time since `sw` into `phase`'s global histogram.
#[inline]
pub fn record(phase: Phase, sw: Stopwatch) {
    imp::record(phase, sw)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_have_distinct_metrics_and_indices() {
        let mut names: Vec<_> = Phase::ALL.iter().map(|p| p.metric_name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 7);
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn record_lands_in_global_histogram() {
        let sw = stopwatch();
        record(Phase::OutboxDrain, sw);
        let snap = crate::global().snapshot();
        assert!(snap.histogram("phase.outbox_drain_ns").unwrap().count() >= 1);
    }
}
