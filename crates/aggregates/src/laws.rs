//! Generic law checks shared by aggregate tests.
//!
//! Every aggregate must satisfy:
//! * **⊕ laws** — `fuse` is commutative, associative, and idempotent (so
//!   multi-path re-delivery cannot corrupt answers);
//! * **conversion soundness** — converting a tree partial and fusing it
//!   yields (approximately) the same answer as generating synopses
//!   directly from the underlying readings;
//! * **tree exactness** — with no loss, the tree side reproduces the true
//!   answer for exact aggregates.
//!
//! These helpers are `pub` so other crates' tests (and the integration
//! suite) can reuse them on custom aggregates.

use crate::traits::Aggregate;

/// Readings used by the law checks: `(node, value)` pairs.
pub type Readings = Vec<(u32, u64)>;

/// Build the fused synopsis of all readings in the given order.
pub fn fuse_all<A: Aggregate>(agg: &A, readings: &[(u32, u64)]) -> Option<A::Synopsis> {
    let mut iter = readings.iter();
    let first = iter.next()?;
    let mut acc = agg.local_synopsis(first.0, first.1);
    for &(n, v) in iter {
        let s = agg.local_synopsis(n, v);
        agg.fuse(&mut acc, &s);
    }
    Some(acc)
}

/// Build the merged tree partial of all readings.
pub fn merge_all<A: Aggregate>(agg: &A, readings: &[(u32, u64)]) -> Option<A::TreePartial> {
    let mut iter = readings.iter();
    let first = iter.next()?;
    let mut acc = agg.local_tree(first.0, first.1);
    for &(n, v) in iter {
        let p = agg.local_tree(n, v);
        agg.merge_tree(&mut acc, &p);
    }
    Some(acc)
}

/// Assert the ⊕ laws on the synopsis side for the given readings.
///
/// `answers_equal` compares evaluated answers (exact equality for exact
/// synopses; use a tolerance-based closure for sketches whose internal
/// state is still deterministic — for those we compare the full evaluated
/// answer, which must be *bit-identical* because ⊕ implementations here
/// are deterministic structures).
pub fn assert_fuse_laws<A: Aggregate>(agg: &A, xs: &Readings, ys: &Readings, zs: &Readings) {
    let (Some(a), Some(b), Some(c)) = (fuse_all(agg, xs), fuse_all(agg, ys), fuse_all(agg, zs))
    else {
        return;
    };
    // Commutativity: a ⊕ b = b ⊕ a.
    let mut ab = a.clone();
    agg.fuse(&mut ab, &b);
    let mut ba = b.clone();
    agg.fuse(&mut ba, &a);
    assert_eq!(
        agg.evaluate_synopsis(&ab),
        agg.evaluate_synopsis(&ba),
        "fuse not commutative for {}",
        agg.name()
    );
    // Associativity: (a ⊕ b) ⊕ c = a ⊕ (b ⊕ c).
    let mut ab_c = ab.clone();
    agg.fuse(&mut ab_c, &c);
    let mut bc = b.clone();
    agg.fuse(&mut bc, &c);
    let mut a_bc = a.clone();
    agg.fuse(&mut a_bc, &bc);
    assert_eq!(
        agg.evaluate_synopsis(&ab_c),
        agg.evaluate_synopsis(&a_bc),
        "fuse not associative for {}",
        agg.name()
    );
    // Idempotence: a ⊕ a = a.
    let mut aa = a.clone();
    agg.fuse(&mut aa, &a);
    assert_eq!(
        agg.evaluate_synopsis(&aa),
        agg.evaluate_synopsis(&a),
        "fuse not idempotent for {}",
        agg.name()
    );
}

/// Assert the tree-merge law: `merge_tree` must be commutative and
/// associative (compared through `evaluate_tree`), so partial results
/// may combine in any delivery order — and so cross-epoch consumers
/// like the stream engine's window panes may fold per-epoch partials in
/// ring order, hop order, or eviction order interchangeably. Unlike
/// [`assert_fuse_laws`] there is no idempotence requirement: tree
/// merges are duplicate-sensitive by design.
pub fn assert_merge_laws<A: Aggregate>(agg: &A, xs: &Readings, ys: &Readings, zs: &Readings) {
    let (Some(a), Some(b), Some(c)) = (merge_all(agg, xs), merge_all(agg, ys), merge_all(agg, zs))
    else {
        return;
    };
    // Commutativity: a ⊎ b = b ⊎ a.
    let mut ab = a.clone();
    agg.merge_tree(&mut ab, &b);
    let mut ba = b.clone();
    agg.merge_tree(&mut ba, &a);
    assert_eq!(
        agg.evaluate_tree(&ab),
        agg.evaluate_tree(&ba),
        "merge_tree not commutative for {}",
        agg.name()
    );
    // Associativity: (a ⊎ b) ⊎ c = a ⊎ (b ⊎ c).
    let mut ab_c = ab.clone();
    agg.merge_tree(&mut ab_c, &c);
    let mut bc = b.clone();
    agg.merge_tree(&mut bc, &c);
    let mut a_bc = a.clone();
    agg.merge_tree(&mut a_bc, &bc);
    assert_eq!(
        agg.evaluate_tree(&ab_c),
        agg.evaluate_tree(&a_bc),
        "merge_tree not associative for {}",
        agg.name()
    );
}

/// Assert conversion soundness within `rel_tol` relative error: a tree
/// partial over `tree_readings`, converted at `root` and fused with the
/// direct synopses of `mp_readings`, must evaluate close to the reference
/// answer. The reference is `expected` when given (ground truth — the
/// right comparison for sketch-backed synopses, whose direct evaluation is
/// itself a noisy draw); otherwise the direct all-synopsis evaluation
/// (exact synopses must match it bit-for-bit with `rel_tol = 0`).
pub fn assert_conversion_sound<A: Aggregate>(
    agg: &A,
    root: u32,
    tree_readings: &Readings,
    mp_readings: &Readings,
    rel_tol: f64,
    expected: Option<f64>,
) {
    let tree_partial = merge_all(agg, tree_readings).expect("tree readings non-empty");
    let converted = agg.convert(root, &tree_partial);
    let mixed = match fuse_all(agg, mp_readings) {
        Some(mut mp) => {
            agg.fuse(&mut mp, &converted);
            mp
        }
        None => converted,
    };
    let mixed_answer = agg.evaluate_synopsis(&mixed);

    let reference = expected.unwrap_or_else(|| {
        let all: Readings = tree_readings
            .iter()
            .chain(mp_readings.iter())
            .copied()
            .collect();
        let direct = fuse_all(agg, &all).expect("non-empty");
        agg.evaluate_synopsis(&direct)
    });

    let denom = reference.abs().max(1.0);
    let rel = (mixed_answer - reference).abs() / denom;
    assert!(
        rel <= rel_tol,
        "{}: converted path answer {mixed_answer} vs reference {reference} (rel {rel} > {rel_tol})",
        agg.name()
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count::Count;

    #[test]
    fn helpers_handle_empty_input() {
        let agg = Count::default();
        assert!(fuse_all(&agg, &[]).is_none());
        assert!(merge_all(&agg, &[]).is_none());
        assert_fuse_laws(&agg, &vec![], &vec![], &vec![]);
        assert_merge_laws(&agg, &vec![], &vec![], &vec![]);
    }

    #[test]
    fn merge_laws_hold_for_the_scalar_aggregates() {
        let xs: Readings = (1..30u32).map(|i| (i, 3 + i as u64 % 11)).collect();
        let ys: Readings = (30..55u32).map(|i| (i, 90 + i as u64 % 5)).collect();
        let zs: Readings = (55..70u32).map(|i| (i, i as u64)).collect();
        assert_merge_laws(&Count::default(), &xs, &ys, &zs);
        assert_merge_laws(&crate::sum::Sum::default(), &xs, &ys, &zs);
        assert_merge_laws(&crate::minmax::Min, &xs, &ys, &zs);
        assert_merge_laws(&crate::minmax::Max, &xs, &ys, &zs);
        assert_merge_laws(&crate::average::Average::default(), &xs, &ys, &zs);
    }
}
