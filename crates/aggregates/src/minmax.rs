//! Min and Max: exact in both schemes.
//!
//! Min/Max are naturally duplicate-insensitive (idempotent), so the tree
//! partial and the synopsis are the same scalar and the conversion is the
//! identity — the "simple conversion functions" of §5.

use crate::traits::{Aggregate, Wire};

/// Minimum reading across contributing nodes.
#[derive(Clone, Copy, Debug, Default)]
pub struct Min;

/// Maximum reading across contributing nodes.
#[derive(Clone, Copy, Debug, Default)]
pub struct Max;

macro_rules! impl_extremum {
    ($ty:ident, $name:literal, $pick:expr) => {
        impl Aggregate for $ty {
            type TreePartial = u64;
            type Synopsis = u64;

            fn name(&self) -> &'static str {
                $name
            }

            fn local_tree(&self, _node: u32, value: u64) -> u64 {
                value
            }

            fn merge_tree(&self, into: &mut u64, from: &u64) {
                #[allow(clippy::redundant_closure_call)]
                {
                    *into = ($pick)(*into, *from);
                }
            }

            fn local_synopsis(&self, _node: u32, value: u64) -> u64 {
                value
            }

            fn fuse(&self, into: &mut u64, from: &u64) {
                #[allow(clippy::redundant_closure_call)]
                {
                    *into = ($pick)(*into, *from);
                }
            }

            fn convert(&self, _root: u32, partial: &u64) -> u64 {
                *partial
            }

            fn evaluate_tree(&self, partial: &u64) -> f64 {
                *partial as f64
            }

            fn evaluate_synopsis(&self, synopsis: &u64) -> f64 {
                *synopsis as f64
            }

            fn tree_wire(&self, _partial: &u64) -> Wire {
                Wire::from_words(1)
            }

            fn synopsis_wire(&self, _synopsis: &u64) -> Wire {
                Wire::from_words(1)
            }
        }
    };
}

impl_extremum!(Min, "min", |a: u64, b: u64| a.min(b));
impl_extremum!(Max, "max", |a: u64, b: u64| a.max(b));

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laws::{assert_conversion_sound, assert_fuse_laws, fuse_all};

    fn readings() -> Vec<(u32, u64)> {
        vec![(1, 30), (2, 7), (3, 99), (4, 7), (5, 55)]
    }

    #[test]
    fn min_and_max_answers() {
        let min_s = fuse_all(&Min, &readings()).unwrap();
        assert_eq!(Min.evaluate_synopsis(&min_s), 7.0);
        let max_s = fuse_all(&Max, &readings()).unwrap();
        assert_eq!(Max.evaluate_synopsis(&max_s), 99.0);
    }

    #[test]
    fn exact_conversion() {
        assert_conversion_sound(&Min, 1, &readings(), &vec![(9, 3), (10, 80)], 0.0, None);
        assert_conversion_sound(&Max, 1, &readings(), &vec![(9, 3), (10, 80)], 0.0, None);
    }

    #[test]
    fn fuse_laws() {
        let (a, b, c) = (readings(), vec![(6, 1), (7, 2)], vec![(8, 1000)]);
        assert_fuse_laws(&Min, &a, &b, &c);
        assert_fuse_laws(&Max, &a, &b, &c);
    }

    #[test]
    fn idempotent_under_redelivery() {
        let s = fuse_all(&Max, &readings()).unwrap();
        let mut twice = s;
        Max.fuse(&mut twice, &s);
        assert_eq!(twice, s);
    }
}
