//! The aggregate abstraction the Tributary-Delta runner is generic over.

/// Wire footprint of a partial result. Re-exported convenience alias of
/// the netsim type to avoid a dependency here: bytes drive message
/// quantization, words drive the load metrics of Figure 8.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Wire {
    /// Payload bytes after encoding.
    pub bytes: usize,
    /// Payload size in 32-bit words before encoding.
    pub words: usize,
}

impl Wire {
    /// A wire size measured in words (4 bytes each).
    pub fn from_words(words: usize) -> Self {
        Wire {
            bytes: words * 4,
            words,
        }
    }
}

/// An aggregate computable in the Tributary-Delta framework (§5).
///
/// Type parameters of the computation:
/// * `TreePartial` — the partial result tree (tributary) nodes exchange;
///   merged with ordinary (duplicate-sensitive) semantics.
/// * `Synopsis` — the duplicate-insensitive partial result delta
///   (multi-path) nodes exchange; `fuse` must be commutative, associative
///   and idempotent.
///
/// The *conversion function* bridges the two: `convert(root, partial)`
/// must produce a synopsis that the multi-path scheme "equates with" the
/// tree partial — fusing it anywhere in the delta accounts for exactly the
/// readings the tree partial accumulated, no matter how many paths carry
/// the fused result afterwards. `root` identifies the tributary root so
/// the conversion can salt its pseudo-elements uniquely (path correctness
/// guarantees each tributary root is the root of a unique subtree, §4.2
/// footnote 3).
/// (`Send` so aggregate-carrying stream queries can cross worker
/// threads — the service layer moves whole tenant sessions between
/// them; every aggregate here is plain data.)
pub trait Aggregate: Clone + Send + Sync {
    /// Partial result used by tree (tributary) nodes. (`'static` +
    /// `Send` so partials can ride in the type-erased multi-query
    /// bundles of the session engine across worker threads.)
    type TreePartial: Clone + std::fmt::Debug + Send + 'static;
    /// Duplicate-insensitive partial result used by delta nodes.
    type Synopsis: Clone + std::fmt::Debug + Send + 'static;

    /// Human-readable aggregate name (for reports).
    fn name(&self) -> &'static str;

    /// The tree partial result for a single local reading.
    fn local_tree(&self, node: u32, value: u64) -> Self::TreePartial;

    /// Merge a child's tree partial into an accumulator (ordinary
    /// duplicate-sensitive merge; inputs are disjoint subtrees).
    fn merge_tree(&self, into: &mut Self::TreePartial, from: &Self::TreePartial);

    /// Synopsis generation (SG): the synopsis for a single local reading.
    fn local_synopsis(&self, node: u32, value: u64) -> Self::Synopsis;

    /// Synopsis fusion (SF): duplicate-insensitive ⊕.
    fn fuse(&self, into: &mut Self::Synopsis, from: &Self::Synopsis);

    /// Conversion function: re-express a tree partial as a synopsis.
    fn convert(&self, root: u32, partial: &Self::TreePartial) -> Self::Synopsis;

    /// Evaluate a tree partial into the query answer.
    fn evaluate_tree(&self, partial: &Self::TreePartial) -> f64;

    /// Synopsis evaluation (SE): evaluate a synopsis into the answer.
    fn evaluate_synopsis(&self, synopsis: &Self::Synopsis) -> f64;

    /// Wire footprint of a tree partial.
    fn tree_wire(&self, partial: &Self::TreePartial) -> Wire;

    /// Wire footprint of a synopsis.
    fn synopsis_wire(&self, synopsis: &Self::Synopsis) -> Wire;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_from_words() {
        let w = Wire::from_words(3);
        assert_eq!(w.bytes, 12);
        assert_eq!(w.words, 3);
    }
}
