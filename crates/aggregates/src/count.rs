//! The Count aggregate: how many nodes contributed.
//!
//! The tree side counts exactly. The multi-path side uses the FM bit
//! vector of \[5,7\] — the `bv` of Figure 3 — with ≈12% approximation error
//! at the paper's 40-bitmap configuration. The conversion function takes a
//! subtree count `c` and generates a synopsis the multi-path scheme
//! equates with the value `c` (FM value-insertion salted by the tributary
//! root, §5's Count example).

use crate::traits::{Aggregate, Wire};
use td_sketches::fm::FmSketch;
use td_sketches::hash::keyed;
use td_sketches::rle;

/// Hash key separating Count's element population from other aggregates.
const COUNT_KEY: u64 = 0xC007;

/// Count of contributing nodes.
#[derive(Clone, Debug)]
pub struct Count {
    bitmaps: usize,
    salt: u64,
}

impl Default for Count {
    fn default() -> Self {
        Count {
            bitmaps: td_sketches::fm::DEFAULT_BITMAPS,
            salt: 0,
        }
    }
}

impl Count {
    /// Count with a custom number of FM bitmaps (accuracy/size knob).
    pub fn with_bitmaps(bitmaps: usize) -> Self {
        Count { bitmaps, salt: 0 }
    }

    /// Count with a per-query salt: different salts draw independent
    /// sketch randomness for the same node population, so repeated
    /// queries sample the estimator's error distribution instead of
    /// replaying one fixed draw (used when averaging across runs).
    pub fn with_salt(mut self, salt: u64) -> Self {
        self.salt = salt;
        self
    }
}

impl Aggregate for Count {
    type TreePartial = u64;
    type Synopsis = FmSketch;

    fn name(&self) -> &'static str {
        "count"
    }

    fn local_tree(&self, _node: u32, _value: u64) -> u64 {
        1
    }

    fn merge_tree(&self, into: &mut u64, from: &u64) {
        *into += from;
    }

    fn local_synopsis(&self, node: u32, _value: u64) -> FmSketch {
        let mut s = FmSketch::new(self.bitmaps);
        s.insert_distinct(keyed(COUNT_KEY ^ self.salt, node as u64));
        s
    }

    fn fuse(&self, into: &mut FmSketch, from: &FmSketch) {
        into.merge(from);
    }

    fn convert(&self, root: u32, partial: &u64) -> FmSketch {
        let mut s = FmSketch::new(self.bitmaps);
        // Salt by the tributary root: each root owns a unique subtree
        // (§4.2 footnote 3), so populations from different roots are
        // disjoint, and re-conversion of the same partial is idempotent.
        s.insert_value(keyed(COUNT_KEY ^ 0x7EEE ^ self.salt, root as u64), *partial);
        s
    }

    fn evaluate_tree(&self, partial: &u64) -> f64 {
        *partial as f64
    }

    fn evaluate_synopsis(&self, synopsis: &FmSketch) -> f64 {
        synopsis.estimate()
    }

    fn tree_wire(&self, _partial: &u64) -> Wire {
        Wire::from_words(1)
    }

    fn synopsis_wire(&self, synopsis: &FmSketch) -> Wire {
        Wire {
            bytes: rle::encoded_size_bytes(synopsis),
            words: synopsis.num_bitmaps(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laws::{assert_conversion_sound, assert_fuse_laws, fuse_all, merge_all};

    fn readings(range: std::ops::Range<u32>) -> Vec<(u32, u64)> {
        range.map(|n| (n, 1)).collect()
    }

    #[test]
    fn tree_side_is_exact() {
        let agg = Count::default();
        let partial = merge_all(&agg, &readings(1..601)).unwrap();
        assert_eq!(agg.evaluate_tree(&partial), 600.0);
    }

    #[test]
    fn synopsis_side_within_approximation_error() {
        let agg = Count::default();
        let s = fuse_all(&agg, &readings(1..601)).unwrap();
        let est = agg.evaluate_synopsis(&s);
        let rel = (est - 600.0).abs() / 600.0;
        assert!(rel < 0.36, "count estimate {est} (rel {rel})");
    }

    #[test]
    fn fuse_laws() {
        let agg = Count::default();
        assert_fuse_laws(
            &agg,
            &readings(0..40),
            &readings(20..80),
            &readings(60..100),
        );
    }

    #[test]
    fn duplicates_do_not_double_count() {
        let agg = Count::default();
        let once = fuse_all(&agg, &readings(1..101)).unwrap();
        // Fuse the same 100 nodes twice over.
        let twice_readings: Vec<(u32, u64)> = readings(1..101)
            .into_iter()
            .chain(readings(1..101))
            .collect();
        let twice = fuse_all(&agg, &twice_readings).unwrap();
        assert_eq!(agg.evaluate_synopsis(&once), agg.evaluate_synopsis(&twice));
    }

    #[test]
    fn conversion_sound_figure3_scenario() {
        // Figure 3: M3 fuses two multi-path bit vectors with a converted
        // tree count of 3. Larger version: 300 tree nodes + 300 mp nodes.
        let agg = Count::default();
        assert_conversion_sound(
            &agg,
            7,
            &readings(1..301),
            &readings(301..601),
            0.4,
            Some(600.0),
        );
    }

    #[test]
    fn conversion_is_deterministic() {
        let agg = Count::default();
        let a = agg.convert(5, &42);
        let b = agg.convert(5, &42);
        assert_eq!(a, b);
        // Different roots give different (independent) populations.
        let c = agg.convert(6, &42);
        assert_ne!(a, c);
    }

    #[test]
    fn wire_sizes() {
        let agg = Count::default();
        assert_eq!(agg.tree_wire(&5).words, 1);
        let s = fuse_all(&agg, &readings(1..601)).unwrap();
        let w = agg.synopsis_wire(&s);
        assert!(w.bytes <= 48, "count synopsis {} bytes", w.bytes);
        assert_eq!(w.words, 40);
    }
}
