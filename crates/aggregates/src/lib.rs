//! # td-aggregates — aggregates for the Tributary-Delta framework
//!
//! §5 of the paper: computing an aggregate under Tributary-Delta needs
//! three pieces —
//!
//! 1. a **tree algorithm** (exact partial results merged up tributaries),
//! 2. a **multi-path algorithm** in the synopsis-diffusion SG/SF/SE style
//!    (duplicate-insensitive synopses fused through the delta), and
//! 3. a **conversion function** turning a tree partial result into a
//!    synopsis the multi-path side can fuse — applied where a tributary
//!    root hands its subtree's result to its delta parent (Figure 3).
//!
//! The [`traits::Aggregate`] trait packages all three plus wire-size
//! accounting; the simulator in the `tributary-delta` crate is generic
//! over it. Implementations here:
//!
//! | Aggregate | Tree partial | Synopsis | Approximation error |
//! |-----------|--------------|----------|---------------------|
//! | [`count::Count`] | exact counter | FM sketch | ≈ 12% at 40 bitmaps |
//! | [`sum::Sum`] | exact sum | FM sketch (value insertion) | ≈ 12% |
//! | [`minmax::Min`] / [`minmax::Max`] | exact | exact (idempotent) | none |
//! | [`average::Average`] | (sum, count) | (FM, FM) | ≈ 17% (ratio) |
//! | [`sample_agg::UniformSample`] | min-hash sample | min-hash sample | sampling error |
//! | [`sample_agg::SampledQuantile`] / [`sample_agg::SampledMoment`] | ditto | ditto | sampling error |
//!
//! Frequent items — the paper's difficult aggregate — has its own crate
//! (`td-frequent`) because its partial results are summaries/synopsis
//! *collections* rather than scalars.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod average;
pub mod count;
pub mod laws;
pub mod minmax;
pub mod sample_agg;
pub mod sum;
pub mod traits;

pub use average::Average;
pub use count::Count;
pub use minmax::{Max, Min};
pub use sample_agg::{SampledMoment, SampledQuantile, UniformSample};
pub use sum::Sum;
pub use traits::Aggregate;
