//! The Sum aggregate (the paper's workhorse in §7.3).
//!
//! Tree side: exact integer sums. Multi-path side: FM sketches with
//! Considine-style value insertion \[5\] — a node holding reading `v`
//! inserts `v` pseudo-elements salted by its id. Conversion inserts a
//! subtree's sum the same way, salted by the tributary root.

use crate::traits::{Aggregate, Wire};
use td_sketches::fm::FmSketch;
use td_sketches::hash::keyed;
use td_sketches::rle;

const SUM_KEY: u64 = 0x5033;

/// Sum of node readings.
#[derive(Clone, Debug)]
pub struct Sum {
    bitmaps: usize,
}

impl Default for Sum {
    fn default() -> Self {
        Sum {
            bitmaps: td_sketches::fm::DEFAULT_BITMAPS,
        }
    }
}

impl Sum {
    /// Sum with a custom number of FM bitmaps.
    pub fn with_bitmaps(bitmaps: usize) -> Self {
        Sum { bitmaps }
    }
}

impl Aggregate for Sum {
    type TreePartial = u64;
    type Synopsis = FmSketch;

    fn name(&self) -> &'static str {
        "sum"
    }

    fn local_tree(&self, _node: u32, value: u64) -> u64 {
        value
    }

    fn merge_tree(&self, into: &mut u64, from: &u64) {
        *into += from;
    }

    fn local_synopsis(&self, node: u32, value: u64) -> FmSketch {
        let mut s = FmSketch::new(self.bitmaps);
        s.insert_value(keyed(SUM_KEY, node as u64), value);
        s
    }

    fn fuse(&self, into: &mut FmSketch, from: &FmSketch) {
        into.merge(from);
    }

    fn convert(&self, root: u32, partial: &u64) -> FmSketch {
        let mut s = FmSketch::new(self.bitmaps);
        s.insert_value(keyed(SUM_KEY ^ 0x7EEE, root as u64), *partial);
        s
    }

    fn evaluate_tree(&self, partial: &u64) -> f64 {
        *partial as f64
    }

    fn evaluate_synopsis(&self, synopsis: &FmSketch) -> f64 {
        synopsis.estimate()
    }

    fn tree_wire(&self, _partial: &u64) -> Wire {
        Wire::from_words(1)
    }

    fn synopsis_wire(&self, synopsis: &FmSketch) -> Wire {
        Wire {
            bytes: rle::encoded_size_bytes(synopsis),
            words: synopsis.num_bitmaps(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laws::{assert_conversion_sound, assert_fuse_laws, fuse_all, merge_all};

    fn readings(n: u32, value: u64) -> Vec<(u32, u64)> {
        (1..=n).map(|i| (i, value + (i as u64 % 7))).collect()
    }

    #[test]
    fn tree_side_is_exact() {
        let agg = Sum::default();
        let rs = readings(100, 50);
        let expect: u64 = rs.iter().map(|&(_, v)| v).sum();
        let partial = merge_all(&agg, &rs).unwrap();
        assert_eq!(agg.evaluate_tree(&partial), expect as f64);
    }

    #[test]
    fn synopsis_estimates_total() {
        let agg = Sum::default();
        let rs = readings(200, 40);
        let expect: u64 = rs.iter().map(|&(_, v)| v).sum();
        let s = fuse_all(&agg, &rs).unwrap();
        let est = agg.evaluate_synopsis(&s);
        let rel = (est - expect as f64).abs() / expect as f64;
        assert!(rel < 0.36, "sum estimate {est} expect {expect} rel {rel}");
    }

    #[test]
    fn zero_values_contribute_nothing() {
        let agg = Sum::default();
        let s = fuse_all(&agg, &[(1, 0), (2, 0)]).unwrap();
        assert_eq!(agg.evaluate_synopsis(&s), 0.0);
    }

    #[test]
    fn fuse_laws() {
        let agg = Sum::with_bitmaps(16);
        assert_fuse_laws(&agg, &readings(30, 10), &readings(50, 5), &readings(20, 90));
    }

    #[test]
    fn duplicate_fusion_stable() {
        let agg = Sum::default();
        let rs = readings(80, 25);
        let once = fuse_all(&agg, &rs).unwrap();
        let mut twice = once.clone();
        agg.fuse(&mut twice, &once);
        assert_eq!(agg.evaluate_synopsis(&once), agg.evaluate_synopsis(&twice));
    }

    #[test]
    fn conversion_sound() {
        let agg = Sum::default();
        let truth: u64 = readings(150, 30)
            .iter()
            .chain(readings(150, 60).iter())
            .map(|&(_, v)| v)
            .sum();
        assert_conversion_sound(
            &agg,
            9,
            &readings(150, 30),
            &readings(150, 60),
            0.4,
            Some(truth as f64),
        );
    }

    #[test]
    fn large_subtree_sum_conversion() {
        // Converting a large subtree sum must land near the value.
        let agg = Sum::default();
        let s = agg.convert(3, &1_000_000);
        let est = agg.evaluate_synopsis(&s);
        let rel = (est - 1e6).abs() / 1e6;
        assert!(rel < 0.4, "est {est} rel {rel}");
    }

    #[test]
    fn synopsis_fits_single_message() {
        let agg = Sum::default();
        let s = fuse_all(&agg, &readings(600, 100)).unwrap();
        assert!(agg.synopsis_wire(&s).bytes <= 48);
    }
}
