//! Uniform samples and the aggregates derived from them (§5).
//!
//! "The Uniform sample algorithm can be used to compute various other
//! aggregates (e.g., Quantiles, Statistical moments) using the framework."
//!
//! Both schemes use the same min-hash bottom-k sample: an element's
//! priority is a fixed hash of its node id, so the tree merge, the
//! multi-path fusion, and the conversion function are all the *same*
//! union-and-truncate operation — the conversion is the identity, and the
//! sample drawn is independent of the aggregation topology. (A classical
//! tree-only implementation would use reservoir merging; min-hash gives
//! the identical uniform distribution while being ODI for free.)

use crate::traits::{Aggregate, Wire};
use td_sketches::hash::keyed;
use td_sketches::sample::MinHashSample;

const SAMPLE_KEY: u64 = 0x5A4D;

/// A uniform sample of contributing readings; evaluates to the sample
/// mean (the sample itself is available in the partial results for richer
/// post-processing).
#[derive(Clone, Debug)]
pub struct UniformSample {
    k: usize,
}

impl UniformSample {
    /// Sample of capacity `k`.
    pub fn new(k: usize) -> Self {
        UniformSample { k }
    }

    /// Sample capacity.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl Default for UniformSample {
    fn default() -> Self {
        UniformSample { k: 64 }
    }
}

fn local_sample(k: usize, node: u32, value: u64) -> MinHashSample {
    let mut s = MinHashSample::new(k);
    s.insert_f64(keyed(SAMPLE_KEY, node as u64), value as f64);
    s
}

impl Aggregate for UniformSample {
    type TreePartial = MinHashSample;
    type Synopsis = MinHashSample;

    fn name(&self) -> &'static str {
        "uniform-sample"
    }

    fn local_tree(&self, node: u32, value: u64) -> MinHashSample {
        local_sample(self.k, node, value)
    }

    fn merge_tree(&self, into: &mut MinHashSample, from: &MinHashSample) {
        into.merge(from);
    }

    fn local_synopsis(&self, node: u32, value: u64) -> MinHashSample {
        local_sample(self.k, node, value)
    }

    fn fuse(&self, into: &mut MinHashSample, from: &MinHashSample) {
        into.merge(from);
    }

    fn convert(&self, _root: u32, partial: &MinHashSample) -> MinHashSample {
        partial.clone()
    }

    fn evaluate_tree(&self, partial: &MinHashSample) -> f64 {
        partial.moment(1).unwrap_or(0.0)
    }

    fn evaluate_synopsis(&self, synopsis: &MinHashSample) -> f64 {
        synopsis.moment(1).unwrap_or(0.0)
    }

    fn tree_wire(&self, partial: &MinHashSample) -> Wire {
        Wire::from_words(partial.wire_words())
    }

    fn synopsis_wire(&self, synopsis: &MinHashSample) -> Wire {
        Wire::from_words(synopsis.wire_words())
    }
}

/// A quantile estimated from a uniform sample.
#[derive(Clone, Debug)]
pub struct SampledQuantile {
    inner: UniformSample,
    q: f64,
}

impl SampledQuantile {
    /// Estimate the `q`-quantile (0 ≤ q ≤ 1) from a sample of capacity `k`.
    pub fn new(k: usize, q: f64) -> Self {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of [0,1]");
        SampledQuantile {
            inner: UniformSample::new(k),
            q,
        }
    }
}

impl Aggregate for SampledQuantile {
    type TreePartial = MinHashSample;
    type Synopsis = MinHashSample;

    fn name(&self) -> &'static str {
        "sampled-quantile"
    }

    fn local_tree(&self, node: u32, value: u64) -> MinHashSample {
        self.inner.local_tree(node, value)
    }

    fn merge_tree(&self, into: &mut MinHashSample, from: &MinHashSample) {
        self.inner.merge_tree(into, from);
    }

    fn local_synopsis(&self, node: u32, value: u64) -> MinHashSample {
        self.inner.local_synopsis(node, value)
    }

    fn fuse(&self, into: &mut MinHashSample, from: &MinHashSample) {
        self.inner.fuse(into, from);
    }

    fn convert(&self, root: u32, partial: &MinHashSample) -> MinHashSample {
        self.inner.convert(root, partial)
    }

    fn evaluate_tree(&self, partial: &MinHashSample) -> f64 {
        partial.quantile(self.q).unwrap_or(0.0)
    }

    fn evaluate_synopsis(&self, synopsis: &MinHashSample) -> f64 {
        synopsis.quantile(self.q).unwrap_or(0.0)
    }

    fn tree_wire(&self, partial: &MinHashSample) -> Wire {
        self.inner.tree_wire(partial)
    }

    fn synopsis_wire(&self, synopsis: &MinHashSample) -> Wire {
        self.inner.synopsis_wire(synopsis)
    }
}

/// A raw statistical moment estimated from a uniform sample.
#[derive(Clone, Debug)]
pub struct SampledMoment {
    inner: UniformSample,
    p: u32,
}

impl SampledMoment {
    /// Estimate the `p`-th raw moment from a sample of capacity `k`.
    pub fn new(k: usize, p: u32) -> Self {
        SampledMoment {
            inner: UniformSample::new(k),
            p,
        }
    }
}

impl Aggregate for SampledMoment {
    type TreePartial = MinHashSample;
    type Synopsis = MinHashSample;

    fn name(&self) -> &'static str {
        "sampled-moment"
    }

    fn local_tree(&self, node: u32, value: u64) -> MinHashSample {
        self.inner.local_tree(node, value)
    }

    fn merge_tree(&self, into: &mut MinHashSample, from: &MinHashSample) {
        self.inner.merge_tree(into, from);
    }

    fn local_synopsis(&self, node: u32, value: u64) -> MinHashSample {
        self.inner.local_synopsis(node, value)
    }

    fn fuse(&self, into: &mut MinHashSample, from: &MinHashSample) {
        self.inner.fuse(into, from);
    }

    fn convert(&self, root: u32, partial: &MinHashSample) -> MinHashSample {
        self.inner.convert(root, partial)
    }

    fn evaluate_tree(&self, partial: &MinHashSample) -> f64 {
        partial.moment(self.p).unwrap_or(0.0)
    }

    fn evaluate_synopsis(&self, synopsis: &MinHashSample) -> f64 {
        synopsis.moment(self.p).unwrap_or(0.0)
    }

    fn tree_wire(&self, partial: &MinHashSample) -> Wire {
        self.inner.tree_wire(partial)
    }

    fn synopsis_wire(&self, synopsis: &MinHashSample) -> Wire {
        self.inner.synopsis_wire(synopsis)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laws::{assert_conversion_sound, assert_fuse_laws, fuse_all};

    fn readings(n: u32) -> Vec<(u32, u64)> {
        (1..=n).map(|i| (i, i as u64)).collect()
    }

    #[test]
    fn sample_mean_close_to_population_mean() {
        let agg = UniformSample::new(128);
        let s = fuse_all(&agg, &readings(2000)).unwrap();
        let est = agg.evaluate_synopsis(&s);
        assert!((est - 1000.5).abs() < 250.0, "sample mean {est}");
    }

    #[test]
    fn conversion_is_identity() {
        let agg = UniformSample::new(32);
        let s = fuse_all(&agg, &readings(100)).unwrap();
        assert_eq!(agg.convert(1, &s), s);
        assert_conversion_sound(&agg, 1, &readings(100), &readings(100), 0.0, None);
    }

    #[test]
    fn quantile_aggregate() {
        let agg = SampledQuantile::new(256, 0.5);
        let s = fuse_all(&agg, &readings(4000)).unwrap();
        let est = agg.evaluate_synopsis(&s);
        assert!((est - 2000.0).abs() < 600.0, "median {est}");
        // Tree and synopsis sides agree exactly (same structure).
        assert_eq!(agg.evaluate_tree(&s), est);
    }

    #[test]
    fn moment_aggregate() {
        let agg = SampledMoment::new(512, 2);
        let rs: Vec<(u32, u64)> = (1..=1000).map(|i| (i, 10)).collect();
        let s = fuse_all(&agg, &rs).unwrap();
        assert!((agg.evaluate_synopsis(&s) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn fuse_laws() {
        let agg = UniformSample::new(16);
        assert_fuse_laws(&agg, &readings(50), &readings(80), &readings(30));
    }

    #[test]
    fn sample_independent_of_topology_split() {
        // Union of two partial samples equals the sample of the union —
        // the property that makes tree/multi-path/conversion agree.
        let agg = UniformSample::new(32);
        let all = fuse_all(&agg, &readings(500)).unwrap();
        let left = fuse_all(&agg, &readings(250)).unwrap();
        let right: Vec<(u32, u64)> = (251..=500).map(|i| (i, i as u64)).collect();
        let right = fuse_all(&agg, &right).unwrap();
        let mut merged = left;
        agg.fuse(&mut merged, &right);
        assert_eq!(merged, all);
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn quantile_out_of_range_rejected() {
        let _ = SampledQuantile::new(8, 1.5);
    }
}
