//! Average = Sum / Count, composed from the two underlying aggregates.
//!
//! The tree partial is the exact `(sum, count)` pair; the synopsis is a
//! pair of FM sketches. The ratio of two ~12%-error estimates has ≈17%
//! error (errors are independent), which is the multi-path approximation
//! cost the paper's Table 1 alludes to for derived aggregates.

use crate::count::Count;
use crate::sum::Sum;
use crate::traits::{Aggregate, Wire};
use td_sketches::fm::FmSketch;

/// Average reading across contributing nodes.
#[derive(Clone, Debug, Default)]
pub struct Average {
    sum: Sum,
    count: Count,
}

impl Average {
    /// Average with custom bitmap counts for its two component sketches.
    pub fn with_bitmaps(bitmaps: usize) -> Self {
        Average {
            sum: Sum::with_bitmaps(bitmaps),
            count: Count::with_bitmaps(bitmaps),
        }
    }
}

/// Tree partial for Average: exact component sums.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AvgPartial {
    /// Sum of readings in the subtree.
    pub sum: u64,
    /// Number of readings in the subtree.
    pub count: u64,
}

/// Synopsis for Average: a pair of FM sketches.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AvgSynopsis {
    /// Sum sketch.
    pub sum: FmSketch,
    /// Count sketch.
    pub count: FmSketch,
}

impl Aggregate for Average {
    type TreePartial = AvgPartial;
    type Synopsis = AvgSynopsis;

    fn name(&self) -> &'static str {
        "average"
    }

    fn local_tree(&self, node: u32, value: u64) -> AvgPartial {
        AvgPartial {
            sum: self.sum.local_tree(node, value),
            count: self.count.local_tree(node, value),
        }
    }

    fn merge_tree(&self, into: &mut AvgPartial, from: &AvgPartial) {
        self.sum.merge_tree(&mut into.sum, &from.sum);
        self.count.merge_tree(&mut into.count, &from.count);
    }

    fn local_synopsis(&self, node: u32, value: u64) -> AvgSynopsis {
        AvgSynopsis {
            sum: self.sum.local_synopsis(node, value),
            count: self.count.local_synopsis(node, value),
        }
    }

    fn fuse(&self, into: &mut AvgSynopsis, from: &AvgSynopsis) {
        self.sum.fuse(&mut into.sum, &from.sum);
        self.count.fuse(&mut into.count, &from.count);
    }

    fn convert(&self, root: u32, partial: &AvgPartial) -> AvgSynopsis {
        AvgSynopsis {
            sum: self.sum.convert(root, &partial.sum),
            count: self.count.convert(root, &partial.count),
        }
    }

    fn evaluate_tree(&self, partial: &AvgPartial) -> f64 {
        if partial.count == 0 {
            0.0
        } else {
            partial.sum as f64 / partial.count as f64
        }
    }

    fn evaluate_synopsis(&self, synopsis: &AvgSynopsis) -> f64 {
        let c = self.count.evaluate_synopsis(&synopsis.count);
        if c <= 0.0 {
            0.0
        } else {
            self.sum.evaluate_synopsis(&synopsis.sum) / c
        }
    }

    fn tree_wire(&self, _partial: &AvgPartial) -> Wire {
        Wire::from_words(2)
    }

    fn synopsis_wire(&self, synopsis: &AvgSynopsis) -> Wire {
        let a = self.sum.synopsis_wire(&synopsis.sum);
        let b = self.count.synopsis_wire(&synopsis.count);
        Wire {
            bytes: a.bytes + b.bytes,
            words: a.words + b.words,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laws::{assert_fuse_laws, fuse_all, merge_all};

    fn readings() -> Vec<(u32, u64)> {
        (1..=200u32).map(|i| (i, 40 + (i as u64 % 21))).collect()
    }

    #[test]
    fn tree_average_exact() {
        let agg = Average::default();
        let rs = readings();
        let expect = rs.iter().map(|&(_, v)| v as f64).sum::<f64>() / rs.len() as f64;
        let p = merge_all(&agg, &rs).unwrap();
        assert!((agg.evaluate_tree(&p) - expect).abs() < 1e-9);
    }

    #[test]
    fn synopsis_average_close() {
        let agg = Average::default();
        let rs = readings();
        let expect = rs.iter().map(|&(_, v)| v as f64).sum::<f64>() / rs.len() as f64;
        let s = fuse_all(&agg, &rs).unwrap();
        let est = agg.evaluate_synopsis(&s);
        let rel = (est - expect).abs() / expect;
        assert!(rel < 0.5, "avg estimate {est} expect {expect}");
    }

    #[test]
    fn empty_average_is_zero() {
        let agg = Average::default();
        let p = AvgPartial::default();
        assert_eq!(agg.evaluate_tree(&p), 0.0);
    }

    #[test]
    fn fuse_laws() {
        let agg = Average::with_bitmaps(16);
        let a: Vec<(u32, u64)> = (1..40).map(|i| (i, 10)).collect();
        let b: Vec<(u32, u64)> = (30..80).map(|i| (i, 20)).collect();
        let c: Vec<(u32, u64)> = (70..90).map(|i| (i, 30)).collect();
        assert_fuse_laws(&agg, &a, &b, &c);
    }
}
