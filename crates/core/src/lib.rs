//! # tributary-delta — the paper's core contribution (§3–§5)
//!
//! Tributary-Delta runs **tree aggregation** (exact, small messages,
//! fragile) in the outer *tributaries* of a sensor network and
//! **multi-path aggregation** (robust, approximate) in an inner *delta*
//! region around the base station, adjusting the boundary dynamically to
//! hold a user-specified fraction of nodes contributing to each answer.
//!
//! Crate layout:
//!
//! * [`protocol`] — the [`protocol::Protocol`] abstraction an aggregate
//!   implements to run under Tributary-Delta: tree messages, multi-path
//!   synopses, and the conversion function between them (§5). Adapters
//!   are provided for every scalar aggregate in `td-aggregates`
//!   ([`protocol::ScalarProtocol`]) and for the §6 frequent-items
//!   algorithms ([`protocol::FreqProtocol`]).
//! * [`envelope`] — instrumentation wrappers the runner adds around
//!   protocol messages: exact contributor sets (ground truth), the
//!   in-band approximate Count of §4.2, and the per-subtree
//!   non-contribution extrema that drive the fine-grained TD strategy.
//! * [`runner`] — one epoch of level-synchronized execution over a
//!   [`td_topology::TdTopology`] (plus the pure-TAG baseline runner).
//!   Synopsis-diffusion (SD) is the special case of an all-multipath
//!   topology; TAG is the all-tree special case on an unrestricted tree.
//! * [`adapt`] — the §4.2 adaptation strategies **TD-Coarse** (grow or
//!   shrink the delta by a whole level) and **TD** (target the subtrees
//!   with the most non-contributing nodes), with oscillation damping.
//! * [`session`] — multi-epoch drivers tying runner + adapter together:
//!   the experiment entry points used by the bench crate.
//! * [`metrics`] — RMS/relative error and false-positive/negative rates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapt;
pub mod envelope;
pub mod metrics;
pub mod protocol;
pub mod runner;
pub mod session;

pub use adapt::{AdaptAction, Adapter, AdapterConfig, Strategy};
pub use protocol::{FreqProtocol, Protocol, ScalarProtocol};
pub use runner::{run_tag_epoch, run_td_epoch, EpochOutput, RunnerConfig};
pub use session::{Scheme, Session, SessionConfig};
