//! # tributary-delta — the paper's core contribution (§3–§5)
//!
//! Tributary-Delta runs **tree aggregation** (exact, small messages,
//! fragile) in the outer *tributaries* of a sensor network and
//! **multi-path aggregation** (robust, approximate) in an inner *delta*
//! region around the base station, adjusting the boundary dynamically to
//! hold a user-specified fraction of nodes contributing to each answer.
//!
//! ## The multi-query session engine
//!
//! Real deployments run many simultaneous aggregates over the same radio
//! traffic, so the execution engine is built around a **query set**, not
//! a single query: build a session with [`SessionBuilder`], register any
//! number of heterogeneous queries on a [`query::QuerySet`] (Count next
//! to Sum next to frequent-items), and one call to
//! [`session::Session::run_set`] answers all of them with a **single
//! topology traversal** — one unicast/broadcast per node carrying a
//! per-link message bundle, one contributor envelope, one in-band count
//! sketch, one adaptation decision. Registering a query costs a bundle
//! slot, not a network round. Typed [`query::QueryHandle`]s fetch each
//! answer without downcasting at the call site.
//!
//! ```ignore
//! let mut session = SessionBuilder::new(Scheme::Td).build(&net, &mut rng);
//! let count = ScalarProtocol::new(Count::default(), &values);
//! let sum = ScalarProtocol::new(Sum::default(), &values);
//! let mut set = QuerySet::new();
//! let h_count = set.register(&count);
//! let h_sum = set.register(&sum);
//! let mut rec = session.run_set(&set, &channel, epoch, &mut rng);
//! let n_alive: f64 = *rec.answers.get(h_count);
//! let total: f64 = *rec.answers.get(h_sum);
//! ```
//!
//! [`driver::Driver`] owns the §7.1 warmup/measure/adapt loop on top,
//! fed by a [`driver::Workload`] (Synthetic, LabData, or anything that
//! yields per-epoch readings).
//!
//! ## Compile-then-execute epochs
//!
//! Epoch execution is split into two phases. [`runner::EpochPlan`]
//! **compiles** a topology into a reusable schedule — the level-ordered
//! sender list, per-sender parents/heights, flattened broadcast delivery
//! lists, and the preallocated inbox + `(node, query)` bundle-slot
//! arenas — and [`runner::EpochPlan::run_set`] **executes** epochs over
//! it. A [`session::Session`] caches one plan per topology version and
//! recompiles only when §4.2 adaptation actually relabels vertices, so
//! steady-state epochs do zero schedule recomputation and no per-node
//! inbox growth. The one-shot entry points (`run_td_epoch_set` & co.)
//! compile-and-execute in one call over the identical code path, so
//! plan reuse is bit-for-bit invisible in results.
//!
//! ## Parallel trials
//!
//! Multi-trial experiments (seeds × loss rates × schemes) fan across
//! cores with [`driver::TrialPool`], a `std::thread::scope` executor
//! whose per-trial RNG substreams are salted by trial index alone —
//! results are reassembled in trial order and are bit-for-bit identical
//! at any thread count. [`driver::Driver::run_trials`] and
//! [`driver::Driver::run_sweep`] cover the common batch shapes and merge
//! per-trial accounting with `CommStats::merge`.
//!
//! Crate layout:
//!
//! * [`protocol`] — the typed [`protocol::Protocol`] abstraction an
//!   aggregate implements to run under Tributary-Delta: tree messages,
//!   multi-path synopses, and the conversion function between them (§5).
//!   Adapters are provided for every scalar aggregate in `td-aggregates`
//!   ([`protocol::ScalarProtocol`]) and for the §6 frequent-items
//!   algorithms ([`protocol::FreqProtocol`]).
//! * [`query`] — the object-safe layer: [`query::DynProtocol`] (every
//!   `Protocol` blanket-erased behind [`query::ErasedMsg`]), the
//!   [`query::QuerySet`] registry, and typed [`query::QueryHandle`]s.
//! * [`envelope`] — instrumentation wrappers the runner adds around each
//!   link's message bundle: exact contributor sets (ground truth), the
//!   in-band approximate Count of §4.2, and the per-subtree
//!   non-contribution extrema that drive the fine-grained TD strategy.
//!   Shared by every query in the bundle.
//! * [`runner`] — one epoch of level-synchronized execution over a
//!   [`td_topology::TdTopology`] (plus the pure-TAG baseline runner),
//!   carrying the whole query set per link. Synopsis-diffusion (SD) is
//!   the special case of an all-multipath topology; TAG is the all-tree
//!   special case on an unrestricted tree.
//! * [`adapt`] — the §4.2 adaptation strategies **TD-Coarse** (grow or
//!   shrink the delta by a whole level) and **TD** (target the subtrees
//!   with the most non-contributing nodes), with oscillation damping.
//! * [`session`] — the multi-epoch engine tying runner + adapter
//!   together: [`SessionBuilder`], [`session::Session::run_set`], and
//!   the single-query convenience [`session::Session::run_epoch`].
//! * [`driver`] — the scenario driver owning the warmup/epoch loop, fed
//!   by [`driver::Workload`] readings.
//! * [`metrics`] — RMS/relative error and false-positive/negative rates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapt;
pub mod driver;
pub mod envelope;
pub mod metrics;
pub mod protocol;
pub mod query;
pub mod runner;
pub mod session;

pub use adapt::{AdaptAction, Adapter, AdapterConfig, Strategy};
pub use driver::{
    Driver, EpochView, FixedReadings, ScalarRun, SteppedEpoch, TrialBatch, TrialPool, Workload,
};
pub use protocol::{
    FreqProtocol, Protocol, QuantileOutput, QuantileProtocol, QuantileSynopsisSet, ScalarProtocol,
};
pub use query::{Answers, DynProtocol, ErasedMsg, QueryHandle, QuerySet};
pub use runner::{
    run_tag_epoch, run_tag_epoch_set, run_td_epoch, run_td_epoch_set, EpochOutput, EpochPlan,
    RunnerConfig, SetEpochOutput,
};
pub use session::{QueryRecord, Scheme, Session, SessionBuilder, SessionConfig};
