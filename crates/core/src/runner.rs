//! One epoch of level-synchronized aggregation, split into **compile**
//! and **execute** phases.
//!
//! [`EpochPlan`] compiles a topology — a labeled [`TdTopology`] or a
//! plain TAG [`Tree`] — into a reusable execution schedule: the
//! level-ordered sender list (outermost ring first), per-sender tree
//! parents and heights, per-link broadcast delivery lists flattened into
//! one table, and the switchability/subtree metadata the §4.2 adaptation
//! signals need. Compilation also allocates the epoch arenas: per-node
//! inbox slabs for tree and multi-path envelopes and the flat
//! `(node, query)` bundle-slot slab local messages are staged in. A
//! cached plan makes steady-state epochs **schedule-recomputation-free**
//! (no per-epoch height/subtree/level sorts) and **growth-free** (inboxes
//! and slabs keep their capacity across epochs).
//!
//! ## Plan lifecycle: compile once, patch on adaptation
//!
//! [`crate::session::Session`] caches one plan per topology. While the
//! labeling holds still (`TdTopology::version` unchanged) the plan is
//! reused as-is. When §4.2 adaptation relabels vertices, the plan is
//! **patched in place** ([`EpochPlan::patch`]): the topology records
//! each mutation as a structured `TopologyDelta`, and the patch rewrites
//! only the touched schedule state — per-vertex mode, unicast parent,
//! switchability flags, and the `is M` bits of the flat broadcast table —
//! in O(|delta| · ring degree), reusing every arena (inbox slabs,
//! local-bundle slab, all free-lists) untouched. This works because the
//! step order, receiver-table layout, heights, and subtree sizes depend
//! only on the rings and the tree, never on the labeling, so a patched
//! plan is field-for-field identical to a fresh compile (pinned by
//! [`EpochPlan::structural_digest`] and a debug assertion in the session
//! cache).
//!
//! The same path absorbs **structural** deltas: a §4.1 parent switch (a
//! churn reroute via `apply_churn`, or an in-place `maintain_td`
//! round) preserves every vertex's depth, so the step order and
//! receiver table survive and the patch only rewrites the moved
//! vertices' unicast parents and re-derives heights/subtree sizes along
//! the switch endpoints' ancestor chains (O(|delta| · depth)). The
//! session falls back to a full [`EpochPlan::compile_td`] only when the
//! changed-vertex set exceeds the configured `patch_relabel_fraction`
//! of the network (default 25%), or when the topology's bounded delta
//! log no longer reaches back to the plan's version — e.g. after the
//! topology object itself was rebuilt around a wholesale
//! `maintain_tree` round.
//!
//! ## Arenas
//!
//! Compilation also allocates the epoch arenas; at steady state an epoch
//! performs no per-envelope allocation at all: contributor bitsets,
//! count sketches, and bundle `Vec`s all cycle through the plan's
//! free-lists (`Pools`), drawn at build time and returned when the
//! envelope is consumed.
//!
//! [`EpochPlan::run_set`] executes a query epoch over the compiled
//! schedule: tributary (`T`) vertices merge their children's tree
//! messages, finalize at their height, and unicast to their tree parent
//! (with the configured retransmissions); delta (`M`) vertices convert
//! arriving tree messages (§5), fuse synopses from the level above, and
//! broadcast — every `M`-labeled ring neighbor one level down that hears
//! the broadcast folds it in. The base station evaluates whatever
//! reaches it.
//!
//! The runner is **multi-query**: every link carries one *bundle*
//! holding a message slot per query registered in the epoch's
//! [`QuerySet`], so N concurrent aggregates cost one topology traversal
//! — one unicast/broadcast per node, one contributor envelope, one
//! in-band count sketch, one set of adaptation extrema — instead of N.
//! Message payload accounting sums the per-query wire sizes; the
//! envelope overhead is charged once per link, not once per query.
//!
//! Synopsis diffusion (SD) is exactly this runner on an all-multipath
//! labeling; the pure-TAG baseline is the tree side alone on an
//! arbitrary (unrestricted) TAG tree. The one-shot entry points
//! [`run_td_epoch_set`] / [`run_tag_epoch_set`] compile a fresh plan and
//! execute it once, so a standalone call and a plan-reusing session run
//! the identical code path and produce bit-identical results; the
//! single-query entry points [`run_td_epoch`] / [`run_tag_epoch`] are
//! thin typed wrappers over a one-entry bundle.

use std::any::Any;

use crate::envelope::{MpEnvelope, TreeEnvelope, TREE_OVERHEAD_WORDS};
use crate::protocol::Protocol;
use crate::query::{DynProtocol, ErasedMsg, QuerySet};
use td_netsim::loss::{unicast, LossModel, Retransmit};
use td_netsim::network::Network;
use td_netsim::node::{NodeId, BASE_STATION};
use td_netsim::stats::CommStats;
use td_sketches::fm::FmSketch;
use td_sketches::idset::IdSet;
use td_sketches::rle as sketch_rle;
use td_telemetry::phase::{self, Phase};
use td_topology::td::{Mode, TdTopology};
use td_topology::tree::Tree;

/// Runner knobs.
#[derive(Clone, Copy, Debug)]
pub struct RunnerConfig {
    /// Retransmission policy for tree (tributary) links. Multi-path
    /// broadcasts are never retransmitted (§7.4.3 lets *tree* nodes
    /// retransmit to equalize energy).
    pub tree_retransmit: Retransmit,
    /// Whether message accounting charges for the §4.2 adaptation fields
    /// (the in-band count sketch and the extremum reports). The
    /// non-adaptive baselines (TAG, SD) don't carry them.
    pub charge_adaptation_overhead: bool,
    /// Intra-epoch worker count for the level-parallel executor:
    /// `0` = use every available core, `1` = the exact sequential path,
    /// `k > 1` = `k` workers (the main thread plus `k - 1` scoped
    /// threads). Any value produces bit-identical results — shards are
    /// deterministic id-order chunks and per-shard stats/inbox writes
    /// are merged back in step order.
    pub workers: usize,
    /// Node-count floor below which the runner stays sequential even
    /// when `workers > 1`: at small scales the per-level fan-out costs
    /// more than it saves. Safe to tune freely — the parallel path is
    /// bit-identical, so the threshold never changes results.
    pub parallel_min_nodes: usize,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            tree_retransmit: Retransmit::default(),
            charge_adaptation_overhead: true,
            workers: 0,
            parallel_min_nodes: 512,
        }
    }
}

impl RunnerConfig {
    /// Resolve the `workers` knob: `0` maps to the machine's available
    /// parallelism, anything else is taken literally.
    pub fn effective_workers(&self) -> usize {
        match self.workers {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            w => w,
        }
    }
}

/// What one epoch produced at the base station for a single query.
#[derive(Clone, Debug)]
pub struct EpochOutput<O> {
    /// The evaluated answer.
    pub output: O,
    /// Exact number of sensors whose data is accounted for
    /// (instrumentation ground truth).
    pub contributing: usize,
    /// The in-band estimate of the same quantity (what a real base
    /// station would see: exact tree counts, sketched delta counts).
    pub contributing_est: f64,
    /// Largest per-subtree non-contributions reported by switchable M
    /// vertices this epoch (drives TD expansion).
    pub max_noncontrib: crate::envelope::ExtremaSet,
    /// Smallest such reports (drives TD shrinking).
    pub min_noncontrib: crate::envelope::ExtremaSet,
}

/// What one epoch produced at the base station for a whole query set.
/// `outputs[i]` is query `i`'s erased answer (in registration order);
/// the instrumentation fields are shared by every query — that sharing
/// is the point of the bundled traversal.
pub struct SetEpochOutput {
    /// Per-query answers, in registration order.
    pub outputs: Vec<Box<dyn Any>>,
    /// Exact number of contributing sensors (shared across queries).
    pub contributing: usize,
    /// In-band estimate of the contributing count.
    pub contributing_est: f64,
    /// Largest per-subtree non-contribution reports (TD expand signal).
    pub max_noncontrib: crate::envelope::ExtremaSet,
    /// Smallest such reports (TD shrink signal).
    pub min_noncontrib: crate::envelope::ExtremaSet,
}

impl std::fmt::Debug for SetEpochOutput {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SetEpochOutput")
            .field("queries", &self.outputs.len())
            .field("contributing", &self.contributing)
            .field("contributing_est", &self.contributing_est)
            .finish()
    }
}

/// One query's slot per link message: `bundle[i]` belongs to query `i`.
type Bundle = Vec<Option<ErasedMsg>>;

fn bundle_tree_words(set: &QuerySet<'_>, bundle: &Bundle) -> usize {
    bundle
        .iter()
        .enumerate()
        .filter_map(|(i, slot)| slot.as_ref().map(|m| set.query(i).tree_wire(m).words))
        .sum()
}

fn bundle_mp_wire(set: &QuerySet<'_>, bundle: &Bundle) -> (usize, usize) {
    bundle
        .iter()
        .enumerate()
        .filter_map(|(i, slot)| slot.as_ref().map(|m| set.query(i).mp_wire(m)))
        .fold((0, 0), |(b, w), wire| (b + wire.bytes, w + wire.words))
}

/// The envelope-part free-lists shared by every build/consume step: a
/// consumed envelope returns its contributor bitset, its count sketch
/// (multi-path only), and its bundle `Vec` here, and every envelope the
/// plan constructs draws from here first — so steady-state epochs
/// allocate no per-envelope parts at all.
struct Pools {
    /// Recycled contributor bitsets (invariant: cleared, capacity `n`).
    idsets: Vec<IdSet>,
    /// Recycled count sketches (invariant: cleared,
    /// [`crate::envelope::COUNT_SKETCH_BITMAPS`] bitmaps).
    sketches: Vec<FmSketch>,
    /// Recycled bundle `Vec`s (invariant: empty, capacity retained).
    bundles: Vec<Bundle>,
}

impl Pools {
    fn new() -> Pools {
        Pools {
            idsets: Vec::new(),
            sketches: Vec::new(),
            bundles: Vec::new(),
        }
    }

    /// A cleared contributor set: recycled, or freshly allocated only
    /// while the pool is still warming up.
    fn idset(&mut self, n: usize) -> IdSet {
        self.idsets.pop().unwrap_or_else(|| IdSet::new(n))
    }

    /// A cleared count sketch: recycled, or fresh during warm-up.
    fn sketch(&mut self) -> FmSketch {
        self.sketches
            .pop()
            .unwrap_or_else(|| FmSketch::new(crate::envelope::COUNT_SKETCH_BITMAPS))
    }

    /// An empty bundle `Vec`: recycled, or fresh during warm-up.
    fn bundle(&mut self) -> Bundle {
        self.bundles.pop().unwrap_or_default()
    }
}

/// Return a consumed envelope's contributor set to the arena free-list
/// (the pool invariant: every pooled set is cleared and `n`-capacity).
fn recycle_idset(pools: &mut Pools, mut contributors: IdSet) {
    contributors.clear();
    pools.idsets.push(contributors);
}

/// Return a consumed multi-path envelope's count sketch to the free-list.
fn recycle_sketch(pools: &mut Pools, mut sketch: FmSketch) {
    sketch.clear();
    pools.sketches.push(sketch);
}

/// Return a drained bundle `Vec` to the free-list (capacity retained).
fn recycle_bundle(pools: &mut Pools, mut bundle: Bundle) {
    bundle.clear();
    pools.bundles.push(bundle);
}

/// Recycle every pooled part of a consumed tree envelope.
fn recycle_tree_env(pools: &mut Pools, mut env: TreeEnvelope<Bundle>) {
    if let Some(bundle) = env.msg.take() {
        recycle_bundle(pools, bundle);
    }
    recycle_idset(pools, env.contributors);
}

/// Recycle every pooled part of a consumed multi-path envelope.
fn recycle_mp_env(pools: &mut Pools, mut env: MpEnvelope<Bundle>) {
    if let Some(bundle) = env.msg.take() {
        recycle_bundle(pools, bundle);
    }
    recycle_idset(pools, env.contributors);
    recycle_sketch(pools, env.count_sketch);
}

/// Clone a multi-path envelope for one broadcast receiver with its
/// contributor bitset, count sketch, and bundle `Vec` all drawn from the
/// free-lists instead of fresh allocations — the per-link copies would
/// otherwise grow the heap by one of each per delivered broadcast every
/// epoch. (The bundle's *elements* are protocol messages and still clone
/// individually.)
fn clone_mp_pooled(env: &MpEnvelope<Bundle>, n: usize, pools: &mut Pools) -> MpEnvelope<Bundle> {
    let mut contributors = pools.idset(n);
    contributors.copy_from(&env.contributors);
    let mut count_sketch = pools.sketch();
    count_sketch.copy_from(&env.count_sketch);
    let msg = env.msg.as_ref().map(|b| {
        let mut bundle = pools.bundle();
        bundle.extend(b.iter().cloned());
        bundle
    });
    MpEnvelope {
        msg,
        contributors,
        count_sketch,
        max_noncontrib: env.max_noncontrib.clone(),
        min_noncontrib: env.min_noncontrib.clone(),
    }
}

/// Merge children + own local bundle into a tree envelope and finalize
/// it. Drains `children` in delivery order, leaving its capacity in the
/// arena; their contributor bitsets go back to the free-list.
fn build_tree_envelope_set(
    set: &QuerySet<'_>,
    u: NodeId,
    height: u32,
    contributors: IdSet,
    local: Bundle,
    children: &mut Vec<TreeEnvelope<Bundle>>,
    pools: &mut Pools,
) -> TreeEnvelope<Bundle> {
    let mut env = TreeEnvelope::local_in(contributors, u, Some(local));
    for mut child in children.drain(..) {
        env.absorb_counts(&child);
        let mut child_bundle = child
            .msg
            .take()
            .expect("bundle envelopes always carry a bundle");
        let own = env.msg.as_mut().expect("just constructed with a bundle");
        for (i, from) in child_bundle.drain(..).enumerate() {
            let Some(from) = from else { continue };
            match &mut own[i] {
                Some(acc) => set.query(i).merge_tree(acc, &from),
                slot @ None => *slot = Some(from),
            }
        }
        recycle_bundle(pools, child_bundle);
        recycle_idset(pools, child.contributors);
    }
    let own = env.msg.as_mut().expect("constructed with a bundle");
    for (i, slot) in own.iter_mut().enumerate() {
        if let Some(m) = slot.take() {
            *slot = Some(set.query(i).finalize_tree(u, height, m));
        }
    }
    env.root = u;
    env
}

/// Convert + fuse everything an M vertex holds into one envelope,
/// reporting its subtree non-contribution when switchable. Drains both
/// inboxes in delivery order, leaving their capacity in the arena; the
/// drained envelopes' contributor bitsets go back to the free-list.
#[allow(clippy::too_many_arguments)]
fn build_mp_envelope_set(
    set: &QuerySet<'_>,
    u: NodeId,
    contributors: IdSet,
    count_sketch: FmSketch,
    subtree_size: u64,
    switchable_m: bool,
    local: Bundle,
    tree_msgs: &mut Vec<TreeEnvelope<Bundle>>,
    mp_msgs: &mut Vec<MpEnvelope<Bundle>>,
    pools: &mut Pools,
) -> MpEnvelope<Bundle> {
    let mut env = MpEnvelope::local_pooled(contributors, count_sketch, u, Some(local));
    // §4.2: a switchable M vertex is the root of a unique (all-tree)
    // subtree; it reports how many of its subtree's nodes are missing.
    if switchable_m {
        // Expected contributors below u: its whole static subtree minus u
        // itself (u's own contribution is in the local envelope already).
        let expected = subtree_size.saturating_sub(1);
        let received: u64 = tree_msgs.iter().map(|e| e.count).sum();
        env.report_noncontrib(u, expected.saturating_sub(received));
    }
    for mut te in tree_msgs.drain(..) {
        env.absorb_tree_counts(&te);
        let bundle = te.msg.take().expect("bundle envelopes carry a bundle");
        let own = env.msg.as_mut().expect("constructed with a bundle");
        for (i, slot) in bundle.iter().enumerate() {
            let Some(m) = slot else { continue };
            let converted = set.query(i).convert(te.root, m);
            match &mut own[i] {
                Some(acc) => set.query(i).fuse(acc, &converted),
                empty @ None => *empty = Some(converted),
            }
        }
        recycle_bundle(pools, bundle);
        recycle_idset(pools, te.contributors);
    }
    for mut me in mp_msgs.drain(..) {
        env.fuse_counts(&me);
        let mut bundle = me.msg.take().expect("bundle envelopes carry a bundle");
        let own = env.msg.as_mut().expect("constructed with a bundle");
        for (i, from) in bundle.drain(..).enumerate() {
            let Some(from) = from else { continue };
            match &mut own[i] {
                Some(acc) => set.query(i).fuse(acc, &from),
                slot @ None => *slot = Some(from),
            }
        }
        recycle_bundle(pools, bundle);
        recycle_idset(pools, me.contributors);
        recycle_sketch(pools, me.count_sketch);
    }
    env
}

/// Evaluate every query over the tree bundles that reached a tree-mode
/// base station. Drains the envelopes: each bundle slot is moved into
/// its query's evaluation, never cloned; the envelopes' contributor
/// bitsets go back to the free-list.
fn evaluate_tree_base(
    set: &QuerySet<'_>,
    children: &mut Vec<TreeEnvelope<Bundle>>,
    base_height: u32,
    pools: &mut Pools,
) -> Vec<Box<dyn Any>> {
    let outputs = (0..set.len())
        .map(|i| {
            let parts: Vec<ErasedMsg> = children
                .iter_mut()
                .filter_map(|env| {
                    env.msg.as_mut().expect("bundle envelopes carry a bundle")[i].take()
                })
                .collect();
            set.query(i).evaluate(parts, None, base_height)
        })
        .collect();
    for env in children.drain(..) {
        recycle_tree_env(pools, env);
    }
    outputs
}

// ---------------------------------------------------------------------
// Compiled epoch plans
// ---------------------------------------------------------------------

/// One scheduled sender of a compiled Tributary-Delta epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct TdStep {
    node: NodeId,
    mode: Mode,
    /// §6.1 height (the `finalize_tree` argument for T steps).
    height: u32,
    /// Tree parent (T steps; the node itself for M steps).
    parent: NodeId,
    /// Static subtree size (the M-step non-contribution baseline).
    subtree_size: u64,
    /// Whether the vertex is a switchable M vertex under this labeling.
    switchable_m: bool,
    /// Range into the flat receiver table. Compiled for every step —
    /// ring links are label-independent, so the table layout survives
    /// relabeling and a patch only flips per-entry `is M` flags — but
    /// only M steps read their range (T steps unicast to `parent`).
    recv_start: u32,
    recv_end: u32,
}

/// One scheduled sender of a compiled TAG epoch (bottom-up order).
#[derive(Clone, Copy, Debug)]
struct TagStep {
    node: NodeId,
    height: u32,
    /// `None` marks the base station.
    parent: Option<NodeId>,
}

enum Schedule {
    Td(TdSchedule),
    Tag(TagSchedule),
}

/// The compiled Tributary-Delta schedule.
///
/// The step order (outermost ring first, id order within a level), the
/// receiver-table layout, and the `step_of` index depend only on the
/// rings and the tree — never on the labeling — so a label switch
/// invalidates nothing structural: [`EpochPlan::patch`] rewrites the
/// per-vertex mode/parent/switchability fields and the touched `is M`
/// receiver flags in place and the result is field-for-field identical
/// to compiling fresh at the new version.
struct TdSchedule {
    /// Topology version this plan currently matches (advanced by
    /// [`EpochPlan::patch`] without recompiling).
    version: u64,
    /// Senders, outermost ring first, id order within a level.
    steps: Vec<TdStep>,
    /// Flat broadcast delivery table: `(receiver, receiver is M)`,
    /// indexed by each step's `recv_start..recv_end`.
    receivers: Vec<(NodeId, bool)>,
    /// `step_of[node.index()]` = index into `steps`, or `NO_STEP` for
    /// the base station and disconnected nodes. The patch path's way
    /// from a relabeled vertex to its schedule entry.
    step_of: Vec<u32>,
    /// Non-empty step ranges per ring level, outermost first:
    /// `steps[start..end]` is one level's senders. Every step in a
    /// range only writes to inboxes of strictly later ranges (§4.1 tree
    /// parents and broadcast receivers sit exactly one level down), so
    /// a range is a safe parallel shard group. Depends only on the
    /// rings, so patching never touches it.
    levels: Vec<(u32, u32)>,
    base_mode: Mode,
    base_height: u32,
    base_subtree: u64,
    base_switchable_m: bool,
}

/// `step_of` marker for nodes without a schedule entry.
const NO_STEP: u32 = u32::MAX;

impl TdSchedule {
    /// The arena slot of the base station: one past the last step slot.
    fn base_slot(&self) -> usize {
        self.steps.len()
    }

    /// The arena slot of `u`: its step index, or the base slot for the
    /// base station (the only slot-bearing node without a step — every
    /// unicast parent and broadcast receiver is ring-connected).
    fn slot_or_base(&self, u: NodeId) -> usize {
        match self.step_of[u.index()] {
            NO_STEP => self.base_slot(),
            s => s as usize,
        }
    }

    /// Bring every schedule field that depends on `u`'s label in line
    /// with `topo`'s current labeling: `u`'s own step (mode, unicast
    /// parent, switchability), the `is M` flag of every broadcast-table
    /// entry naming `u` (they live in the ranges of `u`'s ring sources,
    /// one level up), and the switchability of the vertices `u`
    /// broadcasts to (they have `u` as a ring source).
    fn apply_relabel(&mut self, topo: &TdTopology, u: NodeId) {
        let rings = topo.rings();
        let mode = topo.mode(u);
        if u == BASE_STATION {
            self.base_mode = mode;
            self.base_switchable_m = topo.is_switchable_m(BASE_STATION);
        } else {
            let step = &mut self.steps[self.step_of[u.index()] as usize];
            step.mode = mode;
            step.parent = match mode {
                Mode::T => topo
                    .tree()
                    .parent(u)
                    .expect("connected non-base T vertex has a parent"),
                Mode::M => u,
            };
            step.switchable_m = topo.is_switchable_m(u);
        }
        let is_m = mode == Mode::M;
        for &s in rings.sources(u) {
            let sender = &self.steps[self.step_of[s.index()] as usize];
            let range = sender.recv_start as usize..sender.recv_end as usize;
            for entry in &mut self.receivers[range] {
                if entry.0 == u {
                    entry.1 = is_m;
                }
            }
        }
        for &r in rings.receivers(u) {
            if r == BASE_STATION {
                self.base_switchable_m = topo.is_switchable_m(BASE_STATION);
            } else {
                let step = &mut self.steps[self.step_of[r.index()] as usize];
                step.switchable_m = topo.is_switchable_m(r);
            }
        }
    }

    /// Bring `u`'s unicast parent in line with the topology's current
    /// tree (the reparent counterpart of
    /// [`apply_relabel`](Self::apply_relabel); M steps keep the
    /// self-parent convention [`compile_td`](EpochPlan::compile_td)
    /// uses).
    fn apply_reparent(&mut self, topo: &TdTopology, u: NodeId) {
        let step = &mut self.steps[self.step_of[u.index()] as usize];
        step.parent = match step.mode {
            Mode::T => topo
                .tree()
                .parent(u)
                .expect("connected non-base T vertex has a parent"),
            Mode::M => u,
        };
    }

    /// Re-derive heights and subtree sizes **incrementally** after a
    /// batch of parent switches: only the vertices on the (final-tree)
    /// ancestor chains of the switch endpoints can have changed, so
    /// recompute exactly that closure bottom-up from the children's
    /// cached step values — O(|delta| · depth) against the O(n log n)
    /// full passes a compile runs. Parent switches preserve depth
    /// (§4.1: tree parents sit one ring level down), so the step order
    /// and receiver table stay valid and children always carry correct
    /// values by the time their ancestor is recomputed (the closure is
    /// processed outermost ring first, and any child whose value
    /// changed is itself on one of the chains).
    ///
    /// `seeds` are the chain starting points: for every recorded
    /// [`Reparent`] event, its node and both parent endpoints. Walking
    /// *final-tree* chains from all of them covers every intermediate
    /// tree's affected ancestors too: an old-chain vertex either kept
    /// its own parent (so it is on the final chain of the endpoint
    /// below it) or was itself reparented (so it seeds its own event's
    /// chains).
    fn refresh_structure(&mut self, topo: &TdTopology, seeds: &[NodeId]) {
        let tree = topo.tree();
        let rings = topo.rings();
        let mut seen = vec![false; self.step_of.len()];
        let mut affected: Vec<NodeId> = Vec::new();
        for &s in seeds {
            let mut cur = Some(s);
            while let Some(v) = cur {
                if std::mem::replace(&mut seen[v.index()], true) {
                    break; // the rest of this chain is already queued
                }
                affected.push(v);
                cur = tree.parent(v);
            }
        }
        // Children before parents: outermost ring level first (depth ==
        // ring level for §4.1-restricted trees), ids for determinism.
        affected.sort_unstable_by_key(|v| {
            (
                std::cmp::Reverse(rings.level(*v).expect("scheduled vertices are connected")),
                v.0,
            )
        });
        for &v in &affected {
            let mut height = 1u32;
            let mut subtree = 1u64;
            for &c in tree.children(v) {
                let cs = &self.steps[self.step_of[c.index()] as usize];
                height = height.max(cs.height + 1);
                subtree += cs.subtree_size;
            }
            if v == BASE_STATION {
                self.base_height = height;
                self.base_subtree = subtree;
            } else {
                let step = &mut self.steps[self.step_of[v.index()] as usize];
                step.height = height;
                step.subtree_size = subtree;
            }
        }
    }
}

/// The compiled pure-TAG schedule.
struct TagSchedule {
    /// Senders in bottom-up (leaves-first) order, base station last.
    steps: Vec<TagStep>,
    /// `slot_of[node.index()]` = the node's step index (its arena
    /// slot), or `NO_STEP` for nodes outside the tree (never addressed).
    slot_of: Vec<u32>,
    /// Step ranges of consecutive equal-depth runs of the bottom-up
    /// order, deepest first: a TAG parent is always exactly one tree
    /// depth up, so each run only writes to later runs — the TAG
    /// parallel shard groups.
    levels: Vec<(u32, u32)>,
    base_height: u32,
}

/// The reusable execution arenas: cleared, never shrunk, so steady-state
/// epochs run without inbox or slab growth.
///
/// Inboxes and the local-message slab are indexed by **schedule slot**
/// (a step's position in the level-ordered step list; the TD base
/// station gets the one extra slot past the last step), not by node id.
/// Slots are level-contiguous by construction, so an epoch's walk over
/// the schedule touches the slabs strictly left to right — the
/// cache-locality fix that makes plan reuse beat rebuild — and a
/// parallel shard's slots form one contiguous block.
struct Arenas {
    /// Node count (the envelope contributor-set capacity).
    n: usize,
    /// Slot count (schedule steps, plus the TD base-station slot).
    slots: usize,
    /// Per-slot tree-envelope inboxes, drained every epoch.
    tree_inbox: Vec<Vec<TreeEnvelope<Bundle>>>,
    /// Per-slot multi-path-envelope inboxes, drained every epoch.
    mp_inbox: Vec<Vec<MpEnvelope<Bundle>>>,
    /// Flat local-message slab indexed by `(slot, query)`: entry
    /// `slot * set.len() + query` stages the node's local tree or
    /// multi-path message until its send step assembles the bundle.
    locals: Vec<Option<ErasedMsg>>,
    /// The envelope-part free-lists (contributor bitsets, count
    /// sketches, bundle `Vec`s). Every envelope the plan builds draws
    /// from here and every consumed envelope returns here, so
    /// steady-state epochs allocate no per-envelope parts.
    pools: Pools,
    /// One private free-list per spawned parallel worker (index `w`
    /// serves worker `w`), kept across epochs so worker shards also
    /// reach allocation-free steady state. Parts ping-pong between
    /// these and `pools` as envelopes cross shard boundaries; the
    /// deterministic chunk assignment keeps every fill level bounded.
    worker_pools: Vec<Pools>,
}

impl Arenas {
    fn new(n: usize, slots: usize, multipath: bool) -> Arenas {
        Arenas {
            n,
            slots,
            tree_inbox: (0..slots).map(|_| Vec::new()).collect(),
            mp_inbox: if multipath {
                (0..slots).map(|_| Vec::new()).collect()
            } else {
                Vec::new()
            },
            locals: Vec::new(),
            pools: Pools::new(),
            worker_pools: Vec::new(),
        }
    }

    /// A cleared contributor set: recycled from the free-list, or a
    /// fresh allocation only while the pool is still warming up.
    fn idset(&mut self) -> IdSet {
        self.pools.idset(self.n)
    }

    /// One slot's tree inbox plus the free-lists, split-borrowed for the
    /// tree-envelope build step.
    fn tree_ctx(&mut self, slot: usize) -> (&mut Vec<TreeEnvelope<Bundle>>, &mut Pools) {
        (&mut self.tree_inbox[slot], &mut self.pools)
    }

    /// Reset the local-message slab for an epoch carrying `q` queries.
    fn reset_locals(&mut self, q: usize) {
        self.locals.clear();
        self.locals.resize_with(self.slots * q, || None);
    }

    /// Stage node `u`'s local message per query in its slot of the slab.
    fn stage<'e>(
        &mut self,
        set: &QuerySet<'e>,
        slot: usize,
        u: NodeId,
        q: usize,
        local: impl Fn(&(dyn DynProtocol + 'e), NodeId) -> Option<ErasedMsg>,
    ) {
        let base = slot * q;
        for (i, query) in set.queries().enumerate() {
            self.locals[base + i] = local(query, u);
        }
    }

    /// Move a slot's staged local messages out of the slab into a
    /// bundle drawn from the free-list (capacity retained across epochs).
    fn take_local_bundle(&mut self, slot: usize, q: usize) -> Bundle {
        take_local(&mut self.locals, slot, q, &mut self.pools)
    }

    /// Both inbox arenas of one slot plus the free-lists, split-borrowed
    /// for the M-vertex build step.
    #[allow(clippy::type_complexity)]
    fn inboxes_of(
        &mut self,
        slot: usize,
    ) -> (
        &mut Vec<TreeEnvelope<Bundle>>,
        &mut Vec<MpEnvelope<Bundle>>,
        &mut Pools,
    ) {
        (
            &mut self.tree_inbox[slot],
            &mut self.mp_inbox[slot],
            &mut self.pools,
        )
    }
}

/// [`Arenas::take_local_bundle`] as a free function over the split
/// fields, so the parallel prep path can draw the bundle `Vec` from a
/// *worker's* free-list while holding disjoint borrows of the slabs.
fn take_local(locals: &mut [Option<ErasedMsg>], slot: usize, q: usize, pool: &mut Pools) -> Bundle {
    let mut bundle = pool.bundle();
    let base = slot * q;
    bundle.extend(locals[base..base + q].iter_mut().map(|slot| slot.take()));
    bundle
}

/// A compiled, reusable epoch schedule plus its execution arenas.
///
/// Compile once per topology (version) with [`EpochPlan::compile_td`] /
/// [`EpochPlan::compile_tag`], then call [`EpochPlan::run_set`] every
/// epoch. Steady-state epochs perform zero schedule recomputation (no
/// height/subtree/level passes) and no per-node inbox growth: the
/// tree/multipath inbox slabs and the `(node, query)` local-bundle slab
/// keep their capacity across epochs.
pub struct EpochPlan {
    sched: Schedule,
    arenas: Arenas,
}

impl EpochPlan {
    /// Compile the level-ordered schedule of a labeled Tributary-Delta
    /// topology (SD is the all-multipath special case).
    pub fn compile_td(topo: &TdTopology) -> EpochPlan {
        let rings = topo.rings();
        let tree = topo.tree();
        let heights = tree.heights();
        let subtree_sizes = tree.subtree_sizes();
        let n = rings.len();
        let mut steps = Vec::new();
        let mut receivers = Vec::new();
        let mut step_of = vec![NO_STEP; n];
        let mut levels = Vec::new();
        for level in (1..=rings.max_level()).rev() {
            let level_start = steps.len() as u32;
            for u in rings.nodes_at_level(level) {
                let mode = topo.mode(u);
                // The receiver range is compiled for every vertex (the
                // ring links never change) so that a later T→M patch
                // finds its broadcast list already in place.
                let recv_start = receivers.len() as u32;
                for &r in rings.receivers(u) {
                    receivers.push((r, topo.mode(r) == Mode::M));
                }
                let recv_end = receivers.len() as u32;
                let (parent, switchable_m) = match mode {
                    Mode::T => (
                        topo.tree()
                            .parent(u)
                            .expect("connected non-base T vertex has a parent"),
                        false,
                    ),
                    Mode::M => (u, topo.is_switchable_m(u)),
                };
                step_of[u.index()] = steps.len() as u32;
                steps.push(TdStep {
                    node: u,
                    mode,
                    height: heights[u.index()],
                    parent,
                    subtree_size: subtree_sizes[u.index()] as u64,
                    switchable_m,
                    recv_start,
                    recv_end,
                });
            }
            if steps.len() as u32 > level_start {
                levels.push((level_start, steps.len() as u32));
            }
        }
        // One slot per step plus the base station's.
        let slots = steps.len() + 1;
        EpochPlan {
            sched: Schedule::Td(TdSchedule {
                version: topo.version(),
                steps,
                receivers,
                step_of,
                levels,
                base_mode: topo.mode(BASE_STATION),
                base_height: heights[BASE_STATION.index()],
                base_subtree: subtree_sizes[BASE_STATION.index()] as u64,
                base_switchable_m: topo.is_switchable_m(BASE_STATION),
            }),
            arenas: Arenas::new(n, slots, true),
        }
    }

    /// Compile the bottom-up schedule of a pure-TAG spanning tree
    /// (parents may be at any lower level — no ring restriction).
    pub fn compile_tag(tree: &Tree) -> EpochPlan {
        let heights = tree.heights();
        let n = tree.len();
        let steps: Vec<TagStep> = tree
            .bottom_up_order()
            .into_iter()
            .map(|u| TagStep {
                node: u,
                height: heights[u.index()],
                parent: tree.parent(u),
            })
            .collect();
        let mut slot_of = vec![NO_STEP; n];
        for (i, step) in steps.iter().enumerate() {
            slot_of[step.node.index()] = i as u32;
        }
        // Consecutive equal-depth runs of the bottom-up order: a parent
        // is exactly one depth up, so each run is a safe shard group.
        let mut levels = Vec::new();
        let mut start = 0usize;
        while start < steps.len() {
            let depth = tree.depth(steps[start].node);
            let mut end = start + 1;
            while end < steps.len() && tree.depth(steps[end].node) == depth {
                end += 1;
            }
            levels.push((start as u32, end as u32));
            start = end;
        }
        let slots = steps.len();
        EpochPlan {
            sched: Schedule::Tag(TagSchedule {
                steps,
                slot_of,
                levels,
                base_height: heights[BASE_STATION.index()],
            }),
            arenas: Arenas::new(n, slots, false),
        }
    }

    /// Size of the arena's contributor-bitset free-lists, the shared
    /// pool plus every parallel worker's private pool (introspection
    /// for tests and benches: after a warm-up epoch the pools hold every
    /// recycled set, and steady-state epochs neither grow nor drain them
    /// below the per-epoch working need).
    pub fn recycled_bitsets(&self) -> usize {
        self.arenas.pools.idsets.len()
            + self
                .arenas
                .worker_pools
                .iter()
                .map(|p| p.idsets.len())
                .sum::<usize>()
    }

    /// Size of the arena's count-sketch free-lists (same steady-state
    /// introspection as [`recycled_bitsets`](Self::recycled_bitsets)).
    pub fn recycled_sketches(&self) -> usize {
        self.arenas.pools.sketches.len()
            + self
                .arenas
                .worker_pools
                .iter()
                .map(|p| p.sketches.len())
                .sum::<usize>()
    }

    /// Size of the arena's bundle-`Vec` free-lists (same steady-state
    /// introspection as [`recycled_bitsets`](Self::recycled_bitsets)).
    pub fn recycled_bundles(&self) -> usize {
        self.arenas.pools.bundles.len()
            + self
                .arenas
                .worker_pools
                .iter()
                .map(|p| p.bundles.len())
                .sum::<usize>()
    }

    /// The topology version a TD plan currently matches (`None` for
    /// TAG plans, whose tree never changes). Advanced by
    /// [`patch`](Self::patch) without recompiling.
    pub fn compiled_version(&self) -> Option<u64> {
        match &self.sched {
            Schedule::Td(td) => Some(td.version),
            Schedule::Tag(_) => None,
        }
    }

    /// Update the compiled TD schedule **in place** to match `topo`'s
    /// current labeling *and tree*, replaying the topology's recorded
    /// [`td_topology::td::TopologyDelta`]s instead of recompiling. Label switches
    /// rewrite only the relabeled vertices' steps (mode, unicast
    /// parent, switchability), the broadcast-table `is M` flags naming
    /// them, and their ring neighbors' switchability — O(|delta| ·
    /// degree) work. Parent switches (churn reroutes, in-place
    /// maintenance rounds) rewrite the moved vertices' unicast parents
    /// and re-derive heights and subtree sizes over the switch
    /// endpoints' ancestor chains — O(|delta| · depth) — which is
    /// enough because §4.1 parent switches preserve every vertex's
    /// depth, so the step order and receiver-table layout survive. In
    /// both cases every arena (inbox slabs, local-bundle slab, all
    /// free-lists) is reused untouched, and the patched schedule is
    /// field-for-field identical to [`compile_td`](Self::compile_td) at
    /// the new version.
    ///
    /// Returns `Some(touched)` — the number of **distinct** vertices
    /// whose mode or parent was rewritten (0 when the plan already
    /// matched `topo.version()`) — when the plan now matches the
    /// topology. Returns `None` — caller must recompile — when the plan
    /// is a TAG plan, the delta log no longer reaches back to the
    /// plan's version (e.g. the topology object itself was rebuilt), or
    /// more than `max_relabels` **distinct** vertices changed (past
    /// that point a fresh compile is cheaper than chasing
    /// neighborhoods — a vertex switched back and forth counts once,
    /// matching the actual patch work). This is the single home of the
    /// patch-eligibility rule; callers only pick the budget.
    pub fn patch(&mut self, topo: &TdTopology, max_relabels: usize) -> Option<usize> {
        let Schedule::Td(sched) = &mut self.sched else {
            return None;
        };
        if sched.version == topo.version() {
            return Some(0);
        }
        let deltas = topo.deltas_since(sched.version)?;
        // Collect the touched vertices once; the final state is read
        // straight from `topo`, so replay order is irrelevant and a
        // vertex switched back and forth costs a single pass — and is
        // budgeted as one, since the budget bounds patch work.
        let mut relabeled: Vec<NodeId> = Vec::new();
        let mut reparents: Vec<td_topology::td::Reparent> = Vec::new();
        for d in deltas {
            relabeled.extend(d.relabeled.iter().map(|r| r.node));
            reparents.extend(d.reparented.iter().copied());
        }
        relabeled.sort_unstable_by_key(|u| u.0);
        relabeled.dedup();
        let mut moved: Vec<NodeId> = reparents.iter().map(|r| r.node).collect();
        moved.sort_unstable_by_key(|u| u.0);
        moved.dedup();
        let distinct = {
            let mut all = relabeled.clone();
            all.extend(moved.iter().copied());
            all.sort_unstable_by_key(|u| u.0);
            all.dedup();
            all.len()
        };
        if distinct > max_relabels {
            return None;
        }
        for &u in &relabeled {
            sched.apply_relabel(topo, u);
        }
        if !reparents.is_empty() {
            for &u in &moved {
                sched.apply_reparent(topo, u);
            }
            let seeds: Vec<NodeId> = reparents
                .iter()
                .flat_map(|r| [r.node, r.from, r.to])
                .collect();
            sched.refresh_structure(topo, &seeds);
        }
        sched.version = topo.version();
        Some(distinct)
    }

    /// A deterministic digest of everything structural: the full
    /// compiled schedule (every step field, the receiver table, the
    /// step index, the base-station fields, the version) plus the arena
    /// *layout* (node count, inbox-slab shape) — but not the free-list
    /// fill levels, which legitimately differ between a warmed-up plan
    /// and a fresh compile. Two plans with equal digests execute epochs
    /// bit-identically; the patch tests (and a debug assertion in the
    /// session cache) compare patched plans against fresh compiles
    /// through this.
    pub fn structural_digest(&self) -> u64 {
        // FNV-1a over a canonical u64 serialization.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut put = |x: u64| {
            for byte in x.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        let mode_tag = |m: Mode| match m {
            Mode::T => 0u64,
            Mode::M => 1,
        };
        match &self.sched {
            Schedule::Td(td) => {
                put(1);
                put(td.version);
                put(td.steps.len() as u64);
                for s in &td.steps {
                    put(s.node.0 as u64);
                    put(mode_tag(s.mode));
                    put(s.height as u64);
                    put(s.parent.0 as u64);
                    put(s.subtree_size);
                    put(s.switchable_m as u64);
                    put(s.recv_start as u64);
                    put(s.recv_end as u64);
                }
                put(td.receivers.len() as u64);
                for &(r, is_m) in &td.receivers {
                    put(r.0 as u64);
                    put(is_m as u64);
                }
                for &i in &td.step_of {
                    put(i as u64);
                }
                put(td.levels.len() as u64);
                for &(s, e) in &td.levels {
                    put(s as u64);
                    put(e as u64);
                }
                put(mode_tag(td.base_mode));
                put(td.base_height as u64);
                put(td.base_subtree);
                put(td.base_switchable_m as u64);
            }
            Schedule::Tag(tag) => {
                put(2);
                put(tag.steps.len() as u64);
                for s in &tag.steps {
                    put(s.node.0 as u64);
                    put(s.height as u64);
                    put(s.parent.map_or(u64::MAX, |p| p.0 as u64));
                }
                for &i in &tag.slot_of {
                    put(i as u64);
                }
                put(tag.levels.len() as u64);
                for &(s, e) in &tag.levels {
                    put(s as u64);
                    put(e as u64);
                }
                put(tag.base_height as u64);
            }
        }
        put(self.arenas.n as u64);
        put(self.arenas.slots as u64);
        put(self.arenas.tree_inbox.len() as u64);
        put(self.arenas.mp_inbox.len() as u64);
        h
    }

    /// Execute one epoch for every query in `set` over the compiled
    /// schedule. `stats` accumulates communication accounting across
    /// epochs.
    // Every parameter is load-bearing and callers always have all of them
    // in hand (queries, channel, config, clock, accounting, rng);
    // bundling into a context struct would just move the argument list.
    #[allow(clippy::too_many_arguments)]
    pub fn run_set<M: LossModel, R: rand::Rng + ?Sized>(
        &mut self,
        set: &QuerySet<'_>,
        net: &Network,
        model: &M,
        config: RunnerConfig,
        epoch: u64,
        stats: &mut CommStats,
        rng: &mut R,
    ) -> SetEpochOutput {
        // The parallel path is bit-identical to sequential (shards are
        // deterministic id-order chunks, merged in step order, with all
        // RNG draws precomputed in schedule order), so this dispatch is
        // purely a performance decision.
        let workers = config.effective_workers();
        let go_parallel = workers > 1 && self.arenas.n >= config.parallel_min_nodes;
        match &self.sched {
            Schedule::Td(sched) => {
                if go_parallel {
                    parallel::run_td_parallel(
                        sched,
                        &mut self.arenas,
                        set,
                        net,
                        model,
                        config,
                        epoch,
                        stats,
                        rng,
                        workers,
                    )
                } else {
                    run_td(
                        sched,
                        &mut self.arenas,
                        set,
                        net,
                        model,
                        config,
                        epoch,
                        stats,
                        rng,
                    )
                }
            }
            Schedule::Tag(sched) => {
                if go_parallel {
                    parallel::run_tag_parallel(
                        sched,
                        &mut self.arenas,
                        set,
                        net,
                        model,
                        config,
                        epoch,
                        stats,
                        rng,
                        workers,
                    )
                } else {
                    run_tag(
                        sched,
                        &mut self.arenas,
                        set,
                        net,
                        model,
                        config,
                        epoch,
                        stats,
                        rng,
                    )
                }
            }
        }
    }
}

mod parallel;

#[allow(clippy::too_many_arguments)]
fn run_td<M: LossModel, R: rand::Rng + ?Sized>(
    sched: &TdSchedule,
    arenas: &mut Arenas,
    set: &QuerySet<'_>,
    net: &Network,
    model: &M,
    config: RunnerConfig,
    epoch: u64,
    stats: &mut CommStats,
    rng: &mut R,
) -> SetEpochOutput {
    let q = set.len();
    stage_td(sched, arenas, set, q);

    // Iterate the same slots in the same order as the flat step loop,
    // but grouped by ring level so each level's wall time lands in the
    // per-level-execute phase histogram (the sequential mirror of the
    // parallel executor's shard groups).
    for &(lv_start, lv_end) in &sched.levels {
        let sw = phase::stopwatch();
        for slot in lv_start as usize..lv_end as usize {
            let step = &sched.steps[slot];
            match step.mode {
                Mode::T => {
                    let local = arenas.take_local_bundle(slot, q);
                    let contributors = arenas.idset();
                    let (children, pools) = arenas.tree_ctx(slot);
                    let env = build_tree_envelope_set(
                        set,
                        step.node,
                        step.height,
                        contributors,
                        local,
                        children,
                        pools,
                    );
                    let payload = bundle_tree_words(set, env.msg.as_ref().expect("bundle present"));
                    let overhead = if config.charge_adaptation_overhead {
                        TREE_OVERHEAD_WORDS
                    } else {
                        0
                    };
                    let words = payload + overhead;
                    let outcome = unicast(
                        model,
                        config.tree_retransmit,
                        step.node,
                        step.parent,
                        net,
                        epoch,
                        rng,
                    );
                    stats.record_send(step.node, words * 4, words, outcome.attempts_used as u64);
                    if outcome.delivered {
                        arenas.tree_inbox[sched.slot_or_base(step.parent)].push(env);
                    } else {
                        recycle_tree_env(&mut arenas.pools, env);
                    }
                }
                Mode::M => {
                    let local = arenas.take_local_bundle(slot, q);
                    let contributors = arenas.idset();
                    let count_sketch = arenas.pools.sketch();
                    let (tree_in, mp_in, pools) = arenas.inboxes_of(slot);
                    let env = build_mp_envelope_set(
                        set,
                        step.node,
                        contributors,
                        count_sketch,
                        step.subtree_size,
                        step.switchable_m,
                        local,
                        tree_in,
                        mp_in,
                        pools,
                    );
                    let (payload_bytes, payload_words) =
                        bundle_mp_wire(set, env.msg.as_ref().expect("bundle present"));
                    // Adaptation overhead: the RLE-encoded count sketch
                    // plus the extremum reports — charged once per link,
                    // shared by every query in the bundle.
                    let overhead_bytes = if config.charge_adaptation_overhead {
                        sketch_rle::encoded_size_bytes(&env.count_sketch)
                            + 8 * crate::envelope::TOP_K_EXTREMA
                    } else {
                        0
                    };
                    let bytes = payload_bytes + overhead_bytes;
                    let words = payload_words + overhead_bytes.div_ceil(4);
                    stats.record_send(step.node, bytes, words, 1);
                    for &(r, is_m) in
                        &sched.receivers[step.recv_start as usize..step.recv_end as usize]
                    {
                        if model.delivered(step.node, r, net, epoch, rng) && is_m {
                            let copy = clone_mp_pooled(&env, arenas.n, &mut arenas.pools);
                            arenas.mp_inbox[sched.slot_or_base(r)].push(copy);
                        }
                    }
                    recycle_mp_env(&mut arenas.pools, env);
                }
            }
        }
        phase::record(Phase::LevelExecute, sw);
    }

    let sw = phase::stopwatch();
    let out = finish_td(sched, arenas, set);
    phase::record(Phase::Merge, sw);
    out
}

/// Stage every node's local messages for a TD epoch (slot order; no RNG
/// draws, shared by the sequential and parallel executors).
fn stage_td(sched: &TdSchedule, arenas: &mut Arenas, set: &QuerySet<'_>, q: usize) {
    arenas.reset_locals(q);
    for (slot, step) in sched.steps.iter().enumerate() {
        match step.mode {
            Mode::T => arenas.stage(set, slot, step.node, q, |query, u| query.local_tree(u)),
            Mode::M => arenas.stage(set, slot, step.node, q, |query, u| query.local_mp(u)),
        }
    }
    // A tree-mode base station evaluates its children's bundles directly
    // and contributes no local data, so only an M base stages one.
    if sched.base_mode == Mode::M {
        arenas.stage(set, sched.base_slot(), BASE_STATION, q, |query, u| {
            query.local_mp(u)
        });
    }
}

/// The base-station tail of a TD epoch: evaluate whatever reached the
/// base slot (shared by the sequential and parallel executors).
fn finish_td(sched: &TdSchedule, arenas: &mut Arenas, set: &QuerySet<'_>) -> SetEpochOutput {
    let q = set.len();
    let base_slot = sched.base_slot();
    match sched.base_mode {
        Mode::T => {
            let mut contributors = arenas.idset();
            let (children, pools) = arenas.tree_ctx(base_slot);
            let mut exact_count = 0u64;
            for env in children.iter() {
                exact_count += env.count;
                contributors.union(&env.contributors);
            }
            let contributing = contributors.len();
            recycle_idset(pools, contributors);
            SetEpochOutput {
                outputs: evaluate_tree_base(set, children, sched.base_height, pools),
                contributing,
                contributing_est: exact_count as f64,
                max_noncontrib: crate::envelope::ExtremaSet::largest(),
                min_noncontrib: crate::envelope::ExtremaSet::smallest(),
            }
        }
        Mode::M => {
            let local = arenas.take_local_bundle(base_slot, q);
            let contributors = arenas.idset();
            let count_sketch = arenas.pools.sketch();
            let (tree_in, mp_in, pools) = arenas.inboxes_of(base_slot);
            let mut env = build_mp_envelope_set(
                set,
                BASE_STATION,
                contributors,
                count_sketch,
                sched.base_subtree,
                sched.base_switchable_m,
                local,
                tree_in,
                mp_in,
                pools,
            );
            let bundle = env.msg.take().expect("bundle present");
            let outputs = (0..set.len())
                .map(|i| {
                    set.query(i)
                        .evaluate(Vec::new(), bundle[i].as_ref(), sched.base_height)
                })
                .collect();
            recycle_bundle(&mut arenas.pools, bundle);
            let MpEnvelope {
                contributors,
                count_sketch,
                max_noncontrib,
                min_noncontrib,
                ..
            } = env;
            let contributing = contributors.len();
            let contributing_est = count_sketch.estimate();
            recycle_idset(&mut arenas.pools, contributors);
            recycle_sketch(&mut arenas.pools, count_sketch);
            SetEpochOutput {
                outputs,
                contributing,
                contributing_est,
                max_noncontrib,
                min_noncontrib,
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_tag<M: LossModel, R: rand::Rng + ?Sized>(
    sched: &TagSchedule,
    arenas: &mut Arenas,
    set: &QuerySet<'_>,
    net: &Network,
    model: &M,
    config: RunnerConfig,
    epoch: u64,
    stats: &mut CommStats,
    rng: &mut R,
) -> SetEpochOutput {
    let q = set.len();
    stage_tag(sched, arenas, set, q);

    let mut base_children: Vec<TreeEnvelope<Bundle>> = Vec::new();
    // Same slots, same order as the flat loop — grouped by tree depth
    // so each depth run's wall time is a per-level-execute sample.
    for &(lv_start, lv_end) in &sched.levels {
        let sw = phase::stopwatch();
        for slot in lv_start as usize..lv_end as usize {
            let step = &sched.steps[slot];
            let local = arenas.take_local_bundle(slot, q);
            let contributors = arenas.idset();
            let (children, pools) = arenas.tree_ctx(slot);
            let env = build_tree_envelope_set(
                set,
                step.node,
                step.height,
                contributors,
                local,
                children,
                pools,
            );
            match step.parent {
                None => base_children.push(env),
                Some(p) => {
                    let payload = bundle_tree_words(set, env.msg.as_ref().expect("bundle present"));
                    let overhead = if config.charge_adaptation_overhead {
                        TREE_OVERHEAD_WORDS
                    } else {
                        0
                    };
                    let words = payload + overhead;
                    let outcome =
                        unicast(model, config.tree_retransmit, step.node, p, net, epoch, rng);
                    stats.record_send(step.node, words * 4, words, outcome.attempts_used as u64);
                    if outcome.delivered {
                        arenas.tree_inbox[sched.slot_of[p.index()] as usize].push(env);
                    } else {
                        recycle_tree_env(&mut arenas.pools, env);
                    }
                }
            }
        }
        phase::record(Phase::LevelExecute, sw);
    }

    let sw = phase::stopwatch();
    let out = finish_tag(sched, arenas, set, base_children);
    phase::record(Phase::Merge, sw);
    out
}

/// Stage every node's local messages for a TAG epoch (slot order; no
/// RNG draws, shared by the sequential and parallel executors).
fn stage_tag(sched: &TagSchedule, arenas: &mut Arenas, set: &QuerySet<'_>, q: usize) {
    arenas.reset_locals(q);
    for (slot, step) in sched.steps.iter().enumerate() {
        arenas.stage(set, slot, step.node, q, |query, u| query.local_tree(u));
    }
}

/// The base-station tail of a TAG epoch (shared by the sequential and
/// parallel executors).
fn finish_tag(
    sched: &TagSchedule,
    arenas: &mut Arenas,
    set: &QuerySet<'_>,
    mut base_children: Vec<TreeEnvelope<Bundle>>,
) -> SetEpochOutput {
    let mut contributors = arenas.idset();
    let mut exact = 0u64;
    for env in &base_children {
        exact += env.count;
        contributors.union(&env.contributors);
    }
    let contributing = contributors.len();
    recycle_idset(&mut arenas.pools, contributors);
    SetEpochOutput {
        outputs: evaluate_tree_base(
            set,
            &mut base_children,
            sched.base_height,
            &mut arenas.pools,
        ),
        contributing,
        contributing_est: exact as f64,
        max_noncontrib: crate::envelope::ExtremaSet::largest(),
        min_noncontrib: crate::envelope::ExtremaSet::smallest(),
    }
}

/// Run one Tributary-Delta epoch for every query in `set`, compiling a
/// fresh plan for this call — the rebuild path. Sessions cache an
/// [`EpochPlan`] instead and execute the identical code, so the two
/// paths are bit-for-bit interchangeable. `stats` accumulates
/// communication accounting across epochs.
#[allow(clippy::too_many_arguments)]
pub fn run_td_epoch_set<M: LossModel, R: rand::Rng + ?Sized>(
    set: &QuerySet<'_>,
    topo: &TdTopology,
    net: &Network,
    model: &M,
    config: RunnerConfig,
    epoch: u64,
    stats: &mut CommStats,
    rng: &mut R,
) -> SetEpochOutput {
    EpochPlan::compile_td(topo).run_set(set, net, model, config, epoch, stats, rng)
}

/// Run one epoch of the pure-TAG baseline for every query in `set`, over
/// an arbitrary spanning tree (parents may be at any lower level — no
/// ring restriction), compiling a fresh plan for this call.
#[allow(clippy::too_many_arguments)]
pub fn run_tag_epoch_set<M: LossModel, R: rand::Rng + ?Sized>(
    set: &QuerySet<'_>,
    tree: &Tree,
    net: &Network,
    model: &M,
    config: RunnerConfig,
    epoch: u64,
    stats: &mut CommStats,
    rng: &mut R,
) -> SetEpochOutput {
    EpochPlan::compile_tag(tree).run_set(set, net, model, config, epoch, stats, rng)
}

fn unwrap_single<O: 'static>(mut out: SetEpochOutput) -> EpochOutput<O> {
    debug_assert_eq!(out.outputs.len(), 1);
    let output = *out
        .outputs
        .pop()
        .expect("single-query set has one output")
        .downcast::<O>()
        .expect("single-query output type");
    EpochOutput {
        output,
        contributing: out.contributing,
        contributing_est: out.contributing_est,
        max_noncontrib: out.max_noncontrib,
        min_noncontrib: out.min_noncontrib,
    }
}

/// Run one Tributary-Delta epoch for a single typed query — a wrapper
/// over [`run_td_epoch_set`] with a one-entry bundle, so a dedicated run
/// is bit-identical to the same query inside a larger set.
#[allow(clippy::too_many_arguments)]
pub fn run_td_epoch<P: Protocol, M: LossModel, R: rand::Rng + ?Sized>(
    proto: &P,
    topo: &TdTopology,
    net: &Network,
    model: &M,
    config: RunnerConfig,
    epoch: u64,
    stats: &mut CommStats,
    rng: &mut R,
) -> EpochOutput<P::Output> {
    let mut set = QuerySet::new();
    set.register(proto);
    unwrap_single(run_td_epoch_set(
        &set, topo, net, model, config, epoch, stats, rng,
    ))
}

/// Run one pure-TAG epoch for a single typed query (wrapper over
/// [`run_tag_epoch_set`]).
#[allow(clippy::too_many_arguments)]
pub fn run_tag_epoch<P: Protocol, M: LossModel, R: rand::Rng + ?Sized>(
    proto: &P,
    tree: &Tree,
    net: &Network,
    model: &M,
    config: RunnerConfig,
    epoch: u64,
    stats: &mut CommStats,
    rng: &mut R,
) -> EpochOutput<P::Output> {
    let mut set = QuerySet::new();
    set.register(proto);
    unwrap_single(run_tag_epoch_set(
        &set, tree, net, model, config, epoch, stats, rng,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ScalarProtocol;
    use td_aggregates::average::Average;
    use td_aggregates::count::Count;
    use td_aggregates::sum::Sum;
    use td_netsim::loss::{Global, NoLoss};
    use td_netsim::node::Position;
    use td_netsim::rng::rng_from_seed;
    use td_topology::bushy::{build_bushy_tree, BushyOptions};
    use td_topology::rings::Rings;

    fn topo(seed: u64, sensors: usize, delta_levels: u16) -> (Network, TdTopology) {
        let mut rng = rng_from_seed(seed);
        let net = Network::random_connected(
            sensors,
            20.0,
            20.0,
            Position::new(10.0, 10.0),
            3.0,
            &mut rng,
        );
        let rings = Rings::build(&net);
        let tree = build_bushy_tree(&net, &rings, BushyOptions::default(), &mut rng);
        (net.clone(), TdTopology::new(rings, tree, delta_levels))
    }

    #[test]
    fn all_tree_lossless_sum_is_exact() {
        let (net, td) = topo(121, 150, 0);
        let td = {
            // Force pure tree (base included).
            let rings = td.rings().clone();
            let tree = td.tree().clone();
            TdTopology::all_tree(rings, tree)
        };
        let values: Vec<u64> = (0..net.len() as u64).collect();
        let expect: f64 = values[1..].iter().sum::<u64>() as f64;
        let proto = ScalarProtocol::new(Sum::default(), &values);
        let mut stats = CommStats::new(net.len());
        let mut rng = rng_from_seed(122);
        let out = run_td_epoch(
            &proto,
            &td,
            &net,
            &NoLoss,
            RunnerConfig::default(),
            0,
            &mut stats,
            &mut rng,
        );
        assert_eq!(out.output, expect);
        assert_eq!(out.contributing, net.num_sensors());
        assert_eq!(out.contributing_est, net.num_sensors() as f64);
    }

    #[test]
    fn all_multipath_lossless_sum_approximate() {
        let (net, td) = topo(123, 150, 0);
        let td = TdTopology::all_multipath(td.rings().clone(), td.tree().clone());
        let values: Vec<u64> = vec![50; net.len()];
        let expect = 50.0 * net.num_sensors() as f64;
        let proto = ScalarProtocol::new(Sum::default(), &values);
        let mut stats = CommStats::new(net.len());
        let mut rng = rng_from_seed(124);
        let out = run_td_epoch(
            &proto,
            &td,
            &net,
            &NoLoss,
            RunnerConfig::default(),
            0,
            &mut stats,
            &mut rng,
        );
        let rel = (out.output - expect).abs() / expect;
        assert!(rel < 0.4, "sum {} expect {expect}", out.output);
        assert_eq!(out.contributing, net.num_sensors());
    }

    #[test]
    fn mixed_topology_lossless_accounts_everyone() {
        for delta_levels in [1u16, 2, 3] {
            let (net, td) = topo(125, 200, delta_levels);
            let values: Vec<u64> = vec![1; net.len()];
            let proto = ScalarProtocol::new(Count::default(), &values);
            let mut stats = CommStats::new(net.len());
            let mut rng = rng_from_seed(126);
            let out = run_td_epoch(
                &proto,
                &td,
                &net,
                &NoLoss,
                RunnerConfig::default(),
                0,
                &mut stats,
                &mut rng,
            );
            assert_eq!(
                out.contributing,
                net.num_sensors(),
                "delta_levels={delta_levels}"
            );
            let rel = (out.output - net.num_sensors() as f64).abs() / net.num_sensors() as f64;
            assert!(rel < 0.4, "count {} at delta {delta_levels}", out.output);
        }
    }

    #[test]
    fn lossy_td_beats_lossy_tag_on_contribution() {
        let (net, td) = topo(127, 300, 3);
        let values: Vec<u64> = vec![1; net.len()];
        let model = Global::new(0.25);
        let mut td_contrib = 0usize;
        let mut tag_contrib = 0usize;
        let epochs = 20;
        let mut rng = rng_from_seed(128);
        let mut stats = CommStats::new(net.len());
        for e in 0..epochs {
            let proto = ScalarProtocol::new(Count::default(), &values);
            let out = run_td_epoch(
                &proto,
                &td,
                &net,
                &model,
                RunnerConfig::default(),
                e,
                &mut stats,
                &mut rng,
            );
            td_contrib += out.contributing;
            let out = run_tag_epoch(
                &proto,
                td.tree(),
                &net,
                &model,
                RunnerConfig::default(),
                e,
                &mut stats,
                &mut rng,
            );
            tag_contrib += out.contributing;
        }
        assert!(
            td_contrib > tag_contrib,
            "TD {td_contrib} <= TAG {tag_contrib}"
        );
    }

    #[test]
    fn switchable_m_vertices_report_noncontrib_under_loss() {
        let (net, td) = topo(129, 250, 2);
        let values: Vec<u64> = vec![1; net.len()];
        let proto = ScalarProtocol::new(Count::default(), &values);
        let mut stats = CommStats::new(net.len());
        let mut rng = rng_from_seed(130);
        let out = run_td_epoch(
            &proto,
            &td,
            &net,
            &Global::new(0.5),
            RunnerConfig::default(),
            0,
            &mut stats,
            &mut rng,
        );
        // Under 50% loss some subtree must be missing nodes, and the
        // extrema must have bubbled up (the base station fuses them).
        if let Some(max) = out.max_noncontrib.best() {
            assert!(max.value > 0);
            assert!(td.is_switchable_m(max.node) || td.mode(max.node) == Mode::M);
        }
        assert!(out.contributing < net.num_sensors());
    }

    #[test]
    fn tag_retransmissions_help() {
        let (net, td) = topo(131, 200, 0);
        let tree = td.tree();
        let values: Vec<u64> = vec![1; net.len()];
        let model = Global::new(0.3);
        let mut plain = 0usize;
        let mut retried = 0usize;
        for e in 0..10 {
            let proto = ScalarProtocol::new(Count::default(), &values);
            let mut stats = CommStats::new(net.len());
            let mut rng = rng_from_seed(1000 + e);
            plain += run_tag_epoch(
                &proto,
                tree,
                &net,
                &model,
                RunnerConfig::default(),
                e,
                &mut stats,
                &mut rng,
            )
            .contributing;
            let mut rng = rng_from_seed(1000 + e);
            retried += run_tag_epoch(
                &proto,
                tree,
                &net,
                &model,
                RunnerConfig {
                    tree_retransmit: Retransmit { retries: 2 },
                    ..RunnerConfig::default()
                },
                e,
                &mut stats,
                &mut rng,
            )
            .contributing;
        }
        assert!(retried > plain, "retransmit {retried} <= plain {plain}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (net, td) = topo(132, 150, 2);
        let values: Vec<u64> = (0..net.len() as u64).map(|i| i % 100).collect();
        let run = |seed: u64| {
            let proto = ScalarProtocol::new(Sum::default(), &values);
            let mut stats = CommStats::new(net.len());
            let mut rng = rng_from_seed(seed);
            let out = run_td_epoch(
                &proto,
                &td,
                &net,
                &Global::new(0.2),
                RunnerConfig::default(),
                0,
                &mut stats,
                &mut rng,
            );
            (out.output, out.contributing, stats.total_bytes())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    /// A plan compiled once and executed over many epochs must be
    /// bit-for-bit identical to recompiling the plan every epoch (the
    /// rebuild path) — answers, instrumentation, and accounting.
    #[test]
    fn plan_reuse_is_bit_identical_to_rebuild() {
        let (net, td) = topo(134, 200, 2);
        let values: Vec<u64> = (0..net.len() as u64).map(|i| 1 + i % 60).collect();
        let model = Global::new(0.25);
        let epochs = 15u64;

        let mut reused_plan = EpochPlan::compile_td(&td);
        let mut reused_stats = CommStats::new(net.len());
        let mut reused_rng = rng_from_seed(4343);
        let mut rebuilt_stats = CommStats::new(net.len());
        let mut rebuilt_rng = rng_from_seed(4343);
        for epoch in 0..epochs {
            let proto = ScalarProtocol::new(Sum::default(), &values);
            let mut set = QuerySet::new();
            set.register(&proto);
            let reused = reused_plan.run_set(
                &set,
                &net,
                &model,
                RunnerConfig::default(),
                epoch,
                &mut reused_stats,
                &mut reused_rng,
            );
            let rebuilt = run_td_epoch_set(
                &set,
                &td,
                &net,
                &model,
                RunnerConfig::default(),
                epoch,
                &mut rebuilt_stats,
                &mut rebuilt_rng,
            );
            assert_eq!(
                reused.outputs[0].downcast_ref::<f64>(),
                rebuilt.outputs[0].downcast_ref::<f64>(),
                "answers diverged at epoch {epoch}"
            );
            assert_eq!(reused.contributing, rebuilt.contributing);
            assert_eq!(reused.contributing_est, rebuilt.contributing_est);
            assert_eq!(reused.max_noncontrib, rebuilt.max_noncontrib);
            assert_eq!(reused.min_noncontrib, rebuilt.min_noncontrib);
        }
        assert_eq!(reused_stats, rebuilt_stats);
    }

    /// The level-parallel executor is bit-identical to sequential on
    /// any worker count — answers, instrumentation, byte accounting,
    /// and the caller's RNG stream — for both TD (mixed T/M labeling,
    /// lossy) and TAG plans. (`parallel_min_nodes: 0` forces the
    /// parallel path at test scale; the broader scheme × worker matrix
    /// lives in `tests/e2e_parallel.rs`.)
    #[test]
    fn parallel_is_bit_identical_to_sequential() {
        use rand::Rng;
        let (net, td) = topo(150, 200, 2);
        let values: Vec<u64> = (0..net.len() as u64).map(|i| 1 + i % 60).collect();
        let model = Global::new(0.25);
        let run = |workers: usize, tag: bool| {
            let config = RunnerConfig {
                workers,
                parallel_min_nodes: 0,
                ..RunnerConfig::default()
            };
            let mut plan = if tag {
                EpochPlan::compile_tag(td.tree())
            } else {
                EpochPlan::compile_td(&td)
            };
            let mut stats = CommStats::new(net.len());
            let mut rng = rng_from_seed(77);
            let mut history = Vec::new();
            for epoch in 0..6u64 {
                let proto = ScalarProtocol::new(Sum::default(), &values);
                let mut set = QuerySet::new();
                set.register(&proto);
                let out = plan.run_set(&set, &net, &model, config, epoch, &mut stats, &mut rng);
                history.push((
                    *out.outputs[0]
                        .downcast_ref::<f64>()
                        .expect("sum output is f64"),
                    out.contributing,
                    out.contributing_est,
                ));
            }
            (history, stats, rng.gen::<u64>())
        };
        for tag in [false, true] {
            let sequential = run(1, tag);
            for workers in [2, 3, 8] {
                assert_eq!(
                    sequential,
                    run(workers, tag),
                    "diverged at {workers} workers"
                );
            }
        }
    }

    /// The contributor-bitset free-list reaches a steady state: after a
    /// warm-up epoch the pool holds every recycled set, and further
    /// epochs neither grow it (no new allocations) nor leak from it.
    #[test]
    fn idset_pool_reaches_steady_state() {
        for delta_levels in [0u16, 2] {
            let (net, td) = topo(136, 180, delta_levels);
            let values: Vec<u64> = vec![3; net.len()];
            let mut plan = EpochPlan::compile_td(&td);
            let mut stats = CommStats::new(net.len());
            let mut rng = rng_from_seed(137);
            assert_eq!(plan.recycled_bitsets(), 0);
            let mut after = Vec::new();
            for epoch in 0..4u64 {
                let proto = ScalarProtocol::new(Sum::default(), &values);
                let mut set = QuerySet::new();
                set.register(&proto);
                plan.run_set(
                    &set,
                    &net,
                    &NoLoss,
                    RunnerConfig::default(),
                    epoch,
                    &mut stats,
                    &mut rng,
                );
                after.push(plan.recycled_bitsets());
            }
            assert!(after[0] > 0, "nothing recycled at delta {delta_levels}");
            // Every envelope (locals and broadcast copies alike) returns
            // its bitset by the end of the epoch, so without loss the
            // between-epoch pool size is the fixed per-epoch envelope
            // population: epoch 2 onward allocates nothing. (Under loss
            // the pool can still grow by the occasional unlucky epoch's
            // extra in-flight demand — bounded by the lossless maximum.)
            assert_eq!(
                after[1], after[3],
                "pool still growing at delta {delta_levels}: {after:?}"
            );
        }
    }

    /// The count-sketch and bundle-`Vec` free-lists reach the same
    /// steady state as the bitset pool: after warm-up, further epochs
    /// allocate no per-envelope sketches and no per-node bundle `Vec`s.
    #[test]
    fn sketch_and_bundle_pools_reach_steady_state() {
        for delta_levels in [0u16, 2] {
            let (net, td) = topo(138, 180, delta_levels);
            let values: Vec<u64> = vec![3; net.len()];
            let mut plan = EpochPlan::compile_td(&td);
            let mut stats = CommStats::new(net.len());
            let mut rng = rng_from_seed(139);
            assert_eq!(plan.recycled_sketches(), 0);
            assert_eq!(plan.recycled_bundles(), 0);
            let mut sketches = Vec::new();
            let mut bundles = Vec::new();
            for epoch in 0..4u64 {
                let proto = ScalarProtocol::new(Sum::default(), &values);
                let mut set = QuerySet::new();
                set.register(&proto);
                plan.run_set(
                    &set,
                    &net,
                    &NoLoss,
                    RunnerConfig::default(),
                    epoch,
                    &mut stats,
                    &mut rng,
                );
                sketches.push(plan.recycled_sketches());
                bundles.push(plan.recycled_bundles());
            }
            // Every node stages a bundle, so the bundle pool is always
            // exercised; sketches only exist where a delta does.
            assert!(bundles[0] > 0, "no bundles recycled at {delta_levels}");
            if delta_levels > 0 {
                assert!(sketches[0] > 0, "no sketches recycled at {delta_levels}");
            }
            assert_eq!(
                sketches[1], sketches[3],
                "sketch pool still growing at delta {delta_levels}: {sketches:?}"
            );
            assert_eq!(
                bundles[1], bundles[3],
                "bundle pool still growing at delta {delta_levels}: {bundles:?}"
            );
        }
    }

    /// Patching a compiled plan across adaptation mutations yields a
    /// schedule structurally identical to compiling fresh — and epochs
    /// run over the patched plan match the fresh plan bit-for-bit.
    #[test]
    fn patched_plan_is_identical_to_fresh_compile() {
        let (net, mut td) = topo(140, 200, 2);
        let values: Vec<u64> = (0..net.len() as u64).map(|i| 1 + i % 40).collect();
        let model = Global::new(0.2);
        let mut plan = EpochPlan::compile_td(&td);

        for round in 0..6u64 {
            // Mutate: alternate fine-grained expansion, single shrinks,
            // and whole-level moves.
            match round % 3 {
                0 => {
                    let root = td
                        .switchable_m_nodes()
                        .into_iter()
                        .find(|&u| !td.tree().children(u).is_empty())
                        .expect("switchable M with children");
                    td.expand_subtree(root).unwrap();
                }
                1 => {
                    let m = td.switchable_m_nodes()[0];
                    td.switch_to_t(m).unwrap();
                }
                _ => {
                    td.expand_all();
                }
            }
            assert!(
                plan.patch(&td, td.len()).is_some(),
                "patch refused at {round}"
            );
            let fresh = EpochPlan::compile_td(&td);
            assert_eq!(
                plan.structural_digest(),
                fresh.structural_digest(),
                "digest diverged after round {round}"
            );
            assert_eq!(plan.compiled_version(), Some(td.version()));

            // And the epoch results are bit-identical.
            let proto = ScalarProtocol::new(Sum::default(), &values);
            let mut set = QuerySet::new();
            set.register(&proto);
            let mut patched_plan_stats = CommStats::new(net.len());
            let mut fresh_stats = CommStats::new(net.len());
            let mut fresh = fresh;
            let mut rng_a = rng_from_seed(9000 + round);
            let mut rng_b = rng_from_seed(9000 + round);
            let a = plan.run_set(
                &set,
                &net,
                &model,
                RunnerConfig::default(),
                round,
                &mut patched_plan_stats,
                &mut rng_a,
            );
            let b = fresh.run_set(
                &set,
                &net,
                &model,
                RunnerConfig::default(),
                round,
                &mut fresh_stats,
                &mut rng_b,
            );
            assert_eq!(
                a.outputs[0].downcast_ref::<f64>(),
                b.outputs[0].downcast_ref::<f64>()
            );
            assert_eq!(a.contributing, b.contributing);
            assert_eq!(a.contributing_est, b.contributing_est);
            assert_eq!(a.max_noncontrib, b.max_noncontrib);
            assert_eq!(a.min_noncontrib, b.min_noncontrib);
            assert_eq!(patched_plan_stats, fresh_stats);
        }
    }

    /// `patch` declines (instead of corrupting) when it cannot help:
    /// TAG plans, over-budget relabel sets, and gaps the delta log no
    /// longer covers.
    #[test]
    fn patch_falls_back_when_it_cannot_patch() {
        let (_, mut td) = topo(141, 150, 1);

        // TAG plans have no labeling to patch.
        let mut tag = EpochPlan::compile_tag(td.tree());
        assert!(tag.patch(&td, td.len()).is_none());

        // Relabel budget exceeded.
        let mut plan = EpochPlan::compile_td(&td);
        let switched = td.expand_all();
        assert!(switched > 1);
        assert!(
            plan.patch(&td, switched - 1).is_none(),
            "over-budget patch accepted"
        );
        // The refused plan is untouched and still patchable within budget.
        assert_eq!(plan.patch(&td, switched), Some(switched));
        assert_eq!(plan.compiled_version(), Some(td.version()));

        // A no-op patch at the current version succeeds trivially.
        assert_eq!(plan.patch(&td, 0), Some(0));

        // A plan too far behind the delta log must recompile.
        let stale_version = td.version();
        for _ in 0..80 {
            match td.switchable_t_nodes().first().copied() {
                Some(u) => td.switch_to_m(u).unwrap(),
                None => {
                    let m = td.switchable_m_nodes()[0];
                    td.switch_to_t(m).unwrap();
                }
            }
        }
        assert!(td.deltas_since(stale_version).is_none());
        assert!(plan.patch(&td, td.len()).is_none());
    }

    /// The same reuse-vs-rebuild identity for the TAG plan.
    #[test]
    fn tag_plan_reuse_is_bit_identical_to_rebuild() {
        let (net, td) = topo(135, 180, 0);
        let tree = td.tree();
        let values: Vec<u64> = (0..net.len() as u64).map(|i| 2 + i % 40).collect();
        let model = Global::new(0.3);

        let mut plan = EpochPlan::compile_tag(tree);
        let mut reused_stats = CommStats::new(net.len());
        let mut reused_rng = rng_from_seed(4545);
        let mut rebuilt_stats = CommStats::new(net.len());
        let mut rebuilt_rng = rng_from_seed(4545);
        for epoch in 0..10u64 {
            let proto = ScalarProtocol::new(Sum::default(), &values);
            let mut set = QuerySet::new();
            set.register(&proto);
            let reused = plan.run_set(
                &set,
                &net,
                &model,
                RunnerConfig::default(),
                epoch,
                &mut reused_stats,
                &mut reused_rng,
            );
            let rebuilt = run_tag_epoch_set(
                &set,
                tree,
                &net,
                &model,
                RunnerConfig::default(),
                epoch,
                &mut rebuilt_stats,
                &mut rebuilt_rng,
            );
            assert_eq!(
                reused.outputs[0].downcast_ref::<f64>(),
                rebuilt.outputs[0].downcast_ref::<f64>()
            );
            assert_eq!(reused.contributing, rebuilt.contributing);
        }
        assert_eq!(reused_stats, rebuilt_stats);
    }

    /// The heart of the multi-query engine: N queries in one set produce
    /// exactly the answers N dedicated traversals would, while the
    /// traversal count (messages sent) stays that of ONE query.
    #[test]
    fn bundled_queries_match_dedicated_runs_with_one_traversal() {
        let (net, td) = topo(133, 200, 2);
        let values: Vec<u64> = (0..net.len() as u64).map(|i| 10 + i % 90).collect();
        let model = Global::new(0.2);

        enum Agg {
            Count,
            Sum,
            Average,
        }

        // Dedicated single-query runs, each from the same seeded stream.
        let run_single = |agg: Agg| -> (f64, u64, u64) {
            let mut stats = CommStats::new(net.len());
            let mut rng = rng_from_seed(4242);
            let out = match agg {
                Agg::Count => {
                    let proto = ScalarProtocol::new(Count::default(), &values);
                    run_td_epoch(
                        &proto,
                        &td,
                        &net,
                        &model,
                        RunnerConfig::default(),
                        0,
                        &mut stats,
                        &mut rng,
                    )
                    .output
                }
                Agg::Sum => {
                    let proto = ScalarProtocol::new(Sum::default(), &values);
                    run_td_epoch(
                        &proto,
                        &td,
                        &net,
                        &model,
                        RunnerConfig::default(),
                        0,
                        &mut stats,
                        &mut rng,
                    )
                    .output
                }
                Agg::Average => {
                    let proto = ScalarProtocol::new(Average::default(), &values);
                    run_td_epoch(
                        &proto,
                        &td,
                        &net,
                        &model,
                        RunnerConfig::default(),
                        0,
                        &mut stats,
                        &mut rng,
                    )
                    .output
                }
            };
            (out, stats.total_rounds(), stats.total_bytes())
        };

        let (count_alone, rounds_alone, count_bytes) = run_single(Agg::Count);
        let (sum_alone, _, sum_bytes) = run_single(Agg::Sum);
        let (avg_alone, _, avg_bytes) = run_single(Agg::Average);

        // Bundled run from the same seeded stream.
        let count_p = ScalarProtocol::new(Count::default(), &values);
        let sum_p = ScalarProtocol::new(Sum::default(), &values);
        let avg_p = ScalarProtocol::new(Average::default(), &values);
        let mut set = QuerySet::new();
        let h_count = set.register(&count_p);
        let h_sum = set.register(&sum_p);
        let h_avg = set.register(&avg_p);
        let mut stats = CommStats::new(net.len());
        let mut rng = rng_from_seed(4242);
        let out = run_td_epoch_set(
            &set,
            &td,
            &net,
            &model,
            RunnerConfig::default(),
            0,
            &mut stats,
            &mut rng,
        );

        let get = |i: usize| *out.outputs[i].downcast_ref::<f64>().unwrap();
        assert_eq!(get(h_count.index()), count_alone);
        assert_eq!(get(h_sum.index()), sum_alone);
        assert_eq!(get(h_avg.index()), avg_alone);
        // One traversal's worth of send rounds, not three.
        assert_eq!(stats.total_rounds(), rounds_alone);
        // Sharing the envelope + adaptation overhead across the bundle
        // beats running three dedicated traversals on bytes too.
        assert!(
            stats.total_bytes() < count_bytes + sum_bytes + avg_bytes,
            "bundle {} bytes vs dedicated {}",
            stats.total_bytes(),
            count_bytes + sum_bytes + avg_bytes
        );
    }
}
