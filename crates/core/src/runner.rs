//! One epoch of level-synchronized aggregation, split into **compile**
//! and **execute** phases.
//!
//! [`EpochPlan`] compiles a topology — a labeled [`TdTopology`] or a
//! plain TAG [`Tree`] — into a reusable execution schedule: the
//! level-ordered sender list (outermost ring first), per-sender tree
//! parents and heights, per-link broadcast delivery lists flattened into
//! one table, and the switchability/subtree metadata the §4.2 adaptation
//! signals need. Compilation also allocates the epoch arenas: per-node
//! inbox slabs for tree and multi-path envelopes and the flat
//! `(node, query)` bundle-slot slab local messages are staged in. A
//! cached plan makes steady-state epochs **schedule-recomputation-free**
//! (no per-epoch height/subtree/level sorts) and **growth-free** (inboxes
//! and slabs keep their capacity across epochs); [`crate::session::Session`]
//! caches one per topology version and recompiles only when adaptation
//! actually relabels vertices.
//!
//! [`EpochPlan::run_set`] executes a query epoch over the compiled
//! schedule: tributary (`T`) vertices merge their children's tree
//! messages, finalize at their height, and unicast to their tree parent
//! (with the configured retransmissions); delta (`M`) vertices convert
//! arriving tree messages (§5), fuse synopses from the level above, and
//! broadcast — every `M`-labeled ring neighbor one level down that hears
//! the broadcast folds it in. The base station evaluates whatever
//! reaches it.
//!
//! The runner is **multi-query**: every link carries one *bundle*
//! holding a message slot per query registered in the epoch's
//! [`QuerySet`], so N concurrent aggregates cost one topology traversal
//! — one unicast/broadcast per node, one contributor envelope, one
//! in-band count sketch, one set of adaptation extrema — instead of N.
//! Message payload accounting sums the per-query wire sizes; the
//! envelope overhead is charged once per link, not once per query.
//!
//! Synopsis diffusion (SD) is exactly this runner on an all-multipath
//! labeling; the pure-TAG baseline is the tree side alone on an
//! arbitrary (unrestricted) TAG tree. The one-shot entry points
//! [`run_td_epoch_set`] / [`run_tag_epoch_set`] compile a fresh plan and
//! execute it once, so a standalone call and a plan-reusing session run
//! the identical code path and produce bit-identical results; the
//! single-query entry points [`run_td_epoch`] / [`run_tag_epoch`] are
//! thin typed wrappers over a one-entry bundle.

use std::any::Any;

use crate::envelope::{MpEnvelope, TreeEnvelope, TREE_OVERHEAD_WORDS};
use crate::protocol::Protocol;
use crate::query::{DynProtocol, ErasedMsg, QuerySet};
use td_netsim::loss::{unicast, LossModel, Retransmit};
use td_netsim::network::Network;
use td_netsim::node::{NodeId, BASE_STATION};
use td_netsim::stats::CommStats;
use td_sketches::idset::IdSet;
use td_sketches::rle as sketch_rle;
use td_topology::td::{Mode, TdTopology};
use td_topology::tree::Tree;

/// Runner knobs.
#[derive(Clone, Copy, Debug)]
pub struct RunnerConfig {
    /// Retransmission policy for tree (tributary) links. Multi-path
    /// broadcasts are never retransmitted (§7.4.3 lets *tree* nodes
    /// retransmit to equalize energy).
    pub tree_retransmit: Retransmit,
    /// Whether message accounting charges for the §4.2 adaptation fields
    /// (the in-band count sketch and the extremum reports). The
    /// non-adaptive baselines (TAG, SD) don't carry them.
    pub charge_adaptation_overhead: bool,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            tree_retransmit: Retransmit::default(),
            charge_adaptation_overhead: true,
        }
    }
}

/// What one epoch produced at the base station for a single query.
#[derive(Clone, Debug)]
pub struct EpochOutput<O> {
    /// The evaluated answer.
    pub output: O,
    /// Exact number of sensors whose data is accounted for
    /// (instrumentation ground truth).
    pub contributing: usize,
    /// The in-band estimate of the same quantity (what a real base
    /// station would see: exact tree counts, sketched delta counts).
    pub contributing_est: f64,
    /// Largest per-subtree non-contributions reported by switchable M
    /// vertices this epoch (drives TD expansion).
    pub max_noncontrib: crate::envelope::ExtremaSet,
    /// Smallest such reports (drives TD shrinking).
    pub min_noncontrib: crate::envelope::ExtremaSet,
}

/// What one epoch produced at the base station for a whole query set.
/// `outputs[i]` is query `i`'s erased answer (in registration order);
/// the instrumentation fields are shared by every query — that sharing
/// is the point of the bundled traversal.
pub struct SetEpochOutput {
    /// Per-query answers, in registration order.
    pub outputs: Vec<Box<dyn Any>>,
    /// Exact number of contributing sensors (shared across queries).
    pub contributing: usize,
    /// In-band estimate of the contributing count.
    pub contributing_est: f64,
    /// Largest per-subtree non-contribution reports (TD expand signal).
    pub max_noncontrib: crate::envelope::ExtremaSet,
    /// Smallest such reports (TD shrink signal).
    pub min_noncontrib: crate::envelope::ExtremaSet,
}

impl std::fmt::Debug for SetEpochOutput {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SetEpochOutput")
            .field("queries", &self.outputs.len())
            .field("contributing", &self.contributing)
            .field("contributing_est", &self.contributing_est)
            .finish()
    }
}

/// One query's slot per link message: `bundle[i]` belongs to query `i`.
type Bundle = Vec<Option<ErasedMsg>>;

fn bundle_tree_words(set: &QuerySet<'_>, bundle: &Bundle) -> usize {
    bundle
        .iter()
        .enumerate()
        .filter_map(|(i, slot)| slot.as_ref().map(|m| set.query(i).tree_wire(m).words))
        .sum()
}

fn bundle_mp_wire(set: &QuerySet<'_>, bundle: &Bundle) -> (usize, usize) {
    bundle
        .iter()
        .enumerate()
        .filter_map(|(i, slot)| slot.as_ref().map(|m| set.query(i).mp_wire(m)))
        .fold((0, 0), |(b, w), wire| (b + wire.bytes, w + wire.words))
}

/// Return a consumed envelope's contributor set to the arena free-list
/// (the pool invariant: every pooled set is cleared and `n`-capacity).
fn recycle_idset(pool: &mut Vec<IdSet>, mut contributors: IdSet) {
    contributors.clear();
    pool.push(contributors);
}

/// Clone a multi-path envelope for one broadcast receiver with its
/// contributor bitset drawn from the free-list instead of a fresh
/// allocation — the per-link copies would otherwise grow the pool by
/// one set per delivered broadcast every epoch.
fn clone_mp_pooled(
    env: &MpEnvelope<Bundle>,
    n: usize,
    pool: &mut Vec<IdSet>,
) -> MpEnvelope<Bundle> {
    let mut contributors = pool.pop().unwrap_or_else(|| IdSet::new(n));
    contributors.copy_from(&env.contributors);
    MpEnvelope {
        msg: env.msg.clone(),
        contributors,
        count_sketch: env.count_sketch.clone(),
        max_noncontrib: env.max_noncontrib.clone(),
        min_noncontrib: env.min_noncontrib.clone(),
    }
}

/// Merge children + own local bundle into a tree envelope and finalize
/// it. Drains `children` in delivery order, leaving its capacity in the
/// arena; their contributor bitsets go back to the free-list.
fn build_tree_envelope_set(
    set: &QuerySet<'_>,
    u: NodeId,
    height: u32,
    contributors: IdSet,
    local: Bundle,
    children: &mut Vec<TreeEnvelope<Bundle>>,
    pool: &mut Vec<IdSet>,
) -> TreeEnvelope<Bundle> {
    let mut env = TreeEnvelope::local_in(contributors, u, Some(local));
    for child in children.drain(..) {
        env.absorb_counts(&child);
        recycle_idset(pool, child.contributors);
        let child_bundle = child.msg.expect("bundle envelopes always carry a bundle");
        let own = env.msg.as_mut().expect("just constructed with a bundle");
        for (i, from) in child_bundle.into_iter().enumerate() {
            let Some(from) = from else { continue };
            match &mut own[i] {
                Some(acc) => set.query(i).merge_tree(acc, &from),
                slot @ None => *slot = Some(from),
            }
        }
    }
    let own = env.msg.as_mut().expect("constructed with a bundle");
    for (i, slot) in own.iter_mut().enumerate() {
        if let Some(m) = slot.take() {
            *slot = Some(set.query(i).finalize_tree(u, height, m));
        }
    }
    env.root = u;
    env
}

/// Convert + fuse everything an M vertex holds into one envelope,
/// reporting its subtree non-contribution when switchable. Drains both
/// inboxes in delivery order, leaving their capacity in the arena; the
/// drained envelopes' contributor bitsets go back to the free-list.
#[allow(clippy::too_many_arguments)]
fn build_mp_envelope_set(
    set: &QuerySet<'_>,
    u: NodeId,
    contributors: IdSet,
    subtree_size: u64,
    switchable_m: bool,
    local: Bundle,
    tree_msgs: &mut Vec<TreeEnvelope<Bundle>>,
    mp_msgs: &mut Vec<MpEnvelope<Bundle>>,
    pool: &mut Vec<IdSet>,
) -> MpEnvelope<Bundle> {
    let mut env = MpEnvelope::local_in(contributors, u, Some(local));
    // §4.2: a switchable M vertex is the root of a unique (all-tree)
    // subtree; it reports how many of its subtree's nodes are missing.
    if switchable_m {
        // Expected contributors below u: its whole static subtree minus u
        // itself (u's own contribution is in the local envelope already).
        let expected = subtree_size.saturating_sub(1);
        let received: u64 = tree_msgs.iter().map(|e| e.count).sum();
        env.report_noncontrib(u, expected.saturating_sub(received));
    }
    for te in tree_msgs.drain(..) {
        env.absorb_tree_counts(&te);
        let bundle = te.msg.as_ref().expect("bundle envelopes carry a bundle");
        let own = env.msg.as_mut().expect("constructed with a bundle");
        for (i, slot) in bundle.iter().enumerate() {
            let Some(m) = slot else { continue };
            let converted = set.query(i).convert(te.root, m);
            match &mut own[i] {
                Some(acc) => set.query(i).fuse(acc, &converted),
                empty @ None => *empty = Some(converted),
            }
        }
        recycle_idset(pool, te.contributors);
    }
    for me in mp_msgs.drain(..) {
        env.fuse_counts(&me);
        let bundle = me.msg.expect("bundle envelopes carry a bundle");
        let own = env.msg.as_mut().expect("constructed with a bundle");
        for (i, from) in bundle.into_iter().enumerate() {
            let Some(from) = from else { continue };
            match &mut own[i] {
                Some(acc) => set.query(i).fuse(acc, &from),
                slot @ None => *slot = Some(from),
            }
        }
        recycle_idset(pool, me.contributors);
    }
    env
}

/// Evaluate every query over the tree bundles that reached a tree-mode
/// base station. Drains the envelopes: each bundle slot is moved into
/// its query's evaluation, never cloned; the envelopes' contributor
/// bitsets go back to the free-list.
fn evaluate_tree_base(
    set: &QuerySet<'_>,
    children: &mut Vec<TreeEnvelope<Bundle>>,
    base_height: u32,
    pool: &mut Vec<IdSet>,
) -> Vec<Box<dyn Any>> {
    let outputs = (0..set.len())
        .map(|i| {
            let parts: Vec<ErasedMsg> = children
                .iter_mut()
                .filter_map(|env| {
                    env.msg.as_mut().expect("bundle envelopes carry a bundle")[i].take()
                })
                .collect();
            set.query(i).evaluate(parts, None, base_height)
        })
        .collect();
    for env in children.drain(..) {
        recycle_idset(pool, env.contributors);
    }
    outputs
}

// ---------------------------------------------------------------------
// Compiled epoch plans
// ---------------------------------------------------------------------

/// One scheduled sender of a compiled Tributary-Delta epoch.
#[derive(Clone, Copy, Debug)]
struct TdStep {
    node: NodeId,
    mode: Mode,
    /// §6.1 height (the `finalize_tree` argument for T steps).
    height: u32,
    /// Tree parent (T steps; undefined for M steps).
    parent: NodeId,
    /// Static subtree size (the M-step non-contribution baseline).
    subtree_size: u64,
    /// Whether the vertex is a switchable M vertex under this labeling.
    switchable_m: bool,
    /// Range into the flat receiver table (M steps).
    recv_start: u32,
    recv_end: u32,
}

/// One scheduled sender of a compiled TAG epoch (bottom-up order).
#[derive(Clone, Copy, Debug)]
struct TagStep {
    node: NodeId,
    height: u32,
    /// `None` marks the base station.
    parent: Option<NodeId>,
}

enum Schedule {
    Td(TdSchedule),
    Tag(TagSchedule),
}

/// The compiled Tributary-Delta schedule.
struct TdSchedule {
    /// Topology version this plan was compiled against.
    version: u64,
    /// Senders, outermost ring first, id order within a level.
    steps: Vec<TdStep>,
    /// Flat broadcast delivery table: `(receiver, receiver is M)`,
    /// indexed by each M step's `recv_start..recv_end`.
    receivers: Vec<(NodeId, bool)>,
    base_mode: Mode,
    base_height: u32,
    base_subtree: u64,
    base_switchable_m: bool,
}

/// The compiled pure-TAG schedule.
struct TagSchedule {
    /// Senders in bottom-up (leaves-first) order, base station last.
    steps: Vec<TagStep>,
    base_height: u32,
}

/// The reusable execution arenas: cleared, never shrunk, so steady-state
/// epochs run without inbox or slab growth.
struct Arenas {
    /// Node count (the envelope contributor-set capacity).
    n: usize,
    /// Per-node tree-envelope inboxes, drained every epoch.
    tree_inbox: Vec<Vec<TreeEnvelope<Bundle>>>,
    /// Per-node multi-path-envelope inboxes, drained every epoch.
    mp_inbox: Vec<Vec<MpEnvelope<Bundle>>>,
    /// Flat local-message slab indexed by `(node, query)`: slot
    /// `node * set.len() + query` stages the node's local tree or
    /// multi-path message until its send step assembles the bundle.
    locals: Vec<Option<ErasedMsg>>,
    /// Free-list of recycled contributor bitsets (invariant: every
    /// pooled set is cleared, capacity `n`). Every envelope the plan
    /// builds draws from here and every consumed envelope returns here,
    /// so steady-state epochs allocate no per-node bitsets.
    idsets: Vec<IdSet>,
}

impl Arenas {
    fn new(n: usize, multipath: bool) -> Arenas {
        Arenas {
            n,
            tree_inbox: (0..n).map(|_| Vec::new()).collect(),
            mp_inbox: if multipath {
                (0..n).map(|_| Vec::new()).collect()
            } else {
                Vec::new()
            },
            locals: Vec::new(),
            idsets: Vec::new(),
        }
    }

    /// A cleared contributor set: recycled from the free-list, or a
    /// fresh allocation only while the pool is still warming up.
    fn idset(&mut self) -> IdSet {
        self.idsets.pop().unwrap_or_else(|| IdSet::new(self.n))
    }

    /// One node's tree inbox plus the free-list, split-borrowed for the
    /// tree-envelope build step.
    fn tree_ctx(&mut self, u: NodeId) -> (&mut Vec<TreeEnvelope<Bundle>>, &mut Vec<IdSet>) {
        (&mut self.tree_inbox[u.index()], &mut self.idsets)
    }

    /// Reset the local-message slab for an epoch carrying `q` queries.
    fn reset_locals(&mut self, q: usize) {
        self.locals.clear();
        self.locals.resize_with(self.n * q, || None);
    }

    /// Stage one node's local message per query in the slab.
    fn stage<'e>(
        &mut self,
        set: &QuerySet<'e>,
        u: NodeId,
        q: usize,
        local: impl Fn(&(dyn DynProtocol + 'e), NodeId) -> Option<ErasedMsg>,
    ) {
        let base = u.index() * q;
        for (i, query) in set.queries().enumerate() {
            self.locals[base + i] = local(query, u);
        }
    }

    /// Move a node's staged local messages out of the slab into a bundle.
    fn take_local_bundle(&mut self, u: NodeId, q: usize) -> Bundle {
        let base = u.index() * q;
        self.locals[base..base + q]
            .iter_mut()
            .map(|slot| slot.take())
            .collect()
    }

    /// Both inbox arenas of one node plus the free-list, split-borrowed
    /// for the M-vertex build step.
    #[allow(clippy::type_complexity)]
    fn inboxes_of(
        &mut self,
        u: NodeId,
    ) -> (
        &mut Vec<TreeEnvelope<Bundle>>,
        &mut Vec<MpEnvelope<Bundle>>,
        &mut Vec<IdSet>,
    ) {
        (
            &mut self.tree_inbox[u.index()],
            &mut self.mp_inbox[u.index()],
            &mut self.idsets,
        )
    }
}

/// A compiled, reusable epoch schedule plus its execution arenas.
///
/// Compile once per topology (version) with [`EpochPlan::compile_td`] /
/// [`EpochPlan::compile_tag`], then call [`EpochPlan::run_set`] every
/// epoch. Steady-state epochs perform zero schedule recomputation (no
/// height/subtree/level passes) and no per-node inbox growth: the
/// tree/multipath inbox slabs and the `(node, query)` local-bundle slab
/// keep their capacity across epochs.
pub struct EpochPlan {
    sched: Schedule,
    arenas: Arenas,
}

impl EpochPlan {
    /// Compile the level-ordered schedule of a labeled Tributary-Delta
    /// topology (SD is the all-multipath special case).
    pub fn compile_td(topo: &TdTopology) -> EpochPlan {
        let rings = topo.rings();
        let tree = topo.tree();
        let heights = tree.heights();
        let subtree_sizes = tree.subtree_sizes();
        let n = rings.len();
        let mut steps = Vec::new();
        let mut receivers = Vec::new();
        for level in (1..=rings.max_level()).rev() {
            for u in rings.nodes_at_level(level) {
                let mode = topo.mode(u);
                let (parent, switchable_m, recv_start, recv_end) = match mode {
                    Mode::T => (
                        topo.tree()
                            .parent(u)
                            .expect("connected non-base T vertex has a parent"),
                        false,
                        0,
                        0,
                    ),
                    Mode::M => {
                        let start = receivers.len() as u32;
                        for &r in rings.receivers(u) {
                            receivers.push((r, topo.mode(r) == Mode::M));
                        }
                        (u, topo.is_switchable_m(u), start, receivers.len() as u32)
                    }
                };
                steps.push(TdStep {
                    node: u,
                    mode,
                    height: heights[u.index()],
                    parent,
                    subtree_size: subtree_sizes[u.index()] as u64,
                    switchable_m,
                    recv_start,
                    recv_end,
                });
            }
        }
        EpochPlan {
            sched: Schedule::Td(TdSchedule {
                version: topo.version(),
                steps,
                receivers,
                base_mode: topo.mode(BASE_STATION),
                base_height: heights[BASE_STATION.index()],
                base_subtree: subtree_sizes[BASE_STATION.index()] as u64,
                base_switchable_m: topo.is_switchable_m(BASE_STATION),
            }),
            arenas: Arenas::new(n, true),
        }
    }

    /// Compile the bottom-up schedule of a pure-TAG spanning tree
    /// (parents may be at any lower level — no ring restriction).
    pub fn compile_tag(tree: &Tree) -> EpochPlan {
        let heights = tree.heights();
        let n = tree.len();
        let steps = tree
            .bottom_up_order()
            .into_iter()
            .map(|u| TagStep {
                node: u,
                height: heights[u.index()],
                parent: tree.parent(u),
            })
            .collect();
        EpochPlan {
            sched: Schedule::Tag(TagSchedule {
                steps,
                base_height: heights[BASE_STATION.index()],
            }),
            arenas: Arenas::new(n, false),
        }
    }

    /// Size of the arena's contributor-bitset free-list (introspection
    /// for tests and benches: after a warm-up epoch the pool holds every
    /// recycled set, and steady-state epochs neither grow nor drain it
    /// below the per-epoch working need).
    pub fn recycled_bitsets(&self) -> usize {
        self.arenas.idsets.len()
    }

    /// The topology version a TD plan was compiled against (`None` for
    /// TAG plans, whose tree never changes).
    pub fn compiled_version(&self) -> Option<u64> {
        match &self.sched {
            Schedule::Td(td) => Some(td.version),
            Schedule::Tag(_) => None,
        }
    }

    /// Execute one epoch for every query in `set` over the compiled
    /// schedule. `stats` accumulates communication accounting across
    /// epochs.
    // Every parameter is load-bearing and callers always have all of them
    // in hand (queries, channel, config, clock, accounting, rng);
    // bundling into a context struct would just move the argument list.
    #[allow(clippy::too_many_arguments)]
    pub fn run_set<M: LossModel, R: rand::Rng + ?Sized>(
        &mut self,
        set: &QuerySet<'_>,
        net: &Network,
        model: &M,
        config: RunnerConfig,
        epoch: u64,
        stats: &mut CommStats,
        rng: &mut R,
    ) -> SetEpochOutput {
        match &self.sched {
            Schedule::Td(sched) => run_td(
                sched,
                &mut self.arenas,
                set,
                net,
                model,
                config,
                epoch,
                stats,
                rng,
            ),
            Schedule::Tag(sched) => run_tag(
                sched,
                &mut self.arenas,
                set,
                net,
                model,
                config,
                epoch,
                stats,
                rng,
            ),
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_td<M: LossModel, R: rand::Rng + ?Sized>(
    sched: &TdSchedule,
    arenas: &mut Arenas,
    set: &QuerySet<'_>,
    net: &Network,
    model: &M,
    config: RunnerConfig,
    epoch: u64,
    stats: &mut CommStats,
    rng: &mut R,
) -> SetEpochOutput {
    let q = set.len();
    arenas.reset_locals(q);
    for step in &sched.steps {
        match step.mode {
            Mode::T => arenas.stage(set, step.node, q, |query, u| query.local_tree(u)),
            Mode::M => arenas.stage(set, step.node, q, |query, u| query.local_mp(u)),
        }
    }
    // A tree-mode base station evaluates its children's bundles directly
    // and contributes no local data, so only an M base stages one.
    if sched.base_mode == Mode::M {
        arenas.stage(set, BASE_STATION, q, |query, u| query.local_mp(u));
    }

    for step in &sched.steps {
        match step.mode {
            Mode::T => {
                let local = arenas.take_local_bundle(step.node, q);
                let contributors = arenas.idset();
                let (children, pool) = arenas.tree_ctx(step.node);
                let env = build_tree_envelope_set(
                    set,
                    step.node,
                    step.height,
                    contributors,
                    local,
                    children,
                    pool,
                );
                let payload = bundle_tree_words(set, env.msg.as_ref().expect("bundle present"));
                let overhead = if config.charge_adaptation_overhead {
                    TREE_OVERHEAD_WORDS
                } else {
                    0
                };
                let words = payload + overhead;
                let outcome = unicast(
                    model,
                    config.tree_retransmit,
                    step.node,
                    step.parent,
                    net,
                    epoch,
                    rng,
                );
                stats.record_send(step.node, words * 4, words, outcome.attempts_used as u64);
                if outcome.delivered {
                    arenas.tree_inbox[step.parent.index()].push(env);
                } else {
                    recycle_idset(&mut arenas.idsets, env.contributors);
                }
            }
            Mode::M => {
                let local = arenas.take_local_bundle(step.node, q);
                let contributors = arenas.idset();
                let (tree_in, mp_in, pool) = arenas.inboxes_of(step.node);
                let env = build_mp_envelope_set(
                    set,
                    step.node,
                    contributors,
                    step.subtree_size,
                    step.switchable_m,
                    local,
                    tree_in,
                    mp_in,
                    pool,
                );
                let (payload_bytes, payload_words) =
                    bundle_mp_wire(set, env.msg.as_ref().expect("bundle present"));
                // Adaptation overhead: the RLE-encoded count sketch
                // plus the extremum reports — charged once per link,
                // shared by every query in the bundle.
                let overhead_bytes = if config.charge_adaptation_overhead {
                    sketch_rle::encoded_size_bytes(&env.count_sketch)
                        + 8 * crate::envelope::TOP_K_EXTREMA
                } else {
                    0
                };
                let bytes = payload_bytes + overhead_bytes;
                let words = payload_words + overhead_bytes.div_ceil(4);
                stats.record_send(step.node, bytes, words, 1);
                for &(r, is_m) in &sched.receivers[step.recv_start as usize..step.recv_end as usize]
                {
                    if model.delivered(step.node, r, net, epoch, rng) && is_m {
                        let copy = clone_mp_pooled(&env, arenas.n, &mut arenas.idsets);
                        arenas.mp_inbox[r.index()].push(copy);
                    }
                }
                recycle_idset(&mut arenas.idsets, env.contributors);
            }
        }
    }

    // Base station.
    match sched.base_mode {
        Mode::T => {
            let mut contributors = arenas.idset();
            let (children, pool) = arenas.tree_ctx(BASE_STATION);
            let mut exact_count = 0u64;
            for env in children.iter() {
                exact_count += env.count;
                contributors.union(&env.contributors);
            }
            let contributing = contributors.len();
            recycle_idset(pool, contributors);
            SetEpochOutput {
                outputs: evaluate_tree_base(set, children, sched.base_height, pool),
                contributing,
                contributing_est: exact_count as f64,
                max_noncontrib: crate::envelope::ExtremaSet::largest(),
                min_noncontrib: crate::envelope::ExtremaSet::smallest(),
            }
        }
        Mode::M => {
            let local = arenas.take_local_bundle(BASE_STATION, q);
            let contributors = arenas.idset();
            let (tree_in, mp_in, pool) = arenas.inboxes_of(BASE_STATION);
            let env = build_mp_envelope_set(
                set,
                BASE_STATION,
                contributors,
                sched.base_subtree,
                sched.base_switchable_m,
                local,
                tree_in,
                mp_in,
                pool,
            );
            let bundle = env.msg.as_ref().expect("bundle present");
            let outputs = (0..set.len())
                .map(|i| {
                    set.query(i)
                        .evaluate(Vec::new(), bundle[i].as_ref(), sched.base_height)
                })
                .collect();
            let MpEnvelope {
                contributors,
                count_sketch,
                max_noncontrib,
                min_noncontrib,
                ..
            } = env;
            let contributing = contributors.len();
            recycle_idset(&mut arenas.idsets, contributors);
            SetEpochOutput {
                outputs,
                contributing,
                contributing_est: count_sketch.estimate(),
                max_noncontrib,
                min_noncontrib,
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_tag<M: LossModel, R: rand::Rng + ?Sized>(
    sched: &TagSchedule,
    arenas: &mut Arenas,
    set: &QuerySet<'_>,
    net: &Network,
    model: &M,
    config: RunnerConfig,
    epoch: u64,
    stats: &mut CommStats,
    rng: &mut R,
) -> SetEpochOutput {
    let q = set.len();
    arenas.reset_locals(q);
    for step in &sched.steps {
        arenas.stage(set, step.node, q, |query, u| query.local_tree(u));
    }

    let mut base_children: Vec<TreeEnvelope<Bundle>> = Vec::new();
    for step in &sched.steps {
        let local = arenas.take_local_bundle(step.node, q);
        let contributors = arenas.idset();
        let (children, pool) = arenas.tree_ctx(step.node);
        let env = build_tree_envelope_set(
            set,
            step.node,
            step.height,
            contributors,
            local,
            children,
            pool,
        );
        match step.parent {
            None => base_children.push(env),
            Some(p) => {
                let payload = bundle_tree_words(set, env.msg.as_ref().expect("bundle present"));
                let overhead = if config.charge_adaptation_overhead {
                    TREE_OVERHEAD_WORDS
                } else {
                    0
                };
                let words = payload + overhead;
                let outcome = unicast(model, config.tree_retransmit, step.node, p, net, epoch, rng);
                stats.record_send(step.node, words * 4, words, outcome.attempts_used as u64);
                if outcome.delivered {
                    arenas.tree_inbox[p.index()].push(env);
                } else {
                    recycle_idset(&mut arenas.idsets, env.contributors);
                }
            }
        }
    }

    let mut contributors = arenas.idset();
    let mut exact = 0u64;
    for env in &base_children {
        exact += env.count;
        contributors.union(&env.contributors);
    }
    let contributing = contributors.len();
    recycle_idset(&mut arenas.idsets, contributors);
    SetEpochOutput {
        outputs: evaluate_tree_base(
            set,
            &mut base_children,
            sched.base_height,
            &mut arenas.idsets,
        ),
        contributing,
        contributing_est: exact as f64,
        max_noncontrib: crate::envelope::ExtremaSet::largest(),
        min_noncontrib: crate::envelope::ExtremaSet::smallest(),
    }
}

/// Run one Tributary-Delta epoch for every query in `set`, compiling a
/// fresh plan for this call — the rebuild path. Sessions cache an
/// [`EpochPlan`] instead and execute the identical code, so the two
/// paths are bit-for-bit interchangeable. `stats` accumulates
/// communication accounting across epochs.
#[allow(clippy::too_many_arguments)]
pub fn run_td_epoch_set<M: LossModel, R: rand::Rng + ?Sized>(
    set: &QuerySet<'_>,
    topo: &TdTopology,
    net: &Network,
    model: &M,
    config: RunnerConfig,
    epoch: u64,
    stats: &mut CommStats,
    rng: &mut R,
) -> SetEpochOutput {
    EpochPlan::compile_td(topo).run_set(set, net, model, config, epoch, stats, rng)
}

/// Run one epoch of the pure-TAG baseline for every query in `set`, over
/// an arbitrary spanning tree (parents may be at any lower level — no
/// ring restriction), compiling a fresh plan for this call.
#[allow(clippy::too_many_arguments)]
pub fn run_tag_epoch_set<M: LossModel, R: rand::Rng + ?Sized>(
    set: &QuerySet<'_>,
    tree: &Tree,
    net: &Network,
    model: &M,
    config: RunnerConfig,
    epoch: u64,
    stats: &mut CommStats,
    rng: &mut R,
) -> SetEpochOutput {
    EpochPlan::compile_tag(tree).run_set(set, net, model, config, epoch, stats, rng)
}

fn unwrap_single<O: 'static>(mut out: SetEpochOutput) -> EpochOutput<O> {
    debug_assert_eq!(out.outputs.len(), 1);
    let output = *out
        .outputs
        .pop()
        .expect("single-query set has one output")
        .downcast::<O>()
        .expect("single-query output type");
    EpochOutput {
        output,
        contributing: out.contributing,
        contributing_est: out.contributing_est,
        max_noncontrib: out.max_noncontrib,
        min_noncontrib: out.min_noncontrib,
    }
}

/// Run one Tributary-Delta epoch for a single typed query — a wrapper
/// over [`run_td_epoch_set`] with a one-entry bundle, so a dedicated run
/// is bit-identical to the same query inside a larger set.
#[allow(clippy::too_many_arguments)]
pub fn run_td_epoch<P: Protocol, M: LossModel, R: rand::Rng + ?Sized>(
    proto: &P,
    topo: &TdTopology,
    net: &Network,
    model: &M,
    config: RunnerConfig,
    epoch: u64,
    stats: &mut CommStats,
    rng: &mut R,
) -> EpochOutput<P::Output> {
    let mut set = QuerySet::new();
    set.register(proto);
    unwrap_single(run_td_epoch_set(
        &set, topo, net, model, config, epoch, stats, rng,
    ))
}

/// Run one pure-TAG epoch for a single typed query (wrapper over
/// [`run_tag_epoch_set`]).
#[allow(clippy::too_many_arguments)]
pub fn run_tag_epoch<P: Protocol, M: LossModel, R: rand::Rng + ?Sized>(
    proto: &P,
    tree: &Tree,
    net: &Network,
    model: &M,
    config: RunnerConfig,
    epoch: u64,
    stats: &mut CommStats,
    rng: &mut R,
) -> EpochOutput<P::Output> {
    let mut set = QuerySet::new();
    set.register(proto);
    unwrap_single(run_tag_epoch_set(
        &set, tree, net, model, config, epoch, stats, rng,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ScalarProtocol;
    use td_aggregates::average::Average;
    use td_aggregates::count::Count;
    use td_aggregates::sum::Sum;
    use td_netsim::loss::{Global, NoLoss};
    use td_netsim::node::Position;
    use td_netsim::rng::rng_from_seed;
    use td_topology::bushy::{build_bushy_tree, BushyOptions};
    use td_topology::rings::Rings;

    fn topo(seed: u64, sensors: usize, delta_levels: u16) -> (Network, TdTopology) {
        let mut rng = rng_from_seed(seed);
        let net = Network::random_connected(
            sensors,
            20.0,
            20.0,
            Position::new(10.0, 10.0),
            3.0,
            &mut rng,
        );
        let rings = Rings::build(&net);
        let tree = build_bushy_tree(&net, &rings, BushyOptions::default(), &mut rng);
        (net.clone(), TdTopology::new(rings, tree, delta_levels))
    }

    #[test]
    fn all_tree_lossless_sum_is_exact() {
        let (net, td) = topo(121, 150, 0);
        let td = {
            // Force pure tree (base included).
            let rings = td.rings().clone();
            let tree = td.tree().clone();
            TdTopology::all_tree(rings, tree)
        };
        let values: Vec<u64> = (0..net.len() as u64).collect();
        let expect: f64 = values[1..].iter().sum::<u64>() as f64;
        let proto = ScalarProtocol::new(Sum::default(), &values);
        let mut stats = CommStats::new(net.len());
        let mut rng = rng_from_seed(122);
        let out = run_td_epoch(
            &proto,
            &td,
            &net,
            &NoLoss,
            RunnerConfig::default(),
            0,
            &mut stats,
            &mut rng,
        );
        assert_eq!(out.output, expect);
        assert_eq!(out.contributing, net.num_sensors());
        assert_eq!(out.contributing_est, net.num_sensors() as f64);
    }

    #[test]
    fn all_multipath_lossless_sum_approximate() {
        let (net, td) = topo(123, 150, 0);
        let td = TdTopology::all_multipath(td.rings().clone(), td.tree().clone());
        let values: Vec<u64> = vec![50; net.len()];
        let expect = 50.0 * net.num_sensors() as f64;
        let proto = ScalarProtocol::new(Sum::default(), &values);
        let mut stats = CommStats::new(net.len());
        let mut rng = rng_from_seed(124);
        let out = run_td_epoch(
            &proto,
            &td,
            &net,
            &NoLoss,
            RunnerConfig::default(),
            0,
            &mut stats,
            &mut rng,
        );
        let rel = (out.output - expect).abs() / expect;
        assert!(rel < 0.4, "sum {} expect {expect}", out.output);
        assert_eq!(out.contributing, net.num_sensors());
    }

    #[test]
    fn mixed_topology_lossless_accounts_everyone() {
        for delta_levels in [1u16, 2, 3] {
            let (net, td) = topo(125, 200, delta_levels);
            let values: Vec<u64> = vec![1; net.len()];
            let proto = ScalarProtocol::new(Count::default(), &values);
            let mut stats = CommStats::new(net.len());
            let mut rng = rng_from_seed(126);
            let out = run_td_epoch(
                &proto,
                &td,
                &net,
                &NoLoss,
                RunnerConfig::default(),
                0,
                &mut stats,
                &mut rng,
            );
            assert_eq!(
                out.contributing,
                net.num_sensors(),
                "delta_levels={delta_levels}"
            );
            let rel = (out.output - net.num_sensors() as f64).abs() / net.num_sensors() as f64;
            assert!(rel < 0.4, "count {} at delta {delta_levels}", out.output);
        }
    }

    #[test]
    fn lossy_td_beats_lossy_tag_on_contribution() {
        let (net, td) = topo(127, 300, 3);
        let values: Vec<u64> = vec![1; net.len()];
        let model = Global::new(0.25);
        let mut td_contrib = 0usize;
        let mut tag_contrib = 0usize;
        let epochs = 20;
        let mut rng = rng_from_seed(128);
        let mut stats = CommStats::new(net.len());
        for e in 0..epochs {
            let proto = ScalarProtocol::new(Count::default(), &values);
            let out = run_td_epoch(
                &proto,
                &td,
                &net,
                &model,
                RunnerConfig::default(),
                e,
                &mut stats,
                &mut rng,
            );
            td_contrib += out.contributing;
            let out = run_tag_epoch(
                &proto,
                td.tree(),
                &net,
                &model,
                RunnerConfig::default(),
                e,
                &mut stats,
                &mut rng,
            );
            tag_contrib += out.contributing;
        }
        assert!(
            td_contrib > tag_contrib,
            "TD {td_contrib} <= TAG {tag_contrib}"
        );
    }

    #[test]
    fn switchable_m_vertices_report_noncontrib_under_loss() {
        let (net, td) = topo(129, 250, 2);
        let values: Vec<u64> = vec![1; net.len()];
        let proto = ScalarProtocol::new(Count::default(), &values);
        let mut stats = CommStats::new(net.len());
        let mut rng = rng_from_seed(130);
        let out = run_td_epoch(
            &proto,
            &td,
            &net,
            &Global::new(0.5),
            RunnerConfig::default(),
            0,
            &mut stats,
            &mut rng,
        );
        // Under 50% loss some subtree must be missing nodes, and the
        // extrema must have bubbled up (the base station fuses them).
        if let Some(max) = out.max_noncontrib.best() {
            assert!(max.value > 0);
            assert!(td.is_switchable_m(max.node) || td.mode(max.node) == Mode::M);
        }
        assert!(out.contributing < net.num_sensors());
    }

    #[test]
    fn tag_retransmissions_help() {
        let (net, td) = topo(131, 200, 0);
        let tree = td.tree();
        let values: Vec<u64> = vec![1; net.len()];
        let model = Global::new(0.3);
        let mut plain = 0usize;
        let mut retried = 0usize;
        for e in 0..10 {
            let proto = ScalarProtocol::new(Count::default(), &values);
            let mut stats = CommStats::new(net.len());
            let mut rng = rng_from_seed(1000 + e);
            plain += run_tag_epoch(
                &proto,
                tree,
                &net,
                &model,
                RunnerConfig::default(),
                e,
                &mut stats,
                &mut rng,
            )
            .contributing;
            let mut rng = rng_from_seed(1000 + e);
            retried += run_tag_epoch(
                &proto,
                tree,
                &net,
                &model,
                RunnerConfig {
                    tree_retransmit: Retransmit { retries: 2 },
                    ..RunnerConfig::default()
                },
                e,
                &mut stats,
                &mut rng,
            )
            .contributing;
        }
        assert!(retried > plain, "retransmit {retried} <= plain {plain}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (net, td) = topo(132, 150, 2);
        let values: Vec<u64> = (0..net.len() as u64).map(|i| i % 100).collect();
        let run = |seed: u64| {
            let proto = ScalarProtocol::new(Sum::default(), &values);
            let mut stats = CommStats::new(net.len());
            let mut rng = rng_from_seed(seed);
            let out = run_td_epoch(
                &proto,
                &td,
                &net,
                &Global::new(0.2),
                RunnerConfig::default(),
                0,
                &mut stats,
                &mut rng,
            );
            (out.output, out.contributing, stats.total_bytes())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    /// A plan compiled once and executed over many epochs must be
    /// bit-for-bit identical to recompiling the plan every epoch (the
    /// rebuild path) — answers, instrumentation, and accounting.
    #[test]
    fn plan_reuse_is_bit_identical_to_rebuild() {
        let (net, td) = topo(134, 200, 2);
        let values: Vec<u64> = (0..net.len() as u64).map(|i| 1 + i % 60).collect();
        let model = Global::new(0.25);
        let epochs = 15u64;

        let mut reused_plan = EpochPlan::compile_td(&td);
        let mut reused_stats = CommStats::new(net.len());
        let mut reused_rng = rng_from_seed(4343);
        let mut rebuilt_stats = CommStats::new(net.len());
        let mut rebuilt_rng = rng_from_seed(4343);
        for epoch in 0..epochs {
            let proto = ScalarProtocol::new(Sum::default(), &values);
            let mut set = QuerySet::new();
            set.register(&proto);
            let reused = reused_plan.run_set(
                &set,
                &net,
                &model,
                RunnerConfig::default(),
                epoch,
                &mut reused_stats,
                &mut reused_rng,
            );
            let rebuilt = run_td_epoch_set(
                &set,
                &td,
                &net,
                &model,
                RunnerConfig::default(),
                epoch,
                &mut rebuilt_stats,
                &mut rebuilt_rng,
            );
            assert_eq!(
                reused.outputs[0].downcast_ref::<f64>(),
                rebuilt.outputs[0].downcast_ref::<f64>(),
                "answers diverged at epoch {epoch}"
            );
            assert_eq!(reused.contributing, rebuilt.contributing);
            assert_eq!(reused.contributing_est, rebuilt.contributing_est);
            assert_eq!(reused.max_noncontrib, rebuilt.max_noncontrib);
            assert_eq!(reused.min_noncontrib, rebuilt.min_noncontrib);
        }
        assert_eq!(reused_stats, rebuilt_stats);
    }

    /// The contributor-bitset free-list reaches a steady state: after a
    /// warm-up epoch the pool holds every recycled set, and further
    /// epochs neither grow it (no new allocations) nor leak from it.
    #[test]
    fn idset_pool_reaches_steady_state() {
        for delta_levels in [0u16, 2] {
            let (net, td) = topo(136, 180, delta_levels);
            let values: Vec<u64> = vec![3; net.len()];
            let mut plan = EpochPlan::compile_td(&td);
            let mut stats = CommStats::new(net.len());
            let mut rng = rng_from_seed(137);
            assert_eq!(plan.recycled_bitsets(), 0);
            let mut after = Vec::new();
            for epoch in 0..4u64 {
                let proto = ScalarProtocol::new(Sum::default(), &values);
                let mut set = QuerySet::new();
                set.register(&proto);
                plan.run_set(
                    &set,
                    &net,
                    &NoLoss,
                    RunnerConfig::default(),
                    epoch,
                    &mut stats,
                    &mut rng,
                );
                after.push(plan.recycled_bitsets());
            }
            assert!(after[0] > 0, "nothing recycled at delta {delta_levels}");
            // Every envelope (locals and broadcast copies alike) returns
            // its bitset by the end of the epoch, so without loss the
            // between-epoch pool size is the fixed per-epoch envelope
            // population: epoch 2 onward allocates nothing. (Under loss
            // the pool can still grow by the occasional unlucky epoch's
            // extra in-flight demand — bounded by the lossless maximum.)
            assert_eq!(
                after[1], after[3],
                "pool still growing at delta {delta_levels}: {after:?}"
            );
        }
    }

    /// The same reuse-vs-rebuild identity for the TAG plan.
    #[test]
    fn tag_plan_reuse_is_bit_identical_to_rebuild() {
        let (net, td) = topo(135, 180, 0);
        let tree = td.tree();
        let values: Vec<u64> = (0..net.len() as u64).map(|i| 2 + i % 40).collect();
        let model = Global::new(0.3);

        let mut plan = EpochPlan::compile_tag(tree);
        let mut reused_stats = CommStats::new(net.len());
        let mut reused_rng = rng_from_seed(4545);
        let mut rebuilt_stats = CommStats::new(net.len());
        let mut rebuilt_rng = rng_from_seed(4545);
        for epoch in 0..10u64 {
            let proto = ScalarProtocol::new(Sum::default(), &values);
            let mut set = QuerySet::new();
            set.register(&proto);
            let reused = plan.run_set(
                &set,
                &net,
                &model,
                RunnerConfig::default(),
                epoch,
                &mut reused_stats,
                &mut reused_rng,
            );
            let rebuilt = run_tag_epoch_set(
                &set,
                tree,
                &net,
                &model,
                RunnerConfig::default(),
                epoch,
                &mut rebuilt_stats,
                &mut rebuilt_rng,
            );
            assert_eq!(
                reused.outputs[0].downcast_ref::<f64>(),
                rebuilt.outputs[0].downcast_ref::<f64>()
            );
            assert_eq!(reused.contributing, rebuilt.contributing);
        }
        assert_eq!(reused_stats, rebuilt_stats);
    }

    /// The heart of the multi-query engine: N queries in one set produce
    /// exactly the answers N dedicated traversals would, while the
    /// traversal count (messages sent) stays that of ONE query.
    #[test]
    fn bundled_queries_match_dedicated_runs_with_one_traversal() {
        let (net, td) = topo(133, 200, 2);
        let values: Vec<u64> = (0..net.len() as u64).map(|i| 10 + i % 90).collect();
        let model = Global::new(0.2);

        enum Agg {
            Count,
            Sum,
            Average,
        }

        // Dedicated single-query runs, each from the same seeded stream.
        let run_single = |agg: Agg| -> (f64, u64, u64) {
            let mut stats = CommStats::new(net.len());
            let mut rng = rng_from_seed(4242);
            let out = match agg {
                Agg::Count => {
                    let proto = ScalarProtocol::new(Count::default(), &values);
                    run_td_epoch(
                        &proto,
                        &td,
                        &net,
                        &model,
                        RunnerConfig::default(),
                        0,
                        &mut stats,
                        &mut rng,
                    )
                    .output
                }
                Agg::Sum => {
                    let proto = ScalarProtocol::new(Sum::default(), &values);
                    run_td_epoch(
                        &proto,
                        &td,
                        &net,
                        &model,
                        RunnerConfig::default(),
                        0,
                        &mut stats,
                        &mut rng,
                    )
                    .output
                }
                Agg::Average => {
                    let proto = ScalarProtocol::new(Average::default(), &values);
                    run_td_epoch(
                        &proto,
                        &td,
                        &net,
                        &model,
                        RunnerConfig::default(),
                        0,
                        &mut stats,
                        &mut rng,
                    )
                    .output
                }
            };
            (out, stats.total_rounds(), stats.total_bytes())
        };

        let (count_alone, rounds_alone, count_bytes) = run_single(Agg::Count);
        let (sum_alone, _, sum_bytes) = run_single(Agg::Sum);
        let (avg_alone, _, avg_bytes) = run_single(Agg::Average);

        // Bundled run from the same seeded stream.
        let count_p = ScalarProtocol::new(Count::default(), &values);
        let sum_p = ScalarProtocol::new(Sum::default(), &values);
        let avg_p = ScalarProtocol::new(Average::default(), &values);
        let mut set = QuerySet::new();
        let h_count = set.register(&count_p);
        let h_sum = set.register(&sum_p);
        let h_avg = set.register(&avg_p);
        let mut stats = CommStats::new(net.len());
        let mut rng = rng_from_seed(4242);
        let out = run_td_epoch_set(
            &set,
            &td,
            &net,
            &model,
            RunnerConfig::default(),
            0,
            &mut stats,
            &mut rng,
        );

        let get = |i: usize| *out.outputs[i].downcast_ref::<f64>().unwrap();
        assert_eq!(get(h_count.index()), count_alone);
        assert_eq!(get(h_sum.index()), sum_alone);
        assert_eq!(get(h_avg.index()), avg_alone);
        // One traversal's worth of send rounds, not three.
        assert_eq!(stats.total_rounds(), rounds_alone);
        // Sharing the envelope + adaptation overhead across the bundle
        // beats running three dedicated traversals on bytes too.
        assert!(
            stats.total_bytes() < count_bytes + sum_bytes + avg_bytes,
            "bundle {} bytes vs dedicated {}",
            stats.total_bytes(),
            count_bytes + sum_bytes + avg_bytes
        );
    }
}
