//! One epoch of level-synchronized aggregation.
//!
//! [`run_td_epoch`] executes a query epoch over a labeled
//! [`TdTopology`]: ring levels are processed outermost-first; tributary
//! (`T`) vertices merge their children's tree messages, finalize at their
//! height, and unicast to their tree parent (with the configured
//! retransmissions); delta (`M`) vertices convert arriving tree messages
//! (§5), fuse synopses from the level above, and broadcast — every
//! `M`-labeled ring neighbor one level down that hears the broadcast
//! folds it in. The base station evaluates whatever reaches it.
//!
//! Synopsis diffusion (SD) is exactly this runner on an all-multipath
//! labeling; the pure-TAG baseline [`run_tag_epoch`] runs the tree side
//! alone on an arbitrary (unrestricted) TAG tree.

use crate::envelope::{MpEnvelope, TreeEnvelope, TREE_OVERHEAD_WORDS};
use crate::protocol::Protocol;
use td_netsim::loss::{broadcast, unicast, LossModel, Retransmit};
use td_netsim::network::Network;
use td_netsim::node::{NodeId, BASE_STATION};
use td_netsim::stats::CommStats;
use td_sketches::rle as sketch_rle;
use td_topology::td::{Mode, TdTopology};
use td_topology::tree::Tree;

/// Runner knobs.
#[derive(Clone, Copy, Debug)]
pub struct RunnerConfig {
    /// Retransmission policy for tree (tributary) links. Multi-path
    /// broadcasts are never retransmitted (§7.4.3 lets *tree* nodes
    /// retransmit to equalize energy).
    pub tree_retransmit: Retransmit,
    /// Whether message accounting charges for the §4.2 adaptation fields
    /// (the in-band count sketch and the extremum reports). The
    /// non-adaptive baselines (TAG, SD) don't carry them.
    pub charge_adaptation_overhead: bool,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            tree_retransmit: Retransmit::default(),
            charge_adaptation_overhead: true,
        }
    }
}

/// What one epoch produced at the base station.
#[derive(Clone, Debug)]
pub struct EpochOutput<O> {
    /// The evaluated answer.
    pub output: O,
    /// Exact number of sensors whose data is accounted for
    /// (instrumentation ground truth).
    pub contributing: usize,
    /// The in-band estimate of the same quantity (what a real base
    /// station would see: exact tree counts, sketched delta counts).
    pub contributing_est: f64,
    /// Largest per-subtree non-contributions reported by switchable M
    /// vertices this epoch (drives TD expansion).
    pub max_noncontrib: crate::envelope::ExtremaSet,
    /// Smallest such reports (drives TD shrinking).
    pub min_noncontrib: crate::envelope::ExtremaSet,
}

/// Run one Tributary-Delta epoch. `stats` accumulates communication
/// accounting across epochs.
// Every parameter is load-bearing and callers always have all of them in
// hand (protocol, topology, channel, config, clock, accounting, rng);
// bundling into a context struct would just move the argument list.
#[allow(clippy::too_many_arguments)]
pub fn run_td_epoch<P: Protocol, M: LossModel, R: rand::Rng + ?Sized>(
    proto: &P,
    topo: &TdTopology,
    net: &Network,
    model: &M,
    config: RunnerConfig,
    epoch: u64,
    stats: &mut CommStats,
    rng: &mut R,
) -> EpochOutput<P::Output> {
    let rings = topo.rings();
    let tree = topo.tree();
    let heights = tree.heights();
    let subtree_sizes = tree.subtree_sizes();
    let n = net.len();

    let mut tree_inbox: Vec<Vec<TreeEnvelope<P::TreeMsg>>> = (0..n).map(|_| Vec::new()).collect();
    let mut mp_inbox: Vec<Vec<MpEnvelope<P::MpMsg>>> = (0..n).map(|_| Vec::new()).collect();

    for level in (1..=rings.max_level()).rev() {
        for u in rings.nodes_at_level(level) {
            match topo.mode(u) {
                Mode::T => {
                    let env = build_tree_envelope(
                        proto,
                        u,
                        heights[u.index()],
                        n,
                        std::mem::take(&mut tree_inbox[u.index()]),
                    );
                    let p = tree
                        .parent(u)
                        .expect("connected non-base T vertex has a parent");
                    let wire = env
                        .msg
                        .as_ref()
                        .map(|m| proto.tree_wire(m))
                        .unwrap_or_default();
                    let overhead = if config.charge_adaptation_overhead {
                        TREE_OVERHEAD_WORDS
                    } else {
                        0
                    };
                    let words = wire.words + overhead;
                    let outcome = unicast(model, config.tree_retransmit, u, p, net, epoch, rng);
                    stats.record_send(u, words * 4, words, outcome.attempts_used as u64);
                    if outcome.delivered {
                        tree_inbox[p.index()].push(env);
                    }
                }
                Mode::M => {
                    let env = build_mp_envelope(
                        proto,
                        topo,
                        u,
                        n,
                        subtree_sizes[u.index()] as u64,
                        std::mem::take(&mut tree_inbox[u.index()]),
                        std::mem::take(&mut mp_inbox[u.index()]),
                    );
                    let wire = env
                        .msg
                        .as_ref()
                        .map(|m| proto.mp_wire(m))
                        .unwrap_or_default();
                    // Adaptation overhead: the RLE-encoded count sketch
                    // plus the extremum reports.
                    let overhead_bytes = if config.charge_adaptation_overhead {
                        sketch_rle::encoded_size_bytes(&env.count_sketch)
                            + 8 * crate::envelope::TOP_K_EXTREMA
                    } else {
                        0
                    };
                    let bytes = wire.bytes + overhead_bytes;
                    let words = wire.words + overhead_bytes.div_ceil(4);
                    stats.record_send(u, bytes, words, 1);
                    let heard = broadcast(model, u, rings.receivers(u), net, epoch, rng);
                    for r in heard {
                        if topo.mode(r) == Mode::M {
                            mp_inbox[r.index()].push(env.clone());
                        }
                    }
                }
            }
        }
    }

    // Base station.
    let base_height = heights[BASE_STATION.index()];
    match topo.mode(BASE_STATION) {
        Mode::T => {
            let children = std::mem::take(&mut tree_inbox[BASE_STATION.index()]);
            let mut contributing = 0usize;
            let mut contributors = td_sketches::idset::IdSet::new(n);
            let mut parts = Vec::new();
            let mut exact_count = 0u64;
            for env in children {
                exact_count += env.count;
                contributors.union(&env.contributors);
                if let Some(m) = env.msg {
                    parts.push(m);
                }
            }
            contributing += contributors.len();
            EpochOutput {
                output: proto.evaluate(&parts, None, base_height),
                contributing,
                contributing_est: exact_count as f64,
                max_noncontrib: crate::envelope::ExtremaSet::largest(),
                min_noncontrib: crate::envelope::ExtremaSet::smallest(),
            }
        }
        Mode::M => {
            let env = build_mp_envelope(
                proto,
                topo,
                BASE_STATION,
                n,
                subtree_sizes[BASE_STATION.index()] as u64,
                std::mem::take(&mut tree_inbox[BASE_STATION.index()]),
                std::mem::take(&mut mp_inbox[BASE_STATION.index()]),
            );
            EpochOutput {
                output: proto.evaluate(&[], env.msg.as_ref(), base_height),
                contributing: env.contributors.len(),
                contributing_est: env.count_sketch.estimate(),
                max_noncontrib: env.max_noncontrib,
                min_noncontrib: env.min_noncontrib,
            }
        }
    }
}

/// Merge children + own local data into a tree envelope and finalize it.
fn build_tree_envelope<P: Protocol>(
    proto: &P,
    u: NodeId,
    height: u32,
    capacity: usize,
    children: Vec<TreeEnvelope<P::TreeMsg>>,
) -> TreeEnvelope<P::TreeMsg> {
    let mut env = TreeEnvelope::local(capacity, u, proto.local_tree(u));
    for child in children {
        env.absorb_counts(&child);
        if let Some(cm) = child.msg {
            match &mut env.msg {
                Some(m) => proto.merge_tree(m, &cm),
                None => env.msg = Some(cm),
            }
        }
    }
    env.msg = env.msg.take().map(|m| proto.finalize_tree(u, height, m));
    env.root = u;
    env
}

/// Convert + fuse everything an M vertex holds into one envelope,
/// reporting its subtree non-contribution when switchable.
fn build_mp_envelope<P: Protocol>(
    proto: &P,
    topo: &TdTopology,
    u: NodeId,
    capacity: usize,
    subtree_size: u64,
    tree_msgs: Vec<TreeEnvelope<P::TreeMsg>>,
    mp_msgs: Vec<MpEnvelope<P::MpMsg>>,
) -> MpEnvelope<P::MpMsg> {
    let mut env = MpEnvelope::local(capacity, u, proto.local_mp(u));
    // §4.2: a switchable M vertex is the root of a unique (all-tree)
    // subtree; it reports how many of its subtree's nodes are missing.
    if topo.is_switchable_m(u) {
        // Expected contributors below u: its whole static subtree minus u
        // itself (u's own contribution is in the local envelope already).
        let expected = subtree_size.saturating_sub(1);
        let received: u64 = tree_msgs.iter().map(|e| e.count).sum();
        env.report_noncontrib(u, expected.saturating_sub(received));
    }
    for te in tree_msgs {
        env.absorb_tree_counts(&te);
        if let Some(m) = &te.msg {
            let converted = proto.convert(te.root, m);
            match &mut env.msg {
                Some(acc) => proto.fuse(acc, &converted),
                None => env.msg = Some(converted),
            }
        }
    }
    for me in mp_msgs {
        env.fuse_counts(&me);
        if let Some(m) = me.msg {
            match &mut env.msg {
                Some(acc) => proto.fuse(acc, &m),
                None => env.msg = Some(m),
            }
        }
    }
    env
}

/// Run one epoch of the pure-TAG baseline over an arbitrary spanning tree
/// (parents may be at any lower level — no ring restriction).
#[allow(clippy::too_many_arguments)]
pub fn run_tag_epoch<P: Protocol, M: LossModel, R: rand::Rng + ?Sized>(
    proto: &P,
    tree: &Tree,
    net: &Network,
    model: &M,
    config: RunnerConfig,
    epoch: u64,
    stats: &mut CommStats,
    rng: &mut R,
) -> EpochOutput<P::Output> {
    let heights = tree.heights();
    let n = net.len();
    let mut inbox: Vec<Vec<TreeEnvelope<P::TreeMsg>>> = (0..n).map(|_| Vec::new()).collect();
    let mut base_children: Vec<TreeEnvelope<P::TreeMsg>> = Vec::new();

    for u in tree.bottom_up_order() {
        let env = build_tree_envelope(
            proto,
            u,
            heights[u.index()],
            n,
            std::mem::take(&mut inbox[u.index()]),
        );
        match tree.parent(u) {
            None => base_children.push(env),
            Some(p) => {
                let wire = env
                    .msg
                    .as_ref()
                    .map(|m| proto.tree_wire(m))
                    .unwrap_or_default();
                let overhead = if config.charge_adaptation_overhead {
                    TREE_OVERHEAD_WORDS
                } else {
                    0
                };
                let words = wire.words + overhead;
                let outcome = unicast(model, config.tree_retransmit, u, p, net, epoch, rng);
                stats.record_send(u, words * 4, words, outcome.attempts_used as u64);
                if outcome.delivered {
                    inbox[p.index()].push(env);
                }
            }
        }
    }

    let base_height = heights[BASE_STATION.index()];
    let mut contributors = td_sketches::idset::IdSet::new(n);
    let mut exact = 0u64;
    let mut parts = Vec::new();
    for env in base_children {
        exact += env.count;
        contributors.union(&env.contributors);
        if let Some(m) = env.msg {
            parts.push(m);
        }
    }
    EpochOutput {
        output: proto.evaluate(&parts, None, base_height),
        contributing: contributors.len(),
        contributing_est: exact as f64,
        max_noncontrib: crate::envelope::ExtremaSet::largest(),
        min_noncontrib: crate::envelope::ExtremaSet::smallest(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ScalarProtocol;
    use td_aggregates::count::Count;
    use td_aggregates::sum::Sum;
    use td_netsim::loss::{Global, NoLoss};
    use td_netsim::node::Position;
    use td_netsim::rng::rng_from_seed;
    use td_topology::bushy::{build_bushy_tree, BushyOptions};
    use td_topology::rings::Rings;

    fn topo(seed: u64, sensors: usize, delta_levels: u16) -> (Network, TdTopology) {
        let mut rng = rng_from_seed(seed);
        let net = Network::random_connected(
            sensors,
            20.0,
            20.0,
            Position::new(10.0, 10.0),
            3.0,
            &mut rng,
        );
        let rings = Rings::build(&net);
        let tree = build_bushy_tree(&net, &rings, BushyOptions::default(), &mut rng);
        (net.clone(), TdTopology::new(rings, tree, delta_levels))
    }

    #[test]
    fn all_tree_lossless_sum_is_exact() {
        let (net, td) = topo(121, 150, 0);
        let td = {
            // Force pure tree (base included).
            let rings = td.rings().clone();
            let tree = td.tree().clone();
            TdTopology::all_tree(rings, tree)
        };
        let values: Vec<u64> = (0..net.len() as u64).collect();
        let expect: f64 = values[1..].iter().sum::<u64>() as f64;
        let proto = ScalarProtocol::new(Sum::default(), &values);
        let mut stats = CommStats::new(net.len());
        let mut rng = rng_from_seed(122);
        let out = run_td_epoch(
            &proto,
            &td,
            &net,
            &NoLoss,
            RunnerConfig::default(),
            0,
            &mut stats,
            &mut rng,
        );
        assert_eq!(out.output, expect);
        assert_eq!(out.contributing, net.num_sensors());
        assert_eq!(out.contributing_est, net.num_sensors() as f64);
    }

    #[test]
    fn all_multipath_lossless_sum_approximate() {
        let (net, td) = topo(123, 150, 0);
        let td = TdTopology::all_multipath(td.rings().clone(), td.tree().clone());
        let values: Vec<u64> = vec![50; net.len()];
        let expect = 50.0 * net.num_sensors() as f64;
        let proto = ScalarProtocol::new(Sum::default(), &values);
        let mut stats = CommStats::new(net.len());
        let mut rng = rng_from_seed(124);
        let out = run_td_epoch(
            &proto,
            &td,
            &net,
            &NoLoss,
            RunnerConfig::default(),
            0,
            &mut stats,
            &mut rng,
        );
        let rel = (out.output - expect).abs() / expect;
        assert!(rel < 0.4, "sum {} expect {expect}", out.output);
        assert_eq!(out.contributing, net.num_sensors());
    }

    #[test]
    fn mixed_topology_lossless_accounts_everyone() {
        for delta_levels in [1u16, 2, 3] {
            let (net, td) = topo(125, 200, delta_levels);
            let values: Vec<u64> = vec![1; net.len()];
            let proto = ScalarProtocol::new(Count::default(), &values);
            let mut stats = CommStats::new(net.len());
            let mut rng = rng_from_seed(126);
            let out = run_td_epoch(
                &proto,
                &td,
                &net,
                &NoLoss,
                RunnerConfig::default(),
                0,
                &mut stats,
                &mut rng,
            );
            assert_eq!(
                out.contributing,
                net.num_sensors(),
                "delta_levels={delta_levels}"
            );
            let rel = (out.output - net.num_sensors() as f64).abs() / net.num_sensors() as f64;
            assert!(rel < 0.4, "count {} at delta {delta_levels}", out.output);
        }
    }

    #[test]
    fn lossy_td_beats_lossy_tag_on_contribution() {
        let (net, td) = topo(127, 300, 3);
        let values: Vec<u64> = vec![1; net.len()];
        let model = Global::new(0.25);
        let mut td_contrib = 0usize;
        let mut tag_contrib = 0usize;
        let epochs = 20;
        let mut rng = rng_from_seed(128);
        let mut stats = CommStats::new(net.len());
        for e in 0..epochs {
            let proto = ScalarProtocol::new(Count::default(), &values);
            let out = run_td_epoch(
                &proto,
                &td,
                &net,
                &model,
                RunnerConfig::default(),
                e,
                &mut stats,
                &mut rng,
            );
            td_contrib += out.contributing;
            let out = run_tag_epoch(
                &proto,
                td.tree(),
                &net,
                &model,
                RunnerConfig::default(),
                e,
                &mut stats,
                &mut rng,
            );
            tag_contrib += out.contributing;
        }
        assert!(
            td_contrib > tag_contrib,
            "TD {td_contrib} <= TAG {tag_contrib}"
        );
    }

    #[test]
    fn switchable_m_vertices_report_noncontrib_under_loss() {
        let (net, td) = topo(129, 250, 2);
        let values: Vec<u64> = vec![1; net.len()];
        let proto = ScalarProtocol::new(Count::default(), &values);
        let mut stats = CommStats::new(net.len());
        let mut rng = rng_from_seed(130);
        let out = run_td_epoch(
            &proto,
            &td,
            &net,
            &Global::new(0.5),
            RunnerConfig::default(),
            0,
            &mut stats,
            &mut rng,
        );
        // Under 50% loss some subtree must be missing nodes, and the
        // extrema must have bubbled up (the base station fuses them).
        if let Some(max) = out.max_noncontrib.best() {
            assert!(max.value > 0);
            assert!(td.is_switchable_m(max.node) || td.mode(max.node) == Mode::M);
        }
        assert!(out.contributing < net.num_sensors());
    }

    #[test]
    fn tag_retransmissions_help() {
        let (net, td) = topo(131, 200, 0);
        let tree = td.tree();
        let values: Vec<u64> = vec![1; net.len()];
        let model = Global::new(0.3);
        let mut plain = 0usize;
        let mut retried = 0usize;
        for e in 0..10 {
            let proto = ScalarProtocol::new(Count::default(), &values);
            let mut stats = CommStats::new(net.len());
            let mut rng = rng_from_seed(1000 + e);
            plain += run_tag_epoch(
                &proto,
                tree,
                &net,
                &model,
                RunnerConfig::default(),
                e,
                &mut stats,
                &mut rng,
            )
            .contributing;
            let mut rng = rng_from_seed(1000 + e);
            retried += run_tag_epoch(
                &proto,
                tree,
                &net,
                &model,
                RunnerConfig {
                    tree_retransmit: Retransmit { retries: 2 },
                    ..RunnerConfig::default()
                },
                e,
                &mut stats,
                &mut rng,
            )
            .contributing;
        }
        assert!(retried > plain, "retransmit {retried} <= plain {plain}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (net, td) = topo(132, 150, 2);
        let values: Vec<u64> = (0..net.len() as u64).map(|i| i % 100).collect();
        let run = |seed: u64| {
            let proto = ScalarProtocol::new(Sum::default(), &values);
            let mut stats = CommStats::new(net.len());
            let mut rng = rng_from_seed(seed);
            let out = run_td_epoch(
                &proto,
                &td,
                &net,
                &Global::new(0.2),
                RunnerConfig::default(),
                0,
                &mut stats,
                &mut rng,
            );
            (out.output, out.contributing, stats.total_bytes())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }
}
