//! Multi-query aggregation sessions: the engine every experiment and
//! deployment entry point drives.
//!
//! A [`Session`] owns a scheme's topology state (a TAG tree, a rings
//! labeling, or an adapting Tributary-Delta labeling), runs one epoch at
//! a time against a caller-supplied [`QuerySet`], applies adaptation on
//! the paper's cadence (every 10 epochs by default), and accumulates
//! communication statistics. Sessions are built with [`SessionBuilder`];
//! any number of heterogeneous queries — scalar aggregates next to
//! frequent-items — register on one session and are all answered by a
//! **single per-epoch traversal** ([`Session::run_set`]), sharing the
//! contributor envelope, in-band count sketch, and adaptation signal.
//! [`Session::run_epoch`] remains as the one-query convenience and runs
//! through the same bundled engine, so a dedicated session and a bundled
//! one produce bit-identical per-query answers under the same seed.
//!
//! ## Plan cache: compile, reuse, patch
//!
//! The session compiles its [`EpochPlan`] once and reuses it while the
//! topology version holds still. When adaptation relabels vertices it
//! does **not** recompile: the cached plan is patched in place from the
//! topology's recorded deltas ([`EpochPlan::patch`]) — O(|delta|) work
//! against O(network) for a compile, with every arena reused — falling
//! back to a full recompile only past the
//! [`SessionConfig::patch_relabel_fraction`] threshold (default 25% of
//! the network) or when the delta log no longer covers the gap. All
//! three paths (reuse, patch, recompile) are bit-identical by
//! construction; [`Session::plan_stats`] counts how often each ran.
//!
//! The four schemes of §7:
//!
//! * [`Scheme::Tag`] — tree aggregation on a standard TAG tree \[10\];
//! * [`Scheme::Sd`] — synopsis diffusion over rings \[16\] (an all-delta
//!   labeling, no adaptation);
//! * [`Scheme::TdCoarse`] / [`Scheme::Td`] — Tributary-Delta with the
//!   §4.2 coarse / fine-grained strategies.

use crate::adapt::{AdaptAction, Adapter, AdapterConfig, Strategy};
use crate::protocol::Protocol;
use crate::query::{Answers, QuerySet};
use crate::runner::{EpochPlan, RunnerConfig};
use td_netsim::churn::ChurnEvents;
use td_netsim::loss::LossModel;
// NOTE: event macros are invoked fully-qualified
// (`td_telemetry::td_event!`) so the `--no-default-features` build —
// where they expand to nothing — leaves no unused imports behind.
use td_netsim::network::Network;
use td_netsim::stats::CommStats;
use td_telemetry::phase::{self, Phase};
use td_topology::bushy::{build_bushy_tree, BushyOptions};
use td_topology::maintenance::{apply_churn, ChurnReport};
use td_topology::rings::Rings;
use td_topology::td::TdTopology;
use td_topology::tree::{build_tag_tree, ParentSelection, Tree};

/// The aggregation scheme a session runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scheme {
    /// Tree aggregation (TAG).
    Tag,
    /// Synopsis diffusion over rings (SD).
    Sd,
    /// Tributary-Delta, coarse-grained adaptation.
    TdCoarse,
    /// Tributary-Delta, fine-grained adaptation.
    Td,
}

impl Scheme {
    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Tag => "TAG",
            Scheme::Sd => "SD",
            Scheme::TdCoarse => "TD-Coarse",
            Scheme::Td => "TD",
        }
    }

    /// All four schemes in the paper's plotting order.
    pub fn all() -> [Scheme; 4] {
        [Scheme::Tag, Scheme::Sd, Scheme::TdCoarse, Scheme::Td]
    }

    /// Stable per-scheme index (the position in [`Scheme::all`]) — the
    /// collision-free salt for deriving independent RNG substreams per
    /// scheme (display names don't work: `"SD"` and `"TD"` share a
    /// length).
    pub fn index(self) -> u64 {
        match self {
            Scheme::Tag => 0,
            Scheme::Sd => 1,
            Scheme::TdCoarse => 2,
            Scheme::Td => 3,
        }
    }
}

/// Session configuration.
#[derive(Clone, Copy, Debug)]
pub struct SessionConfig {
    /// The scheme to run.
    pub scheme: Scheme,
    /// Adaptation knobs (TD schemes only).
    pub adapter: AdapterConfig,
    /// Runner knobs (retransmissions).
    pub runner: RunnerConfig,
    /// Initial delta radius in ring levels (TD schemes; 0 = base only).
    pub initial_delta_levels: u16,
    /// Whether adaptation reads the instrumented exact contribution
    /// (default) or the in-band sketched estimate (protocol-faithful,
    /// noisier — the ablation benches compare both).
    pub use_exact_contrib_signal: bool,
    /// Whether the TAG tree may pick same-level parents (§6.1.3 notes the
    /// standard algorithm allows it; hurts the domination factor).
    pub tag_allow_same_level: bool,
    /// Patch-vs-recompile threshold for the cached epoch plan: when
    /// adaptation relabels at most this fraction of the network since
    /// the plan's version, the plan is patched in place
    /// ([`EpochPlan::patch`]); past it — or when the topology's delta
    /// log no longer covers the gap — the plan is recompiled. 0 forces
    /// recompilation always (the patch-ablation escape hatch).
    pub patch_relabel_fraction: f64,
}

impl SessionConfig {
    /// The paper's defaults for a scheme: 90% threshold, adapt every 10
    /// epochs, delta starting at the base station's first ring.
    pub fn paper_defaults(scheme: Scheme) -> Self {
        let strategy = match scheme {
            Scheme::TdCoarse => Strategy::TdCoarse,
            _ => Strategy::Td,
        };
        SessionConfig {
            scheme,
            adapter: AdapterConfig {
                strategy,
                ..AdapterConfig::default()
            },
            runner: RunnerConfig {
                // The non-adaptive baselines carry no adaptation fields.
                charge_adaptation_overhead: matches!(scheme, Scheme::TdCoarse | Scheme::Td),
                ..RunnerConfig::default()
            },
            initial_delta_levels: 1,
            use_exact_contrib_signal: true,
            tag_allow_same_level: false,
            patch_relabel_fraction: 0.25,
        }
    }
}

/// Counters for the session's plan-cache maintenance: how often the
/// cached [`EpochPlan`] was compiled from scratch versus patched in
/// place after adaptation ([`EpochPlan::patch`]), and how many vertex
/// relabels the patches absorbed. Kept outside [`CommStats`] on
/// purpose — plan maintenance is simulator work, not radio traffic, and
/// the determinism tests pin `CommStats` equality across cache
/// strategies that *should* differ here.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Full compilations (initial build, fallback past the patch
    /// threshold, delta log exhausted, or [`Session::clear_cached_plan`]).
    pub compiles: u64,
    /// In-place patches after adaptation relabeled the topology.
    pub patches: u64,
    /// Total vertices relabeled across all patches.
    pub patched_relabels: u64,
}

/// One-line summary — what bench log lines print.
impl std::fmt::Display for PlanCacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} compiles, {} patches ({} relabels absorbed)",
            self.compiles, self.patches, self.patched_relabels
        )
    }
}

/// Fluent constructor for [`Session`]s: start from a scheme's paper
/// defaults, override what the deployment needs, and [`build`] against a
/// network.
///
/// ```ignore
/// let mut session = SessionBuilder::new(Scheme::Td)
///     .threshold(0.85)
///     .adapt_every(5)
///     .build(&net, &mut rng);
/// ```
///
/// [`build`]: SessionBuilder::build
#[derive(Clone, Copy, Debug)]
pub struct SessionBuilder {
    config: SessionConfig,
}

impl SessionBuilder {
    /// Start from the paper's defaults for `scheme`.
    pub fn new(scheme: Scheme) -> Self {
        SessionBuilder {
            config: SessionConfig::paper_defaults(scheme),
        }
    }

    /// Start from an explicit configuration.
    pub fn from_config(config: SessionConfig) -> Self {
        SessionBuilder { config }
    }

    /// Minimum fraction of nodes that must contribute (paper: 0.9).
    pub fn threshold(mut self, threshold: f64) -> Self {
        self.config.adapter.threshold = threshold;
        self
    }

    /// Epochs between adaptation decisions (paper: 10).
    pub fn adapt_every(mut self, epochs: u64) -> Self {
        self.config.adapter.adapt_every = epochs;
        self
    }

    /// Retries after a failed tree unicast (0 = plain).
    pub fn tree_retransmit(mut self, retries: u32) -> Self {
        self.config.runner.tree_retransmit = td_netsim::loss::Retransmit { retries };
        self
    }

    /// Initial delta radius in ring levels (TD schemes).
    pub fn initial_delta_levels(mut self, levels: u16) -> Self {
        self.config.initial_delta_levels = levels;
        self
    }

    /// Drive adaptation from the in-band sketched count instead of the
    /// instrumented exact contribution (protocol-faithful, noisier).
    pub fn in_band_signal(mut self) -> Self {
        self.config.use_exact_contrib_signal = false;
        self
    }

    /// Allow same-level parents in the TAG tree (§6.1.3).
    pub fn tag_allow_same_level(mut self, allow: bool) -> Self {
        self.config.tag_allow_same_level = allow;
        self
    }

    /// Max fraction of the network adaptation may relabel before the
    /// cached plan is recompiled instead of patched (0 = always
    /// recompile; paper-default 0.25).
    pub fn patch_relabel_fraction(mut self, fraction: f64) -> Self {
        self.config.patch_relabel_fraction = fraction;
        self
    }

    /// Intra-epoch worker count for the level-parallel executor.
    ///
    /// Each schedule level's senders are split into deterministic
    /// id-order chunks across this many workers (the calling thread
    /// plus `workers - 1` scoped threads), with a barrier per level;
    /// per-shard stats and inbox writes merge back in step order, so
    /// **every worker count produces bit-identical results** — this
    /// knob trades wall-clock only. `0` (the default) uses every
    /// available core; `1` is the exact sequential path. Networks
    /// smaller than [`parallel_min_nodes`](Self::parallel_min_nodes)
    /// stay sequential regardless.
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.runner.workers = workers;
        self
    }

    /// Node-count floor below which epochs run sequentially even with
    /// `workers > 1` (default 512 — below that the per-level fan-out
    /// costs more than it saves, and the result is identical anyway).
    pub fn parallel_min_nodes(mut self, min_nodes: usize) -> Self {
        self.config.runner.parallel_min_nodes = min_nodes;
        self
    }

    /// The configuration as currently assembled.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// Build the session over `net`. Topology construction draws from
    /// `rng` (deterministic given the seed stream).
    pub fn build<R: rand::Rng + ?Sized>(self, net: &Network, rng: &mut R) -> Session {
        Session::new(self.config, net, rng)
    }
}

enum SessionKind {
    Tag {
        tree: Tree,
    },
    // Boxed: the labeled topology is ~3x the TAG variant's size.
    Td {
        topo: Box<TdTopology>,
        adapter: Option<Adapter>,
    },
}

/// A running aggregation session.
pub struct Session {
    config: SessionConfig,
    net: Network,
    kind: SessionKind,
    stats: CommStats,
    sensors: usize,
    /// The compiled epoch plan, reused across epochs. Steady-state
    /// epochs run schedule-recomputation-free and reuse the plan's
    /// inbox/bundle arenas; when adaptation relabels the topology the
    /// plan is **patched in place** from the topology's delta log
    /// (arenas untouched), recompiling only when the relabel set
    /// exceeds [`SessionConfig::patch_relabel_fraction`] or the log no
    /// longer covers the gap.
    plan: Option<EpochPlan>,
    /// Compile/patch counters for the cached plan.
    plan_stats: PlanCacheStats,
}

/// The per-epoch record a session reports for a single-query run.
#[derive(Clone, Debug)]
pub struct EpochRecord<O> {
    /// The evaluated answer.
    pub output: O,
    /// Exact number of contributing sensors.
    pub contributing: usize,
    /// Fraction of (connected) sensors contributing.
    pub pct_contributing: f64,
    /// Current delta size (0 for TAG).
    pub delta_size: usize,
    /// What adaptation did after this epoch.
    pub action: AdaptAction,
}

/// The per-epoch record of a multi-query run: every registered query's
/// answer (fetched through its [`crate::query::QueryHandle`]) plus the
/// instrumentation every query shares.
#[derive(Debug)]
pub struct QueryRecord {
    /// Per-query answers, indexed by handle.
    pub answers: Answers,
    /// Exact number of contributing sensors (shared by all queries).
    pub contributing: usize,
    /// Fraction of (connected) sensors contributing.
    pub pct_contributing: f64,
    /// Current delta size (0 for TAG).
    pub delta_size: usize,
    /// What adaptation did after this epoch.
    pub action: AdaptAction,
}

impl Session {
    /// Create a session over a network. Topology construction draws from
    /// `rng` (deterministic given the seed stream).
    pub fn new<R: rand::Rng + ?Sized>(config: SessionConfig, net: &Network, rng: &mut R) -> Self {
        let kind = match config.scheme {
            Scheme::Tag => SessionKind::Tag {
                tree: build_tag_tree(
                    net,
                    ParentSelection::Random,
                    None,
                    config.tag_allow_same_level,
                    rng,
                ),
            },
            Scheme::Sd => {
                let rings = Rings::build(net);
                let tree = build_bushy_tree(net, &rings, BushyOptions::default(), rng);
                SessionKind::Td {
                    topo: Box::new(TdTopology::all_multipath(rings, tree)),
                    adapter: None,
                }
            }
            Scheme::TdCoarse | Scheme::Td => {
                let rings = Rings::build(net);
                let tree = build_bushy_tree(net, &rings, BushyOptions::default(), rng);
                let topo = Box::new(TdTopology::new(rings, tree, config.initial_delta_levels));
                SessionKind::Td {
                    topo,
                    adapter: Some(Adapter::new(config.adapter)),
                }
            }
        };
        let sensors = match &kind {
            SessionKind::Tag { tree } => tree.tree_size().saturating_sub(1),
            SessionKind::Td { topo, .. } => topo.rings().connected_count().saturating_sub(1),
        };
        Session {
            config,
            net: net.clone(),
            kind,
            stats: CommStats::new(net.len()),
            sensors,
            plan: None,
            plan_stats: PlanCacheStats::default(),
        }
    }

    /// Start building a session for `scheme` (paper defaults).
    pub fn builder(scheme: Scheme) -> SessionBuilder {
        SessionBuilder::new(scheme)
    }

    /// Convenience: a session with the paper's defaults for `scheme`.
    pub fn with_paper_defaults<R: rand::Rng + ?Sized>(
        scheme: Scheme,
        net: &Network,
        rng: &mut R,
    ) -> Self {
        Session::new(SessionConfig::paper_defaults(scheme), net, rng)
    }

    /// Number of connected sensors (the `% contributing` denominator).
    pub fn sensors(&self) -> usize {
        self.sensors
    }

    /// Accumulated communication statistics.
    pub fn stats(&self) -> &CommStats {
        &self.stats
    }

    /// The session's live configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// Current delta membership (empty for TAG), for Figure 4.
    pub fn delta_nodes(&self) -> Vec<td_netsim::node::NodeId> {
        match &self.kind {
            SessionKind::Tag { .. } => Vec::new(),
            SessionKind::Td { topo, .. } => topo.delta_nodes().collect(),
        }
    }

    /// Current delta size (0 for TAG) without collecting the membership.
    pub fn delta_size(&self) -> usize {
        match &self.kind {
            SessionKind::Tag { .. } => 0,
            SessionKind::Td { topo, .. } => topo.delta_size(),
        }
    }

    /// Plan-cache maintenance counters: full compiles vs in-place
    /// patches (and the relabels the patches absorbed). The win of the
    /// incremental path is `patches / (patches + compiles)` trending
    /// toward 1 for an adapting session.
    pub fn plan_stats(&self) -> PlanCacheStats {
        self.plan_stats
    }

    /// The Tributary-Delta topology, when the scheme has one.
    pub fn topology(&self) -> Option<&TdTopology> {
        match &self.kind {
            SessionKind::Tag { .. } => None,
            SessionKind::Td { topo, .. } => Some(topo),
        }
    }

    /// The adapter's current damping multiplier, when the scheme adapts.
    pub fn adapter_damping(&self) -> Option<u64> {
        match &self.kind {
            SessionKind::Td {
                adapter: Some(a), ..
            } => Some(a.damping()),
            _ => None,
        }
    }

    /// Drop the cached [`EpochPlan`], forcing the next epoch to
    /// recompile from the topology (patching needs a live plan, so this
    /// bypasses the patch path too). Results are unaffected (the
    /// rebuild, reuse, and patch paths are bit-identical); this exists
    /// so benchmarks and tests can drive the per-epoch-rebuild path
    /// explicitly.
    pub fn clear_cached_plan(&mut self) {
        self.plan = None;
    }

    /// Override the intra-epoch worker count mid-flight (see
    /// [`SessionBuilder::workers`]; results are bit-identical on any
    /// value, so this is always safe). The service layer uses it to pin
    /// tenants serial — tenant-level parallelism already fills the
    /// cores there.
    pub fn set_workers(&mut self, workers: usize) {
        self.config.runner.workers = workers;
    }

    /// Apply one epoch's churn events **before** running that epoch:
    /// re-route the aggregation structure around the departed nodes and
    /// record the membership change in [`stats`](Self::stats) (so
    /// per-epoch snapshots attribute churn to the right panes).
    ///
    /// * TD/SD schemes route around churn as a **bounded structural
    ///   delta** ([`td_topology::maintenance::apply_churn`] →
    ///   [`TdTopology::switch_parents`]): orphaned children re-parent
    ///   onto surviving ring receivers, rejoining nodes re-attach, and
    ///   the cached epoch plan **patches in place** on the next epoch
    ///   exactly like an adaptation relabel — counted in
    ///   [`plan_stats`](Self::plan_stats), bit-identical to a rebuild.
    /// * TAG re-parents orphans onto surviving radio neighbors one tree
    ///   depth up and recompiles its (cheap, label-free) plan — TAG
    ///   trees are not ring-restricted, so a parent switch there may
    ///   change depths and the bottom-up order.
    ///
    /// The policy is deterministic (no RNG draws), so churn-afflicted
    /// runs replay bit-for-bit and schemes stay comparable. The caller
    /// still decides how absent nodes sound on the channel — wrap the
    /// epoch's loss model in
    /// [`ChurnLoss`](td_netsim::churn::ChurnLoss) (or anything
    /// equivalent); the session only handles structure and accounting.
    pub fn apply_churn(&mut self, events: &ChurnEvents) -> ChurnReport {
        self.stats
            .record_churn(events.joined.len() as u64, events.left.len() as u64);
        match &mut self.kind {
            SessionKind::Td { topo, .. } => {
                apply_churn(topo, &events.left, &events.joined, &events.absent)
            }
            SessionKind::Tag { tree } => {
                let mut absent = vec![false; tree.len()];
                for n in &events.absent {
                    if n.index() < absent.len() {
                        absent[n.index()] = true;
                    }
                }
                let mut report = ChurnReport::default();
                let mut moves: Vec<(td_netsim::node::NodeId, td_netsim::node::NodeId)> = Vec::new();
                {
                    let tree = &*tree;
                    // Lowest-id present radio neighbor one depth up (the
                    // depth a parent must sit at, so the switch is legal).
                    let best = |c: td_netsim::node::NodeId, avoid: td_netsim::node::NodeId| {
                        let need = tree.depth(c)?.checked_sub(1)?;
                        self.net.neighbors(c).iter().copied().find(|&n| {
                            n != avoid && !absent[n.index()] && tree.depth(n) == Some(need)
                        })
                    };
                    for &u in &events.left {
                        if u.index() >= tree.len() {
                            continue;
                        }
                        for &c in tree.children(u) {
                            match best(c, u) {
                                Some(b) => {
                                    moves.push((c, b));
                                    report.reparented += 1;
                                }
                                None => report.stranded += 1,
                            }
                        }
                    }
                    for &j in &events.joined {
                        let Some(p) = tree.parent(j) else { continue };
                        if !absent[p.index()] {
                            continue;
                        }
                        if let Some(b) = best(j, p) {
                            moves.push((j, b));
                            report.rejoined += 1;
                        }
                    }
                }
                for &(c, p) in &moves {
                    tree.switch_parent(c, p);
                }
                if !moves.is_empty() {
                    // TAG plans carry no version/delta machinery; a
                    // structural change recompiles the (small) plan.
                    self.plan = None;
                }
                report
            }
        }
    }

    /// The TAG tree, when the scheme is TAG.
    pub fn tag_tree(&self) -> Option<&Tree> {
        match &self.kind {
            SessionKind::Tag { tree } => Some(tree),
            SessionKind::Td { .. } => None,
        }
    }

    /// Run one epoch carrying **every** query in `set` through a single
    /// topology traversal, then adapt if due.
    ///
    /// The protocols in `set` hold this epoch's readings; answers come
    /// back through the handles returned at registration. The adaptation
    /// signal (contributing fraction, non-contribution extrema) is
    /// computed once from the shared envelope and applied once — exactly
    /// as a single-query epoch would.
    pub fn run_set<M: LossModel, R: rand::Rng + ?Sized>(
        &mut self,
        set: &QuerySet<'_>,
        model: &M,
        epoch: u64,
        rng: &mut R,
    ) -> QueryRecord {
        match &mut self.kind {
            SessionKind::Tag { tree } => {
                // The TAG tree never changes: compile the plan once.
                if self.plan.is_none() {
                    let sw = phase::stopwatch();
                    self.plan = Some(EpochPlan::compile_tag(tree));
                    phase::record(Phase::Compile, sw);
                    self.plan_stats.compiles += 1;
                }
                let plan = self.plan.as_mut().expect("plan just ensured");
                let out = plan.run_set(
                    set,
                    &self.net,
                    model,
                    self.config.runner,
                    epoch,
                    &mut self.stats,
                    rng,
                );
                let pct = out.contributing as f64 / self.sensors.max(1) as f64;
                td_telemetry::td_event!(
                    td_telemetry::Level::Debug,
                    "session",
                    "epoch",
                    td_telemetry::LogicalClock::at_epoch(epoch),
                    scheme = "tag",
                    contributing = out.contributing,
                    pct = pct,
                );
                QueryRecord {
                    answers: Answers::new(out.outputs),
                    contributing: out.contributing,
                    pct_contributing: pct,
                    delta_size: 0,
                    action: AdaptAction::Idle,
                }
            }
            SessionKind::Td { topo, adapter } => {
                // Reuse the cached plan while the labeling holds still.
                // After adaptation bumped the version, patch the plan in
                // place from the topology's delta log (O(|delta|), all
                // arenas reused); recompile only when the relabel set is
                // too large or the log no longer covers the gap.
                let stale = self
                    .plan
                    .as_ref()
                    .is_none_or(|p| p.compiled_version() != Some(topo.version()));
                if stale {
                    let max_relabels =
                        (topo.len() as f64 * self.config.patch_relabel_fraction).floor() as usize;
                    let sw = phase::stopwatch();
                    let patched = self
                        .plan
                        .as_mut()
                        .and_then(|plan| plan.patch(topo, max_relabels));
                    match patched {
                        Some(relabels) => {
                            phase::record(Phase::Patch, sw);
                            self.plan_stats.patches += 1;
                            self.plan_stats.patched_relabels += relabels as u64;
                            debug_assert_eq!(
                                self.plan
                                    .as_ref()
                                    .expect("just patched")
                                    .structural_digest(),
                                EpochPlan::compile_td(topo).structural_digest(),
                                "patched plan diverged from a fresh compile"
                            );
                        }
                        None => {
                            // The failed patch probe is O(|delta|) and
                            // aborts early; attribute the whole
                            // resolution to the compile that follows.
                            let sw = phase::stopwatch();
                            self.plan = Some(EpochPlan::compile_td(topo));
                            phase::record(Phase::Compile, sw);
                            self.plan_stats.compiles += 1;
                        }
                    }
                }
                let plan = self.plan.as_mut().expect("plan just ensured");
                let out = plan.run_set(
                    set,
                    &self.net,
                    model,
                    self.config.runner,
                    epoch,
                    &mut self.stats,
                    rng,
                );
                let pct_exact = out.contributing as f64 / self.sensors.max(1) as f64;
                let pct_signal = if self.config.use_exact_contrib_signal {
                    pct_exact
                } else {
                    out.contributing_est / self.sensors.max(1) as f64
                };
                let action = match adapter {
                    Some(a) => a.step(
                        topo,
                        epoch,
                        pct_signal,
                        &out.max_noncontrib,
                        &out.min_noncontrib,
                    ),
                    None => AdaptAction::Idle,
                };
                td_telemetry::td_event!(
                    td_telemetry::Level::Debug,
                    "session",
                    "epoch",
                    td_telemetry::LogicalClock::at_epoch(epoch),
                    scheme = "td",
                    contributing = out.contributing,
                    pct = pct_exact,
                    delta = topo.delta_size(),
                );
                QueryRecord {
                    answers: Answers::new(out.outputs),
                    contributing: out.contributing,
                    pct_contributing: pct_exact,
                    delta_size: topo.delta_size(),
                    action,
                }
            }
        }
    }

    /// Run one epoch with a single typed query (a one-entry
    /// [`QuerySet`] through the same bundled engine, so the answer is
    /// bit-identical to the same query registered in a larger set).
    pub fn run_epoch<P: Protocol, M: LossModel, R: rand::Rng + ?Sized>(
        &mut self,
        proto: &P,
        model: &M,
        epoch: u64,
        rng: &mut R,
    ) -> EpochRecord<P::Output> {
        let mut set = QuerySet::new();
        let handle = set.register(proto);
        let mut rec = self.run_set(&set, model, epoch, rng);
        EpochRecord {
            output: rec.answers.take(handle),
            contributing: rec.contributing,
            pct_contributing: rec.pct_contributing,
            delta_size: rec.delta_size,
            action: rec.action,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{FreqProtocol, ScalarProtocol};
    use td_aggregates::count::Count;
    use td_aggregates::sum::Sum;
    use td_frequent::items::ItemBag;
    use td_frequent::multipath::MultipathConfig;
    use td_netsim::loss::{Global, NoLoss, Regional};
    use td_netsim::node::{Position, Rect};
    use td_netsim::rng::rng_from_seed;
    use td_quantiles::gradient::MinTotalLoad;
    use td_sketches::counter::ExactFactory;

    fn net(seed: u64, sensors: usize) -> Network {
        let mut rng = rng_from_seed(seed);
        Network::random_connected(
            sensors,
            20.0,
            20.0,
            Position::new(10.0, 10.0),
            2.5,
            &mut rng,
        )
    }

    #[test]
    fn all_schemes_run_and_account_everyone_lossless() {
        let net = net(151, 300);
        let values: Vec<u64> = vec![1; net.len()];
        for scheme in Scheme::all() {
            let mut rng = rng_from_seed(152);
            let mut session = Session::with_paper_defaults(scheme, &net, &mut rng);
            let proto = ScalarProtocol::new(Count::default(), &values);
            let rec = session.run_epoch(&proto, &NoLoss, 0, &mut rng);
            assert_eq!(
                rec.contributing,
                net.num_sensors(),
                "{} lost nodes without loss",
                scheme.name()
            );
        }
    }

    #[test]
    fn builder_overrides_land_in_config() {
        let b = SessionBuilder::new(Scheme::Td)
            .threshold(0.8)
            .adapt_every(5)
            .tree_retransmit(2)
            .initial_delta_levels(3)
            .in_band_signal()
            .tag_allow_same_level(true)
            .workers(4)
            .parallel_min_nodes(64);
        let cfg = b.config();
        assert_eq!(cfg.adapter.threshold, 0.8);
        assert_eq!(cfg.adapter.adapt_every, 5);
        assert_eq!(cfg.runner.tree_retransmit.retries, 2);
        assert_eq!(cfg.initial_delta_levels, 3);
        assert!(!cfg.use_exact_contrib_signal);
        assert!(cfg.tag_allow_same_level);
        assert_eq!(cfg.runner.workers, 4);
        assert_eq!(cfg.runner.parallel_min_nodes, 64);

        let network = net(161, 150);
        let mut rng = rng_from_seed(162);
        let mut session = b.build(&network, &mut rng);
        assert!(session.topology().is_some());
        session.set_workers(1);
        assert_eq!(session.config().runner.workers, 1);
    }

    #[test]
    fn td_expands_under_loss_until_threshold_met() {
        let net = net(153, 400);
        let values: Vec<u64> = vec![10; net.len()];
        let mut rng = rng_from_seed(154);
        let mut session = Session::with_paper_defaults(Scheme::TdCoarse, &net, &mut rng);
        let model = Global::new(0.25);
        let mut grew = false;
        let initial_delta = session.delta_nodes().len();
        let epochs = 200u64;
        let mut tail_pct = Vec::new();
        for epoch in 0..epochs {
            let proto = ScalarProtocol::new(Sum::default(), &values);
            let rec = session.run_epoch(&proto, &model, epoch, &mut rng);
            if rec.delta_size > initial_delta {
                grew = true;
            }
            if epoch >= epochs - 50 {
                tail_pct.push(rec.pct_contributing);
            }
        }
        assert!(grew, "delta never expanded under 25% loss");
        // Per-epoch contribution is noisy under 25% loss, so assert on
        // the settled mean rather than a single final epoch.
        let mean = tail_pct.iter().sum::<f64>() / tail_pct.len() as f64;
        assert!(
            mean >= 0.75,
            "mean contribution {mean} still low after adaptation"
        );
    }

    #[test]
    fn td_fine_localizes_to_failure_region() {
        // Regional failure in one quadrant with an otherwise healthy
        // network: the TD delta should concentrate in the quadrant. (When
        // the outside loss alone already pushes tree delivery below the
        // 90% target, global expansion is the *correct* response — see
        // the Figure 4(b) discussion — so this test keeps outside loss
        // small to isolate the localization behaviour.) A single seeded
        // run has high variance, so enrichment is averaged over three
        // deployments.
        let region = Rect::from_coords(0.0, 0.0, 10.0, 10.0);
        let model = Regional::new(region, 0.3, 0.005);
        let mut enrichment = Vec::new();
        for (net_seed, run_seed) in [(155u64, 156u64), (255, 256), (355, 356)] {
            let net = net(net_seed, 400);
            let values: Vec<u64> = vec![1; net.len()];
            let mut rng = rng_from_seed(run_seed);
            let mut session = Session::with_paper_defaults(Scheme::Td, &net, &mut rng);
            for epoch in 0..150 {
                let proto = ScalarProtocol::new(Count::default(), &values);
                session.run_epoch(&proto, &model, epoch, &mut rng);
            }
            let delta = session.delta_nodes();
            assert!(delta.len() > 1, "TD delta never grew (net {net_seed})");
            let inside = delta
                .iter()
                .filter(|&&n| region.contains(net.position(n)))
                .count();
            enrichment.push(inside as f64 / delta.len() as f64);
        }
        let mean = enrichment.iter().sum::<f64>() / enrichment.len() as f64;
        // The failure quadrant holds ~25% of nodes; a localized delta
        // should be clearly enriched beyond that on average.
        assert!(
            mean > 0.32,
            "TD delta not localized: enrichment {enrichment:?}"
        );
    }

    #[test]
    fn sd_never_adapts() {
        let net = net(157, 200);
        let values: Vec<u64> = vec![1; net.len()];
        let mut rng = rng_from_seed(158);
        let mut session = Session::with_paper_defaults(Scheme::Sd, &net, &mut rng);
        let before = session.delta_nodes().len();
        for epoch in 0..30 {
            let proto = ScalarProtocol::new(Count::default(), &values);
            let rec = session.run_epoch(&proto, &Global::new(0.4), epoch, &mut rng);
            assert_eq!(rec.action, AdaptAction::Idle);
        }
        assert_eq!(session.delta_nodes().len(), before);
    }

    #[test]
    fn in_band_signal_mode_still_converges() {
        let net = net(159, 300);
        let values: Vec<u64> = vec![1; net.len()];
        let mut rng = rng_from_seed(160);
        let mut session = SessionBuilder::new(Scheme::TdCoarse)
            .in_band_signal()
            .build(&net, &mut rng);
        let model = Global::new(0.3);
        let initial_delta = session.delta_nodes().len();
        let mut tail_pct = Vec::new();
        for epoch in 0..300 {
            let proto = ScalarProtocol::new(Count::default(), &values);
            let rec = session.run_epoch(&proto, &model, epoch, &mut rng);
            if epoch >= 250 {
                tail_pct.push(rec.pct_contributing);
            }
        }
        // The sketched signal is noisy, so the bar is expansion plus a
        // clearly-improved settled mean, not the exact-signal target.
        assert!(
            session.delta_nodes().len() > initial_delta,
            "in-band signal never drove expansion"
        );
        let mean = tail_pct.iter().sum::<f64>() / tail_pct.len() as f64;
        assert!(mean > 0.55, "in-band-signal adaptation stuck at {mean}");
    }

    /// A small churn event (a few departures) reaches the next epoch as
    /// an in-place plan patch — never a recompile — and the patched
    /// session stays bit-identical to one that recompiles every epoch.
    #[test]
    fn churn_patches_the_cached_plan_and_stays_bit_identical() {
        use td_netsim::churn::ChurnSchedule;
        let net = net(171, 250);
        let values: Vec<u64> = (0..net.len() as u64).map(|i| 1 + i % 11).collect();
        let schedule = ChurnSchedule::new(net.len(), 0.01, 8.0, 99);
        let epochs = 40u64;
        for scheme in [Scheme::Sd, Scheme::TdCoarse, Scheme::Td] {
            let run = |rebuild_every_epoch: bool| {
                let mut rng = rng_from_seed(172);
                let mut session = Session::with_paper_defaults(scheme, &net, &mut rng);
                let mut outs = Vec::new();
                for epoch in 0..epochs {
                    let events = schedule.events_at(epoch);
                    session.apply_churn(&events);
                    if rebuild_every_epoch {
                        session.clear_cached_plan();
                    }
                    let proto = ScalarProtocol::new(Sum::default(), &values);
                    let model = schedule.overlay(Global::new(0.1));
                    let rec = session.run_epoch(&proto, &model, epoch, &mut rng);
                    outs.push((rec.output, rec.contributing, rec.delta_size));
                }
                (outs, session.stats().clone(), session.plan_stats())
            };
            let (patched, patched_stats, plan) = run(false);
            let (rebuilt, rebuilt_stats, _) = run(true);
            assert_eq!(patched, rebuilt, "{} diverged under churn", scheme.name());
            assert_eq!(patched_stats, rebuilt_stats);
            assert_eq!(
                plan.compiles,
                1,
                "{}: churn recompiled: {plan:?}",
                scheme.name()
            );
            assert!(plan.patches > 0, "{}: churn never patched", scheme.name());
            assert!(patched_stats.nodes_left() > 0, "schedule never fired");
        }
    }

    /// TAG sessions survive churn too: orphans re-route onto surviving
    /// equal-depth neighbors and the (label-free) plan recompiles.
    #[test]
    fn tag_sessions_route_around_churn() {
        use td_netsim::churn::ChurnSchedule;
        let net = net(173, 200);
        let values: Vec<u64> = vec![1; net.len()];
        let schedule = ChurnSchedule::new(net.len(), 0.02, 6.0, 5);
        let mut rng = rng_from_seed(174);
        let mut session = Session::with_paper_defaults(Scheme::Tag, &net, &mut rng);
        let mut rerouted = 0usize;
        for epoch in 0..60 {
            let events = schedule.events_at(epoch);
            let report = session.apply_churn(&events);
            rerouted += report.reparented + report.rejoined;
            let proto = ScalarProtocol::new(Count::default(), &values);
            let model = schedule.overlay(NoLoss);
            let rec = session.run_epoch(&proto, &model, epoch, &mut rng);
            // Sanity: the lossless channel still delivers everyone who
            // is present and routed around the absent set.
            assert!(rec.contributing <= net.num_sensors());
        }
        assert!(rerouted > 0, "TAG churn never re-routed an orphan");
        assert!(session.stats().nodes_left() > 0);
    }

    /// Plan caching across an adapting run is invisible: a session that
    /// recompiles its plan every epoch produces bit-identical answers,
    /// adaptation trajectory, and accounting to one reusing the cache
    /// (which invalidates only on topology version bumps).
    #[test]
    fn cached_plan_matches_forced_rebuild_across_adaptation() {
        let net = net(165, 300);
        let values: Vec<u64> = (0..net.len() as u64).map(|i| 1 + i % 30).collect();
        let model = Global::new(0.3);
        let epochs = 60u64;
        for scheme in Scheme::all() {
            let run = |rebuild_every_epoch: bool| {
                let mut rng = rng_from_seed(166);
                let mut session = Session::with_paper_defaults(scheme, &net, &mut rng);
                let mut outs = Vec::new();
                for epoch in 0..epochs {
                    if rebuild_every_epoch {
                        session.clear_cached_plan();
                    }
                    let proto = ScalarProtocol::new(Sum::default(), &values);
                    let rec = session.run_epoch(&proto, &model, epoch, &mut rng);
                    outs.push((rec.output, rec.contributing, rec.delta_size));
                }
                (outs, session.stats().clone())
            };
            let (cached, cached_stats) = run(false);
            let (rebuilt, rebuilt_stats) = run(true);
            assert_eq!(cached, rebuilt, "{} diverged", scheme.name());
            assert_eq!(
                cached_stats,
                rebuilt_stats,
                "{} stats diverged",
                scheme.name()
            );
        }
    }

    /// A multi-query set over an adapting session behaves exactly like a
    /// single-query session: same per-epoch answers, same adaptation
    /// trajectory, one traversal's worth of messages.
    #[test]
    fn multi_query_session_matches_single_query_sessions() {
        let net = net(163, 250);
        let values: Vec<u64> = (0..net.len() as u64).map(|i| 5 + i % 50).collect();
        let bags: Vec<ItemBag> = (0..net.len())
            .map(|i| {
                if i == 0 {
                    ItemBag::new()
                } else {
                    ItemBag::from_counts([(1, 40), (2 + i as u64 % 7, 10)])
                }
            })
            .collect();
        let n_total: u64 = bags.iter().map(|b| b.total()).sum();
        let model = Global::new(0.2);
        let epochs = 25u64;
        let mp_cfg = MultipathConfig::new(0.01, 1.5, n_total * 2, ExactFactory);
        let gradient = MinTotalLoad::new(0.01, 2.25);

        // Single-query baselines, each over its own identically-seeded
        // session.
        let run_count = || {
            let mut rng = rng_from_seed(164);
            let mut session = Session::with_paper_defaults(Scheme::Td, &net, &mut rng);
            let mut outs = Vec::new();
            for epoch in 0..epochs {
                let proto = ScalarProtocol::new(Count::default(), &values);
                outs.push(session.run_epoch(&proto, &model, epoch, &mut rng).output);
            }
            (outs, session.stats().total_rounds())
        };
        let run_sum = || {
            let mut rng = rng_from_seed(164);
            let mut session = Session::with_paper_defaults(Scheme::Td, &net, &mut rng);
            let mut outs = Vec::new();
            for epoch in 0..epochs {
                let proto = ScalarProtocol::new(Sum::default(), &values);
                outs.push(session.run_epoch(&proto, &model, epoch, &mut rng).output);
            }
            outs
        };
        let run_freq = || {
            let mut rng = rng_from_seed(164);
            let mut session = Session::with_paper_defaults(Scheme::Td, &net, &mut rng);
            let mut outs = Vec::new();
            for epoch in 0..epochs {
                let proto = FreqProtocol::new(mp_cfg.clone(), gradient, 0.2, &bags);
                outs.push(session.run_epoch(&proto, &model, epoch, &mut rng).output);
            }
            outs
        };
        let (count_alone, rounds_alone) = run_count();
        let sum_alone = run_sum();
        let freq_alone = run_freq();

        // The bundled session, same seed.
        let mut rng = rng_from_seed(164);
        let mut session = Session::with_paper_defaults(Scheme::Td, &net, &mut rng);
        let mut count_bundled = Vec::new();
        let mut sum_bundled = Vec::new();
        let mut freq_bundled = Vec::new();
        for epoch in 0..epochs {
            let count_p = ScalarProtocol::new(Count::default(), &values);
            let sum_p = ScalarProtocol::new(Sum::default(), &values);
            let freq_p = FreqProtocol::new(mp_cfg.clone(), gradient, 0.2, &bags);
            let mut set = QuerySet::new();
            let h_count = set.register(&count_p);
            let h_sum = set.register(&sum_p);
            let h_freq = set.register(&freq_p);
            let mut rec = session.run_set(&set, &model, epoch, &mut rng);
            count_bundled.push(*rec.answers.get(h_count));
            sum_bundled.push(*rec.answers.get(h_sum));
            freq_bundled.push(rec.answers.take(h_freq));
        }

        assert_eq!(count_bundled, count_alone);
        assert_eq!(sum_bundled, sum_alone);
        for (b, a) in freq_bundled.iter().zip(&freq_alone) {
            assert_eq!(b.n_est, a.n_est);
            assert_eq!(b.reported, a.reported);
        }
        // One traversal per epoch, not three.
        assert_eq!(session.stats().total_rounds(), rounds_alone);
    }
}
