//! Multi-epoch aggregation sessions: the experiment entry points.
//!
//! A [`Session`] owns a scheme's topology state (a TAG tree, a rings
//! labeling, or an adapting Tributary-Delta labeling), runs one epoch at a
//! time against caller-supplied per-epoch data, applies adaptation on the
//! paper's cadence (every 10 epochs by default), and accumulates
//! communication statistics. The four schemes of §7:
//!
//! * [`Scheme::Tag`] — tree aggregation on a standard TAG tree [10];
//! * [`Scheme::Sd`] — synopsis diffusion over rings [16] (an all-delta
//!   labeling, no adaptation);
//! * [`Scheme::TdCoarse`] / [`Scheme::Td`] — Tributary-Delta with the
//!   §4.2 coarse / fine-grained strategies.

use crate::adapt::{AdaptAction, Adapter, AdapterConfig, Strategy};
use crate::protocol::Protocol;
use crate::runner::{run_tag_epoch, run_td_epoch, RunnerConfig};
use td_netsim::loss::LossModel;
use td_netsim::network::Network;
use td_netsim::stats::CommStats;
use td_topology::bushy::{build_bushy_tree, BushyOptions};
use td_topology::rings::Rings;
use td_topology::td::TdTopology;
use td_topology::tree::{build_tag_tree, ParentSelection, Tree};

/// The aggregation scheme a session runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scheme {
    /// Tree aggregation (TAG).
    Tag,
    /// Synopsis diffusion over rings (SD).
    Sd,
    /// Tributary-Delta, coarse-grained adaptation.
    TdCoarse,
    /// Tributary-Delta, fine-grained adaptation.
    Td,
}

impl Scheme {
    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Tag => "TAG",
            Scheme::Sd => "SD",
            Scheme::TdCoarse => "TD-Coarse",
            Scheme::Td => "TD",
        }
    }

    /// All four schemes in the paper's plotting order.
    pub fn all() -> [Scheme; 4] {
        [Scheme::Tag, Scheme::Sd, Scheme::TdCoarse, Scheme::Td]
    }
}

/// Session configuration.
#[derive(Clone, Copy, Debug)]
pub struct SessionConfig {
    /// The scheme to run.
    pub scheme: Scheme,
    /// Adaptation knobs (TD schemes only).
    pub adapter: AdapterConfig,
    /// Runner knobs (retransmissions).
    pub runner: RunnerConfig,
    /// Initial delta radius in ring levels (TD schemes; 0 = base only).
    pub initial_delta_levels: u16,
    /// Whether adaptation reads the instrumented exact contribution
    /// (default) or the in-band sketched estimate (protocol-faithful,
    /// noisier — the ablation benches compare both).
    pub use_exact_contrib_signal: bool,
    /// Whether the TAG tree may pick same-level parents (§6.1.3 notes the
    /// standard algorithm allows it; hurts the domination factor).
    pub tag_allow_same_level: bool,
}

impl SessionConfig {
    /// The paper's defaults for a scheme: 90% threshold, adapt every 10
    /// epochs, delta starting at the base station's first ring.
    pub fn paper_defaults(scheme: Scheme) -> Self {
        let strategy = match scheme {
            Scheme::TdCoarse => Strategy::TdCoarse,
            _ => Strategy::Td,
        };
        SessionConfig {
            scheme,
            adapter: AdapterConfig {
                strategy,
                ..AdapterConfig::default()
            },
            runner: RunnerConfig {
                // The non-adaptive baselines carry no adaptation fields.
                charge_adaptation_overhead: matches!(scheme, Scheme::TdCoarse | Scheme::Td),
                ..RunnerConfig::default()
            },
            initial_delta_levels: 1,
            use_exact_contrib_signal: true,
            tag_allow_same_level: false,
        }
    }
}

enum SessionKind {
    Tag { tree: Tree },
    // Boxed: the labeled topology is ~3x the TAG variant's size.
    Td { topo: Box<TdTopology>, adapter: Option<Adapter> },
}

/// A running aggregation session.
pub struct Session {
    config: SessionConfig,
    net: Network,
    kind: SessionKind,
    stats: CommStats,
    sensors: usize,
}

/// The per-epoch record a session reports.
#[derive(Clone, Debug)]
pub struct EpochRecord<O> {
    /// The evaluated answer.
    pub output: O,
    /// Exact number of contributing sensors.
    pub contributing: usize,
    /// Fraction of (connected) sensors contributing.
    pub pct_contributing: f64,
    /// Current delta size (0 for TAG).
    pub delta_size: usize,
    /// What adaptation did after this epoch.
    pub action: AdaptAction,
}

impl Session {
    /// Create a session over a network. Topology construction draws from
    /// `rng` (deterministic given the seed stream).
    pub fn new<R: rand::Rng + ?Sized>(config: SessionConfig, net: &Network, rng: &mut R) -> Self {
        let kind = match config.scheme {
            Scheme::Tag => SessionKind::Tag {
                tree: build_tag_tree(
                    net,
                    ParentSelection::Random,
                    None,
                    config.tag_allow_same_level,
                    rng,
                ),
            },
            Scheme::Sd => {
                let rings = Rings::build(net);
                let tree = build_bushy_tree(net, &rings, BushyOptions::default(), rng);
                SessionKind::Td {
                    topo: Box::new(TdTopology::all_multipath(rings, tree)),
                    adapter: None,
                }
            }
            Scheme::TdCoarse | Scheme::Td => {
                let rings = Rings::build(net);
                let tree = build_bushy_tree(net, &rings, BushyOptions::default(), rng);
                let topo = Box::new(TdTopology::new(rings, tree, config.initial_delta_levels));
                SessionKind::Td {
                    topo,
                    adapter: Some(Adapter::new(config.adapter)),
                }
            }
        };
        let sensors = match &kind {
            SessionKind::Tag { tree } => tree.tree_size().saturating_sub(1),
            SessionKind::Td { topo, .. } => topo.rings().connected_count().saturating_sub(1),
        };
        Session {
            config,
            net: net.clone(),
            kind,
            stats: CommStats::new(net.len()),
            sensors,
        }
    }

    /// Convenience: a session with the paper's defaults for `scheme`.
    pub fn with_paper_defaults<R: rand::Rng + ?Sized>(
        scheme: Scheme,
        net: &Network,
        rng: &mut R,
    ) -> Self {
        Session::new(SessionConfig::paper_defaults(scheme), net, rng)
    }

    /// Number of connected sensors (the `% contributing` denominator).
    pub fn sensors(&self) -> usize {
        self.sensors
    }

    /// Accumulated communication statistics.
    pub fn stats(&self) -> &CommStats {
        &self.stats
    }

    /// Current delta membership (empty for TAG), for Figure 4.
    pub fn delta_nodes(&self) -> Vec<td_netsim::node::NodeId> {
        match &self.kind {
            SessionKind::Tag { .. } => Vec::new(),
            SessionKind::Td { topo, .. } => topo.delta_nodes(),
        }
    }

    /// The Tributary-Delta topology, when the scheme has one.
    pub fn topology(&self) -> Option<&TdTopology> {
        match &self.kind {
            SessionKind::Tag { .. } => None,
            SessionKind::Td { topo, .. } => Some(topo),
        }
    }

    /// The adapter's current damping multiplier, when the scheme adapts.
    pub fn adapter_damping(&self) -> Option<u64> {
        match &self.kind {
            SessionKind::Td {
                adapter: Some(a), ..
            } => Some(a.damping()),
            _ => None,
        }
    }

    /// The TAG tree, when the scheme is TAG.
    pub fn tag_tree(&self) -> Option<&Tree> {
        match &self.kind {
            SessionKind::Tag { tree } => Some(tree),
            SessionKind::Td { .. } => None,
        }
    }

    /// Run one epoch with this epoch's protocol instance (carrying the
    /// epoch's readings) under `model`, then adapt if due.
    pub fn run_epoch<P: Protocol, M: LossModel, R: rand::Rng + ?Sized>(
        &mut self,
        proto: &P,
        model: &M,
        epoch: u64,
        rng: &mut R,
    ) -> EpochRecord<P::Output> {
        match &mut self.kind {
            SessionKind::Tag { tree } => {
                let out = run_tag_epoch(
                    proto,
                    tree,
                    &self.net,
                    model,
                    self.config.runner,
                    epoch,
                    &mut self.stats,
                    rng,
                );
                let pct = out.contributing as f64 / self.sensors.max(1) as f64;
                EpochRecord {
                    output: out.output,
                    contributing: out.contributing,
                    pct_contributing: pct,
                    delta_size: 0,
                    action: AdaptAction::Idle,
                }
            }
            SessionKind::Td { topo, adapter } => {
                let out = run_td_epoch(
                    proto,
                    topo,
                    &self.net,
                    model,
                    self.config.runner,
                    epoch,
                    &mut self.stats,
                    rng,
                );
                let pct_exact = out.contributing as f64 / self.sensors.max(1) as f64;
                let pct_signal = if self.config.use_exact_contrib_signal {
                    pct_exact
                } else {
                    out.contributing_est / self.sensors.max(1) as f64
                };
                let action = match adapter {
                    Some(a) => a.step(
                        topo,
                        epoch,
                        pct_signal,
                        &out.max_noncontrib,
                        &out.min_noncontrib,
                    ),
                    None => AdaptAction::Idle,
                };
                EpochRecord {
                    output: out.output,
                    contributing: out.contributing,
                    pct_contributing: pct_exact,
                    delta_size: topo.delta_size(),
                    action,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ScalarProtocol;
    use td_aggregates::count::Count;
    use td_aggregates::sum::Sum;
    use td_netsim::loss::{Global, NoLoss, Regional};
    use td_netsim::node::{Position, Rect};
    use td_netsim::rng::rng_from_seed;

    fn net(seed: u64, sensors: usize) -> Network {
        let mut rng = rng_from_seed(seed);
        Network::random_connected(
            sensors,
            20.0,
            20.0,
            Position::new(10.0, 10.0),
            2.5,
            &mut rng,
        )
    }

    #[test]
    fn all_schemes_run_and_account_everyone_lossless() {
        let net = net(151, 300);
        let values: Vec<u64> = vec![1; net.len()];
        for scheme in Scheme::all() {
            let mut rng = rng_from_seed(152);
            let mut session = Session::with_paper_defaults(scheme, &net, &mut rng);
            let proto = ScalarProtocol::new(Count::default(), &values);
            let rec = session.run_epoch(&proto, &NoLoss, 0, &mut rng);
            assert_eq!(
                rec.contributing,
                net.num_sensors(),
                "{} lost nodes without loss",
                scheme.name()
            );
        }
    }

    #[test]
    fn td_expands_under_loss_until_threshold_met() {
        let net = net(153, 400);
        let values: Vec<u64> = vec![10; net.len()];
        let mut rng = rng_from_seed(154);
        let mut session = Session::with_paper_defaults(Scheme::TdCoarse, &net, &mut rng);
        let model = Global::new(0.25);
        let mut last_pct = 0.0;
        let mut grew = false;
        let initial_delta = session.delta_nodes().len();
        for epoch in 0..200 {
            let proto = ScalarProtocol::new(Sum::default(), &values);
            let rec = session.run_epoch(&proto, &model, epoch, &mut rng);
            last_pct = rec.pct_contributing;
            if rec.delta_size > initial_delta {
                grew = true;
            }
        }
        assert!(grew, "delta never expanded under 25% loss");
        assert!(
            last_pct >= 0.85,
            "contribution {last_pct} still below target after adaptation"
        );
    }

    #[test]
    fn td_fine_localizes_to_failure_region() {
        // Regional failure in one quadrant with an otherwise healthy
        // network: the TD delta should concentrate in the quadrant. (When
        // the outside loss alone already pushes tree delivery below the
        // 90% target, global expansion is the *correct* response — see
        // the Figure 4(b) discussion — so this test keeps outside loss
        // small to isolate the localization behaviour.)
        let net = net(155, 400);
        let region = Rect::from_coords(0.0, 0.0, 10.0, 10.0);
        let model = Regional::new(region, 0.3, 0.005);
        let values: Vec<u64> = vec![1; net.len()];
        let run = |scheme: Scheme| {
            let mut rng = rng_from_seed(156);
            let mut session = Session::with_paper_defaults(scheme, &net, &mut rng);
            for epoch in 0..150 {
                let proto = ScalarProtocol::new(Count::default(), &values);
                session.run_epoch(&proto, &model, epoch, &mut rng);
            }
            let delta = session.delta_nodes();
            let inside = delta
                .iter()
                .filter(|&&n| region.contains(net.position(n)))
                .count();
            (inside, delta.len())
        };
        let (td_inside, td_total) = run(Scheme::Td);
        assert!(td_total > 1, "TD delta never grew");
        let td_frac = td_inside as f64 / td_total as f64;
        // The failure quadrant holds ~25% of nodes; a localized delta
        // should be clearly enriched beyond that.
        assert!(
            td_frac > 0.35,
            "TD delta not localized: {td_inside}/{td_total} in failure region"
        );
    }

    #[test]
    fn sd_never_adapts() {
        let net = net(157, 200);
        let values: Vec<u64> = vec![1; net.len()];
        let mut rng = rng_from_seed(158);
        let mut session = Session::with_paper_defaults(Scheme::Sd, &net, &mut rng);
        let before = session.delta_nodes().len();
        for epoch in 0..30 {
            let proto = ScalarProtocol::new(Count::default(), &values);
            let rec = session.run_epoch(&proto, &Global::new(0.4), epoch, &mut rng);
            assert_eq!(rec.action, AdaptAction::Idle);
        }
        assert_eq!(session.delta_nodes().len(), before);
    }

    #[test]
    fn in_band_signal_mode_still_converges() {
        let net = net(159, 300);
        let values: Vec<u64> = vec![1; net.len()];
        let mut cfg = SessionConfig::paper_defaults(Scheme::TdCoarse);
        cfg.use_exact_contrib_signal = false;
        let mut rng = rng_from_seed(160);
        let mut session = Session::new(cfg, &net, &mut rng);
        let model = Global::new(0.3);
        let mut final_pct = 0.0;
        for epoch in 0..300 {
            let proto = ScalarProtocol::new(Count::default(), &values);
            final_pct = session
                .run_epoch(&proto, &model, epoch, &mut rng)
                .pct_contributing;
        }
        assert!(
            final_pct > 0.7,
            "in-band-signal adaptation stuck at {final_pct}"
        );
    }
}
