//! Level-synchronized intra-epoch parallel executors.
//!
//! Every sender within one schedule level is independent — §4.1 tree
//! parents and broadcast receivers sit strictly at later levels — so a
//! level can fan out across worker threads with a barrier before the
//! next. Three disciplines keep the result **bit-identical** to the
//! sequential executor on any worker count:
//!
//! 1. **All RNG draws are precomputed** on the calling thread in exact
//!    schedule order (one unicast per T/TAG sender, one `delivered`
//!    draw per broadcast-table entry) before any worker starts, so the
//!    caller's RNG ends an epoch in the same state either way.
//! 2. **Shards are deterministic id-order chunks** of a level's step
//!    range — chunk 0 runs inline on the main thread, chunks `1..` on
//!    scoped workers (no registry deps; the same discipline as
//!    `TrialPool`).
//! 3. **Per-shard effects merge in step order**: `CommStats` records
//!    and inbox pushes replay exactly the sequential sequence, so f64
//!    accumulation order and envelope delivery order never change.
//!
//! Envelope parts cycle through one private `Pools` free-list per
//! worker (ping-ponged through the per-level channel messages so job
//! prep can draw bundle `Vec`s from the pool the processing worker will
//! recycle into); the deterministic chunk assignment keeps every pool's
//! fill level bounded across epochs.

use std::sync::mpsc::{channel, Receiver, Sender};

use super::*;
use td_netsim::loss::RetransmitOutcome;

// ---------------------------------------------------------------------
// Precomputed communication outcomes
// ---------------------------------------------------------------------

/// Every loss-model draw of one TD epoch, in sequential draw order.
struct TdComm {
    /// Per step: the unicast outcome (T steps) or `None` (M steps).
    outcomes: Vec<Option<RetransmitOutcome>>,
    /// Per broadcast-table entry: whether the broadcast reached it.
    delivered: Vec<bool>,
}

fn precompute_td_comm<M: LossModel, R: rand::Rng + ?Sized>(
    sched: &TdSchedule,
    net: &Network,
    model: &M,
    config: RunnerConfig,
    epoch: u64,
    rng: &mut R,
) -> TdComm {
    let mut outcomes = Vec::with_capacity(sched.steps.len());
    let mut delivered = vec![false; sched.receivers.len()];
    for step in &sched.steps {
        match step.mode {
            Mode::T => outcomes.push(Some(unicast(
                model,
                config.tree_retransmit,
                step.node,
                step.parent,
                net,
                epoch,
                rng,
            ))),
            Mode::M => {
                outcomes.push(None);
                // The sequential path draws for every receiver before
                // checking `is M`; replay that exactly.
                let range = step.recv_start as usize..step.recv_end as usize;
                for (d, &(r, _)) in delivered[range.clone()]
                    .iter_mut()
                    .zip(&sched.receivers[range])
                {
                    *d = model.delivered(step.node, r, net, epoch, rng);
                }
            }
        }
    }
    TdComm {
        outcomes,
        delivered,
    }
}

/// Every unicast outcome of one TAG epoch (`None` for the base step,
/// which sends nothing), in sequential draw order.
fn precompute_tag_comm<M: LossModel, R: rand::Rng + ?Sized>(
    sched: &TagSchedule,
    net: &Network,
    model: &M,
    config: RunnerConfig,
    epoch: u64,
    rng: &mut R,
) -> Vec<Option<RetransmitOutcome>> {
    sched
        .steps
        .iter()
        .map(|step| {
            step.parent
                .map(|p| unicast(model, config.tree_retransmit, step.node, p, net, epoch, rng))
        })
        .collect()
}

// ---------------------------------------------------------------------
// TD jobs
// ---------------------------------------------------------------------

/// One TD sender's inputs, self-contained so a worker needs no arena
/// access: the staged local bundle and the (drained) inbox `Vec`s ride
/// along and return in the matching [`TdOut`] to keep their capacity.
struct TdJob {
    slot: u32,
    step: TdStep,
    outcome: Option<RetransmitOutcome>,
    local: Bundle,
    tree_in: Vec<TreeEnvelope<Bundle>>,
    mp_in: Vec<MpEnvelope<Bundle>>,
}

/// What a TD sender put on the air (destinations are arena slots).
enum TdSent {
    None,
    Tree(u32, TreeEnvelope<Bundle>),
    Mp(Vec<(u32, MpEnvelope<Bundle>)>),
}

/// One TD sender's effects, merged back on the main thread in step
/// order.
struct TdOut {
    node: NodeId,
    slot: u32,
    bytes: usize,
    words: usize,
    rounds: u64,
    sent: TdSent,
    tree_in: Vec<TreeEnvelope<Bundle>>,
    mp_in: Vec<MpEnvelope<Bundle>>,
}

/// Assemble one chunk's jobs from the arena slabs (disjoint field
/// borrows; the bundle `Vec`s come from the pool of whichever worker
/// will process the chunk).
#[allow(clippy::too_many_arguments)]
fn prep_td_jobs(
    sched: &TdSchedule,
    comm: &TdComm,
    range: std::ops::Range<usize>,
    q: usize,
    locals: &mut [Option<ErasedMsg>],
    tree_inbox: &mut [Vec<TreeEnvelope<Bundle>>],
    mp_inbox: &mut [Vec<MpEnvelope<Bundle>>],
    pool: &mut Pools,
) -> Vec<TdJob> {
    range
        .map(|slot| {
            let step = sched.steps[slot];
            let local = take_local(locals, slot, q, pool);
            let tree_in = std::mem::take(&mut tree_inbox[slot]);
            let mp_in = match step.mode {
                Mode::T => Vec::new(),
                Mode::M => std::mem::take(&mut mp_inbox[slot]),
            };
            TdJob {
                slot: slot as u32,
                step,
                outcome: comm.outcomes[slot],
                local,
                tree_in,
                mp_in,
            }
        })
        .collect()
}

/// Execute one TD sender against precomputed outcomes — the exact
/// per-step body of the sequential executor, with pushes deferred into
/// the returned [`TdOut`].
fn process_td_job(
    sched: &TdSchedule,
    delivered: &[bool],
    set: &QuerySet<'_>,
    n: usize,
    charge: bool,
    mut job: TdJob,
    pool: &mut Pools,
) -> TdOut {
    let step = job.step;
    match step.mode {
        Mode::T => {
            let contributors = pool.idset(n);
            let env = build_tree_envelope_set(
                set,
                step.node,
                step.height,
                contributors,
                job.local,
                &mut job.tree_in,
                pool,
            );
            let payload = bundle_tree_words(set, env.msg.as_ref().expect("bundle present"));
            let overhead = if charge { TREE_OVERHEAD_WORDS } else { 0 };
            let words = payload + overhead;
            let outcome = job.outcome.expect("T steps carry a unicast outcome");
            let sent = if outcome.delivered {
                TdSent::Tree(sched.slot_or_base(step.parent) as u32, env)
            } else {
                recycle_tree_env(pool, env);
                TdSent::None
            };
            TdOut {
                node: step.node,
                slot: job.slot,
                bytes: words * 4,
                words,
                rounds: outcome.attempts_used as u64,
                sent,
                tree_in: job.tree_in,
                mp_in: job.mp_in,
            }
        }
        Mode::M => {
            let contributors = pool.idset(n);
            let count_sketch = pool.sketch();
            let env = build_mp_envelope_set(
                set,
                step.node,
                contributors,
                count_sketch,
                step.subtree_size,
                step.switchable_m,
                job.local,
                &mut job.tree_in,
                &mut job.mp_in,
                pool,
            );
            let (payload_bytes, payload_words) =
                bundle_mp_wire(set, env.msg.as_ref().expect("bundle present"));
            let overhead_bytes = if charge {
                sketch_rle::encoded_size_bytes(&env.count_sketch)
                    + 8 * crate::envelope::TOP_K_EXTREMA
            } else {
                0
            };
            let bytes = payload_bytes + overhead_bytes;
            let words = payload_words + overhead_bytes.div_ceil(4);
            let mut copies = Vec::new();
            let range = step.recv_start as usize..step.recv_end as usize;
            for (&(r, is_m), &d) in sched.receivers[range.clone()].iter().zip(&delivered[range]) {
                if d && is_m {
                    copies.push((sched.slot_or_base(r) as u32, clone_mp_pooled(&env, n, pool)));
                }
            }
            recycle_mp_env(pool, env);
            TdOut {
                node: step.node,
                slot: job.slot,
                bytes,
                words,
                rounds: 1,
                sent: TdSent::Mp(copies),
                tree_in: job.tree_in,
                mp_in: job.mp_in,
            }
        }
    }
}

/// Apply one TD sender's effects: record stats, deliver envelopes to
/// later-level inboxes, restore the drained inbox `Vec`s (capacity
/// preserved). Called in step order — this is what pins the parallel
/// path bit-identical.
fn merge_td_out(
    tree_inbox: &mut [Vec<TreeEnvelope<Bundle>>],
    mp_inbox: &mut [Vec<MpEnvelope<Bundle>>],
    stats: &mut CommStats,
    out: TdOut,
) {
    stats.record_send(out.node, out.bytes, out.words, out.rounds);
    match out.sent {
        TdSent::None => {
            tree_inbox[out.slot as usize] = out.tree_in;
        }
        TdSent::Tree(dest, env) => {
            tree_inbox[dest as usize].push(env);
            tree_inbox[out.slot as usize] = out.tree_in;
        }
        TdSent::Mp(copies) => {
            for (dest, copy) in copies {
                mp_inbox[dest as usize].push(copy);
            }
            tree_inbox[out.slot as usize] = out.tree_in;
            // Only M steps drained their multi-path inbox.
            mp_inbox[out.slot as usize] = out.mp_in;
        }
    }
}

// ---------------------------------------------------------------------
// TAG jobs
// ---------------------------------------------------------------------

struct TagJob {
    slot: u32,
    step: TagStep,
    outcome: Option<RetransmitOutcome>,
    local: Bundle,
    tree_in: Vec<TreeEnvelope<Bundle>>,
}

enum TagSent {
    None,
    Slot(u32, TreeEnvelope<Bundle>),
    Base(TreeEnvelope<Bundle>),
}

struct TagOut {
    node: NodeId,
    slot: u32,
    /// `(bytes, words, rounds)` to record — `None` for the base step,
    /// which sends nothing (failed unicasts still record).
    record: Option<(usize, usize, u64)>,
    sent: TagSent,
    tree_in: Vec<TreeEnvelope<Bundle>>,
}

fn prep_tag_jobs(
    sched: &TagSchedule,
    comm: &[Option<RetransmitOutcome>],
    range: std::ops::Range<usize>,
    q: usize,
    locals: &mut [Option<ErasedMsg>],
    tree_inbox: &mut [Vec<TreeEnvelope<Bundle>>],
    pool: &mut Pools,
) -> Vec<TagJob> {
    range
        .map(|slot| TagJob {
            slot: slot as u32,
            step: sched.steps[slot],
            outcome: comm[slot],
            local: take_local(locals, slot, q, pool),
            tree_in: std::mem::take(&mut tree_inbox[slot]),
        })
        .collect()
}

fn process_tag_job(
    sched: &TagSchedule,
    set: &QuerySet<'_>,
    n: usize,
    charge: bool,
    mut job: TagJob,
    pool: &mut Pools,
) -> TagOut {
    let step = job.step;
    let contributors = pool.idset(n);
    let env = build_tree_envelope_set(
        set,
        step.node,
        step.height,
        contributors,
        job.local,
        &mut job.tree_in,
        pool,
    );
    match step.parent {
        None => TagOut {
            node: step.node,
            slot: job.slot,
            record: None,
            sent: TagSent::Base(env),
            tree_in: job.tree_in,
        },
        Some(p) => {
            let payload = bundle_tree_words(set, env.msg.as_ref().expect("bundle present"));
            let overhead = if charge { TREE_OVERHEAD_WORDS } else { 0 };
            let words = payload + overhead;
            let outcome = job.outcome.expect("non-base steps carry an outcome");
            let sent = if outcome.delivered {
                TagSent::Slot(sched.slot_of[p.index()], env)
            } else {
                recycle_tree_env(pool, env);
                TagSent::None
            };
            TagOut {
                node: step.node,
                slot: job.slot,
                record: Some((words * 4, words, outcome.attempts_used as u64)),
                sent,
                tree_in: job.tree_in,
            }
        }
    }
}

fn merge_tag_out(
    tree_inbox: &mut [Vec<TreeEnvelope<Bundle>>],
    stats: &mut CommStats,
    base_children: &mut Vec<TreeEnvelope<Bundle>>,
    out: TagOut,
) {
    if let Some((bytes, words, rounds)) = out.record {
        stats.record_send(out.node, bytes, words, rounds);
    }
    match out.sent {
        TagSent::None => {}
        TagSent::Slot(dest, env) => tree_inbox[dest as usize].push(env),
        TagSent::Base(env) => base_children.push(env),
    }
    tree_inbox[out.slot as usize] = out.tree_in;
}

// ---------------------------------------------------------------------
// Level loop
// ---------------------------------------------------------------------

/// Deterministic id-order chunk bounds: `len` steps starting at `start`
/// split into `min(workers, len)` contiguous chunks, the first `len %
/// chunks` of them one longer. Chunking never affects results (merges
/// happen in step order regardless) — only load balance.
fn chunk_bounds(start: usize, len: usize, workers: usize) -> Vec<usize> {
    let nchunks = workers.min(len);
    let base = len / nchunks;
    let rem = len % nchunks;
    let mut bounds = Vec::with_capacity(nchunks + 1);
    let mut at = start;
    bounds.push(at);
    for c in 0..nchunks {
        at += base + usize::from(c < rem);
        bounds.push(at);
    }
    bounds
}

#[allow(clippy::too_many_arguments)]
pub(super) fn run_td_parallel<M: LossModel, R: rand::Rng + ?Sized>(
    sched: &TdSchedule,
    arenas: &mut Arenas,
    set: &QuerySet<'_>,
    net: &Network,
    model: &M,
    config: RunnerConfig,
    epoch: u64,
    stats: &mut CommStats,
    rng: &mut R,
    workers: usize,
) -> SetEpochOutput {
    let q = set.len();
    stage_td(sched, arenas, set, q);
    let sw = phase::stopwatch();
    let comm = precompute_td_comm(sched, net, model, config, epoch, rng);
    phase::record(Phase::Randomness, sw);
    let n = arenas.n;
    let charge = config.charge_adaptation_overhead;
    let spawned = workers - 1;
    while arenas.worker_pools.len() < spawned {
        arenas.worker_pools.push(Pools::new());
    }
    {
        let Arenas {
            tree_inbox,
            mp_inbox,
            locals,
            pools,
            worker_pools,
            ..
        } = arenas;
        std::thread::scope(|scope| {
            let delivered = comm.delivered.as_slice();
            let mut to_worker: Vec<Sender<(Vec<TdJob>, Pools)>> = Vec::with_capacity(spawned);
            let mut from_worker: Vec<Receiver<(Vec<TdOut>, Pools)>> = Vec::with_capacity(spawned);
            for _ in 0..spawned {
                let (job_tx, job_rx) = channel::<(Vec<TdJob>, Pools)>();
                let (out_tx, out_rx) = channel::<(Vec<TdOut>, Pools)>();
                to_worker.push(job_tx);
                from_worker.push(out_rx);
                scope.spawn(move || {
                    while let Ok((jobs, mut pool)) = job_rx.recv() {
                        let outs: Vec<TdOut> = jobs
                            .into_iter()
                            .map(|job| {
                                process_td_job(sched, delivered, set, n, charge, job, &mut pool)
                            })
                            .collect();
                        if out_tx.send((outs, pool)).is_err() {
                            break;
                        }
                    }
                });
            }
            // Worker pools ride the channel round-trips; parked here
            // between levels.
            let mut parked: Vec<Option<Pools>> = worker_pools.drain(..).map(Some).collect();

            for &(lv_start, lv_end) in &sched.levels {
                // One per-level-execute sample covers the whole level:
                // chunk prep, inline chunk 0, and the merge barrier.
                let sw = phase::stopwatch();
                let bounds = chunk_bounds(lv_start as usize, (lv_end - lv_start) as usize, workers);
                let nchunks = bounds.len() - 1;
                // Ship chunks 1.. first so workers overlap with chunk 0.
                for c in 1..nchunks {
                    let mut pool = parked[c - 1].take().expect("pool parked between levels");
                    let jobs = prep_td_jobs(
                        sched,
                        &comm,
                        bounds[c]..bounds[c + 1],
                        q,
                        locals,
                        tree_inbox,
                        mp_inbox,
                        &mut pool,
                    );
                    to_worker[c - 1].send((jobs, pool)).expect("worker alive");
                }
                // Chunk 0 inline on the shared pools (lowest step
                // indices, so merging it first preserves step order).
                let jobs = prep_td_jobs(
                    sched,
                    &comm,
                    bounds[0]..bounds[1],
                    q,
                    locals,
                    tree_inbox,
                    mp_inbox,
                    pools,
                );
                for job in jobs {
                    let out = process_td_job(sched, delivered, set, n, charge, job, pools);
                    merge_td_out(tree_inbox, mp_inbox, stats, out);
                }
                // Barrier: merge worker chunks in chunk (= step) order.
                for c in 1..nchunks {
                    let (outs, pool) = from_worker[c - 1].recv().expect("worker alive");
                    parked[c - 1] = Some(pool);
                    for out in outs {
                        merge_td_out(tree_inbox, mp_inbox, stats, out);
                    }
                }
                phase::record(Phase::LevelExecute, sw);
            }
            drop(to_worker);
            worker_pools.extend(parked.into_iter().map(|p| p.expect("pool parked")));
        });
    }
    let sw = phase::stopwatch();
    let out = finish_td(sched, arenas, set);
    phase::record(Phase::Merge, sw);
    out
}

#[allow(clippy::too_many_arguments)]
pub(super) fn run_tag_parallel<M: LossModel, R: rand::Rng + ?Sized>(
    sched: &TagSchedule,
    arenas: &mut Arenas,
    set: &QuerySet<'_>,
    net: &Network,
    model: &M,
    config: RunnerConfig,
    epoch: u64,
    stats: &mut CommStats,
    rng: &mut R,
    workers: usize,
) -> SetEpochOutput {
    let q = set.len();
    stage_tag(sched, arenas, set, q);
    let sw = phase::stopwatch();
    let comm = precompute_tag_comm(sched, net, model, config, epoch, rng);
    phase::record(Phase::Randomness, sw);
    let n = arenas.n;
    let charge = config.charge_adaptation_overhead;
    let spawned = workers - 1;
    while arenas.worker_pools.len() < spawned {
        arenas.worker_pools.push(Pools::new());
    }
    let mut base_children: Vec<TreeEnvelope<Bundle>> = Vec::new();
    {
        let Arenas {
            tree_inbox,
            locals,
            pools,
            worker_pools,
            ..
        } = arenas;
        std::thread::scope(|scope| {
            let comm = comm.as_slice();
            let mut to_worker: Vec<Sender<(Vec<TagJob>, Pools)>> = Vec::with_capacity(spawned);
            let mut from_worker: Vec<Receiver<(Vec<TagOut>, Pools)>> = Vec::with_capacity(spawned);
            for _ in 0..spawned {
                let (job_tx, job_rx) = channel::<(Vec<TagJob>, Pools)>();
                let (out_tx, out_rx) = channel::<(Vec<TagOut>, Pools)>();
                to_worker.push(job_tx);
                from_worker.push(out_rx);
                scope.spawn(move || {
                    while let Ok((jobs, mut pool)) = job_rx.recv() {
                        let outs: Vec<TagOut> = jobs
                            .into_iter()
                            .map(|job| process_tag_job(sched, set, n, charge, job, &mut pool))
                            .collect();
                        if out_tx.send((outs, pool)).is_err() {
                            break;
                        }
                    }
                });
            }
            let mut parked: Vec<Option<Pools>> = worker_pools.drain(..).map(Some).collect();

            for &(lv_start, lv_end) in &sched.levels {
                let sw = phase::stopwatch();
                let bounds = chunk_bounds(lv_start as usize, (lv_end - lv_start) as usize, workers);
                let nchunks = bounds.len() - 1;
                for c in 1..nchunks {
                    let mut pool = parked[c - 1].take().expect("pool parked between levels");
                    let jobs = prep_tag_jobs(
                        sched,
                        comm,
                        bounds[c]..bounds[c + 1],
                        q,
                        locals,
                        tree_inbox,
                        &mut pool,
                    );
                    to_worker[c - 1].send((jobs, pool)).expect("worker alive");
                }
                let jobs = prep_tag_jobs(
                    sched,
                    comm,
                    bounds[0]..bounds[1],
                    q,
                    locals,
                    tree_inbox,
                    pools,
                );
                for job in jobs {
                    let out = process_tag_job(sched, set, n, charge, job, pools);
                    merge_tag_out(tree_inbox, stats, &mut base_children, out);
                }
                for c in 1..nchunks {
                    let (outs, pool) = from_worker[c - 1].recv().expect("worker alive");
                    parked[c - 1] = Some(pool);
                    for out in outs {
                        merge_tag_out(tree_inbox, stats, &mut base_children, out);
                    }
                }
                phase::record(Phase::LevelExecute, sw);
            }
            drop(to_worker);
            worker_pools.extend(parked.into_iter().map(|p| p.expect("pool parked")));
        });
    }
    let sw = phase::stopwatch();
    let out = finish_tag(sched, arenas, set, base_children);
    phase::record(Phase::Merge, sw);
    out
}
