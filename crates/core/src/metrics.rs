//! Error metrics used by the evaluation (§7).

/// Relative root-mean-square error over a series of answers against a
/// constant truth: `(1/V)·√(Σ (V_t − V)² / T)` (§7.3).
///
/// Returns 0 for an empty series.
///
/// # Panics
/// Panics if `actual` is 0 (the metric is undefined).
pub fn rms_error(estimates: &[f64], actual: f64) -> f64 {
    assert!(actual != 0.0, "RMS error undefined for a zero actual value");
    if estimates.is_empty() {
        return 0.0;
    }
    let mse = estimates
        .iter()
        .map(|v| (v - actual) * (v - actual))
        .sum::<f64>()
        / estimates.len() as f64;
    mse.sqrt() / actual.abs()
}

/// RMS error against a per-epoch truth series.
pub fn rms_error_series(estimates: &[f64], actuals: &[f64]) -> f64 {
    assert_eq!(estimates.len(), actuals.len());
    if estimates.is_empty() {
        return 0.0;
    }
    let mut mse = 0.0;
    let mut scale = 0.0;
    for (v, a) in estimates.iter().zip(actuals) {
        assert!(*a != 0.0);
        mse += (v - a) * (v - a);
        scale += a * a;
    }
    (mse / estimates.len() as f64).sqrt() / (scale / estimates.len() as f64).sqrt()
}

/// Relative error of a single answer: `|V_t − V| / V` (Figure 6 plots
/// these per epoch).
pub fn relative_error(estimate: f64, actual: f64) -> f64 {
    assert!(actual != 0.0);
    (estimate - actual).abs() / actual.abs()
}

/// False-negative rate: the fraction of `truth` items missing from
/// `reported` (Figure 9's y-axis). Returns 0 when `truth` is empty.
pub fn false_negative_rate(reported: &[u64], truth: &[u64]) -> f64 {
    if truth.is_empty() {
        return 0.0;
    }
    let reported: std::collections::BTreeSet<u64> = reported.iter().copied().collect();
    let missing = truth.iter().filter(|u| !reported.contains(u)).count();
    missing as f64 / truth.len() as f64
}

/// False-positive rate: the fraction of `reported` items not in `truth`.
/// Returns 0 when nothing is reported.
pub fn false_positive_rate(reported: &[u64], truth: &[u64]) -> f64 {
    if reported.is_empty() {
        return 0.0;
    }
    let truth: std::collections::BTreeSet<u64> = truth.iter().copied().collect();
    let junk = reported.iter().filter(|u| !truth.contains(u)).count();
    junk as f64 / reported.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rms_of_exact_series_is_zero() {
        assert_eq!(rms_error(&[100.0, 100.0, 100.0], 100.0), 0.0);
    }

    #[test]
    fn rms_matches_hand_computation() {
        // Errors -10 and +10 around 100: sqrt((100+100)/2)/100 = 0.1.
        let e = rms_error(&[90.0, 110.0], 100.0);
        assert!((e - 0.1).abs() < 1e-12);
    }

    #[test]
    fn rms_total_loss_is_one() {
        // Estimating 0 for everything gives RMS error 1.0 — the upper
        // plateau of Figure 5(a) at p = 1.
        assert!((rms_error(&[0.0, 0.0], 500.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rms_series_weighted() {
        let e = rms_error_series(&[90.0, 220.0], &[100.0, 200.0]);
        assert!(e > 0.0 && e < 0.2, "{e}");
    }

    #[test]
    fn relative_error_basic() {
        assert!((relative_error(88.0, 100.0) - 0.12).abs() < 1e-12);
        assert_eq!(relative_error(100.0, 100.0), 0.0);
    }

    #[test]
    fn false_rates() {
        let truth = vec![1, 2, 3, 4];
        let reported = vec![1, 2, 9];
        assert!((false_negative_rate(&reported, &truth) - 0.5).abs() < 1e-12);
        assert!((false_positive_rate(&reported, &truth) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(false_negative_rate(&[], &[]), 0.0);
        assert_eq!(false_positive_rate(&[], &truth), 0.0);
    }

    #[test]
    #[should_panic(expected = "undefined")]
    fn rms_zero_actual_panics() {
        let _ = rms_error(&[1.0], 0.0);
    }
}
