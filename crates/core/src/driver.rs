//! The scenario driver: one owner for the warmup → measure → adapt loop
//! that every experiment, example, and deployment entry point used to
//! hand-roll.
//!
//! A [`Driver`] wraps a [`Session`] plus the warmup discipline of §7.1
//! ("data collection begins only after the aggregation topologies become
//! stable"). Each epoch it asks a [`Workload`] for that epoch's
//! readings, lets the caller register this epoch's queries on a fresh
//! [`QuerySet`] (protocols borrow the readings, so the set is rebuilt
//! per epoch — handles stay valid because registration order is stable),
//! runs the single bundled traversal, and hands the answers to an
//! observer along with whether the epoch counts as measured.
//!
//! [`Driver::run_scalar`] is the one-scalar-aggregate convenience that
//! covers the common "estimate vs truth series" experiment shape
//! directly.

use crate::protocol::{Protocol, ScalarProtocol};
use crate::query::{QueryHandle, QuerySet};
use crate::session::{QueryRecord, Session};
use td_aggregates::traits::Aggregate;
use td_netsim::loss::LossModel;

/// A source of per-epoch scalar readings (`readings()[0]` belongs to the
/// base station and is ignored by aggregates).
///
/// Unifies the Synthetic and LabData scenarios — and anything else that
/// can produce a reading per node per epoch — behind the one interface
/// the [`Driver`] consumes.
pub trait Workload {
    /// The readings for `epoch`, one per node.
    fn readings(&self, epoch: u64) -> Vec<u64>;
}

/// The trivial workload: the same readings every epoch. Covers constant
/// Count-style queries and item-stream experiments where the protocol
/// carries its own (epoch-independent) data.
#[derive(Clone, Debug)]
pub struct FixedReadings(pub Vec<u64>);

impl Workload for FixedReadings {
    fn readings(&self, _epoch: u64) -> Vec<u64> {
        self.0.clone()
    }
}

impl<W: Workload + ?Sized> Workload for &W {
    fn readings(&self, epoch: u64) -> Vec<u64> {
        (**self).readings(epoch)
    }
}

/// What the driver shows the observer after each epoch.
pub struct EpochView<'a> {
    /// The absolute epoch number (warmup epochs included).
    pub epoch: u64,
    /// Whether this epoch is past warmup (a "measured" epoch).
    pub measured: bool,
    /// The readings this epoch ran over.
    pub readings: &'a [u64],
    /// The epoch's answers and shared instrumentation.
    pub record: QueryRecord,
    /// The session, for topology/stats introspection.
    pub session: &'a Session,
}

/// The collected result of a [`Driver::run_scalar`] run.
#[derive(Clone, Debug, Default)]
pub struct ScalarRun {
    /// Estimates from each measured epoch.
    pub estimates: Vec<f64>,
    /// Ground-truth values from each measured epoch.
    pub actuals: Vec<f64>,
    /// `pct_contributing` of the final epoch.
    pub last_pct_contributing: f64,
    /// Delta size after the final epoch.
    pub last_delta_size: usize,
    /// Number of adaptation moves (expansions + shrinks) over the whole
    /// run, warmup included.
    pub adapt_moves: u64,
}

/// Owns a session's warmup/epoch/adaptation loop.
pub struct Driver {
    session: Session,
    warmup: u64,
    next_epoch: u64,
}

impl Driver {
    /// Wrap `session` with `warmup` unmeasured epochs.
    pub fn new(session: Session, warmup: u64) -> Self {
        Driver {
            session,
            warmup,
            next_epoch: 0,
        }
    }

    /// The wrapped session.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Unwrap the session (keeps its topology and statistics).
    pub fn into_session(self) -> Session {
        self.session
    }

    /// The next epoch number the driver will run (epochs accumulate
    /// across `run*` calls, so a driver can be driven in phases).
    pub fn next_epoch(&self) -> u64 {
        self.next_epoch
    }

    /// Run `warmup + epochs` epochs (continuing the epoch clock).
    ///
    /// Per epoch: `register` places this epoch's queries on a fresh set
    /// over the workload's readings and returns whatever handles the
    /// observer needs; `observe` then receives the [`EpochView`] and
    /// those handles. Warmup applies only to the driver's first run —
    /// once past it, every epoch is measured.
    pub fn run<W, M, R, H, Reg, Obs>(
        &mut self,
        workload: &W,
        model: &M,
        epochs: u64,
        mut register: Reg,
        mut observe: Obs,
        rng: &mut R,
    ) where
        W: Workload + ?Sized,
        M: LossModel,
        R: rand::Rng + ?Sized,
        Reg: for<'e> FnMut(&mut QuerySet<'e>, &'e [u64]) -> H,
        Obs: FnMut(EpochView<'_>, H),
    {
        let remaining_warmup = self.warmup.saturating_sub(self.next_epoch);
        for _ in 0..remaining_warmup + epochs {
            let epoch = self.next_epoch;
            let readings = workload.readings(epoch);
            let mut set = QuerySet::new();
            let handles = register(&mut set, &readings);
            let record = self.session.run_set(&set, model, epoch, rng);
            drop(set);
            observe(
                EpochView {
                    epoch,
                    measured: epoch >= self.warmup,
                    readings: &readings,
                    record,
                    session: &self.session,
                },
                handles,
            );
            self.next_epoch += 1;
        }
    }

    /// Run a single scalar aggregate over the workload, collecting the
    /// measured estimate/truth series (`truth` maps an epoch's readings
    /// to the exact answer).
    pub fn run_scalar<A, W, M, R, T>(
        &mut self,
        agg: &A,
        workload: &W,
        model: &M,
        epochs: u64,
        truth: T,
        rng: &mut R,
    ) -> ScalarRun
    where
        A: Aggregate + 'static,
        W: Workload + ?Sized,
        M: LossModel,
        R: rand::Rng + ?Sized,
        T: Fn(&[u64]) -> f64,
    {
        let mut out = ScalarRun::default();
        self.run(
            workload,
            model,
            epochs,
            |set: &mut QuerySet<'_>, readings| {
                set.register(ScalarProtocol::new(agg.clone(), readings))
            },
            |view: EpochView<'_>, handle: QueryHandle<f64>| {
                if view.measured {
                    out.estimates.push(*view.record.answers.get(handle));
                    out.actuals.push(truth(view.readings));
                }
                out.last_pct_contributing = view.record.pct_contributing;
                out.last_delta_size = view.record.delta_size;
                if matches!(
                    view.record.action,
                    crate::adapt::AdaptAction::Expanded { .. }
                        | crate::adapt::AdaptAction::Shrunk { .. }
                ) {
                    out.adapt_moves += 1;
                }
            },
            rng,
        );
        out
    }

    /// Run a caller-built protocol per epoch (the non-scalar convenience:
    /// frequent items and custom protocols carrying their own data),
    /// returning the final epoch's output.
    ///
    /// Unlike [`run`](Self::run), the per-epoch protocol may borrow data
    /// outside the driver (item bags, readings tables): `make` is called
    /// once per epoch and the protocol only needs to outlive that epoch.
    /// That is also why this repeats [`run`](Self::run)'s small epoch
    /// loop instead of delegating to it: `run`'s register callback is
    /// higher-ranked over the set lifetime (`for<'e>`), which a closure
    /// registering a protocol that captures outer borrows cannot
    /// satisfy — here the loop body gives the set a concrete lifetime.
    pub fn run_protocol<P, M, R, F>(
        &mut self,
        mut make: F,
        model: &M,
        epochs: u64,
        rng: &mut R,
    ) -> Option<P::Output>
    where
        P: Protocol,
        M: LossModel,
        R: rand::Rng + ?Sized,
        F: FnMut(u64) -> P,
    {
        let mut last = None;
        let remaining_warmup = self.warmup.saturating_sub(self.next_epoch);
        for _ in 0..remaining_warmup + epochs {
            let epoch = self.next_epoch;
            let proto = make(epoch);
            let mut set = QuerySet::new();
            let handle = set.register(&proto);
            let mut rec = self.session.run_set(&set, model, epoch, rng);
            last = Some(rec.answers.take(handle));
            self.next_epoch += 1;
        }
        last
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{Scheme, SessionBuilder};
    use td_aggregates::count::Count;
    use td_aggregates::sum::Sum;
    use td_netsim::loss::NoLoss;
    use td_netsim::network::Network;
    use td_netsim::node::Position;
    use td_netsim::rng::rng_from_seed;

    fn net(seed: u64) -> Network {
        let mut rng = rng_from_seed(seed);
        Network::random_connected(120, 12.0, 12.0, Position::new(6.0, 6.0), 2.5, &mut rng)
    }

    #[test]
    fn warmup_epochs_are_not_measured() {
        let net = net(201);
        let mut rng = rng_from_seed(202);
        let session = SessionBuilder::new(Scheme::Tag).build(&net, &mut rng);
        let mut driver = Driver::new(session, 5);
        let workload = FixedReadings(vec![1; net.len()]);
        let run = driver.run_scalar(
            &Count::default(),
            &workload,
            &NoLoss,
            7,
            |_| net.num_sensors() as f64,
            &mut rng,
        );
        assert_eq!(run.estimates.len(), 7);
        assert_eq!(driver.next_epoch(), 12);
        // Lossless TAG: exact every measured epoch.
        assert_eq!(run.estimates, run.actuals);
    }

    #[test]
    fn driver_matches_hand_rolled_loop() {
        let net = net(203);
        let values: Vec<u64> = (0..net.len() as u64).map(|i| 3 + i % 20).collect();
        let truth: f64 = values[1..].iter().sum::<u64>() as f64;
        let model = td_netsim::loss::Global::new(0.2);

        // Hand-rolled.
        let mut rng = rng_from_seed(204);
        let mut session = SessionBuilder::new(Scheme::Td).build(&net, &mut rng);
        let mut manual = Vec::new();
        for epoch in 0..12u64 {
            let proto = ScalarProtocol::new(Sum::default(), &values);
            manual.push(session.run_epoch(&proto, &model, epoch, &mut rng).output);
        }

        // Driver, same seed, warmup 4 → the measured tail must match.
        let mut rng = rng_from_seed(204);
        let session = SessionBuilder::new(Scheme::Td).build(&net, &mut rng);
        let mut driver = Driver::new(session, 4);
        let run = driver.run_scalar(
            &Sum::default(),
            &FixedReadings(values.clone()),
            &model,
            8,
            |readings| readings[1..].iter().sum::<u64>() as f64,
            &mut rng,
        );
        assert_eq!(run.estimates, manual[4..].to_vec());
        assert!(run.actuals.iter().all(|&a| a == truth));
    }

    #[test]
    fn phased_runs_continue_the_epoch_clock() {
        let net = net(205);
        let mut rng = rng_from_seed(206);
        let session = SessionBuilder::new(Scheme::Sd).build(&net, &mut rng);
        let mut driver = Driver::new(session, 3);
        let workload = FixedReadings(vec![1; net.len()]);
        let mut epochs_seen = Vec::new();
        for _ in 0..2 {
            driver.run(
                &workload,
                &NoLoss,
                2,
                |set: &mut QuerySet<'_>, readings| {
                    set.register(ScalarProtocol::new(Count::default(), readings))
                },
                |view: EpochView<'_>, _h| epochs_seen.push((view.epoch, view.measured)),
                &mut rng,
            );
        }
        // First run: 3 warmup + 2 measured; second: warmup already spent.
        let expect: Vec<(u64, bool)> = (0..7u64).map(|e| (e, e >= 3)).collect();
        assert_eq!(epochs_seen, expect);
    }
}
