//! The scenario driver: one owner for the warmup → measure → adapt loop
//! that every experiment, example, and deployment entry point used to
//! hand-roll.
//!
//! A [`Driver`] wraps a [`Session`] plus the warmup discipline of §7.1
//! ("data collection begins only after the aggregation topologies become
//! stable"). Each epoch it asks a [`Workload`] for that epoch's
//! readings, lets the caller register this epoch's queries on a fresh
//! [`QuerySet`] (protocols borrow the readings, so the set is rebuilt
//! per epoch — handles stay valid because registration order is stable),
//! runs the single bundled traversal, and hands the answers to an
//! observer along with whether the epoch counts as measured.
//!
//! [`Driver::run_scalar`] is the one-scalar-aggregate convenience that
//! covers the common "estimate vs truth series" experiment shape
//! directly.
//!
//! ## Parallel trials
//!
//! The paper's evaluation is thousands of *independent* epochs across
//! schemes, loss rates, and seeds, so the experiment layer is
//! embarrassingly parallel by construction. [`TrialPool`] owns that
//! parallelism: a `std::thread::scope`-based executor that fans
//! independent trial configurations across cores, hands every trial a
//! deterministic RNG substream salted by its trial index
//! ([`TrialPool::trial_rng`]), and merges results back **in trial
//! order** — so a run is bit-for-bit identical whatever the thread count
//! or scheduling. [`Driver::run_trials`] and [`Driver::run_sweep`] layer
//! the common shapes on top (N seeds of one scenario; a parameter sweep
//! × N seeds per point), merging per-trial [`CommStats`] with
//! [`CommStats::merge`].

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::protocol::{Protocol, ScalarProtocol};
use crate::query::{QueryHandle, QuerySet};
use crate::session::{QueryRecord, Session};
use rand::rngs::StdRng;
use td_aggregates::traits::Aggregate;
use td_netsim::loss::LossModel;
use td_netsim::rng::substream;
use td_netsim::stats::CommStats;

/// A source of per-epoch scalar readings (`readings()[0]` belongs to the
/// base station and is ignored by aggregates).
///
/// Unifies the Synthetic and LabData scenarios — and anything else that
/// can produce a reading per node per epoch — behind the one interface
/// the [`Driver`] consumes.
///
/// `Send + Sync` is a supertrait so workloads can cross worker threads:
/// the trial pool shares one workload across trials and the service
/// layer owns one boxed workload per tenant on whichever worker shard
/// the tenant hashes to. Workloads are epoch-indexed pure data, so
/// every existing implementation satisfies the bounds for free.
pub trait Workload: Send + Sync {
    /// The readings for `epoch`, one per node.
    fn readings(&self, epoch: u64) -> Vec<u64>;
}

/// The trivial workload: the same readings every epoch. Covers constant
/// Count-style queries and item-stream experiments where the protocol
/// carries its own (epoch-independent) data.
#[derive(Clone, Debug)]
pub struct FixedReadings(pub Vec<u64>);

impl Workload for FixedReadings {
    fn readings(&self, _epoch: u64) -> Vec<u64> {
        self.0.clone()
    }
}

impl<W: Workload + ?Sized> Workload for &W {
    fn readings(&self, epoch: u64) -> Vec<u64> {
        (**self).readings(epoch)
    }
}

/// One epoch stepped through [`Driver::step_set`]: the record plus the
/// driver's clock bookkeeping.
#[derive(Debug)]
pub struct SteppedEpoch {
    /// The absolute epoch number that ran (warmup included).
    pub epoch: u64,
    /// Whether the epoch is past warmup (a "measured" epoch).
    pub measured: bool,
    /// The epoch's answers and shared instrumentation.
    pub record: QueryRecord,
}

/// What the driver shows the observer after each epoch.
pub struct EpochView<'a> {
    /// The absolute epoch number (warmup epochs included).
    pub epoch: u64,
    /// Whether this epoch is past warmup (a "measured" epoch).
    pub measured: bool,
    /// The readings this epoch ran over.
    pub readings: &'a [u64],
    /// The epoch's answers and shared instrumentation.
    pub record: QueryRecord,
    /// The session, for topology/stats introspection.
    pub session: &'a Session,
}

/// The collected result of a [`Driver::run_scalar`] run.
#[derive(Clone, Debug, Default)]
pub struct ScalarRun {
    /// Estimates from each measured epoch.
    pub estimates: Vec<f64>,
    /// Ground-truth values from each measured epoch.
    pub actuals: Vec<f64>,
    /// `pct_contributing` of the final epoch.
    pub last_pct_contributing: f64,
    /// Delta size after the final epoch.
    pub last_delta_size: usize,
    /// Number of adaptation moves (expansions + shrinks) over the whole
    /// run, warmup included.
    pub adapt_moves: u64,
}

/// Owns a session's warmup/epoch/adaptation loop.
pub struct Driver {
    session: Session,
    warmup: u64,
    next_epoch: u64,
}

impl Driver {
    /// Wrap `session` with `warmup` unmeasured epochs.
    pub fn new(session: Session, warmup: u64) -> Self {
        Driver {
            session,
            warmup,
            next_epoch: 0,
        }
    }

    /// The wrapped session.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Mutable access to the wrapped session (e.g. to clear the cached
    /// epoch plan when a bench wants the recompile-every-epoch path).
    pub fn session_mut(&mut self) -> &mut Session {
        &mut self.session
    }

    /// The session's plan-cache counters: compiles vs in-place patches
    /// across this driver's run — the adaptation-cost telemetry benches
    /// report next to epochs/sec.
    pub fn plan_stats(&self) -> crate::session::PlanCacheStats {
        self.session.plan_stats()
    }

    /// Unwrap the session (keeps its topology and statistics).
    pub fn into_session(self) -> Session {
        self.session
    }

    /// The next epoch number the driver will run (epochs accumulate
    /// across `run*` calls, so a driver can be driven in phases).
    pub fn next_epoch(&self) -> u64 {
        self.next_epoch
    }

    /// The configured warmup epoch count.
    pub fn warmup(&self) -> u64 {
        self.warmup
    }

    /// Run exactly one epoch over a caller-built query set, advancing
    /// the warmup/epoch clock.
    ///
    /// This is the concrete-lifetime escape hatch: [`run`](Self::run)'s
    /// `register` callback is higher-ranked over the set lifetime
    /// (`for<'e>`), which a caller registering protocols that borrow its
    /// own state cannot satisfy — stepping one epoch at a time gives the
    /// set a concrete lifetime instead. The stream engine's pane sources
    /// drive their epochs through here.
    pub fn step_set<M: LossModel, R: rand::Rng + ?Sized>(
        &mut self,
        set: &QuerySet<'_>,
        model: &M,
        rng: &mut R,
    ) -> SteppedEpoch {
        let epoch = self.next_epoch;
        let record = self.session.run_set(set, model, epoch, rng);
        self.next_epoch += 1;
        SteppedEpoch {
            epoch,
            measured: epoch >= self.warmup,
            record,
        }
    }

    /// Run `warmup + epochs` epochs (continuing the epoch clock).
    ///
    /// Per epoch: `register` places this epoch's queries on a fresh set
    /// over the workload's readings and returns whatever handles the
    /// observer needs; `observe` then receives the [`EpochView`] and
    /// those handles. Warmup applies only to the driver's first run —
    /// once past it, every epoch is measured.
    pub fn run<W, M, R, H, Reg, Obs>(
        &mut self,
        workload: &W,
        model: &M,
        epochs: u64,
        mut register: Reg,
        mut observe: Obs,
        rng: &mut R,
    ) where
        W: Workload + ?Sized,
        M: LossModel,
        R: rand::Rng + ?Sized,
        Reg: for<'e> FnMut(&mut QuerySet<'e>, &'e [u64]) -> H,
        Obs: FnMut(EpochView<'_>, H),
    {
        let remaining_warmup = self.warmup.saturating_sub(self.next_epoch);
        for _ in 0..remaining_warmup + epochs {
            let epoch = self.next_epoch;
            let readings = workload.readings(epoch);
            let mut set = QuerySet::new();
            let handles = register(&mut set, &readings);
            let record = self.session.run_set(&set, model, epoch, rng);
            drop(set);
            observe(
                EpochView {
                    epoch,
                    measured: epoch >= self.warmup,
                    readings: &readings,
                    record,
                    session: &self.session,
                },
                handles,
            );
            self.next_epoch += 1;
        }
    }

    /// Run a single scalar aggregate over the workload, collecting the
    /// measured estimate/truth series (`truth` maps an epoch's readings
    /// to the exact answer).
    pub fn run_scalar<A, W, M, R, T>(
        &mut self,
        agg: &A,
        workload: &W,
        model: &M,
        epochs: u64,
        truth: T,
        rng: &mut R,
    ) -> ScalarRun
    where
        A: Aggregate + 'static,
        W: Workload + ?Sized,
        M: LossModel,
        R: rand::Rng + ?Sized,
        T: Fn(&[u64]) -> f64,
    {
        let mut out = ScalarRun::default();
        self.run(
            workload,
            model,
            epochs,
            |set: &mut QuerySet<'_>, readings| {
                set.register(ScalarProtocol::new(agg.clone(), readings))
            },
            |view: EpochView<'_>, handle: QueryHandle<f64>| {
                if view.measured {
                    out.estimates.push(*view.record.answers.get(handle));
                    out.actuals.push(truth(view.readings));
                }
                out.last_pct_contributing = view.record.pct_contributing;
                out.last_delta_size = view.record.delta_size;
                if matches!(
                    view.record.action,
                    crate::adapt::AdaptAction::Expanded { .. }
                        | crate::adapt::AdaptAction::Shrunk { .. }
                ) {
                    out.adapt_moves += 1;
                }
            },
            rng,
        );
        out
    }

    /// Run a caller-built protocol per epoch (the non-scalar convenience:
    /// frequent items and custom protocols carrying their own data),
    /// returning the final epoch's output.
    ///
    /// Unlike [`run`](Self::run), the per-epoch protocol may borrow data
    /// outside the driver (item bags, readings tables): `make` is called
    /// once per epoch and the protocol only needs to outlive that epoch.
    /// That is also why this repeats [`run`](Self::run)'s small epoch
    /// loop instead of delegating to it: `run`'s register callback is
    /// higher-ranked over the set lifetime (`for<'e>`), which a closure
    /// registering a protocol that captures outer borrows cannot
    /// satisfy — here the loop body gives the set a concrete lifetime.
    pub fn run_protocol<P, M, R, F>(
        &mut self,
        mut make: F,
        model: &M,
        epochs: u64,
        rng: &mut R,
    ) -> Option<P::Output>
    where
        P: Protocol,
        M: LossModel,
        R: rand::Rng + ?Sized,
        F: FnMut(u64) -> P,
    {
        let mut last = None;
        let remaining_warmup = self.warmup.saturating_sub(self.next_epoch);
        for _ in 0..remaining_warmup + epochs {
            let epoch = self.next_epoch;
            let proto = make(epoch);
            let mut set = QuerySet::new();
            let handle = set.register(&proto);
            let mut rec = self.session.run_set(&set, model, epoch, rng);
            last = Some(rec.answers.take(handle));
            self.next_epoch += 1;
        }
        last
    }

    /// Run `trials` independent trials of a scenario across the pool,
    /// merging communication statistics. Trial `t` receives the
    /// deterministic substream [`TrialPool::trial_rng`]`(seed, t)`;
    /// outputs come back in trial order and the per-trial stats are
    /// folded with [`CommStats::merge`], so the batch is bit-for-bit
    /// identical to running the trials sequentially.
    ///
    /// The per-trial stats must track the same node count (the usual
    /// case: every trial simulates the same deployment size);
    /// [`CommStats::merge`] panics otherwise.
    pub fn run_trials<T, F>(pool: &TrialPool, seed: u64, trials: u64, trial: F) -> TrialBatch<T>
    where
        T: Send,
        F: Fn(u64, &mut StdRng) -> (T, CommStats) + Sync,
    {
        let results = pool.run(seed, trials, trial);
        let mut batch = TrialBatch {
            outputs: Vec::with_capacity(results.len()),
            stats: None,
        };
        for (out, trial_stats) in results {
            batch.absorb(out, trial_stats);
        }
        batch
    }

    /// Run a parameter sweep: `trials_per_point` independent trials of
    /// every point in `points`, all fanned across one flat pool (so a
    /// slow point does not serialize the sweep), regrouped per point in
    /// order. The RNG substream of `(point p, trial t)` is salted by the
    /// flattened index `p * trials_per_point + t` — independent of the
    /// thread count, so sweeps replay bit-for-bit.
    pub fn run_sweep<P, T, F>(
        pool: &TrialPool,
        seed: u64,
        points: &[P],
        trials_per_point: u64,
        job: F,
    ) -> Vec<TrialBatch<T>>
    where
        P: Sync,
        T: Send,
        F: Fn(&P, u64, &mut StdRng) -> (T, CommStats) + Sync,
    {
        let total = points.len() as u64 * trials_per_point;
        let flat = pool.run(seed, total, |g, rng| {
            let point = (g / trials_per_point) as usize;
            let trial = g % trials_per_point;
            job(&points[point], trial, rng)
        });
        // One batch per point unconditionally, so the `zip(points)`
        // contract holds even for a degenerate zero-trial sweep.
        let mut batches: Vec<TrialBatch<T>> = points
            .iter()
            .map(|_| TrialBatch {
                outputs: Vec::with_capacity(trials_per_point as usize),
                stats: None,
            })
            .collect();
        for (g, (out, trial_stats)) in flat.into_iter().enumerate() {
            batches[g / trials_per_point as usize].absorb(out, trial_stats);
        }
        batches
    }
}

/// The merged outcome of one [`Driver::run_trials`] batch (or one sweep
/// point of [`Driver::run_sweep`]).
#[derive(Clone, Debug)]
pub struct TrialBatch<T> {
    /// Per-trial outputs, in trial order.
    pub outputs: Vec<T>,
    /// Communication statistics summed across the batch's trials
    /// ([`CommStats::merge`]); `None` when the batch ran zero trials.
    pub stats: Option<CommStats>,
}

impl<T> TrialBatch<T> {
    /// Fold one trial's result in: append the output, merge the stats
    /// (first trial seeds the accumulator).
    fn absorb(&mut self, output: T, stats: CommStats) {
        match &mut self.stats {
            Some(acc) => acc.merge(&stats),
            none => *none = Some(stats),
        }
        self.outputs.push(output);
    }
}

/// A `std::thread::scope`-based executor for independent simulation
/// trials.
///
/// Work is claimed off a shared atomic counter, so long trials load-
/// balance across workers; determinism does not depend on scheduling
/// because every trial's RNG is derived from `(seed, trial index)` alone
/// ([`TrialPool::trial_rng`]) and results are reassembled in index
/// order. A pool of one thread degenerates to a plain sequential loop
/// over the identical substreams — the equivalence the determinism tests
/// pin bit-for-bit.
#[derive(Clone, Copy, Debug)]
pub struct TrialPool {
    threads: usize,
    /// Smallest trial count worth spawning threads for; below it the
    /// pool runs the identical sequential loop inline — at tiny batch
    /// sizes thread spawn/join costs more than the trials themselves.
    min_parallel: usize,
}

impl Default for TrialPool {
    fn default() -> Self {
        TrialPool::new()
    }
}

/// Salt mixed into every trial substream so trial streams never collide
/// with the topology/loss substreams experiments derive from the same
/// experiment seed.
const TRIAL_STREAM_SALT: u64 = 0x7121_A100;

impl TrialPool {
    /// A pool sized to the machine (`available_parallelism`, 1 if
    /// unknown).
    pub fn new() -> Self {
        TrialPool {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            min_parallel: 2,
        }
    }

    /// A pool with an explicit worker count (1 = sequential execution).
    ///
    /// # Panics
    /// Panics if `threads` is zero.
    pub fn with_threads(threads: usize) -> Self {
        assert!(threads >= 1, "a trial pool needs at least one worker");
        TrialPool {
            threads,
            min_parallel: 2,
        }
    }

    /// Override the inline-sequential threshold: batches smaller than
    /// `min_parallel` trials skip thread spawn/join and run the
    /// identical sequential loop on the caller (results are index-keyed
    /// and bit-identical either way, so this only trades wall-clock).
    pub fn with_min_parallel(mut self, min_parallel: usize) -> Self {
        self.min_parallel = min_parallel;
        self
    }

    /// The worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The deterministic RNG substream of trial `index` under `seed` —
    /// the stream [`run`](Self::run) hands each job. Public so
    /// sequential baselines (tests, single-trial reruns of one sweep
    /// point) can replay exactly what the pool executed.
    pub fn trial_rng(seed: u64, index: u64) -> StdRng {
        substream(seed, TRIAL_STREAM_SALT.wrapping_add(index))
    }

    /// Run `trials` independent jobs, returning outputs in trial order.
    /// Job `t` runs `job(t, &mut trial_rng(seed, t))` on whichever
    /// worker claims it first.
    pub fn run<T, F>(&self, seed: u64, trials: u64, job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(u64, &mut StdRng) -> T + Sync,
    {
        let n = usize::try_from(trials).expect("trial count fits in usize");
        self.dispatch(n, |i| {
            let mut rng = TrialPool::trial_rng(seed, i as u64);
            job(i as u64, &mut rng)
        })
    }

    /// Map `job` over `configs` in parallel: job `i` gets `configs[i]`
    /// and the substream `trial_rng(seed, i)`. Outputs in config order.
    pub fn map<C, T, F>(&self, seed: u64, configs: &[C], job: F) -> Vec<T>
    where
        C: Sync,
        T: Send,
        F: Fn(u64, &C, &mut StdRng) -> T + Sync,
    {
        self.dispatch(configs.len(), |i| {
            let mut rng = TrialPool::trial_rng(seed, i as u64);
            job(i as u64, &configs[i], &mut rng)
        })
    }

    /// The shared fan-out core: claim indices `0..n` off an atomic
    /// counter, run `job` on each, reassemble in index order.
    fn dispatch<T, F>(&self, n: usize, job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        let workers = self.threads.min(n);
        if workers <= 1 || n < self.min_parallel {
            return (0..n).map(job).collect();
        }
        let counter = AtomicUsize::new(0);
        // Index-keyed placement instead of collect-and-sort: every slot
        // is filled exactly once (the atomic counter hands each index to
        // one worker), so reassembly is a straight O(n) unwrap.
        let mut slots: Vec<Option<T>> = Vec::new();
        slots.resize_with(n, || None);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        // Reused per-worker scratch, sized for an even
                        // share up front so claim-loop pushes never
                        // reallocate.
                        let mut local = Vec::with_capacity(n / workers + 1);
                        loop {
                            let i = counter.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            local.push((i, job(i)));
                        }
                        local
                    })
                })
                .collect();
            for h in handles {
                for (i, t) in h.join().expect("trial worker panicked") {
                    slots[i] = Some(t);
                }
            }
        });
        slots
            .into_iter()
            .map(|t| t.expect("every trial index claimed exactly once"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{Scheme, SessionBuilder};
    use td_aggregates::count::Count;
    use td_aggregates::sum::Sum;
    use td_netsim::loss::NoLoss;
    use td_netsim::network::Network;
    use td_netsim::node::Position;
    use td_netsim::rng::rng_from_seed;

    fn net(seed: u64) -> Network {
        let mut rng = rng_from_seed(seed);
        Network::random_connected(120, 12.0, 12.0, Position::new(6.0, 6.0), 2.5, &mut rng)
    }

    #[test]
    fn warmup_epochs_are_not_measured() {
        let net = net(201);
        let mut rng = rng_from_seed(202);
        let session = SessionBuilder::new(Scheme::Tag).build(&net, &mut rng);
        let mut driver = Driver::new(session, 5);
        let workload = FixedReadings(vec![1; net.len()]);
        let run = driver.run_scalar(
            &Count::default(),
            &workload,
            &NoLoss,
            7,
            |_| net.num_sensors() as f64,
            &mut rng,
        );
        assert_eq!(run.estimates.len(), 7);
        assert_eq!(driver.next_epoch(), 12);
        // Lossless TAG: exact every measured epoch.
        assert_eq!(run.estimates, run.actuals);
    }

    #[test]
    fn driver_matches_hand_rolled_loop() {
        let net = net(203);
        let values: Vec<u64> = (0..net.len() as u64).map(|i| 3 + i % 20).collect();
        let truth: f64 = values[1..].iter().sum::<u64>() as f64;
        let model = td_netsim::loss::Global::new(0.2);

        // Hand-rolled.
        let mut rng = rng_from_seed(204);
        let mut session = SessionBuilder::new(Scheme::Td).build(&net, &mut rng);
        let mut manual = Vec::new();
        for epoch in 0..12u64 {
            let proto = ScalarProtocol::new(Sum::default(), &values);
            manual.push(session.run_epoch(&proto, &model, epoch, &mut rng).output);
        }

        // Driver, same seed, warmup 4 → the measured tail must match.
        let mut rng = rng_from_seed(204);
        let session = SessionBuilder::new(Scheme::Td).build(&net, &mut rng);
        let mut driver = Driver::new(session, 4);
        let run = driver.run_scalar(
            &Sum::default(),
            &FixedReadings(values.clone()),
            &model,
            8,
            |readings| readings[1..].iter().sum::<u64>() as f64,
            &mut rng,
        );
        assert_eq!(run.estimates, manual[4..].to_vec());
        assert!(run.actuals.iter().all(|&a| a == truth));
    }

    #[test]
    fn step_set_matches_run_bit_for_bit() {
        let net = net(207);
        let values: Vec<u64> = (0..net.len() as u64).map(|i| 2 + i % 9).collect();
        let model = td_netsim::loss::Global::new(0.15);

        // Closure-driven loop.
        let mut rng = rng_from_seed(208);
        let session = SessionBuilder::new(Scheme::Td).build(&net, &mut rng);
        let mut driver = Driver::new(session, 3);
        let mut via_run = Vec::new();
        driver.run(
            &FixedReadings(values.clone()),
            &model,
            5,
            |set: &mut QuerySet<'_>, readings| {
                set.register(ScalarProtocol::new(Sum::default(), readings))
            },
            |view: EpochView<'_>, h| {
                via_run.push((view.epoch, view.measured, *view.record.answers.get(h)))
            },
            &mut rng,
        );

        // Stepped loop, same seed.
        let mut rng = rng_from_seed(208);
        let session = SessionBuilder::new(Scheme::Td).build(&net, &mut rng);
        let mut driver = Driver::new(session, 3);
        assert_eq!(driver.warmup(), 3);
        let mut via_step = Vec::new();
        for _ in 0..8 {
            let proto = ScalarProtocol::new(Sum::default(), &values);
            let mut set = QuerySet::new();
            let handle = set.register(&proto);
            let mut stepped = driver.step_set(&set, &model, &mut rng);
            via_step.push((
                stepped.epoch,
                stepped.measured,
                stepped.record.answers.take(handle),
            ));
        }
        assert_eq!(via_run, via_step);
    }

    #[test]
    fn trial_pool_results_are_thread_count_invariant() {
        // The job mixes its trial index into draws from the provided
        // substream; any scheduling dependence would scramble the output.
        let job = |t: u64, rng: &mut rand::rngs::StdRng| {
            use rand::Rng;
            (t, rng.gen::<u64>())
        };
        let sequential = TrialPool::with_threads(1).run(99, 16, job);
        let parallel = TrialPool::with_threads(4).run(99, 16, job);
        let wide = TrialPool::with_threads(32).run(99, 16, job);
        assert_eq!(sequential, parallel);
        assert_eq!(sequential, wide);
        assert_eq!(sequential.len(), 16);
        // And each stream really is the advertised substream.
        for (t, draw) in &sequential {
            use rand::Rng;
            assert_eq!(*draw, TrialPool::trial_rng(99, *t).gen::<u64>());
        }
    }

    #[test]
    fn trial_pool_map_preserves_config_order() {
        let configs: Vec<u64> = (0..23).map(|i| i * 10).collect();
        let out = TrialPool::with_threads(3).map(7, &configs, |i, &c, _rng| (i, c));
        for (i, (idx, c)) in out.iter().enumerate() {
            assert_eq!(*idx, i as u64);
            assert_eq!(*c, configs[i]);
        }
    }

    #[test]
    fn run_trials_merges_stats_across_trials() {
        let batch = Driver::run_trials(&TrialPool::with_threads(2), 1, 5, |t, _rng| {
            let mut stats = td_netsim::stats::CommStats::new(3);
            stats.record_send(td_netsim::node::NodeId(1), 4, 1, 1);
            (t, stats)
        });
        assert_eq!(batch.outputs, vec![0, 1, 2, 3, 4]);
        let stats = batch.stats.expect("five trials merged");
        assert_eq!(stats.total_bytes(), 20);
        assert_eq!(stats.total_rounds(), 5);
    }

    #[test]
    fn run_sweep_groups_points_in_order() {
        let points = [10u64, 20, 30];
        let batches = Driver::run_sweep(&TrialPool::with_threads(4), 2, &points, 4, |&p, t, _| {
            (p + t, td_netsim::stats::CommStats::new(1))
        });
        assert_eq!(batches.len(), 3);
        for (i, batch) in batches.iter().enumerate() {
            let p = points[i];
            assert_eq!(batch.outputs, vec![p, p + 1, p + 2, p + 3]);
        }
    }

    #[test]
    fn run_sweep_zero_trials_still_yields_one_batch_per_point() {
        let points = [1u64, 2];
        let batches = Driver::run_sweep(&TrialPool::with_threads(2), 3, &points, 0, |&p, t, _| {
            (p + t, td_netsim::stats::CommStats::new(1))
        });
        assert_eq!(batches.len(), 2);
        for batch in &batches {
            assert!(batch.outputs.is_empty());
            assert!(batch.stats.is_none());
        }
    }

    #[test]
    fn phased_runs_continue_the_epoch_clock() {
        let net = net(205);
        let mut rng = rng_from_seed(206);
        let session = SessionBuilder::new(Scheme::Sd).build(&net, &mut rng);
        let mut driver = Driver::new(session, 3);
        let workload = FixedReadings(vec![1; net.len()]);
        let mut epochs_seen = Vec::new();
        for _ in 0..2 {
            driver.run(
                &workload,
                &NoLoss,
                2,
                |set: &mut QuerySet<'_>, readings| {
                    set.register(ScalarProtocol::new(Count::default(), readings))
                },
                |view: EpochView<'_>, _h| epochs_seen.push((view.epoch, view.measured)),
                &mut rng,
            );
        }
        // First run: 3 warmup + 2 measured; second: warmup already spent.
        let expect: Vec<(u64, bool)> = (0..7u64).map(|e| (e, e >= 3)).collect();
        assert_eq!(epochs_seen, expect);
    }
}
