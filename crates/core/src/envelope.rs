//! Instrumented message envelopes.
//!
//! The runner wraps every protocol message in an envelope carrying the
//! adaptation signals of §4.2 plus exact ground truth for metrics:
//!
//! * **Exact contributor set** — a bitset of sensors whose data is in the
//!   message. This is simulator instrumentation (free in a simulator,
//!   impossible on motes); it provides the ground-truth "% contributing".
//! * **Exact subtree count** (tree envelopes) — trees count exactly, and
//!   this count is what the paper's augmented messages carry.
//! * **Approximate count sketch** (multi-path envelopes) — the in-band
//!   duplicate-insensitive Count the base station can use as its
//!   protocol-faithful adaptation signal.
//! * **Non-contribution extrema** — each switchable M vertex reports how
//!   many nodes of its (static) subtree failed to contribute; max/min
//!   with arg-nodes fuse ODI through the delta and steer the fine-grained
//!   TD strategy.

use td_netsim::node::NodeId;
use td_sketches::fm::FmSketch;
use td_sketches::idset::IdSet;

/// Bitmap count for the in-band approximate Count sketch (narrower than
/// the headline 40-bitmap aggregate: the signal only gates adaptation).
pub const COUNT_SKETCH_BITMAPS: usize = 16;

/// Extra words a tree message carries for adaptation (the exact subtree
/// count plus the non-contribution field of §4.2).
pub const TREE_OVERHEAD_WORDS: usize = 2;

/// An `(argmax/argmin, value)` pair fused through the delta.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Extremum {
    /// The non-contribution count.
    pub value: u64,
    /// The switchable M vertex reporting it.
    pub node: NodeId,
}

/// How many extremum reports ride in each message. §4.2 suggests
/// "maintaining the top-k values instead of just the top-1" to speed up
/// TD's convergence; 4 reports cost 8 extra words and let one adaptation
/// step expand several lagging subtrees at once.
pub const TOP_K_EXTREMA: usize = 4;

/// A fixed-capacity, ODI top-k set of extremum reports. Each reporting
/// vertex appears at most once (duplicate deliveries carry identical
/// values), so merging is idempotent.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExtremaSet {
    /// Sorted by the ordering key (see `descending`), at most
    /// [`TOP_K_EXTREMA`] entries.
    entries: Vec<Extremum>,
    /// `true` keeps the largest values (expansion), `false` the smallest
    /// (shrinking).
    descending: bool,
}

impl ExtremaSet {
    /// A top-k-largest set (expansion signal).
    pub fn largest() -> Self {
        ExtremaSet {
            entries: Vec::new(),
            descending: true,
        }
    }

    /// A top-k-smallest set (shrink signal).
    pub fn smallest() -> Self {
        ExtremaSet {
            entries: Vec::new(),
            descending: false,
        }
    }

    /// Insert one report (idempotent per reporting node).
    pub fn insert(&mut self, e: Extremum) {
        if self.entries.iter().any(|x| x.node == e.node) {
            return;
        }
        self.entries.push(e);
        let descending = self.descending;
        self.entries.sort_by_key(|x| {
            if descending {
                (-(x.value as i64), x.node.0 as i64)
            } else {
                (x.value as i64, x.node.0 as i64)
            }
        });
        self.entries.truncate(TOP_K_EXTREMA);
    }

    /// ODI merge.
    pub fn merge(&mut self, other: &Self) {
        debug_assert_eq!(self.descending, other.descending);
        for &e in &other.entries {
            self.insert(e);
        }
    }

    /// The reports, best-first.
    pub fn entries(&self) -> &[Extremum] {
        &self.entries
    }

    /// The single best report, if any.
    pub fn best(&self) -> Option<Extremum> {
        self.entries.first().copied()
    }

    /// Whether no reports are held.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A tree (tributary) message plus instrumentation.
#[derive(Clone, Debug)]
pub struct TreeEnvelope<T> {
    /// The protocol payload (`None` when the subtree had no data-bearing
    /// protocol message but still counts contributors).
    pub msg: Option<T>,
    /// The subtree root that produced this envelope (the conversion salt).
    pub root: NodeId,
    /// Exact count of contributing sensors in this subtree.
    pub count: u64,
    /// Exact contributor set (instrumentation).
    pub contributors: IdSet,
}

impl<T> TreeEnvelope<T> {
    /// A leaf-level envelope for `node` with its local message.
    pub fn local(capacity: usize, node: NodeId, msg: Option<T>) -> Self {
        Self::local_in(IdSet::new(capacity), node, msg)
    }

    /// [`TreeEnvelope::local`] over a recycled contributor set (must be
    /// cleared, capacity already sized to the network) — the
    /// allocation-free path driven by the runner arena's free-list.
    pub fn local_in(mut contributors: IdSet, node: NodeId, msg: Option<T>) -> Self {
        debug_assert!(
            contributors.is_empty(),
            "recycled contributor set not cleared"
        );
        let count = if node.is_base() {
            0
        } else {
            contributors.insert(node.0);
            1
        };
        TreeEnvelope {
            msg,
            root: node,
            count,
            contributors,
        }
    }

    /// Merge a delivered child envelope (payloads merged by the caller).
    pub fn absorb_counts(&mut self, child: &TreeEnvelope<T>) {
        self.count += child.count;
        self.contributors.union(&child.contributors);
    }
}

/// A multi-path (delta) message plus instrumentation.
#[derive(Clone, Debug)]
pub struct MpEnvelope<S> {
    /// The protocol payload.
    pub msg: Option<S>,
    /// Exact contributor set (instrumentation).
    pub contributors: IdSet,
    /// In-band duplicate-insensitive count of contributors.
    pub count_sketch: FmSketch,
    /// Largest per-subtree non-contributions seen (TD expand signal).
    pub max_noncontrib: ExtremaSet,
    /// Smallest per-subtree non-contributions seen (TD shrink signal).
    pub min_noncontrib: ExtremaSet,
}

impl<S> MpEnvelope<S> {
    /// A local envelope for a delta vertex.
    pub fn local(capacity: usize, node: NodeId, msg: Option<S>) -> Self {
        Self::local_in(IdSet::new(capacity), node, msg)
    }

    /// [`MpEnvelope::local`] over a recycled contributor set (must be
    /// cleared, capacity already sized to the network) — the
    /// allocation-free path driven by the runner arena's free-list.
    pub fn local_in(contributors: IdSet, node: NodeId, msg: Option<S>) -> Self {
        Self::local_pooled(contributors, FmSketch::new(COUNT_SKETCH_BITMAPS), node, msg)
    }

    /// [`MpEnvelope::local_in`] with the count sketch recycled too (must
    /// be cleared, [`COUNT_SKETCH_BITMAPS`] wide) — the fully
    /// allocation-free path: both per-envelope heap parts come from the
    /// runner arena's free-lists.
    pub fn local_pooled(
        mut contributors: IdSet,
        mut count_sketch: FmSketch,
        node: NodeId,
        msg: Option<S>,
    ) -> Self {
        debug_assert!(
            contributors.is_empty(),
            "recycled contributor set not cleared"
        );
        debug_assert!(count_sketch.is_empty(), "recycled count sketch not cleared");
        debug_assert_eq!(count_sketch.num_bitmaps(), COUNT_SKETCH_BITMAPS);
        if !node.is_base() {
            contributors.insert(node.0);
            count_sketch.insert_distinct(td_sketches::hash::keyed(0xC0C0, node.0 as u64));
        }
        MpEnvelope {
            msg,
            contributors,
            count_sketch,
            max_noncontrib: ExtremaSet::largest(),
            min_noncontrib: ExtremaSet::smallest(),
        }
    }

    /// Fold a delivered tree envelope's instrumentation in (payload
    /// conversion is the caller's job). The tree's exact count enters the
    /// count sketch as a value salted by the subtree root — the same
    /// conversion-function trick as the aggregate itself.
    pub fn absorb_tree_counts<T>(&mut self, child: &TreeEnvelope<T>) {
        self.contributors.union(&child.contributors);
        self.count_sketch.insert_value(
            td_sketches::hash::keyed(0xC0C1, child.root.0 as u64),
            child.count,
        );
    }

    /// ODI-fuse another delta envelope's instrumentation (payload fusion
    /// is the caller's job).
    pub fn fuse_counts(&mut self, other: &MpEnvelope<S>) {
        self.contributors.union(&other.contributors);
        self.count_sketch.merge(&other.count_sketch);
        self.max_noncontrib.merge(&other.max_noncontrib);
        self.min_noncontrib.merge(&other.min_noncontrib);
    }

    /// Record this vertex's own non-contribution report (switchable M
    /// vertices only, §4.2).
    pub fn report_noncontrib(&mut self, node: NodeId, value: u64) {
        let e = Extremum { value, node };
        self.max_noncontrib.insert(e);
        self.min_noncontrib.insert(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_envelope_counts_itself() {
        let e = TreeEnvelope::<u64>::local(10, NodeId(3), Some(7));
        assert_eq!(e.count, 1);
        assert!(e.contributors.contains(3));
        let b = TreeEnvelope::<u64>::local(10, NodeId(0), None);
        assert_eq!(b.count, 0);
    }

    #[test]
    fn tree_absorb_accumulates() {
        let mut a = TreeEnvelope::<u64>::local(10, NodeId(1), Some(1));
        let b = TreeEnvelope::<u64>::local(10, NodeId(2), Some(1));
        a.absorb_counts(&b);
        assert_eq!(a.count, 2);
        assert_eq!(a.contributors.len(), 2);
    }

    #[test]
    fn mp_fuse_is_idempotent_on_counts() {
        let mut a = MpEnvelope::<u64>::local(10, NodeId(1), Some(1));
        let b = a.clone();
        a.fuse_counts(&b);
        assert_eq!(a.contributors.len(), 1);
        let est = a.count_sketch.estimate();
        a.fuse_counts(&b);
        assert_eq!(a.count_sketch.estimate(), est);
    }

    #[test]
    fn extrema_fusion_takes_max_and_min() {
        let mut a = MpEnvelope::<u64>::local(10, NodeId(1), None);
        a.report_noncontrib(NodeId(1), 5);
        let mut b = MpEnvelope::<u64>::local(10, NodeId(2), None);
        b.report_noncontrib(NodeId(2), 9);
        let mut c = MpEnvelope::<u64>::local(10, NodeId(3), None);
        c.report_noncontrib(NodeId(3), 2);
        a.fuse_counts(&b);
        a.fuse_counts(&c);
        assert_eq!(
            a.max_noncontrib.best(),
            Some(Extremum {
                value: 9,
                node: NodeId(2)
            })
        );
        assert_eq!(
            a.min_noncontrib.best(),
            Some(Extremum {
                value: 2,
                node: NodeId(3)
            })
        );
        // All three reports survive in the top-k sets.
        assert_eq!(a.max_noncontrib.entries().len(), 3);
    }

    #[test]
    fn extrema_fusion_deterministic_on_ties() {
        // Equal values break ties by node id, independent of fuse order.
        let mut x = MpEnvelope::<u64>::local(10, NodeId(1), None);
        x.report_noncontrib(NodeId(1), 4);
        let mut y = MpEnvelope::<u64>::local(10, NodeId(2), None);
        y.report_noncontrib(NodeId(2), 4);
        let mut xy = x.clone();
        xy.fuse_counts(&y);
        let mut yx = y.clone();
        yx.fuse_counts(&x);
        assert_eq!(xy.max_noncontrib.entries(), yx.max_noncontrib.entries());
        assert_eq!(xy.min_noncontrib.entries(), yx.min_noncontrib.entries());
    }

    #[test]
    fn pooled_constructors_match_fresh_ones() {
        let mut recycled = IdSet::singleton(20, 5);
        recycled.clear();
        let pooled = TreeEnvelope::<u64>::local_in(recycled, NodeId(3), Some(7));
        let fresh = TreeEnvelope::<u64>::local(20, NodeId(3), Some(7));
        assert_eq!(pooled.count, fresh.count);
        assert_eq!(pooled.contributors, fresh.contributors);

        let mut recycled = IdSet::singleton(20, 9);
        recycled.clear();
        let pooled = MpEnvelope::<u64>::local_in(recycled, NodeId(4), Some(1));
        let fresh = MpEnvelope::<u64>::local(20, NodeId(4), Some(1));
        assert_eq!(pooled.contributors, fresh.contributors);
        assert_eq!(
            pooled.count_sketch.estimate(),
            fresh.count_sketch.estimate()
        );
    }

    #[test]
    fn tree_counts_enter_count_sketch() {
        let mut m = MpEnvelope::<u64>::local(200, NodeId(1), None);
        let mut t = TreeEnvelope::<u64>::local(200, NodeId(2), Some(1));
        for i in 3..100u32 {
            let c = TreeEnvelope::<u64>::local(200, NodeId(i), Some(1));
            t.absorb_counts(&c);
        }
        m.absorb_tree_counts(&t);
        let est = m.count_sketch.estimate();
        assert!(est > 30.0 && est < 300.0, "count sketch estimate {est}");
        assert_eq!(m.contributors.len(), 99);
    }
}
