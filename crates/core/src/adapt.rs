//! Delta-region adaptation (§4.2): TD-Coarse and TD, with oscillation
//! damping.
//!
//! The base station watches the fraction of nodes contributing to each
//! answer. Below the user threshold it **expands** the delta (more
//! robustness); comfortably above, it **shrinks** (more exactness,
//! smaller messages):
//!
//! * **TD-Coarse** switches *all* switchable vertices at once — the delta
//!   grows/shrinks by a whole level. Fast convergence, but it cannot
//!   localize, and near the optimum it tends to overshoot in both
//!   directions.
//! * **TD** uses the per-subtree non-contribution reports: expansion
//!   switches the children of the switchable M vertex whose subtree
//!   reported the *most* missing nodes; shrinking switches the switchable
//!   M vertices that reported the *least*. Finer convergence, localized
//!   deltas (Figure 4), slower to converge (Figure 6c).
//!
//! Repeated expand/shrink alternation is damped by stretching the
//! adaptation interval (§4.2's "gradually reduces the frequency of
//! adjustments").

use crate::envelope::ExtremaSet;
use td_topology::td::TdTopology;

/// Which adaptation strategy to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Switch every switchable vertex at once (whole-level moves).
    TdCoarse,
    /// Target the subtrees with extremal non-contribution.
    Td,
}

/// Adapter configuration.
#[derive(Clone, Copy, Debug)]
pub struct AdapterConfig {
    /// Minimum fraction of nodes that must contribute (paper: 0.9).
    pub threshold: f64,
    /// Epochs between adaptation decisions (paper: 10).
    pub adapt_every: u64,
    /// Margin above the threshold before shrinking is considered
    /// ("% contributing is well above the threshold").
    pub shrink_margin: f64,
    /// Strategy selection.
    pub strategy: Strategy,
    /// Consecutive expand/shrink alternations before damping kicks in.
    pub damping_after: u32,
    /// Maximum damping multiplier on the adaptation interval.
    pub max_damping: u64,
    /// TD only: when the contribution deficit (threshold − pct) exceeds
    /// this gap, expansion escalates to a whole-level (`expand_all`) move
    /// for that step. §4.2 leaves TD's adaptivity heuristics open ("using
    /// max/2 instead of max or maintaining the top-k values"); deficit-
    /// proportional escalation keeps fine-grained, localized growth when
    /// the target is close (Figure 4) and converges level-by-level like
    /// TD-Coarse when loss is network-wide — where localization cannot
    /// meet the target anyway.
    pub escalation_gap: f64,
}

impl Default for AdapterConfig {
    fn default() -> Self {
        AdapterConfig {
            threshold: 0.9,
            adapt_every: 10,
            shrink_margin: 0.07,
            strategy: Strategy::Td,
            damping_after: 2,
            max_damping: 8,
            escalation_gap: 0.15,
        }
    }
}

/// What an adaptation step did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdaptAction {
    /// Not an adaptation epoch (or damped).
    Idle,
    /// Expanded the delta by `switched` vertices.
    Expanded {
        /// Number of vertices switched T → M.
        switched: usize,
    },
    /// Shrank the delta by `switched` vertices.
    Shrunk {
        /// Number of vertices switched M → T.
        switched: usize,
    },
    /// An adaptation epoch where the contribution already met the target.
    Satisfied,
}

/// The base station's adaptation state machine.
#[derive(Clone, Debug)]
pub struct Adapter {
    config: AdapterConfig,
    /// Sliding window of recent signed moves (+1 expand, −1 shrink).
    recent: std::collections::VecDeque<i8>,
    damping: u64,
    last_adapt_epoch: Option<u64>,
}

impl Adapter {
    /// Create an adapter.
    pub fn new(config: AdapterConfig) -> Self {
        assert!((0.0..=1.0).contains(&config.threshold));
        assert!(config.adapt_every >= 1);
        Adapter {
            config,
            recent: std::collections::VecDeque::with_capacity(8),
            damping: 1,
            last_adapt_epoch: None,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &AdapterConfig {
        &self.config
    }

    /// Current damping multiplier (1 = undamped).
    pub fn damping(&self) -> u64 {
        self.damping
    }

    /// Decide and apply an adaptation for the epoch that just finished.
    ///
    /// * `pct_contributing` — the base station's view of the contributing
    ///   fraction (in-band estimate or instrumented ground truth).
    /// * `max_noncontrib` / `min_noncontrib` — the §4.2 top-k extremum
    ///   reports fused through the delta (used by [`Strategy::Td`]).
    ///
    /// Every label switch this step applies is recorded by the topology
    /// as a structured [`td_topology::td::TopologyDelta`] (relabeled
    /// vertices, modes before/after, affected subtree roots) alongside
    /// the version bump — the session's plan cache replays those deltas
    /// to patch its compiled schedule in place instead of recompiling.
    pub fn step(
        &mut self,
        topo: &mut TdTopology,
        epoch: u64,
        pct_contributing: f64,
        max_noncontrib: &ExtremaSet,
        min_noncontrib: &ExtremaSet,
    ) -> AdaptAction {
        let interval = self.config.adapt_every * self.damping;
        let due = match self.last_adapt_epoch {
            None => epoch + 1 >= self.config.adapt_every,
            Some(last) => epoch >= last + interval,
        };
        if !due {
            return AdaptAction::Idle;
        }
        self.last_adapt_epoch = Some(epoch);

        if pct_contributing < self.config.threshold {
            let escalate = self.config.strategy == Strategy::Td
                && pct_contributing < self.config.threshold - self.config.escalation_gap;
            let switched = match self.config.strategy {
                Strategy::TdCoarse => topo.expand_all(),
                Strategy::Td if escalate => topo.expand_all(),
                Strategy::Td => self.expand_td(topo, epoch, max_noncontrib),
            };
            // Coverage below target triggered an expansion attempt:
            // record what the decision saw and what it did.
            td_telemetry::td_event!(
                td_telemetry::Level::Debug,
                "adapt",
                "expand",
                td_telemetry::LogicalClock::at_epoch(epoch),
                pct = pct_contributing,
                threshold = self.config.threshold,
                escalated = escalate,
                switched = switched,
                delta = topo.delta_size(),
                damping = self.damping,
            );
            if switched > 0 {
                self.record_move(1);
                AdaptAction::Expanded { switched }
            } else {
                AdaptAction::Satisfied
            }
        } else if pct_contributing > self.config.threshold + self.config.shrink_margin
            && topo.delta_size() > 0
        {
            let switched = match self.config.strategy {
                Strategy::TdCoarse => topo.shrink_all(),
                Strategy::Td => self.shrink_td(topo, min_noncontrib),
            };
            td_telemetry::td_event!(
                td_telemetry::Level::Debug,
                "adapt",
                "shrink",
                td_telemetry::LogicalClock::at_epoch(epoch),
                pct = pct_contributing,
                threshold = self.config.threshold,
                switched = switched,
                delta = topo.delta_size(),
                damping = self.damping,
            );
            if switched > 0 {
                self.record_move(-1);
                AdaptAction::Shrunk { switched }
            } else {
                AdaptAction::Satisfied
            }
        } else {
            // In the band: stable; relax damping.
            self.recent.clear();
            self.damping = 1;
            td_telemetry::td_event!(
                td_telemetry::Level::Debug,
                "adapt",
                "satisfied",
                td_telemetry::LogicalClock::at_epoch(epoch),
                pct = pct_contributing,
                threshold = self.config.threshold,
                delta = topo.delta_size(),
            );
            AdaptAction::Satisfied
        }
    }

    /// TD expansion: switch the children of the switchable M vertices
    /// whose subtrees reported the most non-contributing nodes (the §4.2
    /// top-k heuristic; each report that is still an M vertex gets its
    /// subtree expanded). Falls back to the switchable M vertex with the
    /// largest subtree when no report is available (e.g. nothing reached
    /// the base station at all).
    // With telemetry compiled out the event macros expand to nothing
    // and `epoch` is only a clock coordinate, hence the allow.
    #[cfg_attr(not(feature = "telemetry"), allow(unused_variables))]
    fn expand_td(&self, topo: &mut TdTopology, epoch: u64, max_noncontrib: &ExtremaSet) -> usize {
        let mut switched = 0usize;
        // §4.2's max/2 heuristic: act on every report within half of the
        // worst one, so expansion parallelizes across genuinely lossy
        // subtrees without chasing single-node noise (which would smear
        // the delta outside the failure region).
        let floor = max_noncontrib
            .best()
            .map(|b| (b.value / 2).max(1))
            .unwrap_or(1);
        for e in max_noncontrib.entries() {
            if e.value < floor {
                continue;
            }
            if topo.mode(e.node) == td_topology::td::Mode::M {
                let got = topo.expand_subtree(e.node).unwrap_or(0);
                td_telemetry::td_event!(
                    td_telemetry::Level::Trace,
                    "adapt",
                    "expand-report",
                    td_telemetry::LogicalClock::at_epoch(epoch),
                    node = e.node.index(),
                    report = e.value,
                    switched = got,
                    children = topo.tree().children(e.node).len(),
                );
                switched += got;
            } else {
                td_telemetry::td_event!(
                    td_telemetry::Level::Trace,
                    "adapt",
                    "expand-skip",
                    td_telemetry::LogicalClock::at_epoch(epoch),
                    node = e.node.index(),
                    report = e.value,
                );
            }
        }
        if switched == 0 {
            let sizes = topo.tree().subtree_sizes();
            let target = topo.switchable_m_iter().max_by_key(|n| sizes[n.index()]);
            if let Some(node) = target {
                switched = topo.expand_subtree(node).unwrap_or(0);
            }
        }
        switched
    }

    /// TD shrink: switch every reported switchable M vertex whose count
    /// equals the minimum (the paper switches "each switchable M node
    /// whose subtree has only min nodes not contributing").
    fn shrink_td(&self, topo: &mut TdTopology, min_noncontrib: &ExtremaSet) -> usize {
        match min_noncontrib.best() {
            Some(best) => {
                let mut switched = 0usize;
                for e in min_noncontrib.entries() {
                    if e.value != best.value {
                        break; // sorted ascending: past the minimum band
                    }
                    if topo.switch_to_t(e.node).is_ok() {
                        switched += 1;
                    }
                }
                switched
            }
            None => {
                // No reports (e.g. delta is only the base station): shrink
                // the smallest-subtree switchable vertex.
                let sizes = topo.tree().subtree_sizes();
                let target = topo.switchable_m_iter().min_by_key(|n| sizes[n.index()]);
                match target {
                    Some(n) => topo.switch_to_t(n).map(|_| 1).unwrap_or(0),
                    None => 0,
                }
            }
        }
    }

    fn record_move(&mut self, dir: i8) {
        self.recent.push_back(dir);
        if self.recent.len() > 6 {
            self.recent.pop_front();
        }
        // Count trailing strict alternations.
        let mut alternations = 0;
        let v: Vec<i8> = self.recent.iter().copied().collect();
        for w in v.windows(2).rev() {
            if w[0] != w[1] {
                alternations += 1;
            } else {
                break;
            }
        }
        if alternations >= self.config.damping_after {
            self.damping = (self.damping * 2).min(self.config.max_damping);
        } else if alternations == 0 && self.recent.len() >= 2 {
            self.damping = 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::Extremum;
    use td_netsim::network::Network;
    use td_netsim::node::{NodeId, Position};
    use td_netsim::rng::rng_from_seed;
    use td_topology::bushy::{build_bushy_tree, BushyOptions};
    use td_topology::rings::Rings;
    use td_topology::td::Mode;

    fn topo(seed: u64) -> TdTopology {
        let mut rng = rng_from_seed(seed);
        let net =
            Network::random_connected(200, 20.0, 20.0, Position::new(10.0, 10.0), 3.0, &mut rng);
        let rings = Rings::build(&net);
        let tree = build_bushy_tree(&net, &rings, BushyOptions::default(), &mut rng);
        TdTopology::new(rings, tree, 1)
    }

    #[test]
    fn respects_adaptation_interval() {
        let mut td = topo(141);
        let mut adapter = Adapter::new(AdapterConfig {
            adapt_every: 10,
            ..Default::default()
        });
        let none = ExtremaSet::largest();
        let none_min = ExtremaSet::smallest();
        for epoch in 0..8 {
            assert_eq!(
                adapter.step(&mut td, epoch, 0.2, &none, &none_min),
                AdaptAction::Idle,
                "epoch {epoch}"
            );
        }
        assert!(matches!(
            adapter.step(&mut td, 9, 0.2, &none, &none_min),
            AdaptAction::Expanded { .. }
        ));
        // Next decision only 10 epochs later.
        assert_eq!(
            adapter.step(&mut td, 10, 0.2, &none, &none_min),
            AdaptAction::Idle
        );
    }

    #[test]
    fn coarse_expands_whole_level_and_shrinks_back() {
        let mut td = topo(142);
        let before = td.delta_size();
        let mut adapter = Adapter::new(AdapterConfig {
            strategy: Strategy::TdCoarse,
            adapt_every: 1,
            ..Default::default()
        });
        let a = adapter.step(
            &mut td,
            0,
            0.5,
            &ExtremaSet::largest(),
            &ExtremaSet::smallest(),
        );
        assert!(matches!(a, AdaptAction::Expanded { switched } if switched > 0));
        assert!(td.delta_size() > before);
        let b = adapter.step(
            &mut td,
            1,
            0.999,
            &ExtremaSet::largest(),
            &ExtremaSet::smallest(),
        );
        assert!(matches!(b, AdaptAction::Shrunk { switched } if switched > 0));
        assert_eq!(td.delta_size(), before);
        assert!(td.validate().is_ok());
    }

    #[test]
    fn td_expands_reported_subtree_only() {
        let mut td = topo(143);
        let reported = td
            .switchable_m_nodes()
            .into_iter()
            .find(|&n| !td.tree().children(n).is_empty())
            .expect("switchable M with children");
        let kids = td.tree().children(reported).len();
        let before = td.delta_size();
        let mut adapter = Adapter::new(AdapterConfig {
            strategy: Strategy::Td,
            adapt_every: 1,
            ..Default::default()
        });
        let mut max = ExtremaSet::largest();
        max.insert(Extremum {
            value: 42,
            node: reported,
        });
        // pct close to the threshold: the fine-grained path (deficit
        // below the escalation gap) targets only the reported subtree.
        let action = adapter.step(&mut td, 0, 0.85, &max, &ExtremaSet::smallest());
        assert_eq!(action, AdaptAction::Expanded { switched: kids });
        assert_eq!(td.delta_size(), before + kids);
        for &c in td.tree().children(reported) {
            assert_eq!(td.mode(c), Mode::M);
        }
        assert!(td.validate().is_ok());
    }

    #[test]
    fn td_shrinks_min_reported_vertex() {
        let mut td = topo(144);
        let victim = td.switchable_m_nodes()[0];
        let before = td.delta_size();
        let mut adapter = Adapter::new(AdapterConfig {
            strategy: Strategy::Td,
            adapt_every: 1,
            ..Default::default()
        });
        let mut min = ExtremaSet::smallest();
        min.insert(Extremum {
            value: 0,
            node: victim,
        });
        let action = adapter.step(&mut td, 0, 0.99, &ExtremaSet::largest(), &min);
        assert_eq!(action, AdaptAction::Shrunk { switched: 1 });
        assert_eq!(td.delta_size(), before - 1);
        assert_eq!(td.mode(victim), Mode::T);
    }

    #[test]
    fn within_band_is_satisfied() {
        let mut td = topo(145);
        let mut adapter = Adapter::new(AdapterConfig {
            adapt_every: 1,
            threshold: 0.9,
            shrink_margin: 0.07,
            ..Default::default()
        });
        assert_eq!(
            adapter.step(
                &mut td,
                0,
                0.93,
                &ExtremaSet::largest(),
                &ExtremaSet::smallest()
            ),
            AdaptAction::Satisfied
        );
    }

    #[test]
    fn oscillation_triggers_damping() {
        let mut td = topo(146);
        let mut adapter = Adapter::new(AdapterConfig {
            strategy: Strategy::TdCoarse,
            adapt_every: 1,
            damping_after: 2,
            ..Default::default()
        });
        // Force alternating expand/shrink decisions.
        let mut epoch = 0;
        for i in 0..6 {
            let pct = if i % 2 == 0 { 0.2 } else { 0.999 };
            loop {
                let action = adapter.step(
                    &mut td,
                    epoch,
                    pct,
                    &ExtremaSet::largest(),
                    &ExtremaSet::smallest(),
                );
                epoch += 1;
                if action != AdaptAction::Idle {
                    break;
                }
            }
        }
        assert!(adapter.damping() > 1, "damping did not engage");
        // A stable in-band reading resets damping.
        loop {
            let action = adapter.step(
                &mut td,
                epoch,
                0.93,
                &ExtremaSet::largest(),
                &ExtremaSet::smallest(),
            );
            epoch += 1;
            if action != AdaptAction::Idle {
                break;
            }
        }
        assert_eq!(adapter.damping(), 1);
    }

    #[test]
    fn expansion_converges_to_full_delta() {
        let mut td = topo(147);
        let total = td.rings().connected_count();
        let mut adapter = Adapter::new(AdapterConfig {
            strategy: Strategy::TdCoarse,
            adapt_every: 1,
            ..Default::default()
        });
        for epoch in 0..50 {
            adapter.step(
                &mut td,
                epoch,
                0.1,
                &ExtremaSet::largest(),
                &ExtremaSet::smallest(),
            );
        }
        assert_eq!(
            td.delta_size(),
            total,
            "delta did not reach the whole network"
        );
        assert!(td.validate().is_ok());
    }

    #[test]
    fn stale_extremum_node_falls_back_gracefully() {
        // A max-noncontrib report naming a vertex that has since become T
        // must not panic; the adapter falls back to the largest subtree.
        let mut td = topo(148);
        let t_vertex = td
            .rings()
            .connected_nodes()
            .find(|&n| td.mode(n) == Mode::T)
            .unwrap();
        let mut adapter = Adapter::new(AdapterConfig {
            strategy: Strategy::Td,
            adapt_every: 1,
            ..Default::default()
        });
        let mut max = ExtremaSet::largest();
        max.insert(Extremum {
            value: 7,
            node: t_vertex,
        });
        let action = adapter.step(&mut td, 0, 0.3, &max, &ExtremaSet::smallest());
        assert!(matches!(action, AdaptAction::Expanded { .. }));
        assert!(td.validate().is_ok());
    }

    #[test]
    fn shrink_with_nonswitchable_min_is_noop_not_panic() {
        let mut td = topo(149);
        // The base station is M but not switchable while level-1 M nodes
        // exist; a min report naming it must not corrupt the topology.
        let mut adapter = Adapter::new(AdapterConfig {
            strategy: Strategy::Td,
            adapt_every: 1,
            ..Default::default()
        });
        let mut min = ExtremaSet::smallest();
        min.insert(Extremum {
            value: 0,
            node: NodeId(0),
        });
        let action = adapter.step(&mut td, 0, 0.99, &ExtremaSet::largest(), &min);
        // Either it shrank nothing (Satisfied) or a legal single switch.
        match action {
            AdaptAction::Satisfied | AdaptAction::Shrunk { .. } | AdaptAction::Idle => {}
            other => panic!("unexpected action {other:?}"),
        }
        assert!(td.validate().is_ok());
    }
}
