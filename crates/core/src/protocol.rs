//! The protocol abstraction: what an aggregate must provide to run under
//! Tributary-Delta (§5), plus adapters for scalar aggregates and for the
//! frequent-items algorithms of §6.

use td_aggregates::traits::Aggregate;
use td_frequent::convert::convert_summary;
use td_frequent::items::{Item, ItemBag};
use td_frequent::multipath::{generate_from_bag, FreqEstimates, MultipathConfig, SynopsisSet};
use td_frequent::summary::FreqSummary;
use td_netsim::message::WireSize;
use td_netsim::node::NodeId;
use td_quantiles::gradient::PrecisionGradient;
use td_quantiles::summary::QuantileSummary;
use td_sketches::counter::CounterFactory;

/// An aggregation protocol runnable by the Tributary-Delta runner.
///
/// Tree (tributary) nodes exchange `TreeMsg`s with ordinary merge
/// semantics; delta nodes exchange ODI `MpMsg`s; `convert` bridges a
/// tributary root's final message into the delta (§5). `finalize_tree`
/// lets height-dependent algorithms (the §6.1 precision gradients) apply
/// their per-level budget after a node has merged its children.
///
/// `Sync` because the intra-epoch parallel runner shares `&QuerySet`
/// across worker threads; protocol instances are read-only during an
/// epoch, so plain-data implementations get this for free.
pub trait Protocol: Sync {
    /// Partial result used in tributaries. (`'static` so messages can be
    /// type-erased into a [`crate::query::QuerySet`] bundle — protocol
    /// *instances* may still borrow their epoch's readings — and `Send`
    /// so sessions caching bundles can cross worker threads; messages
    /// are plain data.)
    type TreeMsg: Clone + Send + 'static;
    /// Duplicate-insensitive partial result used in the delta.
    type MpMsg: Clone + Send + 'static;
    /// The query answer produced at the base station.
    type Output: 'static;

    /// The local tree contribution of a node (`None` if the node has no
    /// data, e.g. the base station).
    fn local_tree(&self, node: NodeId) -> Option<Self::TreeMsg>;

    /// Merge a child's tree message into an accumulator.
    fn merge_tree(&self, into: &mut Self::TreeMsg, from: &Self::TreeMsg);

    /// Post-merge hook for height-dependent processing (default: none).
    fn finalize_tree(&self, _node: NodeId, _height: u32, msg: Self::TreeMsg) -> Self::TreeMsg {
        msg
    }

    /// The local multi-path contribution of a node.
    fn local_mp(&self, node: NodeId) -> Option<Self::MpMsg>;

    /// ODI fusion of multi-path messages.
    fn fuse(&self, into: &mut Self::MpMsg, from: &Self::MpMsg);

    /// Conversion function: re-express the finished tree message of
    /// tributary root `root` as a multi-path message.
    fn convert(&self, root: NodeId, msg: &Self::TreeMsg) -> Self::MpMsg;

    /// Wire footprint of a tree message.
    fn tree_wire(&self, msg: &Self::TreeMsg) -> WireSize;

    /// Wire footprint of a multi-path message.
    fn mp_wire(&self, msg: &Self::MpMsg) -> WireSize;

    /// Evaluate the answer at the base station. When the base runs
    /// multi-path, `tree_parts` is empty and `mp` holds the fused delta
    /// synopsis (tree parts were converted on arrival); when the whole
    /// network is a tree, `mp` is `None`. `base_height` is the base
    /// station's height for height-dependent final combines.
    fn evaluate(
        &self,
        tree_parts: &[Self::TreeMsg],
        mp: Option<&Self::MpMsg>,
        base_height: u32,
    ) -> Self::Output;
}

/// Protocols pass through shared references, so per-epoch instances can
/// be registered in a query set without giving up ownership.
impl<P: Protocol> Protocol for &P {
    type TreeMsg = P::TreeMsg;
    type MpMsg = P::MpMsg;
    type Output = P::Output;

    fn local_tree(&self, node: NodeId) -> Option<Self::TreeMsg> {
        (**self).local_tree(node)
    }

    fn merge_tree(&self, into: &mut Self::TreeMsg, from: &Self::TreeMsg) {
        (**self).merge_tree(into, from)
    }

    fn finalize_tree(&self, node: NodeId, height: u32, msg: Self::TreeMsg) -> Self::TreeMsg {
        (**self).finalize_tree(node, height, msg)
    }

    fn local_mp(&self, node: NodeId) -> Option<Self::MpMsg> {
        (**self).local_mp(node)
    }

    fn fuse(&self, into: &mut Self::MpMsg, from: &Self::MpMsg) {
        (**self).fuse(into, from)
    }

    fn convert(&self, root: NodeId, msg: &Self::TreeMsg) -> Self::MpMsg {
        (**self).convert(root, msg)
    }

    fn tree_wire(&self, msg: &Self::TreeMsg) -> WireSize {
        (**self).tree_wire(msg)
    }

    fn mp_wire(&self, msg: &Self::MpMsg) -> WireSize {
        (**self).mp_wire(msg)
    }

    fn evaluate(
        &self,
        tree_parts: &[Self::TreeMsg],
        mp: Option<&Self::MpMsg>,
        base_height: u32,
    ) -> Self::Output {
        (**self).evaluate(tree_parts, mp, base_height)
    }
}

// ---------------------------------------------------------------------
// Scalar adapter
// ---------------------------------------------------------------------

/// Adapter running any [`Aggregate`] (Count, Sum, Min, Max, Average,
/// samples…) as a Tributary-Delta protocol. Holds the epoch's readings:
/// `values[i]` is node `i`'s reading (the base station's entry is
/// ignored).
#[derive(Clone, Debug)]
pub struct ScalarProtocol<'v, A> {
    agg: A,
    values: &'v [u64],
}

impl<'v, A: Aggregate> ScalarProtocol<'v, A> {
    /// Wrap an aggregate with this epoch's readings.
    pub fn new(agg: A, values: &'v [u64]) -> Self {
        ScalarProtocol { agg, values }
    }

    /// The wrapped aggregate.
    pub fn aggregate(&self) -> &A {
        &self.agg
    }
}

impl<'v, A: Aggregate> Protocol for ScalarProtocol<'v, A> {
    type TreeMsg = A::TreePartial;
    type MpMsg = A::Synopsis;
    type Output = f64;

    fn local_tree(&self, node: NodeId) -> Option<Self::TreeMsg> {
        if node.is_base() {
            return None;
        }
        Some(self.agg.local_tree(node.0, self.values[node.index()]))
    }

    fn merge_tree(&self, into: &mut Self::TreeMsg, from: &Self::TreeMsg) {
        self.agg.merge_tree(into, from);
    }

    fn local_mp(&self, node: NodeId) -> Option<Self::MpMsg> {
        if node.is_base() {
            return None;
        }
        Some(self.agg.local_synopsis(node.0, self.values[node.index()]))
    }

    fn fuse(&self, into: &mut Self::MpMsg, from: &Self::MpMsg) {
        self.agg.fuse(into, from);
    }

    fn convert(&self, root: NodeId, msg: &Self::TreeMsg) -> Self::MpMsg {
        self.agg.convert(root.0, msg)
    }

    fn tree_wire(&self, msg: &Self::TreeMsg) -> WireSize {
        let w = self.agg.tree_wire(msg);
        WireSize {
            bytes: w.bytes,
            words: w.words,
        }
    }

    fn mp_wire(&self, msg: &Self::MpMsg) -> WireSize {
        let w = self.agg.synopsis_wire(msg);
        WireSize {
            bytes: w.bytes,
            words: w.words,
        }
    }

    fn evaluate(
        &self,
        tree_parts: &[Self::TreeMsg],
        mp: Option<&Self::MpMsg>,
        _base_height: u32,
    ) -> f64 {
        match (tree_parts, mp) {
            ([], None) => 0.0,
            (parts, None) => {
                let mut acc = parts[0].clone();
                for p in &parts[1..] {
                    self.agg.merge_tree(&mut acc, p);
                }
                self.agg.evaluate_tree(&acc)
            }
            (parts, Some(mp)) => {
                // Any stray tree parts (base running multi-path with tree
                // children) are converted with the base as pseudo-root of
                // each child's subtree; the runner normally does this
                // before calling evaluate.
                let mut acc = mp.clone();
                for p in parts {
                    let conv = self.agg.convert(0, p);
                    self.agg.fuse(&mut acc, &conv);
                }
                self.agg.evaluate_synopsis(&acc)
            }
        }
    }
}

// ---------------------------------------------------------------------
// Frequent-items adapter
// ---------------------------------------------------------------------

/// The answer of a frequent-items query.
#[derive(Clone, Debug)]
pub struct FreqOutput {
    /// Items reported frequent (estimate > `(s − ε)·N̂`).
    pub reported: Vec<Item>,
    /// Estimated total occurrences N̂.
    pub n_est: f64,
    /// The raw per-item estimates.
    pub estimates: FreqEstimates,
}

/// Adapter running the §6 frequent-items algorithms under Tributary-Delta:
/// Algorithm 1 with a precision gradient in the tributaries, Algorithm 2
/// in the delta, and the §6.3 conversion at the boundary. The total error
/// splits as `ε = ε_a (tree) + ε_b (multi-path)`.
pub struct FreqProtocol<'v, F: CounterFactory, G> {
    /// Multi-path configuration (ε_b, η, counter factory).
    pub mp_cfg: MultipathConfig<F>,
    /// Precision gradient for the tree side (built for ε_a and the
    /// topology's domination factor / height).
    pub gradient: G,
    /// Support threshold s.
    pub support: f64,
    bags: &'v [ItemBag],
}

impl<'v, F: CounterFactory, G: PrecisionGradient> FreqProtocol<'v, F, G> {
    /// Create the protocol over this epoch's per-node item bags.
    pub fn new(mp_cfg: MultipathConfig<F>, gradient: G, support: f64, bags: &'v [ItemBag]) -> Self {
        FreqProtocol {
            mp_cfg,
            gradient,
            support,
            bags,
        }
    }

    /// The combined error tolerance ε = ε_a + ε_b.
    pub fn total_eps(&self) -> f64 {
        self.gradient.final_eps() + self.mp_cfg.eps
    }
}

impl<'v, F: CounterFactory, G: PrecisionGradient> Protocol for FreqProtocol<'v, F, G> {
    type TreeMsg = FreqSummary;
    type MpMsg = SynopsisSet<F::Counter>;
    type Output = FreqOutput;

    fn local_tree(&self, node: NodeId) -> Option<Self::TreeMsg> {
        if node.is_base() || self.bags[node.index()].is_empty() {
            return None;
        }
        Some(FreqSummary::local(&self.bags[node.index()]))
    }

    fn merge_tree(&self, into: &mut Self::TreeMsg, from: &Self::TreeMsg) {
        // Raw pointwise accumulation; the per-level decrement happens in
        // finalize_tree so that Algorithm 1's single Step-3 decrement per
        // node is preserved. The merged eps tracks spent budget exactly:
        // spent = Σ ε_j·n_j encoded as a weighted average.
        let spent = into.eps * into.n as f64 + from.eps * from.n as f64;
        let mut counts: std::collections::BTreeMap<Item, u64> = into.iter().collect();
        for (u, c) in from.iter() {
            *counts.entry(u).or_insert(0) += c;
        }
        let n = into.n + from.n;
        let eps = if n == 0 { 0.0 } else { spent / n as f64 };
        *into = FreqSummary::from_parts(n, eps, counts);
    }

    fn finalize_tree(&self, _node: NodeId, height: u32, msg: Self::TreeMsg) -> Self::TreeMsg {
        FreqSummary::combine(&[msg], &FreqSummary::empty(), self.gradient.eps_at(height))
    }

    fn local_mp(&self, node: NodeId) -> Option<Self::MpMsg> {
        if node.is_base() {
            return None;
        }
        let synopsis = generate_from_bag(&self.mp_cfg, node, &self.bags[node.index()])?;
        let mut set = SynopsisSet::new();
        set.insert(synopsis);
        Some(set)
    }

    fn fuse(&self, into: &mut Self::MpMsg, from: &Self::MpMsg) {
        into.absorb(from.clone());
        into.compact(&self.mp_cfg);
    }

    fn convert(&self, root: NodeId, msg: &Self::TreeMsg) -> Self::MpMsg {
        let mut set = SynopsisSet::new();
        if let Some(s) = convert_summary(&self.mp_cfg, root, msg) {
            set.insert(s);
        }
        set
    }

    fn tree_wire(&self, msg: &Self::TreeMsg) -> WireSize {
        WireSize::from_words(msg.wire_words())
    }

    fn mp_wire(&self, msg: &Self::MpMsg) -> WireSize {
        WireSize::from_words(msg.wire_words())
    }

    fn evaluate(
        &self,
        tree_parts: &[Self::TreeMsg],
        mp: Option<&Self::MpMsg>,
        base_height: u32,
    ) -> FreqOutput {
        let (estimates, eps) = match mp {
            Some(set) => {
                let mut set = set.clone();
                for p in tree_parts {
                    // Normally empty: the runner converts on arrival.
                    if let Some(s) = convert_summary(&self.mp_cfg, td_netsim::node::BASE_STATION, p)
                    {
                        set.insert(s);
                    }
                }
                set.compact(&self.mp_cfg);
                (set.evaluate(), self.total_eps())
            }
            None => {
                // Pure tree: final Algorithm 1 combine at the base.
                let summary = FreqSummary::combine(
                    tree_parts,
                    &FreqSummary::empty(),
                    self.gradient.eps_at(base_height),
                );
                let estimates = FreqEstimates {
                    n_est: summary.n as f64,
                    counts: summary.iter().map(|(u, c)| (u, c as f64)).collect(),
                };
                (estimates, self.gradient.final_eps())
            }
        };
        let reported = estimates.report(self.support - eps);
        FreqOutput {
            reported,
            n_est: estimates.n_est,
            estimates,
        }
    }
}

// ---------------------------------------------------------------------
// Quantile adapter
// ---------------------------------------------------------------------

/// ODI multi-path message for quantile queries: per-origin summaries
/// keyed by the node that generated them. Quantile summaries are
/// duplicate-*sensitive* (combining a summary with itself double-counts
/// its population), so the delta carries a keyed set — re-inserting a
/// part that another path already delivered is a no-op, which restores
/// order-and-duplicate insensitivity. The same trick `SynopsisSet` uses
/// for the frequent-items delta.
#[derive(Clone, Debug)]
pub struct QuantileSynopsisSet<S> {
    parts: std::collections::BTreeMap<u32, S>,
}

impl<S: QuantileSummary> QuantileSynopsisSet<S> {
    /// A set holding one part from `origin`.
    fn singleton(origin: u32, part: S) -> Self {
        let mut parts = std::collections::BTreeMap::new();
        parts.insert(origin, part);
        QuantileSynopsisSet { parts }
    }

    /// Keyed union; the first writer wins (both copies of a key were
    /// generated by the same node, so they are identical).
    fn union(&mut self, other: &Self) {
        for (k, v) in &other.parts {
            self.parts.entry(*k).or_insert_with(|| v.clone());
        }
    }

    /// Wire words: one origin-id word plus each part's payload.
    fn wire_words(&self) -> usize {
        self.parts.values().map(|p| 1 + p.wire_words()).sum()
    }

    /// Combine every part in deterministic (key) order.
    fn merged(&self, template: &S) -> S {
        let mut acc = template.exact_from(&[]);
        for p in self.parts.values() {
            acc = acc.combine(p);
        }
        acc
    }

    /// Number of distinct origins represented.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// Whether the set holds no parts.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }
}

/// The answer of a quantile query: the merged summary at the base, which
/// self-reports its absolute rank uncertainty.
#[derive(Clone, Debug, PartialEq)]
pub struct QuantileOutput<S> {
    /// The merged (and, on the pure-tree path, final-combined) summary.
    pub summary: S,
}

impl<S: QuantileSummary> QuantileOutput<S> {
    /// The φ-quantile of the aggregated population.
    pub fn quantile(&self, phi: f64) -> Option<u64> {
        self.summary.quantile(phi)
    }

    /// Estimated rank of `value` over the aggregated population.
    pub fn rank(&self, value: u64) -> u64 {
        self.summary.rank(value)
    }

    /// Number of contributing readings.
    pub fn population(&self) -> u64 {
        self.summary.population()
    }

    /// Self-reported absolute rank uncertainty `E`.
    pub fn uncertainty(&self) -> u64 {
        self.summary.uncertainty()
    }
}

/// Adapter running a quantile summary family (GK or q-digest — anything
/// implementing [`QuantileSummary`]) under Tributary-Delta: the §6.1.4
/// extension of the precision-gradient machinery to quantiles. Holds the
/// epoch's readings (`values[i]` is node `i`'s reading; the base
/// station's entry is ignored).
///
/// In the tributaries each node combines its children's summaries and
/// `finalize_tree` reduces the result to its height's **absolute** rank
/// budget `⌊ε(h) · n_subtree⌋` — the gradient's per-level error
/// *differences* pay for compression, so `MinTotalLoad` geometric
/// budgets beat a `Uniform` budget on bytes at matched final error. In
/// the delta, per-origin exact summaries ride a keyed ODI set; `convert`
/// injects a tributary root's reduced summary under the root's key.
#[derive(Clone, Debug)]
pub struct QuantileProtocol<'v, S, G> {
    template: S,
    gradient: G,
    values: &'v [u64],
}

impl<'v, S: QuantileSummary, G: PrecisionGradient> QuantileProtocol<'v, S, G> {
    /// Create the protocol over this epoch's readings. `template`
    /// carries the summary family's configuration (e.g. q-digest domain
    /// bits) and is otherwise empty.
    pub fn new(template: S, gradient: G, values: &'v [u64]) -> Self {
        QuantileProtocol {
            template,
            gradient,
            values,
        }
    }

    /// The final fractional rank-error tolerance ε at the base.
    pub fn total_eps(&self) -> f64 {
        self.gradient.final_eps()
    }

    /// Absolute rank budget at `height` for a subtree of `n` readings.
    fn budget(&self, height: u32, n: u64) -> u64 {
        (self.gradient.eps_at(height) * n as f64).floor() as u64
    }
}

impl<'v, G: PrecisionGradient> QuantileProtocol<'v, td_quantiles::GkSummary, G> {
    /// A Greenwald–Khanna quantile protocol.
    pub fn gk(gradient: G, values: &'v [u64]) -> Self {
        QuantileProtocol::new(td_quantiles::GkSummary::empty(), gradient, values)
    }
}

impl<'v, G: PrecisionGradient> QuantileProtocol<'v, td_quantiles::QDigest, G> {
    /// A q-digest quantile protocol over the domain `[0, 2^bits)`.
    pub fn qdigest(bits: u32, gradient: G, values: &'v [u64]) -> Self {
        QuantileProtocol::new(td_quantiles::QDigest::empty(bits), gradient, values)
    }
}

impl<'v, S: QuantileSummary, G: PrecisionGradient> Protocol for QuantileProtocol<'v, S, G> {
    type TreeMsg = S;
    type MpMsg = QuantileSynopsisSet<S>;
    type Output = QuantileOutput<S>;

    fn local_tree(&self, node: NodeId) -> Option<Self::TreeMsg> {
        if node.is_base() {
            return None;
        }
        Some(
            self.template
                .exact_from(std::slice::from_ref(&self.values[node.index()])),
        )
    }

    fn merge_tree(&self, into: &mut Self::TreeMsg, from: &Self::TreeMsg) {
        *into = into.combine(from);
    }

    fn finalize_tree(&self, _node: NodeId, height: u32, mut msg: Self::TreeMsg) -> Self::TreeMsg {
        msg.reduce(self.budget(height, msg.population()));
        msg
    }

    fn local_mp(&self, node: NodeId) -> Option<Self::MpMsg> {
        if node.is_base() {
            return None;
        }
        let part = self
            .template
            .exact_from(std::slice::from_ref(&self.values[node.index()]));
        Some(QuantileSynopsisSet::singleton(node.0, part))
    }

    fn fuse(&self, into: &mut Self::MpMsg, from: &Self::MpMsg) {
        into.union(from);
    }

    fn convert(&self, root: NodeId, msg: &Self::TreeMsg) -> Self::MpMsg {
        QuantileSynopsisSet::singleton(root.0, msg.clone())
    }

    fn tree_wire(&self, msg: &Self::TreeMsg) -> WireSize {
        WireSize::from_words(msg.wire_words())
    }

    fn mp_wire(&self, msg: &Self::MpMsg) -> WireSize {
        WireSize::from_words(msg.wire_words())
    }

    fn evaluate(
        &self,
        tree_parts: &[Self::TreeMsg],
        mp: Option<&Self::MpMsg>,
        base_height: u32,
    ) -> QuantileOutput<S> {
        match mp {
            None => {
                // Pure tree: final combine + the base's budget.
                let mut acc = self.template.exact_from(&[]);
                for p in tree_parts {
                    acc = acc.combine(p);
                }
                acc.reduce(self.budget(base_height, acc.population()));
                QuantileOutput { summary: acc }
            }
            Some(set) => {
                let mut acc = set.merged(&self.template);
                for p in tree_parts {
                    // Normally empty: the runner converts on arrival.
                    acc = acc.combine(p);
                }
                QuantileOutput { summary: acc }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_aggregates::count::Count;
    use td_aggregates::sum::Sum;
    use td_quantiles::gradient::MinTotalLoad;
    use td_sketches::counter::ExactFactory;

    #[test]
    fn scalar_protocol_tree_path() {
        let values = vec![0u64, 10, 20, 30];
        let p = ScalarProtocol::new(Sum::default(), &values);
        assert!(p.local_tree(NodeId(0)).is_none());
        let mut acc = p.local_tree(NodeId(1)).unwrap();
        let b = p.local_tree(NodeId(2)).unwrap();
        p.merge_tree(&mut acc, &b);
        assert_eq!(p.evaluate(&[acc], None, 1), 30.0);
    }

    #[test]
    fn scalar_protocol_mp_path() {
        let values = vec![0u64, 1, 1, 1];
        let p = ScalarProtocol::new(Count::default(), &values);
        let mut acc = p.local_mp(NodeId(1)).unwrap();
        for n in [2u32, 3] {
            let s = p.local_mp(NodeId(n)).unwrap();
            p.fuse(&mut acc, &s);
        }
        let est = p.evaluate(&[], Some(&acc), 1);
        assert!(est > 0.5 && est < 12.0, "count estimate {est}");
    }

    #[test]
    fn scalar_protocol_conversion_path() {
        let values = vec![0u64; 101];
        let p = ScalarProtocol::new(Count::default(), &values);
        // 50-node tree partial converted and fused with 50 mp locals.
        let mut tree_acc = p.local_tree(NodeId(1)).unwrap();
        for n in 2..=50u32 {
            let t = p.local_tree(NodeId(n)).unwrap();
            p.merge_tree(&mut tree_acc, &t);
        }
        let mut mp = p.convert(NodeId(1), &tree_acc);
        for n in 51..=100u32 {
            let s = p.local_mp(NodeId(n)).unwrap();
            p.fuse(&mut mp, &s);
        }
        let est = p.evaluate(&[], Some(&mp), 1);
        let rel = (est - 100.0).abs() / 100.0;
        assert!(rel < 0.45, "count estimate {est}");
    }

    #[test]
    fn quantile_protocol_tree_path_is_exact_at_small_scale() {
        // Readings 10,20,30 with budgets too small to compress: the
        // merged summary at the base is exact.
        let values = vec![0u64, 10, 20, 30];
        let p = QuantileProtocol::gk(MinTotalLoad::new(0.05, 2.25), &values);
        assert!(p.local_tree(NodeId(0)).is_none());
        let mut acc = p.local_tree(NodeId(1)).unwrap();
        for n in [2u32, 3] {
            let t = p.local_tree(NodeId(n)).unwrap();
            p.merge_tree(&mut acc, &t);
        }
        let acc = p.finalize_tree(NodeId(1), 2, acc);
        let out = p.evaluate(&[acc], None, 3);
        assert_eq!(out.population(), 3);
        assert_eq!(out.quantile(0.5), Some(20));
        assert_eq!(out.rank(15), 1);
    }

    #[test]
    fn quantile_mp_fuse_is_duplicate_insensitive() {
        let values: Vec<u64> = (0..50).collect();
        let p = QuantileProtocol::qdigest(8, MinTotalLoad::new(0.05, 2.25), &values);
        let mut acc = p.local_mp(NodeId(1)).unwrap();
        let b = p.local_mp(NodeId(2)).unwrap();
        p.fuse(&mut acc, &b);
        // The same part arriving over a second path must not double-count.
        p.fuse(&mut acc, &b);
        let dup = acc.clone();
        p.fuse(&mut acc, &dup);
        let out = p.evaluate(&[], Some(&acc), 1);
        assert_eq!(out.population(), 2);
        assert_eq!(out.uncertainty(), 0);
    }

    #[test]
    fn quantile_conversion_path_counts_everyone_once() {
        let values: Vec<u64> = (0..101).collect();
        let p = QuantileProtocol::gk(MinTotalLoad::new(0.02, 2.25), &values);
        // Nodes 1..=50 as a tributary rooted at node 1; 51..=100 native mp.
        let mut tree = p.local_tree(NodeId(1)).unwrap();
        for n in 2..=50u32 {
            let t = p.local_tree(NodeId(n)).unwrap();
            p.merge_tree(&mut tree, &t);
        }
        let tree = p.finalize_tree(NodeId(1), 3, tree);
        let mut mp = p.convert(NodeId(1), &tree);
        for n in 51..=100u32 {
            let s = p.local_mp(NodeId(n)).unwrap();
            p.fuse(&mut mp, &s);
        }
        let out = p.evaluate(&[], Some(&mp), 3);
        assert_eq!(out.population(), 100);
        let median = out.quantile(0.5).unwrap();
        let err = out.summary.rank(median).abs_diff(50);
        assert!(
            err <= out.uncertainty() + 1,
            "median {median} rank err {err} vs E {}",
            out.uncertainty()
        );
    }

    fn freq_fixture(bags: &[ItemBag]) -> FreqProtocol<'_, ExactFactory, MinTotalLoad> {
        let mp_cfg = MultipathConfig::new(0.01, 1.5, 1 << 20, ExactFactory);
        let gradient = MinTotalLoad::new(0.01, 2.25);
        FreqProtocol::new(mp_cfg, gradient, 0.2, bags)
    }

    #[test]
    fn freq_protocol_tree_only() {
        let bags = vec![
            ItemBag::new(), // base
            ItemBag::from_counts([(1, 500), (9, 10)]),
            ItemBag::from_counts([(1, 400), (2, 90)]),
        ];
        let p = freq_fixture(&bags);
        let mut a = p.local_tree(NodeId(1)).unwrap();
        let b = p.local_tree(NodeId(2)).unwrap();
        p.merge_tree(&mut a, &b);
        let a = p.finalize_tree(NodeId(1), 2, a);
        let out = p.evaluate(&[a], None, 3);
        assert_eq!(out.n_est, 1000.0);
        assert!(out.reported.contains(&1));
        assert!(!out.reported.contains(&9));
    }

    #[test]
    fn freq_protocol_mixed_paths_agree_with_truth() {
        let bags = vec![
            ItemBag::new(),
            ItemBag::from_counts([(1, 600), (7, 30)]),
            ItemBag::from_counts([(1, 500), (8, 40)]),
            ItemBag::from_counts([(2, 700), (9, 50)]),
        ];
        let p = freq_fixture(&bags);
        // Node 1+2 as a tributary rooted at node 1; node 3 native mp.
        let mut tree = p.local_tree(NodeId(1)).unwrap();
        let t2 = p.local_tree(NodeId(2)).unwrap();
        p.merge_tree(&mut tree, &t2);
        let tree = p.finalize_tree(NodeId(1), 2, tree);
        let mut mp = p.convert(NodeId(1), &tree);
        let native = p.local_mp(NodeId(3)).unwrap();
        p.fuse(&mut mp, &native);
        let out = p.evaluate(&[], Some(&mp), 3);
        // Exact counters: N̂ = 1920 exactly.
        assert!((out.n_est - 1920.0).abs() < 1e-6, "n_est {}", out.n_est);
        assert!(out.reported.contains(&1), "reported {:?}", out.reported);
        assert!(out.reported.contains(&2));
        assert!(!out.reported.contains(&7));
    }
}
