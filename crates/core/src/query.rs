//! The object-safe multi-query layer: type-erased protocols, the
//! [`QuerySet`] registry, and typed [`QueryHandle`]s.
//!
//! [`Protocol`] is deliberately generic — each aggregate brings its own
//! tree-partial and synopsis types — which means one monomorphized
//! session can run exactly one query per epoch. Real deployments run
//! many simultaneous aggregates over the same radio traffic, and paying
//! a full topology traversal (plus a full set of envelope
//! instrumentation and adaptation signals) per query is the opposite of
//! what the radio can afford.
//!
//! [`DynProtocol`] erases the message types behind [`ErasedMsg`]
//! (`Box<dyn Any>` with clone support), and every `Protocol` is
//! blanket-converted into it. A [`QuerySet`] collects heterogeneous
//! erased queries — Count next to frequent-items — and the runner
//! carries *all* of their messages in a single per-epoch traversal: one
//! message bundle per link, sharing the contributor envelope, in-band
//! count sketch, and adaptation extrema that would otherwise be
//! duplicated N times. Per-query marginal cost becomes a bundle entry,
//! not a network round.
//!
//! Registration returns a [`QueryHandle<O>`] remembering the output
//! type, so answers come back typed despite the erased plumbing.

use std::any::Any;
use std::marker::PhantomData;

use crate::protocol::Protocol;
use td_netsim::message::WireSize;
use td_netsim::node::NodeId;

// ---------------------------------------------------------------------
// Erased messages
// ---------------------------------------------------------------------

/// Object-safe clone-plus-downcast, the capability every erased protocol
/// message needs. (`Send` so sessions holding cached bundles can cross
/// worker threads — the service layer moves whole tenants between
/// them; protocol messages are plain data.)
trait AnyClone: Any + Send {
    fn clone_box(&self) -> Box<dyn AnyClone>;
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

impl<T: Any + Clone + Send> AnyClone for T {
    fn clone_box(&self) -> Box<dyn AnyClone> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// A type-erased protocol message (tree partial or multi-path synopsis).
///
/// Produced and consumed by [`DynProtocol`] implementations; the runner
/// moves these around without knowing what is inside.
pub struct ErasedMsg(Box<dyn AnyClone>);

impl Clone for ErasedMsg {
    fn clone(&self) -> Self {
        ErasedMsg(self.0.clone_box())
    }
}

impl std::fmt::Debug for ErasedMsg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ErasedMsg(..)")
    }
}

impl ErasedMsg {
    /// Erase a concrete message.
    pub fn new<T: Any + Clone + Send>(msg: T) -> Self {
        ErasedMsg(Box::new(msg))
    }

    /// Borrow the concrete message.
    ///
    /// # Panics
    /// Panics if the message is of a different type — which means a
    /// message produced by one query was routed into another, a runner
    /// bug worth failing loudly on.
    pub fn downcast_ref<T: Any>(&self) -> &T {
        self.0
            .as_any()
            .downcast_ref::<T>()
            .expect("erased message routed to a query of a different type")
    }

    /// Mutably borrow the concrete message (same panic contract as
    /// [`downcast_ref`](Self::downcast_ref)).
    pub fn downcast_mut<T: Any>(&mut self) -> &mut T {
        self.0
            .as_any_mut()
            .downcast_mut::<T>()
            .expect("erased message routed to a query of a different type")
    }

    /// Move the concrete message out — no clone, unlike the borrowing
    /// accessors (same panic contract as
    /// [`downcast_ref`](Self::downcast_ref)).
    pub fn downcast<T: Any>(self) -> T {
        *self
            .0
            .into_any()
            .downcast::<T>()
            .unwrap_or_else(|_| panic!("erased message routed to a query of a different type"))
    }
}

// ---------------------------------------------------------------------
// Object-safe protocol
// ---------------------------------------------------------------------

/// The object-safe mirror of [`Protocol`]: the same tree / multi-path /
/// conversion surface, with every message behind [`ErasedMsg`] and the
/// output behind `Box<dyn Any>`.
///
/// Do not implement this directly — implement [`Protocol`] and rely on
/// the blanket impl, which is what keeps the typed and erased surfaces
/// in lockstep.
///
/// `Sync` (mirroring [`Protocol`]) so a `QuerySet` can be shared by
/// reference across the intra-epoch worker threads.
pub trait DynProtocol: Sync {
    /// Erased [`Protocol::local_tree`].
    fn local_tree(&self, node: NodeId) -> Option<ErasedMsg>;
    /// Erased [`Protocol::merge_tree`].
    fn merge_tree(&self, into: &mut ErasedMsg, from: &ErasedMsg);
    /// Erased [`Protocol::finalize_tree`].
    fn finalize_tree(&self, node: NodeId, height: u32, msg: ErasedMsg) -> ErasedMsg;
    /// Erased [`Protocol::local_mp`].
    fn local_mp(&self, node: NodeId) -> Option<ErasedMsg>;
    /// Erased [`Protocol::fuse`].
    fn fuse(&self, into: &mut ErasedMsg, from: &ErasedMsg);
    /// Erased [`Protocol::convert`].
    fn convert(&self, root: NodeId, msg: &ErasedMsg) -> ErasedMsg;
    /// Erased [`Protocol::tree_wire`].
    fn tree_wire(&self, msg: &ErasedMsg) -> WireSize;
    /// Erased [`Protocol::mp_wire`].
    fn mp_wire(&self, msg: &ErasedMsg) -> WireSize;
    /// Erased [`Protocol::evaluate`]. Takes the tree parts by value:
    /// every part belongs to exactly one query, so the runner hands them
    /// over instead of cloning.
    fn evaluate(
        &self,
        tree_parts: Vec<ErasedMsg>,
        mp: Option<&ErasedMsg>,
        base_height: u32,
    ) -> Box<dyn Any>;
}

impl<P: Protocol> DynProtocol for P {
    fn local_tree(&self, node: NodeId) -> Option<ErasedMsg> {
        Protocol::local_tree(self, node).map(ErasedMsg::new)
    }

    fn merge_tree(&self, into: &mut ErasedMsg, from: &ErasedMsg) {
        Protocol::merge_tree(self, into.downcast_mut(), from.downcast_ref());
    }

    fn finalize_tree(&self, node: NodeId, height: u32, msg: ErasedMsg) -> ErasedMsg {
        ErasedMsg::new(Protocol::finalize_tree(self, node, height, msg.downcast()))
    }

    fn local_mp(&self, node: NodeId) -> Option<ErasedMsg> {
        Protocol::local_mp(self, node).map(ErasedMsg::new)
    }

    fn fuse(&self, into: &mut ErasedMsg, from: &ErasedMsg) {
        Protocol::fuse(self, into.downcast_mut(), from.downcast_ref());
    }

    fn convert(&self, root: NodeId, msg: &ErasedMsg) -> ErasedMsg {
        ErasedMsg::new(Protocol::convert(self, root, msg.downcast_ref()))
    }

    fn tree_wire(&self, msg: &ErasedMsg) -> WireSize {
        Protocol::tree_wire(self, msg.downcast_ref())
    }

    fn mp_wire(&self, msg: &ErasedMsg) -> WireSize {
        Protocol::mp_wire(self, msg.downcast_ref())
    }

    fn evaluate(
        &self,
        tree_parts: Vec<ErasedMsg>,
        mp: Option<&ErasedMsg>,
        base_height: u32,
    ) -> Box<dyn Any> {
        let parts: Vec<P::TreeMsg> = tree_parts
            .into_iter()
            .map(|m| m.downcast::<P::TreeMsg>())
            .collect();
        Box::new(Protocol::evaluate(
            self,
            &parts,
            mp.map(|m| m.downcast_ref::<P::MpMsg>()),
            base_height,
        ))
    }
}

// ---------------------------------------------------------------------
// Query sets and handles
// ---------------------------------------------------------------------

/// A typed receipt for a registered query: index into the set plus the
/// output type, so [`answers`](crate::session::QueryRecord) come back as
/// `O` without caller-side downcasting.
///
/// Handles are plain copyable indices. Registration order is what gives
/// a handle meaning, so a handle is only valid against the [`QuerySet`]
/// it came from — or any set that registered the same queries in the
/// same order, which is what lets the per-epoch rebuild (protocols
/// borrow each epoch's readings) reuse handles across epochs.
pub struct QueryHandle<O> {
    index: usize,
    _output: PhantomData<fn() -> O>,
}

impl<O> Clone for QueryHandle<O> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<O> Copy for QueryHandle<O> {}

impl<O> std::fmt::Debug for QueryHandle<O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "QueryHandle({})", self.index)
    }
}

impl<O> QueryHandle<O> {
    /// The handle's position in registration order.
    pub fn index(&self) -> usize {
        self.index
    }
}

/// The queries of one epoch: heterogeneous erased protocols, all carried
/// by a single topology traversal.
///
/// Protocols borrow the epoch's readings, so a `QuerySet` lives for one
/// epoch (`'e`); handles outlive it and remain valid for any set built
/// by registering the same queries in the same order.
#[derive(Default)]
pub struct QuerySet<'e> {
    queries: Vec<Box<dyn DynProtocol + 'e>>,
}

impl<'e> QuerySet<'e> {
    /// An empty set.
    pub fn new() -> Self {
        QuerySet {
            queries: Vec::new(),
        }
    }

    /// Register a query, returning its typed handle.
    pub fn register<P: Protocol + 'e>(&mut self, proto: P) -> QueryHandle<P::Output> {
        let index = self.queries.len();
        self.queries.push(Box::new(proto));
        QueryHandle {
            index,
            _output: PhantomData,
        }
    }

    /// Number of registered queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether no queries are registered.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The erased queries, in registration order.
    pub fn queries(&self) -> impl Iterator<Item = &(dyn DynProtocol + 'e)> {
        self.queries.iter().map(|b| b.as_ref())
    }

    /// One erased query by registration index.
    pub fn query(&self, index: usize) -> &(dyn DynProtocol + 'e) {
        self.queries[index].as_ref()
    }
}

/// The typed answers of one epoch, indexed by [`QueryHandle`].
pub struct Answers {
    outputs: Vec<Option<Box<dyn Any>>>,
}

impl std::fmt::Debug for Answers {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Answers({} queries)", self.outputs.len())
    }
}

impl Answers {
    pub(crate) fn new(outputs: Vec<Box<dyn Any>>) -> Self {
        Answers {
            outputs: outputs.into_iter().map(Some).collect(),
        }
    }

    /// Number of answers (matches the query set's length).
    pub fn len(&self) -> usize {
        self.outputs.len()
    }

    /// Whether the epoch carried no queries.
    pub fn is_empty(&self) -> bool {
        self.outputs.is_empty()
    }

    /// Borrow the answer for `handle`.
    ///
    /// A handle is an index plus an output type, nothing more: using it
    /// against a set that registered *different* queries in the same
    /// slots is detected only when the output types differ. Two sets
    /// that registered same-typed queries in a different order (Count
    /// and Sum swapped, say) are indistinguishable, and the answer
    /// returned is whatever sits in the handle's slot — keep the
    /// registration order stable across epochs, as
    /// [`Driver`](crate::driver::Driver) does.
    ///
    /// # Panics
    /// Panics if the handle's slot holds an answer of a different type
    /// or is out of range (a handle from a differently-shaped set), or
    /// if the answer was already [`take`](Self::take)n.
    pub fn get<O: 'static>(&self, handle: QueryHandle<O>) -> &O {
        self.outputs[handle.index]
            .as_ref()
            .expect("answer already taken")
            .downcast_ref::<O>()
            .expect("query handle used against a mismatched query set")
    }

    /// Move the erased answer in `slot` (registration order) out — the
    /// dynamic counterpart of [`take`](Self::take) for callers that
    /// manage their own slot bookkeeping, like the stream engine's pane
    /// sources, which downcast on their side of an object-safe boundary.
    ///
    /// # Panics
    /// Panics if the slot is out of range or its answer was already
    /// taken.
    pub fn take_erased(&mut self, slot: usize) -> Box<dyn Any> {
        self.outputs[slot].take().expect("answer already taken")
    }

    /// Move the answer for `handle` out (for non-`Clone` outputs).
    ///
    /// # Panics
    /// Same contract (and same same-typed-slot caveat) as
    /// [`get`](Self::get).
    pub fn take<O: 'static>(&mut self, handle: QueryHandle<O>) -> O {
        *self.outputs[handle.index]
            .take()
            .expect("answer already taken")
            .downcast::<O>()
            .map_err(|_| "query handle used against a mismatched query set")
            .unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ScalarProtocol;
    use td_aggregates::count::Count;
    use td_aggregates::sum::Sum;

    #[test]
    fn erased_round_trip_matches_typed() {
        let values = vec![0u64, 5, 7, 9];
        let p = ScalarProtocol::new(Sum::default(), &values);
        let dynp: &dyn DynProtocol = &p;

        let mut acc = dynp.local_tree(NodeId(1)).unwrap();
        let b = dynp.local_tree(NodeId(2)).unwrap();
        dynp.merge_tree(&mut acc, &b);
        let acc = dynp.finalize_tree(NodeId(1), 2, acc);
        let out = dynp.evaluate(vec![acc], None, 1);
        assert_eq!(*out.downcast_ref::<f64>().unwrap(), 12.0);

        // Wire sizes agree with the typed path.
        let typed = Protocol::local_tree(&p, NodeId(3)).unwrap();
        let erased = dynp.local_tree(NodeId(3)).unwrap();
        assert_eq!(
            Protocol::tree_wire(&p, &typed).words,
            dynp.tree_wire(&erased).words
        );
    }

    #[test]
    fn register_returns_sequential_handles() {
        let values = vec![0u64, 1, 2];
        let mut set = QuerySet::new();
        let h1 = set.register(ScalarProtocol::new(Count::default(), &values));
        let h2 = set.register(ScalarProtocol::new(Sum::default(), &values));
        assert_eq!(h1.index(), 0);
        assert_eq!(h2.index(), 1);
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn answers_typed_access() {
        let mut answers = Answers::new(vec![Box::new(7.5f64), Box::new(1.0f64)]);
        let h0 = QueryHandle::<f64> {
            index: 0,
            _output: PhantomData,
        };
        assert_eq!(*answers.get(h0), 7.5);
        assert_eq!(answers.take(h0), 7.5);
    }

    #[test]
    fn answers_take_erased_matches_typed_take() {
        let mut answers = Answers::new(vec![Box::new(7.5f64), Box::new(2.5f64)]);
        let erased = answers.take_erased(1);
        assert_eq!(*erased.downcast::<f64>().unwrap(), 2.5);
        let h0 = QueryHandle::<f64> {
            index: 0,
            _output: PhantomData,
        };
        assert_eq!(answers.take(h0), 7.5);
    }

    #[test]
    #[should_panic(expected = "already taken")]
    fn answers_double_take_panics() {
        let mut answers = Answers::new(vec![Box::new(1.0f64)]);
        let h = QueryHandle::<f64> {
            index: 0,
            _output: PhantomData,
        };
        let _ = answers.take(h);
        let _ = answers.take(h);
    }
}
