//! # td-sketches — duplicate-insensitive synopses
//!
//! Multi-path aggregation delivers every partial result along many paths,
//! so the data structures that carry partial results must be **order- and
//! duplicate-insensitive** (ODI): merging (`⊕`) must be commutative,
//! associative, and idempotent. This crate provides the synopses the paper
//! builds on:
//!
//! * [`fm`] — Flajolet–Martin / PCSA bit-vector sketches \[7\], with the
//!   Considine-style value insertion used for Sum in \[5\] and §7.1's
//!   40×32-bit configuration whose averaged estimate has the ≈12%
//!   approximation error seen in Figure 2.
//! * [`rle`] — the run-length wire encoding that packs those 40 bitmaps
//!   into a single 48-byte TinyDB message (\[17\], §7.1).
//! * [`kmv`] — k-minimum-values distinct-count sketches: the
//!   *accuracy-preserving duplicate-insensitive sum operator* of
//!   Definition 1 (relative error `εc ≈ 1/√(k−2)`), including exact
//!   order-statistics value insertion.
//! * [`sample`] — min-hash uniform samples (duplicate-insensitive uniform
//!   sampling, §5), the basis for sampled quantiles and moments.
//! * [`counter`] — the [`counter::DiCounter`] abstraction over
//!   duplicate-insensitive counters (exact / FM / KMV) that the
//!   frequent-items Algorithm 2 is generic over.
//! * [`idset`] — a dense bitset over node ids, used as instrumentation
//!   ground truth for "% of nodes contributing".
//! * [`hash`] — the deterministic 64-bit hash family everything above
//!   draws from.
//!
//! The ⊕ laws are enforced by property tests in every module.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counter;
pub mod fm;
pub mod hash;
pub mod idset;
pub mod kmv;
pub mod rle;
pub mod sample;

pub use counter::DiCounter;
pub use fm::FmSketch;
pub use idset::IdSet;
pub use kmv::Kmv;
pub use sample::MinHashSample;
