//! A dense bitset over node ids.
//!
//! The simulator carries an `IdSet` alongside partial results as
//! *instrumentation*: it records exactly which sensors contributed to a
//! partial result, giving ground truth for the "% of nodes contributing"
//! metric that drives adaptation (§4.1) and for communication-error
//! accounting. Union is idempotent, so the set is safe to carry through
//! multi-path aggregation.

/// A fixed-capacity bitset indexed by node id.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IdSet {
    words: Vec<u64>,
    capacity: usize,
}

impl IdSet {
    /// Create an empty set that can hold ids `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        IdSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Create a set holding a single id.
    pub fn singleton(capacity: usize, id: u32) -> Self {
        let mut s = IdSet::new(capacity);
        s.insert(id);
        s
    }

    /// Capacity (exclusive upper bound on ids).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Insert an id.
    ///
    /// # Panics
    /// Panics if `id >= capacity`.
    #[inline]
    pub fn insert(&mut self, id: u32) {
        assert!((id as usize) < self.capacity, "id {id} out of capacity");
        self.words[id as usize / 64] |= 1u64 << (id % 64);
    }

    /// Whether the set contains `id`.
    #[inline]
    pub fn contains(&self, id: u32) -> bool {
        (id as usize) < self.capacity && self.words[id as usize / 64] & (1u64 << (id % 64)) != 0
    }

    /// Number of ids in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Remove every id, keeping the capacity and the allocation — what
    /// lets the runner's arena free-list recycle contributor sets
    /// instead of allocating a fresh bitset per envelope per epoch.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Overwrite this set with `other`'s contents in place — an
    /// allocation-free `clone` for recycled sets (the broadcast-copy
    /// path of the runner's free-list).
    ///
    /// # Panics
    /// Panics if capacities differ.
    pub fn copy_from(&mut self, other: &Self) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        self.words.copy_from_slice(&other.words);
    }

    /// Union with another set (idempotent ⊕).
    ///
    /// # Panics
    /// Panics if capacities differ.
    pub fn union(&mut self, other: &Self) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Count of ids in `self` but not in `other` (e.g. expected
    /// contributors minus actual contributors).
    pub fn difference_count(&self, other: &Self) -> usize {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & !b).count_ones() as usize)
            .sum()
    }

    /// Iterator over ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros();
                    bits &= bits - 1;
                    Some(wi as u32 * 64 + b)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_contains_len() {
        let mut s = IdSet::new(100);
        assert!(s.is_empty());
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(99);
        assert_eq!(s.len(), 4);
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(99));
        assert!(!s.contains(1));
        assert!(!s.contains(100)); // out of range is just absent
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn insert_out_of_range_panics() {
        let mut s = IdSet::new(10);
        s.insert(10);
    }

    #[test]
    fn union_and_difference() {
        let mut a = IdSet::new(200);
        a.insert(1);
        a.insert(2);
        let mut b = IdSet::new(200);
        b.insert(2);
        b.insert(150);
        let mut u = a.clone();
        u.union(&b);
        assert_eq!(u.len(), 3);
        assert_eq!(a.difference_count(&b), 1); // {1}
        assert_eq!(b.difference_count(&a), 1); // {150}
                                               // Idempotent union
        let mut uu = u.clone();
        uu.union(&u);
        assert_eq!(uu, u);
    }

    #[test]
    fn iter_ascending() {
        let mut s = IdSet::new(300);
        for id in [5u32, 64, 65, 250, 0] {
            s.insert(id);
        }
        let ids: Vec<u32> = s.iter().collect();
        assert_eq!(ids, vec![0, 5, 64, 65, 250]);
    }

    #[test]
    fn singleton() {
        let s = IdSet::singleton(50, 7);
        assert_eq!(s.len(), 1);
        assert!(s.contains(7));
    }

    #[test]
    fn copy_from_is_clone_in_place() {
        let mut src = IdSet::new(100);
        src.insert(3);
        src.insert(77);
        let mut dst = IdSet::singleton(100, 50);
        dst.copy_from(&src);
        assert_eq!(dst, src);
        // Stale bits are fully overwritten.
        assert!(!dst.contains(50));
    }

    #[test]
    fn clear_resets_to_fresh() {
        let mut s = IdSet::new(130);
        for id in [0u32, 64, 129] {
            s.insert(id);
        }
        s.clear();
        assert_eq!(s, IdSet::new(130));
        assert!(s.is_empty());
        assert_eq!(s.capacity(), 130);
        // A cleared set behaves exactly like a fresh one.
        s.insert(99);
        assert_eq!(s, IdSet::singleton(130, 99));
    }

    proptest! {
        #[test]
        fn prop_union_matches_btreeset(xs in proptest::collection::vec(0u32..500, 0..100),
                                       ys in proptest::collection::vec(0u32..500, 0..100)) {
            let mut a = IdSet::new(500);
            let mut b = IdSet::new(500);
            let mut reference = std::collections::BTreeSet::new();
            for &x in &xs { a.insert(x); reference.insert(x); }
            for &y in &ys { b.insert(y); reference.insert(y); }
            a.union(&b);
            let got: Vec<u32> = a.iter().collect();
            let want: Vec<u32> = reference.into_iter().collect();
            prop_assert_eq!(got, want);
        }

        #[test]
        fn prop_difference_count(xs in proptest::collection::vec(0u32..300, 0..80),
                                 ys in proptest::collection::vec(0u32..300, 0..80)) {
            let mut a = IdSet::new(300);
            let mut b = IdSet::new(300);
            let sa: std::collections::BTreeSet<u32> = xs.iter().copied().collect();
            let sb: std::collections::BTreeSet<u32> = ys.iter().copied().collect();
            for &x in &sa { a.insert(x); }
            for &y in &sb { b.insert(y); }
            prop_assert_eq!(a.difference_count(&b), sa.difference(&sb).count());
        }
    }
}
