//! Duplicate-insensitive counters — the ⊕ abstraction of §6.2.
//!
//! The multi-path frequent-items Algorithm 2 replaces ordinary addition
//! with a duplicate-insensitive sum ⊕ in its Steps 1 and 2. This module
//! defines the [`DiCounter`] trait those steps are generic over, plus
//! three implementations spanning the accuracy/size spectrum:
//!
//! * [`ExactCounter`] — `εc = 0`, unbounded size. A reference
//!   implementation for tests and ground truth (stores the contributing
//!   populations explicitly).
//! * [`FmCounter`] — the low-overhead best-effort estimator of \[7\] that
//!   the paper's experiments actually use (§7.4.3): small, ~`1.1/√K`
//!   relative error, not accuracy-preserving in the Definition 1 sense.
//! * [`KmvCounter`] — the accuracy-preserving operator of Definition 1
//!   (`k = O(1/εc²)`), needed for Theorem 1's guarantees.
//!
//! Every occurrence population is identified by a `salt` (in the frequent
//! items algorithms: the hash of `(item, node)` or `(item, tree-root)`),
//! so re-delivery along multiple paths dedups exactly.

use crate::fm::FmSketch;
use crate::kmv::Kmv;

/// A duplicate-insensitive counter: supports adding a population of
/// occurrences identified by a salt, ODI merging, and estimation.
/// (`Send` so synopsis sets built from counters can ride the type-erased
/// session bundles across worker threads; counters are plain data.)
pub trait DiCounter: Clone + Send + 'static {
    /// Add `count` occurrences belonging to the population `salt`.
    /// Re-adding the same `(salt, count)` population (possibly via a merged
    /// copy) must not change the estimate.
    fn add_occurrences(&mut self, salt: u64, count: u64);

    /// ⊕: merge another counter of the same configuration.
    fn merge(&mut self, other: &Self);

    /// Estimated total count.
    fn estimate(&self) -> f64;

    /// Wire size in 32-bit words.
    fn wire_words(&self) -> usize;
}

/// A factory producing fresh counters of a fixed configuration; the
/// frequent-items algorithms carry one of these instead of hard-coding a
/// counter type.
pub trait CounterFactory: Clone + Sync {
    /// The counter type produced.
    type Counter: DiCounter;
    /// Create an empty counter.
    fn new_counter(&self) -> Self::Counter;
}

// ---------------------------------------------------------------------
// Exact counter
// ---------------------------------------------------------------------

/// Exact duplicate-insensitive counter: remembers each `(salt, count)`
/// population. Estimate is the exact sum over distinct salts. Size is
/// unbounded — use only for tests/ground truth.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExactCounter {
    populations: std::collections::BTreeMap<u64, u64>,
}

impl ExactCounter {
    /// Create an empty exact counter.
    pub fn new() -> Self {
        Self::default()
    }
}

impl DiCounter for ExactCounter {
    fn add_occurrences(&mut self, salt: u64, count: u64) {
        let entry = self.populations.entry(salt).or_insert(0);
        // The same population must always carry the same count; keep the
        // max so that a re-delivery can never shrink the estimate.
        *entry = (*entry).max(count);
    }

    fn merge(&mut self, other: &Self) {
        for (&salt, &count) in &other.populations {
            self.add_occurrences(salt, count);
        }
    }

    fn estimate(&self) -> f64 {
        self.populations.values().map(|&c| c as f64).sum()
    }

    fn wire_words(&self) -> usize {
        self.populations.len() * 4 // 64-bit salt + 64-bit count
    }
}

/// Factory for [`ExactCounter`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ExactFactory;

impl CounterFactory for ExactFactory {
    type Counter = ExactCounter;
    fn new_counter(&self) -> ExactCounter {
        ExactCounter::new()
    }
}

// ---------------------------------------------------------------------
// FM counter
// ---------------------------------------------------------------------

/// Best-effort FM counter (\[7\], as used in the paper's experiments).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FmCounter {
    sketch: FmSketch,
}

impl FmCounter {
    /// Create an FM counter with `bitmaps` bitmaps.
    pub fn new(bitmaps: usize) -> Self {
        FmCounter {
            sketch: FmSketch::new(bitmaps),
        }
    }

    /// Access the underlying sketch.
    pub fn sketch(&self) -> &FmSketch {
        &self.sketch
    }
}

impl DiCounter for FmCounter {
    fn add_occurrences(&mut self, salt: u64, count: u64) {
        self.sketch.insert_value(salt, count);
    }

    fn merge(&mut self, other: &Self) {
        self.sketch.merge(&other.sketch);
    }

    fn estimate(&self) -> f64 {
        self.sketch.estimate()
    }

    fn wire_words(&self) -> usize {
        crate::rle::encoded_size_bytes(&self.sketch).div_ceil(4)
    }
}

/// Factory for [`FmCounter`].
#[derive(Clone, Copy, Debug)]
pub struct FmFactory {
    /// Bitmaps per counter.
    pub bitmaps: usize,
}

impl Default for FmFactory {
    fn default() -> Self {
        // Small counters: per-item counts ride alongside many other items
        // in a synopsis, so we use fewer bitmaps than the headline Count
        // aggregate (trade accuracy for message size, as the paper does).
        FmFactory { bitmaps: 16 }
    }
}

impl CounterFactory for FmFactory {
    type Counter = FmCounter;
    fn new_counter(&self) -> FmCounter {
        FmCounter::new(self.bitmaps)
    }
}

// ---------------------------------------------------------------------
// KMV counter
// ---------------------------------------------------------------------

/// Accuracy-preserving counter (Definition 1) backed by a KMV sketch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KmvCounter {
    kmv: Kmv,
}

impl KmvCounter {
    /// Create a KMV counter with parameter `k` (`εc ≈ 1/√(k−2)`).
    pub fn new(k: usize) -> Self {
        KmvCounter { kmv: Kmv::new(k) }
    }

    /// Create a counter achieving relative error `eps_c`.
    pub fn with_error(eps_c: f64) -> Self {
        KmvCounter {
            kmv: Kmv::new(Kmv::k_for_error(eps_c)),
        }
    }
}

impl DiCounter for KmvCounter {
    fn add_occurrences(&mut self, salt: u64, count: u64) {
        self.kmv.add_occurrences(salt, count);
    }

    fn merge(&mut self, other: &Self) {
        self.kmv.merge(&other.kmv);
    }

    fn estimate(&self) -> f64 {
        self.kmv.estimate()
    }

    fn wire_words(&self) -> usize {
        self.kmv.wire_words()
    }
}

/// Factory for [`KmvCounter`].
#[derive(Clone, Copy, Debug)]
pub struct KmvFactory {
    /// KMV parameter `k`.
    pub k: usize,
}

impl CounterFactory for KmvFactory {
    type Counter = KmvCounter;
    fn new_counter(&self) -> KmvCounter {
        KmvCounter::new(self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn behaves_like_counter<F: CounterFactory>(factory: &F, tolerance: f64) {
        // Three populations summed, delivered redundantly along two paths.
        let mut a = factory.new_counter();
        a.add_occurrences(1, 1000);
        a.add_occurrences(2, 2000);
        let mut b = factory.new_counter();
        b.add_occurrences(2, 2000); // duplicate of population 2
        b.add_occurrences(3, 3000);
        let mut merged = a.clone();
        merged.merge(&b);
        let est = merged.estimate();
        let rel = (est - 6000.0).abs() / 6000.0;
        assert!(rel <= tolerance, "estimate {est} rel {rel}");

        // Idempotence of ⊕.
        let mut twice = merged.clone();
        twice.merge(&merged);
        assert!((twice.estimate() - est).abs() < 1e-9);
    }

    #[test]
    fn exact_counter_is_exact() {
        behaves_like_counter(&ExactFactory, 0.0);
    }

    #[test]
    fn fm_counter_within_tolerance() {
        behaves_like_counter(&FmFactory { bitmaps: 40 }, 0.45);
    }

    #[test]
    fn kmv_counter_within_tolerance() {
        behaves_like_counter(&KmvFactory { k: 512 }, 0.25);
    }

    #[test]
    fn exact_counter_max_semantics() {
        let mut c = ExactCounter::new();
        c.add_occurrences(1, 10);
        c.add_occurrences(1, 10);
        assert_eq!(c.estimate(), 10.0);
    }

    #[test]
    fn wire_words_scale() {
        let mut exact = ExactCounter::new();
        let mut fm = FmCounter::new(16);
        let mut kmv = KmvCounter::new(16);
        for salt in 0..100u64 {
            exact.add_occurrences(salt, 5);
            fm.add_occurrences(salt, 5);
            kmv.add_occurrences(salt, 5);
        }
        // Exact grows linearly; sketches stay bounded.
        assert_eq!(exact.wire_words(), 400);
        assert!(fm.wire_words() <= 16 + 4);
        assert!(kmv.wire_words() <= 32);
    }

    #[test]
    fn empty_counters_estimate_zero() {
        assert_eq!(ExactFactory.new_counter().estimate(), 0.0);
        assert_eq!(FmFactory::default().new_counter().estimate(), 0.0);
        assert_eq!(KmvFactory { k: 8 }.new_counter().estimate(), 0.0);
    }
}
