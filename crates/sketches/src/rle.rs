//! Wire encoding for FM sketches.
//!
//! A raw 40×32-bit sketch is 160 bytes — four TinyDB messages. But FM
//! bitmaps are extremely regular: a prefix of ones up to ≈ `lg(φn)`, a
//! couple of straggler bits just above, and zeros beyond. §7.1 notes that
//! run-length encoding (\[17\]) packs 40 sum synopses into a single 48-byte
//! message. This module implements a lossless encoding exploiting exactly
//! that structure:
//!
//! * a 5-bit header carries the *median* `z` (lowest-unset position) of all
//!   bitmaps;
//! * each bitmap stores its `z` as a zig-zag Elias-gamma delta from the
//!   median, an Elias-gamma count of set bits above `z`, and each such bit
//!   as a gamma-coded offset;
//! * bits below `z` are all ones by definition of `z` and are not stored.
//!
//! Typical encoded sizes are 25–40 bytes for the paper's configuration
//! (asserted in tests), and the encoding round-trips exactly.

use crate::fm::FmSketch;

/// A growable bit buffer written MSB-first within each byte.
#[derive(Clone, Debug, Default)]
struct BitWriter {
    bytes: Vec<u8>,
    used_bits: usize,
}

impl BitWriter {
    fn write_bit(&mut self, bit: bool) {
        let byte_idx = self.used_bits / 8;
        if byte_idx == self.bytes.len() {
            self.bytes.push(0);
        }
        if bit {
            self.bytes[byte_idx] |= 0x80 >> (self.used_bits % 8);
        }
        self.used_bits += 1;
    }

    fn write_bits(&mut self, value: u32, width: u32) {
        for i in (0..width).rev() {
            self.write_bit((value >> i) & 1 == 1);
        }
    }

    /// Elias-gamma code for `value >= 1`: (N-1) zeros, then the N-bit value.
    fn write_gamma(&mut self, value: u32) {
        debug_assert!(value >= 1);
        let n = 32 - value.leading_zeros();
        for _ in 0..n - 1 {
            self.write_bit(false);
        }
        self.write_bits(value, n);
    }

    fn finish(self) -> Vec<u8> {
        self.bytes
    }
}

/// Reader over a bit buffer written by [`BitWriter`].
#[derive(Clone, Debug)]
struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    fn read_bit(&mut self) -> Option<bool> {
        let byte_idx = self.pos / 8;
        if byte_idx >= self.bytes.len() {
            return None;
        }
        let bit = self.bytes[byte_idx] & (0x80 >> (self.pos % 8)) != 0;
        self.pos += 1;
        Some(bit)
    }

    fn read_bits(&mut self, width: u32) -> Option<u32> {
        let mut v = 0;
        for _ in 0..width {
            v = (v << 1) | self.read_bit()? as u32;
        }
        Some(v)
    }

    fn read_gamma(&mut self) -> Option<u32> {
        let mut zeros = 0;
        while !self.read_bit()? {
            zeros += 1;
            if zeros > 32 {
                return None;
            }
        }
        if zeros == 0 {
            return Some(1);
        }
        let rest = self.read_bits(zeros)?;
        Some((1 << zeros) | rest)
    }
}

/// Zig-zag map signed deltas to unsigned: 0, -1, 1, -2, 2 → 0, 1, 2, 3, 4.
fn zigzag(v: i32) -> u32 {
    ((v << 1) ^ (v >> 31)) as u32
}

fn unzigzag(v: u32) -> i32 {
    ((v >> 1) as i32) ^ -((v & 1) as i32)
}

/// Encode a sketch into its compact wire form.
pub fn encode(sketch: &FmSketch) -> Vec<u8> {
    let bitmaps = sketch.bitmaps();
    let mut zs: Vec<u32> = bitmaps.iter().map(|&b| FmSketch::lowest_unset(b)).collect();
    let mut sorted = zs.clone();
    sorted.sort_unstable();
    let median = sorted[sorted.len() / 2].min(31);
    let mut w = BitWriter::default();
    w.write_bits(median, 6); // z can be 32 when a bitmap saturates
    for (i, &bm) in bitmaps.iter().enumerate() {
        let z = zs[i].min(32);
        zs[i] = z;
        w.write_gamma(zigzag(z as i32 - median as i32) + 1);
        // Set bits strictly above z.
        let above: Vec<u32> = (z + 1..32).filter(|&j| bm & (1 << j) != 0).collect();
        w.write_gamma(above.len() as u32 + 1);
        let mut prev = z;
        for j in above {
            w.write_gamma(j - prev); // gap >= 1
            prev = j;
        }
    }
    w.finish()
}

/// Decode a wire form produced by [`encode`] into a sketch with
/// `num_bitmaps` bitmaps. Returns `None` on malformed input.
pub fn decode(bytes: &[u8], num_bitmaps: usize) -> Option<FmSketch> {
    let mut r = BitReader::new(bytes);
    let median = r.read_bits(6)?;
    let mut bitmaps = Vec::with_capacity(num_bitmaps);
    for _ in 0..num_bitmaps {
        let dz = unzigzag(r.read_gamma()? - 1);
        let z = (median as i32 + dz).clamp(0, 32) as u32;
        // Bits below z are all ones.
        let mut bm: u32 = if z >= 32 { u32::MAX } else { (1u32 << z) - 1 };
        let above_count = r.read_gamma()? - 1;
        let mut prev = z;
        for _ in 0..above_count {
            let gap = r.read_gamma()?;
            let j = prev + gap;
            if j >= 32 {
                return None;
            }
            bm |= 1 << j;
            prev = j;
        }
        bitmaps.push(bm);
    }
    Some(FmSketch::from_bitmaps(bitmaps))
}

/// Encoded size in bytes — what the simulator charges to the radio.
pub fn encoded_size_bytes(sketch: &FmSketch) -> usize {
    encode(sketch).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_sketch_roundtrip_and_small() {
        let s = FmSketch::default_config();
        let bytes = encode(&s);
        assert!(
            bytes.len() <= 16,
            "empty sketch encoded to {} bytes",
            bytes.len()
        );
        let d = decode(&bytes, 40).unwrap();
        assert_eq!(d, s);
    }

    #[test]
    fn loaded_sketch_roundtrip() {
        let mut s = FmSketch::default_config();
        for i in 0..600u64 {
            s.insert_distinct(i);
        }
        let bytes = encode(&s);
        let d = decode(&bytes, 40).unwrap();
        assert_eq!(d, s);
    }

    #[test]
    fn paper_configuration_fits_one_tinydb_message() {
        // 600-node Count synopsis must fit in 48 bytes (§7.1).
        let mut s = FmSketch::default_config();
        for i in 0..600u64 {
            s.insert_distinct(i);
        }
        let n = encoded_size_bytes(&s);
        assert!(n <= 48, "encoded size {n} > 48 bytes");
    }

    #[test]
    fn large_sum_synopsis_fits_one_message() {
        // A Sum synopsis over values totalling ~5 million still fits: the
        // prefix grows only logarithmically and z-deltas stay small.
        let mut s = FmSketch::default_config();
        for salt in 0..600u64 {
            s.insert_value(salt, 8_000 + salt);
        }
        let n = encoded_size_bytes(&s);
        assert!(n <= 48, "encoded size {n} > 48 bytes");
    }

    #[test]
    fn saturated_bitmaps_roundtrip() {
        let s = FmSketch::from_bitmaps(vec![u32::MAX; 40]);
        let bytes = encode(&s);
        let d = decode(&bytes, 40).unwrap();
        assert_eq!(d, s);
    }

    #[test]
    fn adversarial_fringe_roundtrip() {
        // High isolated bits far above z.
        let s = FmSketch::from_bitmaps(vec![
            0b1000_0000_0000_0000_0000_0000_0000_0001,
            0,
            u32::MAX >> 1,
            0b0101_0101,
        ]);
        let bytes = encode(&s);
        let d = decode(&bytes, 4).unwrap();
        assert_eq!(d, s);
    }

    #[test]
    fn truncated_input_returns_none() {
        let mut s = FmSketch::default_config();
        for i in 0..100u64 {
            s.insert_distinct(i);
        }
        let bytes = encode(&s);
        assert!(
            decode(&bytes[..bytes.len() / 2], 40).is_none() ||
                // Truncation may still parse if the cut lands on padding;
                // in that case the decode must NOT equal the original.
                decode(&bytes[..bytes.len() / 2], 40).unwrap() != s
        );
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in -100..100 {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    proptest! {
        #[test]
        fn prop_roundtrip_random_bitmaps(bm in proptest::collection::vec(any::<u32>(), 1..64)) {
            let s = FmSketch::from_bitmaps(bm);
            let bytes = encode(&s);
            let d = decode(&bytes, s.num_bitmaps()).unwrap();
            prop_assert_eq!(d, s);
        }

        #[test]
        fn prop_roundtrip_realistic(n in 1u64..5000, k in 1usize..48) {
            let mut s = FmSketch::new(k);
            for i in 0..n.min(800) {
                s.insert_distinct(i.wrapping_mul(0x9E3779B97F4A7C15) ^ n);
            }
            let bytes = encode(&s);
            let d = decode(&bytes, k).unwrap();
            prop_assert_eq!(d, s);
        }
    }
}
