//! K-minimum-values (KMV) distinct-count sketches.
//!
//! The multi-path frequent-items algorithm needs an *accuracy-preserving
//! duplicate-insensitive sum operator* ⊕ (Definition 1): an `(εc, δc)`
//! estimate of `X` combined with an `(εc, δc)` estimate of `Y` must yield
//! an `(εc, δc)` estimate of `X + Y`. Distinct-element sketches in the
//! style of Bar-Yossef et al. \[3\] have exactly this property; KMV is the
//! standard representative. A KMV sketch keeps the `k` smallest hash
//! values ever inserted (hashes are uniform in `[0, 2^64)`); merging takes
//! the union and re-truncates; the estimate is `(k−1) / v_k` where `v_k`
//! is the `k`-th smallest hash as a fraction of the hash space. Relative
//! error is `≈ 1/√(k−2)` with high probability, so `k = O(1/εc²)` — the
//! cost Theorem 1 charges per counter.
//!
//! Counts are added by inserting "occurrence" sub-elements. For large
//! counts we insert the exact `k` smallest *order statistics* of `v`
//! uniform draws, generated deterministically from the insertion salt, so
//! adding a count of one million costs `O(k)` rather than `O(v)` — and the
//! same `(salt, v)` always produces identical entries (the ODI property).

use crate::hash::{keyed_pair, SplitMix};

/// A k-minimum-values sketch.
///
/// ```
/// use td_sketches::kmv::Kmv;
///
/// // An accuracy-preserving duplicate-insensitive sum: X ⊕ Y ≈ X + Y.
/// let mut x = Kmv::new(256);
/// x.add_occurrences(1, 40_000);
/// let mut y = Kmv::new(256);
/// y.add_occurrences(2, 60_000);
/// x.merge(&y);
/// let est = x.estimate();
/// assert!((est - 100_000.0).abs() / 100_000.0 < 0.3, "estimate {est}");
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Kmv {
    k: usize,
    /// Sorted, deduplicated, at most `k` smallest hashes seen.
    vals: Vec<u64>,
}

impl Kmv {
    /// Create an empty sketch keeping the `k` smallest hashes.
    ///
    /// # Panics
    /// Panics if `k < 2` (the estimator needs at least two values).
    pub fn new(k: usize) -> Self {
        assert!(k >= 2, "KMV needs k >= 2");
        Kmv {
            k,
            vals: Vec::new(),
        }
    }

    /// The `k` parameter.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The `k` needed for a target relative error `eps_c` (`k ≈ 2 + 1/εc²`).
    pub fn k_for_error(eps_c: f64) -> usize {
        assert!(eps_c > 0.0 && eps_c < 1.0);
        (2.0 + eps_c.powi(-2)).ceil() as usize
    }

    /// Number of stored hashes.
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// Whether the sketch is empty.
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// Insert a single element by its hash.
    pub fn insert_hash(&mut self, h: u64) {
        if self.vals.len() == self.k && h >= *self.vals.last().unwrap() {
            return;
        }
        match self.vals.binary_search(&h) {
            Ok(_) => {} // duplicate: idempotent
            Err(pos) => {
                self.vals.insert(pos, h);
                self.vals.truncate(self.k);
            }
        }
    }

    /// Add `count` occurrences identified by `salt`: semantically inserts
    /// the hashes of sub-elements `(salt, 0..count)`. Deterministic in
    /// `(salt, count)`; costs `O(k + min(count, k) log k)`.
    pub fn add_occurrences(&mut self, salt: u64, count: u64) {
        if count == 0 {
            return;
        }
        if count <= self.k as u64 {
            for i in 0..count {
                self.insert_hash(keyed_pair(0x04D357A7, salt, i));
            }
            return;
        }
        // k smallest order statistics of `count` uniforms, sequentially:
        // with U_(0) = 0, U_(i) = 1 - (1 - U_(i-1)) * (1 - u_i)^(1/(v-i+1)).
        let mut stream = SplitMix::new(keyed_pair(0x04D357A7, salt, count));
        let mut prev = 0.0f64;
        let v = count as f64;
        for i in 0..self.k {
            let u = stream.next_f64();
            let remaining = v - i as f64;
            let next = 1.0 - (1.0 - prev) * (1.0 - u).powf(1.0 / remaining);
            prev = next.min(1.0);
            let h = (prev * (u64::MAX as f64)) as u64;
            self.insert_hash(h);
        }
    }

    /// ⊕: union of the stored hashes, keeping the `k` smallest.
    ///
    /// # Panics
    /// Panics if the sketches have different `k`.
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(
            self.k, other.k,
            "cannot merge KMV sketches with different k"
        );
        let mut merged = Vec::with_capacity(self.k.min(self.vals.len() + other.vals.len()));
        let (mut i, mut j) = (0, 0);
        while merged.len() < self.k && (i < self.vals.len() || j < other.vals.len()) {
            let take_self = match (self.vals.get(i), other.vals.get(j)) {
                (Some(a), Some(b)) => a <= b,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if take_self {
                let v = self.vals[i];
                i += 1;
                if j < other.vals.len() && other.vals[j] == v {
                    j += 1; // dedup
                }
                merged.push(v);
            } else {
                merged.push(other.vals[j]);
                j += 1;
            }
        }
        self.vals = merged;
    }

    /// Estimate the number of distinct elements inserted. Exact while the
    /// sketch holds fewer than `k` values.
    pub fn estimate(&self) -> f64 {
        if self.vals.len() < self.k {
            return self.vals.len() as f64;
        }
        let vk = *self.vals.last().unwrap();
        let frac = (vk as f64 + 1.0) / (u64::MAX as f64 + 1.0);
        (self.k as f64 - 1.0) / frac
    }

    /// Wire size in 32-bit words: each stored hash is two words.
    pub fn wire_words(&self) -> usize {
        self.vals.len() * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::keyed;
    use proptest::prelude::*;

    #[test]
    fn exact_below_k() {
        let mut s = Kmv::new(32);
        for i in 0..10u64 {
            s.insert_hash(keyed(1, i));
        }
        assert_eq!(s.estimate(), 10.0);
    }

    #[test]
    fn idempotent_insertion() {
        let mut s = Kmv::new(8);
        s.insert_hash(42);
        let snap = s.clone();
        s.insert_hash(42);
        assert_eq!(s, snap);
    }

    #[test]
    fn estimate_accuracy_large() {
        let k = 256; // eps_c ~ 1/sqrt(254) ~ 6%
        let mut s = Kmv::new(k);
        let n = 100_000u64;
        for i in 0..n {
            s.insert_hash(keyed(2, i));
        }
        let est = s.estimate();
        let rel = (est - n as f64).abs() / n as f64;
        assert!(rel < 0.2, "estimate {est} rel {rel}");
    }

    #[test]
    fn k_for_error_inverse() {
        assert_eq!(Kmv::k_for_error(0.5), 6);
        assert!(Kmv::k_for_error(0.1) >= 102);
    }

    #[test]
    fn merge_equals_union() {
        let mut a = Kmv::new(16);
        let mut b = Kmv::new(16);
        let mut both = Kmv::new(16);
        for i in 0..200u64 {
            let h = keyed(3, i);
            if i % 2 == 0 {
                a.insert_hash(h);
            } else {
                b.insert_hash(h);
            }
            both.insert_hash(h);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, both);
    }

    #[test]
    fn merge_overlapping_populations_dedups() {
        let mut a = Kmv::new(16);
        let mut b = Kmv::new(16);
        for i in 0..100u64 {
            let h = keyed(4, i);
            a.insert_hash(h);
            b.insert_hash(h);
        }
        let ea = a.estimate();
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.estimate(), ea, "duplicates inflated the estimate");
    }

    #[test]
    fn add_occurrences_deterministic() {
        let mut a = Kmv::new(32);
        a.add_occurrences(7, 1_000_000);
        let mut b = Kmv::new(32);
        b.add_occurrences(7, 1_000_000);
        assert_eq!(a, b);
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m, a, "re-adding the same occurrences must be a no-op");
    }

    #[test]
    fn add_occurrences_estimate_scale() {
        let k = 512;
        let mut s = Kmv::new(k);
        s.add_occurrences(9, 50_000);
        let est = s.estimate();
        let rel = (est - 50_000.0).abs() / 50_000.0;
        assert!(rel < 0.25, "estimate {est} rel {rel}");
    }

    #[test]
    fn accuracy_preserving_sum() {
        // Definition 1: X ⊕ Y must estimate X + Y at the same error level.
        let k = 512;
        let mut x = Kmv::new(k);
        x.add_occurrences(100, 30_000);
        let mut y = Kmv::new(k);
        y.add_occurrences(200, 70_000);
        let mut sum = x.clone();
        sum.merge(&y);
        let est = sum.estimate();
        let rel = (est - 100_000.0).abs() / 100_000.0;
        assert!(rel < 0.25, "estimate {est} rel {rel}");
    }

    #[test]
    fn small_count_path_exact() {
        let mut s = Kmv::new(64);
        s.add_occurrences(5, 10);
        assert_eq!(s.estimate(), 10.0);
    }

    #[test]
    #[should_panic(expected = "different k")]
    fn merge_k_mismatch_panics() {
        let mut a = Kmv::new(4);
        let b = Kmv::new(8);
        a.merge(&b);
    }

    proptest! {
        #[test]
        fn prop_merge_commutative(xs in proptest::collection::vec(any::<u64>(), 0..100),
                                  ys in proptest::collection::vec(any::<u64>(), 0..100)) {
            let mk = |els: &[u64]| {
                let mut s = Kmv::new(8);
                for &e in els { s.insert_hash(e); }
                s
            };
            let (a, b) = (mk(&xs), mk(&ys));
            let mut ab = a.clone(); ab.merge(&b);
            let mut ba = b.clone(); ba.merge(&a);
            prop_assert_eq!(ab, ba);
        }

        #[test]
        fn prop_merge_associative(xs in proptest::collection::vec(any::<u64>(), 0..60),
                                  ys in proptest::collection::vec(any::<u64>(), 0..60),
                                  zs in proptest::collection::vec(any::<u64>(), 0..60)) {
            let mk = |els: &[u64]| {
                let mut s = Kmv::new(8);
                for &e in els { s.insert_hash(e); }
                s
            };
            let (a, b, c) = (mk(&xs), mk(&ys), mk(&zs));
            let mut l = a.clone(); l.merge(&b); l.merge(&c);
            let mut bc = b.clone(); bc.merge(&c);
            let mut r = a.clone(); r.merge(&bc);
            prop_assert_eq!(l, r);
        }

        #[test]
        fn prop_merge_idempotent(xs in proptest::collection::vec(any::<u64>(), 0..100)) {
            let mut a = Kmv::new(8);
            for &e in &xs { a.insert_hash(e); }
            let mut aa = a.clone();
            aa.merge(&a);
            prop_assert_eq!(aa, a);
        }

        #[test]
        fn prop_sorted_and_bounded(xs in proptest::collection::vec(any::<u64>(), 0..200)) {
            let mut a = Kmv::new(16);
            for &e in &xs { a.insert_hash(e); }
            prop_assert!(a.len() <= 16);
            prop_assert!(a.vals.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
