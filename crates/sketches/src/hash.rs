//! Deterministic 64-bit hashing.
//!
//! All sketches need hash values that are (a) statistically uniform,
//! (b) identical across runs and platforms — duplicate-insensitivity
//! requires that re-hashing the same element always produces the same
//! value — and (c) cheap. We use the SplitMix64 finalizer as a mixing
//! primitive and build keyed variants on top. `std`'s `DefaultHasher` is
//! not used because its output may change between Rust releases.

/// SplitMix64 finalizer. Bijective on `u64`, passes BigCrush as a mixer.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash a value under a key (seed). Different keys give independent hash
/// functions of the same input — the "hash family" sketches draw from.
#[inline]
pub fn keyed(key: u64, value: u64) -> u64 {
    // Feed the key through one mix so related keys (0, 1, 2, …) decorrelate,
    // then mix the combination twice for avalanche on both inputs.
    mix64(
        mix64(key ^ 0xA076_1D64_78BD_642F).wrapping_add(value.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
    )
}

/// Hash a pair of values (e.g. `(node, occurrence-index)`) under a key.
#[inline]
pub fn keyed_pair(key: u64, a: u64, b: u64) -> u64 {
    keyed(
        key,
        mix64(a).wrapping_add(b.wrapping_mul(0xD6E8_FEB8_6659_FD93)),
    )
}

/// A tiny deterministic generator for sequences of pseudo-random u64s
/// derived from a seed — used where sketches need a reproducible stream
/// (e.g. sampling which FM bits a value of magnitude `v` sets) without the
/// cost of constructing a full `StdRng`.
#[derive(Clone, Copy, Debug)]
pub struct SplitMix {
    state: u64,
}

impl SplitMix {
    /// Create a stream seeded by `seed`.
    #[inline]
    pub fn new(seed: u64) -> Self {
        SplitMix { state: mix64(seed) }
    }

    /// Next pseudo-random u64.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix64(self.state)
    }

    /// Next pseudo-random f64 in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits -> [0,1) with full double precision.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn mix64_is_injective_on_sample() {
        let mut seen = HashSet::new();
        for i in 0..100_000u64 {
            assert!(seen.insert(mix64(i)), "collision at {i}");
        }
    }

    #[test]
    fn keyed_hashes_differ_by_key() {
        assert_ne!(keyed(0, 42), keyed(1, 42));
        assert_ne!(keyed(0, 42), keyed(0, 43));
        assert_eq!(keyed(7, 42), keyed(7, 42));
    }

    #[test]
    fn keyed_uniformity_rough() {
        // Bucket 64k consecutive inputs into 16 buckets by top bits; each
        // bucket should be within 5% of uniform.
        let n = 65_536u64;
        let mut buckets = [0u32; 16];
        for i in 0..n {
            buckets[(keyed(3, i) >> 60) as usize] += 1;
        }
        let expect = n as f64 / 16.0;
        for (b, &c) in buckets.iter().enumerate() {
            assert!(
                (c as f64 - expect).abs() < expect * 0.05,
                "bucket {b}: {c} vs {expect}"
            );
        }
    }

    #[test]
    fn keyed_pair_sensitive_to_both_elements() {
        assert_ne!(keyed_pair(0, 1, 2), keyed_pair(0, 2, 1));
        assert_ne!(keyed_pair(0, 1, 2), keyed_pair(0, 1, 3));
        assert_eq!(keyed_pair(5, 1, 2), keyed_pair(5, 1, 2));
    }

    #[test]
    fn splitmix_stream_reproducible_and_uniform() {
        let mut a = SplitMix::new(9);
        let mut b = SplitMix::new(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = a.next_f64();
            assert_eq!(x, b.next_f64());
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn trailing_zero_distribution_geometric() {
        // rho(h) = trailing_zeros is geometric(1/2): P(rho = 0) = 1/2.
        let n = 100_000u64;
        let mut zero = 0;
        let mut one = 0;
        for i in 0..n {
            match keyed(11, i).trailing_zeros() {
                0 => zero += 1,
                1 => one += 1,
                _ => {}
            }
        }
        assert!((zero as f64 / n as f64 - 0.5).abs() < 0.01);
        assert!((one as f64 / n as f64 - 0.25).abs() < 0.01);
    }
}
