//! Duplicate-insensitive uniform sampling via min-hash.
//!
//! §5 notes that a Uniform-sample synopsis computes many other aggregates
//! (quantiles, statistical moments) in the Tributary-Delta framework. The
//! classic ODI construction: every element gets a uniform priority from a
//! fixed hash of its identity; a sample of size `k` keeps the `k` elements
//! of smallest priority. Because priorities are deterministic, the same
//! element sampled along many paths dedups exactly, and the union of two
//! samples re-truncated to `k` equals the sample of the union — merging is
//! commutative, associative, and idempotent.
//!
//! Entries carry a 64-bit payload (e.g. an `f64` reading's bits), keeping
//! the structure `Ord`-friendly and byte-stable.

/// A fixed-size min-hash (bottom-k) sample.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MinHashSample {
    k: usize,
    /// Sorted by `(priority, payload)`, deduplicated, at most `k` entries.
    entries: Vec<(u64, u64)>,
}

impl MinHashSample {
    /// Create an empty sample of capacity `k`.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "sample capacity must be positive");
        MinHashSample {
            k,
            entries: Vec::new(),
        }
    }

    /// Sample capacity.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of sampled elements currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the sample holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert an element with its hash-derived `priority` and a 64-bit
    /// `payload`. The priority must be a deterministic hash of the element
    /// identity for the ODI property to hold.
    pub fn insert(&mut self, priority: u64, payload: u64) {
        let entry = (priority, payload);
        if self.entries.len() == self.k && entry >= *self.entries.last().unwrap() {
            return;
        }
        match self.entries.binary_search(&entry) {
            Ok(_) => {}
            Err(pos) => {
                self.entries.insert(pos, entry);
                self.entries.truncate(self.k);
            }
        }
    }

    /// Insert an `f64` payload (stored as its bit pattern).
    pub fn insert_f64(&mut self, priority: u64, value: f64) {
        self.insert(priority, value.to_bits());
    }

    /// ⊕: union of entries, keeping the `k` of smallest priority.
    ///
    /// # Panics
    /// Panics if capacities differ.
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(
            self.k, other.k,
            "cannot merge samples of different capacity"
        );
        let mut merged = Vec::with_capacity(self.k);
        let (mut i, mut j) = (0, 0);
        while merged.len() < self.k && (i < self.entries.len() || j < other.entries.len()) {
            let next = match (self.entries.get(i), other.entries.get(j)) {
                (Some(&a), Some(&b)) => {
                    if a <= b {
                        i += 1;
                        if a == b {
                            j += 1;
                        }
                        a
                    } else {
                        j += 1;
                        b
                    }
                }
                (Some(&a), None) => {
                    i += 1;
                    a
                }
                (None, Some(&b)) => {
                    j += 1;
                    b
                }
                (None, None) => break,
            };
            merged.push(next);
        }
        self.entries = merged;
    }

    /// The sampled payloads (in priority order).
    pub fn payloads(&self) -> impl Iterator<Item = u64> + '_ {
        self.entries.iter().map(|&(_, p)| p)
    }

    /// The sampled payloads decoded as `f64`.
    pub fn values_f64(&self) -> Vec<f64> {
        self.entries
            .iter()
            .map(|&(_, p)| f64::from_bits(p))
            .collect()
    }

    /// Estimate the `q`-quantile (0 ≤ q ≤ 1) of the sampled population.
    /// Returns `None` on an empty sample.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.entries.is_empty() {
            return None;
        }
        let mut vals = self.values_f64();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let idx = ((q.clamp(0.0, 1.0) * (vals.len() - 1) as f64).round()) as usize;
        Some(vals[idx])
    }

    /// Estimate the `p`-th raw statistical moment of the population.
    pub fn moment(&self, p: u32) -> Option<f64> {
        if self.entries.is_empty() {
            return None;
        }
        let vals = self.values_f64();
        Some(vals.iter().map(|v| v.powi(p as i32)).sum::<f64>() / vals.len() as f64)
    }

    /// Wire size in 32-bit words: 4 per entry (priority + payload).
    pub fn wire_words(&self) -> usize {
        self.entries.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::keyed;
    use proptest::prelude::*;

    fn sample_of(k: usize, ids: impl Iterator<Item = u64>) -> MinHashSample {
        let mut s = MinHashSample::new(k);
        for id in ids {
            s.insert_f64(keyed(1, id), id as f64);
        }
        s
    }

    #[test]
    fn holds_everything_below_capacity() {
        let s = sample_of(100, 0..50);
        assert_eq!(s.len(), 50);
    }

    #[test]
    fn truncates_to_capacity() {
        let s = sample_of(10, 0..1000);
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn duplicate_insertion_is_noop() {
        let mut s = MinHashSample::new(8);
        s.insert(5, 100);
        let snap = s.clone();
        s.insert(5, 100);
        assert_eq!(s, snap);
    }

    #[test]
    fn merge_equals_sample_of_union() {
        let a = sample_of(16, 0..300);
        let b = sample_of(16, 150..450); // overlap 150..300
        let mut merged = a.clone();
        merged.merge(&b);
        let direct = sample_of(16, 0..450);
        assert_eq!(merged, direct);
    }

    #[test]
    fn sample_is_uniform_ish() {
        // Sample 64 of 0..10_000; the mean of sampled ids should be near
        // 5000 across many hash keys.
        let mut total = 0.0;
        let trials = 40;
        for t in 0..trials {
            let mut s = MinHashSample::new(64);
            for id in 0..10_000u64 {
                s.insert_f64(keyed(100 + t, id), id as f64);
            }
            total += s.values_f64().iter().sum::<f64>() / 64.0;
        }
        let mean = total / trials as f64;
        assert!((mean - 5000.0).abs() < 400.0, "mean {mean}");
    }

    #[test]
    fn quantile_estimates() {
        let mut s = MinHashSample::new(500);
        for id in 0..5_000u64 {
            s.insert_f64(keyed(7, id), id as f64);
        }
        let median = s.quantile(0.5).unwrap();
        assert!((median - 2500.0).abs() < 500.0, "median {median}");
        let min = s.quantile(0.0).unwrap();
        assert!(min < 200.0);
    }

    #[test]
    fn moment_estimates() {
        let mut s = MinHashSample::new(1000);
        for id in 0..2_000u64 {
            s.insert_f64(keyed(8, id), 2.0);
        }
        assert!((s.moment(1).unwrap() - 2.0).abs() < 1e-12);
        assert!((s.moment(2).unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_sample_queries() {
        let s = MinHashSample::new(4);
        assert!(s.quantile(0.5).is_none());
        assert!(s.moment(1).is_none());
        assert_eq!(s.wire_words(), 0);
    }

    proptest! {
        #[test]
        fn prop_merge_commutative(xs in proptest::collection::vec(any::<u64>(), 0..100),
                                  ys in proptest::collection::vec(any::<u64>(), 0..100)) {
            let mk = |els: &[u64]| {
                let mut s = MinHashSample::new(8);
                for &e in els { s.insert(keyed(2, e), e); }
                s
            };
            let (a, b) = (mk(&xs), mk(&ys));
            let mut ab = a.clone(); ab.merge(&b);
            let mut ba = b.clone(); ba.merge(&a);
            prop_assert_eq!(ab, ba);
        }

        #[test]
        fn prop_merge_associative(xs in proptest::collection::vec(any::<u64>(), 0..60),
                                  ys in proptest::collection::vec(any::<u64>(), 0..60),
                                  zs in proptest::collection::vec(any::<u64>(), 0..60)) {
            let mk = |els: &[u64]| {
                let mut s = MinHashSample::new(8);
                for &e in els { s.insert(keyed(2, e), e); }
                s
            };
            let (a, b, c) = (mk(&xs), mk(&ys), mk(&zs));
            let mut l = a.clone(); l.merge(&b); l.merge(&c);
            let mut bc = b.clone(); bc.merge(&c);
            let mut r = a.clone(); r.merge(&bc);
            prop_assert_eq!(l, r);
        }

        #[test]
        fn prop_merge_idempotent(xs in proptest::collection::vec(any::<u64>(), 0..100)) {
            let mut a = MinHashSample::new(8);
            for &e in &xs { a.insert(keyed(2, e), e); }
            let mut aa = a.clone();
            aa.merge(&a);
            prop_assert_eq!(aa, a);
        }
    }
}
