//! Flajolet–Martin (FM) probabilistic-counting sketches \[7\].
//!
//! An [`FmSketch`] holds `K` independent 32-bit bitmaps. Inserting a
//! distinct element sets, in each bitmap `k`, bit `ρ(h_k(e))` where `ρ` is
//! the position of the lowest set bit of a fresh hash of `e` — a geometric
//! level. Merging is bitwise OR, which makes the sketch fully ODI: the same
//! element inserted anywhere, any number of times, sets the same bits.
//!
//! **Estimation.** Each bitmap estimates `lg(φ·n)` via `z`, its lowest
//! *unset* bit position (`φ = 0.77351`, FM's magic constant). The sketch
//! estimate is `2^{mean(z)} / φ`; averaging `z` across `K = 40` bitmaps
//! gives a relative standard error of `≈ ln 2 · 1.12 / √K ≈ 12%` — the
//! approximation error the paper reports for the synopsis-diffusion Count
//! and Sum in §7.1 and Figure 2.
//!
//! **Sum insertion.** To add a *value* `v` (e.g. a sensor reading or a
//! converted subtree sum), the sketch behaves as if `v` distinct
//! sub-elements were inserted, as in \[5\]. For small `v` we insert them
//! literally; for large `v` we use the standard independent-bit
//! approximation (`P[bit j unset] = (1 − 2^{−(j+1)})^v`), with the bits
//! drawn deterministically from the insertion salt so the operation stays
//! duplicate-insensitive.

use crate::hash::{keyed, keyed_pair, SplitMix};

/// Number of bitmaps in the paper's configuration (§7.1).
pub const DEFAULT_BITMAPS: usize = 40;

/// Bits per bitmap (§7.1 uses 32-bit synopses).
pub const BITMAP_BITS: u32 = 32;

/// FM's bias correction constant φ.
pub const PHI: f64 = 0.77351;

/// Threshold below which value insertion inserts literal sub-elements
/// (exact distribution) instead of the independent-bit approximation.
/// Kept small: the literal path costs `v × K` hashes, the approximate
/// path a constant ~`K × log v` draws, and the approximation's marginals
/// are exact (only inter-bit correlation is ignored).
const EXACT_INSERT_LIMIT: u64 = 16;

/// A Flajolet–Martin sketch with `K` independent 32-bit bitmaps.
///
/// ```
/// use td_sketches::fm::FmSketch;
///
/// // Count ~1000 distinct elements across two partial sketches that
/// // overlap — duplicates cannot inflate the estimate.
/// let mut a = FmSketch::default_config();
/// let mut b = FmSketch::default_config();
/// for i in 0..700u64 { a.insert_distinct(i); }
/// for i in 300..1000u64 { b.insert_distinct(i); }
/// a.merge(&b);
/// let est = a.estimate();
/// assert!((est - 1000.0).abs() / 1000.0 < 0.4, "estimate {est}");
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FmSketch {
    bitmaps: Vec<u32>,
}

impl FmSketch {
    /// Create an empty sketch with `k` bitmaps.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "an FM sketch needs at least one bitmap");
        FmSketch {
            bitmaps: vec![0; k],
        }
    }

    /// Create an empty sketch with the paper's 40-bitmap configuration.
    pub fn default_config() -> Self {
        FmSketch::new(DEFAULT_BITMAPS)
    }

    /// Number of bitmaps.
    #[inline]
    pub fn num_bitmaps(&self) -> usize {
        self.bitmaps.len()
    }

    /// Raw bitmaps (for the wire encoder).
    #[inline]
    pub fn bitmaps(&self) -> &[u32] {
        &self.bitmaps
    }

    /// Rebuild a sketch from raw bitmaps (the wire decoder).
    pub fn from_bitmaps(bitmaps: Vec<u32>) -> Self {
        assert!(!bitmaps.is_empty());
        FmSketch { bitmaps }
    }

    /// Whether nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.bitmaps.iter().all(|&b| b == 0)
    }

    /// Reset to the empty sketch, keeping the bitmap allocation — the
    /// recycle half of pooled reuse (see [`copy_from`](Self::copy_from)).
    pub fn clear(&mut self) {
        self.bitmaps.fill(0);
    }

    /// Become a copy of `other` without reallocating — the pooled
    /// counterpart of `clone` for arena free-lists.
    ///
    /// # Panics
    /// Panics if the sketches have different bitmap counts.
    pub fn copy_from(&mut self, other: &Self) {
        assert_eq!(
            self.bitmaps.len(),
            other.bitmaps.len(),
            "cannot copy between FM sketches of different widths"
        );
        self.bitmaps.copy_from_slice(&other.bitmaps);
    }

    /// Insert one distinct element. Re-inserting the same element is a
    /// no-op in effect (same bits), which is the ODI property.
    pub fn insert_distinct(&mut self, element: u64) {
        for (k, bm) in self.bitmaps.iter_mut().enumerate() {
            let h = keyed(k as u64, element);
            let rho = h.trailing_zeros().min(BITMAP_BITS - 1);
            *bm |= 1 << rho;
        }
    }

    /// Add a non-negative integer value `v` under an insertion salt.
    ///
    /// Semantically inserts `v` distinct sub-elements `(salt, 0..v)`; the
    /// same `(salt, v)` pair always produces the same bits, so converted
    /// partial results can safely travel multiple paths. Different salts
    /// (e.g. different tree roots) contribute independently.
    pub fn insert_value(&mut self, salt: u64, v: u64) {
        if v == 0 {
            return;
        }
        if v <= EXACT_INSERT_LIMIT {
            for i in 0..v {
                self.insert_distinct(keyed_pair(0x5EED_F00D, salt, i));
            }
            return;
        }
        // Independent-bit approximation (Considine et al. [5]): bit j is
        // set with probability 1 - (1 - 2^{-(j+1)})^v, sampled from a
        // deterministic stream per (salt, bitmap). The probability table
        // depends only on (j, v), so it is computed once and shared by
        // all bitmaps; bits far below lg v are certainly set and bits far
        // above certainly unset, so only the uncertain band is sampled.
        let vf = v as f64;
        let mut p_unset = [0.0f64; BITMAP_BITS as usize];
        let mut lo = BITMAP_BITS; // first uncertain bit
        let mut hi = 0; // one past the last uncertain bit
        for (j, p) in p_unset.iter_mut().enumerate() {
            *p = (1.0 - 2f64.powi(-(j as i32 + 1))).powf(vf);
            if *p >= 1e-12 && *p <= 1.0 - 1e-12 {
                lo = lo.min(j as u32);
                hi = hi.max(j as u32 + 1);
            }
        }
        // Prefix of certainly-set bits (everything below the band whose
        // p_unset vanished).
        let certain: u32 = if lo == BITMAP_BITS {
            // No uncertain band: v is so large every representable bit is
            // effectively set below the vanishing point.
            let set_below = p_unset.iter().take_while(|&&p| p < 1e-12).count() as u32;
            if set_below >= 32 {
                u32::MAX
            } else {
                (1u32 << set_below) - 1
            }
        } else if lo >= 32 {
            u32::MAX
        } else {
            (1u32 << lo) - 1
        };
        for (k, bm) in self.bitmaps.iter_mut().enumerate() {
            *bm |= certain;
            if lo >= hi {
                continue;
            }
            let mut stream = SplitMix::new(keyed_pair(0xC0DE_CAFE, salt, k as u64));
            for j in lo..hi {
                if stream.next_f64() >= p_unset[j as usize] {
                    *bm |= 1 << j;
                }
            }
        }
    }

    /// ⊕: bitwise OR of bitmaps. Commutative, associative, idempotent.
    ///
    /// # Panics
    /// Panics if the sketches have different bitmap counts.
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(
            self.bitmaps.len(),
            other.bitmaps.len(),
            "cannot merge FM sketches of different widths"
        );
        for (a, b) in self.bitmaps.iter_mut().zip(&other.bitmaps) {
            *a |= b;
        }
    }

    /// Position of the lowest unset bit of a bitmap (FM's `z` statistic).
    #[inline]
    pub fn lowest_unset(bitmap: u32) -> u32 {
        (!bitmap).trailing_zeros()
    }

    /// Estimate the number of distinct elements (or total inserted value).
    ///
    /// `2^{mean(z)} / φ`, with an empty sketch estimating 0.
    pub fn estimate(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let sum_z: u32 = self.bitmaps.iter().map(|&b| Self::lowest_unset(b)).sum();
        let mean_z = sum_z as f64 / self.bitmaps.len() as f64;
        2f64.powf(mean_z) / PHI
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_estimates_zero() {
        let s = FmSketch::default_config();
        assert!(s.is_empty());
        assert_eq!(s.estimate(), 0.0);
    }

    #[test]
    fn reinsertion_is_idempotent() {
        let mut a = FmSketch::new(16);
        a.insert_distinct(42);
        let snapshot = a.clone();
        a.insert_distinct(42);
        assert_eq!(a, snapshot);
    }

    #[test]
    fn merge_is_or() {
        let mut a = FmSketch::new(8);
        a.insert_distinct(1);
        let mut b = FmSketch::new(8);
        b.insert_distinct(2);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        // Idempotent
        let mut abb = ab.clone();
        abb.merge(&b);
        assert_eq!(abb, ab);
    }

    #[test]
    #[should_panic(expected = "different widths")]
    fn merge_width_mismatch_panics() {
        let mut a = FmSketch::new(8);
        let b = FmSketch::new(16);
        a.merge(&b);
    }

    #[test]
    fn distinct_count_accuracy_at_600() {
        // The paper's Count query over 600 nodes: expect ~12% relative
        // standard error with 40 bitmaps. Use a generous 3-sigma band.
        let mut s = FmSketch::default_config();
        for i in 0..600u64 {
            s.insert_distinct(i);
        }
        let est = s.estimate();
        let rel = (est - 600.0).abs() / 600.0;
        assert!(rel < 0.36, "estimate {est} rel err {rel}");
    }

    #[test]
    fn distinct_count_unbiased_across_salts() {
        // Average estimate over many independent populations should be
        // within a few percent of the truth.
        let n = 500u64;
        let trials = 60;
        let mut total = 0.0;
        for t in 0..trials {
            let mut s = FmSketch::default_config();
            for i in 0..n {
                s.insert_distinct(crate::hash::keyed_pair(77, t, i));
            }
            total += s.estimate();
        }
        let mean = total / trials as f64;
        let rel = (mean - n as f64).abs() / n as f64;
        assert!(rel < 0.06, "mean {mean} rel {rel}");
    }

    #[test]
    fn value_insertion_matches_scale() {
        let mut s = FmSketch::default_config();
        s.insert_value(1, 10_000);
        let est = s.estimate();
        let rel = (est - 10_000.0).abs() / 10_000.0;
        assert!(rel < 0.4, "estimate {est}");
    }

    #[test]
    fn value_insertion_small_path_exact_count() {
        // v <= EXACT_INSERT_LIMIT inserts literal sub-elements; estimate
        // should be in a sane band even for tiny v.
        let mut s = FmSketch::default_config();
        s.insert_value(3, 1);
        assert!(s.estimate() >= 1.0);
        assert!(s.estimate() < 6.0);
    }

    #[test]
    fn value_insertion_deterministic_per_salt() {
        let mut a = FmSketch::default_config();
        a.insert_value(9, 5_000);
        let mut b = FmSketch::default_config();
        b.insert_value(9, 5_000);
        assert_eq!(a, b);
        // ODI: merging duplicates changes nothing.
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, a);
    }

    #[test]
    fn sum_of_values_adds_up() {
        // Insert 200 values of 50 under distinct salts: total 10_000.
        let mut s = FmSketch::default_config();
        for salt in 0..200u64 {
            s.insert_value(salt, 50);
        }
        let est = s.estimate();
        let rel = (est - 10_000.0).abs() / 10_000.0;
        assert!(rel < 0.35, "estimate {est} rel {rel}");
    }

    #[test]
    fn duplicate_paths_do_not_inflate_count() {
        // Simulate multi-path: the same local synopses merged along two
        // different paths, then combined. Estimate must equal the
        // single-path estimate exactly.
        let locals: Vec<FmSketch> = (0..50u64)
            .map(|i| {
                let mut s = FmSketch::new(16);
                s.insert_distinct(i);
                s
            })
            .collect();
        let mut path_a = FmSketch::new(16);
        for s in &locals[..30] {
            path_a.merge(s);
        }
        let mut path_b = FmSketch::new(16);
        for s in &locals[10..] {
            path_b.merge(s); // overlaps path_a on 10..30
        }
        let mut multi = path_a.clone();
        multi.merge(&path_b);
        let mut single = FmSketch::new(16);
        for s in &locals {
            single.merge(s);
        }
        assert_eq!(multi, single);
    }

    proptest! {
        #[test]
        fn prop_merge_commutative(xs in proptest::collection::vec(any::<u64>(), 0..50),
                                  ys in proptest::collection::vec(any::<u64>(), 0..50)) {
            let mut a = FmSketch::new(8);
            for &x in &xs { a.insert_distinct(x); }
            let mut b = FmSketch::new(8);
            for &y in &ys { b.insert_distinct(y); }
            let mut ab = a.clone(); ab.merge(&b);
            let mut ba = b.clone(); ba.merge(&a);
            prop_assert_eq!(ab, ba);
        }

        #[test]
        fn prop_merge_associative(xs in proptest::collection::vec(any::<u64>(), 0..30),
                                  ys in proptest::collection::vec(any::<u64>(), 0..30),
                                  zs in proptest::collection::vec(any::<u64>(), 0..30)) {
            let mk = |els: &[u64]| {
                let mut s = FmSketch::new(8);
                for &e in els { s.insert_distinct(e); }
                s
            };
            let (a, b, c) = (mk(&xs), mk(&ys), mk(&zs));
            let mut left = a.clone(); left.merge(&b); left.merge(&c);
            let mut bc = b.clone(); bc.merge(&c);
            let mut right = a.clone(); right.merge(&bc);
            prop_assert_eq!(left, right);
        }

        #[test]
        fn prop_merge_idempotent(xs in proptest::collection::vec(any::<u64>(), 0..50)) {
            let mut a = FmSketch::new(8);
            for &x in &xs { a.insert_distinct(x); }
            let mut aa = a.clone();
            aa.merge(&a);
            prop_assert_eq!(aa, a);
        }

        #[test]
        fn prop_estimate_monotone_under_merge(xs in proptest::collection::vec(any::<u64>(), 1..50),
                                              ys in proptest::collection::vec(any::<u64>(), 1..50)) {
            let mut a = FmSketch::new(8);
            for &x in &xs { a.insert_distinct(x); }
            let mut b = FmSketch::new(8);
            for &y in &ys { b.insert_distinct(y); }
            let ea = a.estimate();
            a.merge(&b);
            prop_assert!(a.estimate() >= ea - 1e-9);
        }

        #[test]
        fn prop_value_insert_salt_deterministic(salt in any::<u64>(), v in 1u64..100_000) {
            let mut a = FmSketch::new(8);
            a.insert_value(salt, v);
            let mut b = FmSketch::new(8);
            b.insert_value(salt, v);
            prop_assert_eq!(a, b);
        }
    }
}
