//! Bench-side JSON output: the shared encoder plus the one results-file
//! writer every bench binary uses.
//!
//! The encoder itself lives in [`td_telemetry::json`] (re-exported
//! here), so the bench results files and the telemetry snapshot export
//! go through exactly one implementation — this module replaces the
//! hand-rolled `format!` JSON that used to be duplicated across
//! `bench_engine`, `bench_service`, and the perf-gate fixtures.
//!
//! The bench files (`bench_engine.json`, `bench_service.json`) must
//! stay **flat** — string keys to numbers only — because the perf gate
//! reads them back through [`crate::gate::parse_flat_json`], which
//! rejects nesting and non-numeric values on purpose. Booleans go in as
//! `0`/`1` for the same reason. The pairing is pinned by a round-trip
//! test in [`crate::gate`]. Nested documents (the telemetry snapshot)
//! belong in their own files.

use std::io::Write;
use std::path::PathBuf;

pub use td_telemetry::json::{num, JsonObject, JsonValue};

use crate::report::results_dir;

/// Write `text` to `results/<name>`, creating the directory if needed,
/// and report the outcome on stdout/stderr the way every bench binary
/// does. Errors are non-fatal (the numbers were already printed);
/// returns the path on success.
pub fn write_results_text(name: &str, text: &str) -> Option<PathBuf> {
    let path = results_dir().join(name);
    let write = || -> std::io::Result<()> {
        std::fs::create_dir_all(path.parent().expect("has parent"))?;
        let mut f = std::fs::File::create(&path)?;
        f.write_all(text.as_bytes())
    };
    match write() {
        Ok(()) => {
            println!("wrote {}", path.display());
            Some(path)
        }
        Err(e) => {
            eprintln!("warning: could not write {}: {e}", path.display());
            None
        }
    }
}

/// Pretty-print `obj` to `results/<name>` (see [`write_results_text`]).
pub fn write_results(name: &str, obj: &JsonObject) -> Option<PathBuf> {
    write_results_text(name, &obj.to_string_pretty())
}
