//! Figure 4: evolution of the TD delta region under regional failures.
//!
//! Under `Regional(p1, 0.05)` the fine-grained TD strategy grows its
//! delta *toward the failure quadrant* rather than uniformly around the
//! base station. The regenerator reports, for `p1 ∈ {0.3, 0.8}`, the
//! delta membership after convergence, the fraction of the delta inside
//! the failure region, and an ASCII scatter of the deployment (the
//! paper's dots-and-big-dots plot).

use crate::report::Table;
use crate::Scale;
use td_netsim::network::Network;
use td_netsim::node::Rect;
use td_netsim::rng::substream;
use td_workloads::scenario;
use td_workloads::synthetic::Synthetic;
use tributary_delta::driver::{Driver, TrialPool};
use tributary_delta::session::{Scheme, SessionBuilder};

/// One converged snapshot.
#[derive(Clone, Debug)]
pub struct DeltaSnapshot {
    /// The inner loss rate p1.
    pub p1: f64,
    /// The outer loss rate p2.
    pub p2: f64,
    /// Scheme (TD or TD-Coarse).
    pub scheme: &'static str,
    /// Delta coordinates.
    pub delta: Vec<(f64, f64)>,
    /// Total connected sensors.
    pub sensors: usize,
    /// Fraction of delta nodes inside the failure region.
    pub frac_inside: f64,
    /// Fraction of *all* nodes inside the failure region (the null
    /// hypothesis for localization).
    pub baseline_frac: f64,
}

fn converge(
    scheme: Scheme,
    p1: f64,
    p2: f64,
    region: td_netsim::node::Rect,
    net: &Network,
    scale: Scale,
    seed: u64,
) -> Vec<(f64, f64)> {
    let model = td_netsim::loss::Regional::new(region, p1, p2);
    let mut rng = substream(seed, 0xF04);
    let session = scale
        .configure(SessionBuilder::new(scheme))
        .build(net, &mut rng);
    let mut driver = Driver::new(session, scale.warmup);
    driver.run_scalar(
        &td_aggregates::count::Count::default(),
        &Synthetic::count_workload(net),
        &model,
        scale.epochs,
        |_| net.num_sensors() as f64,
        &mut rng,
    );
    driver
        .session()
        .delta_nodes()
        .into_iter()
        .map(|n| {
            let p = net.position(n);
            (p.x, p.y)
        })
        .collect()
}

/// Run the experiment for both loss rates of Figure 4 (plus TD-Coarse for
/// the §7.2 contrast).
pub fn run(scale: Scale, seed: u64) -> Vec<DeltaSnapshot> {
    let spec = Synthetic::sized(scale.sensors);
    let net = spec.build(seed);
    let region = scenario::failure_region_for(spec.width, spec.height);
    let baseline = net
        .sensor_ids()
        .filter(|&n| region.contains(net.position(n)))
        .count() as f64
        / net.num_sensors() as f64;
    // The paper's two loss rates with its p2 = 0.05, plus a low-noise
    // variant where the outside network is healthy enough that a partial
    // delta meets the 90% target — the regime where fine-grained
    // localization is visible (see EXPERIMENTS.md on depth sensitivity).
    // Each (loss rates, scheme) snapshot converges independently on the
    // trial pool.
    let cells: Vec<(f64, f64, Scheme, &'static str)> = [(0.3, 0.05), (0.8, 0.05), (0.3, 0.005)]
        .into_iter()
        .flat_map(|(p1, p2)| {
            [(Scheme::Td, "TD"), (Scheme::TdCoarse, "TD-Coarse")]
                .into_iter()
                .map(move |(scheme, name)| (p1, p2, scheme, name))
        })
        .collect();
    TrialPool::new().map(seed, &cells, |_, &(p1, p2, scheme, name), _pool_rng| {
        let delta = converge(scheme, p1, p2, region, &net, scale, seed);
        let inside = delta
            .iter()
            .filter(|&&(x, y)| region.contains(td_netsim::node::Position::new(x, y)))
            .count();
        let frac_inside = if delta.is_empty() {
            0.0
        } else {
            inside as f64 / delta.len() as f64
        };
        DeltaSnapshot {
            p1,
            p2,
            scheme: name,
            delta,
            sensors: net.num_sensors(),
            frac_inside,
            baseline_frac: baseline,
        }
    })
}

/// ASCII scatter of a snapshot: `.` sensor, `#` delta member, `B` base.
pub fn ascii_map(net: &Network, delta: &[(f64, f64)], region: Rect) -> String {
    const W: usize = 40;
    const H: usize = 20;
    let (max_x, max_y) = net
        .positions()
        .iter()
        .fold((1.0f64, 1.0f64), |(mx, my), p| (mx.max(p.x), my.max(p.y)));
    let mut grid = vec![vec![' '; W]; H];
    let cell = move |x: f64, y: f64| {
        let cx = ((x / max_x) * (W as f64 - 1.0)).round() as usize;
        let cy = ((y / max_y) * (H as f64 - 1.0)).round() as usize;
        (cx.min(W - 1), H - 1 - cy.min(H - 1))
    };
    for n in net.sensor_ids() {
        let p = net.position(n);
        let (cx, cy) = cell(p.x, p.y);
        if grid[cy][cx] == ' ' {
            grid[cy][cx] = '.';
        }
    }
    for &(x, y) in delta {
        let (cx, cy) = cell(x, y);
        grid[cy][cx] = '#';
    }
    let base = net.position(td_netsim::node::BASE_STATION);
    let (bx, by) = cell(base.x, base.y);
    grid[by][bx] = 'B';
    let mut out = String::new();
    out.push_str(&format!(
        "failure region: ({:.0},{:.0})-({:.0},{:.0}); '#' = delta vertex, 'B' = base\n",
        region.min.x, region.min.y, region.max.x, region.max.y
    ));
    for row in grid {
        out.push_str(&row.into_iter().collect::<String>());
        out.push('\n');
    }
    out
}

/// Summarize snapshots as a table.
pub fn table(snapshots: &[DeltaSnapshot]) -> Table {
    let mut t = Table::new(
        "Figure 4: delta region under Regional(p1, p2)",
        &[
            "p1",
            "p2",
            "scheme",
            "delta_size",
            "sensors",
            "frac_delta_in_region",
            "frac_nodes_in_region",
        ],
    );
    for s in snapshots {
        t.row(vec![
            format!("{:.2}", s.p1),
            format!("{:.3}", s.p2),
            s.scheme.to_string(),
            s.delta.len().to_string(),
            s.sensors.to_string(),
            format!("{:.3}", s.frac_inside),
            format!("{:.3}", s.baseline_frac),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn td_localizes_more_than_baseline() {
        let scale = Scale {
            runs: 1,
            epochs: 20,
            warmup: 120,
            sensors: 250,
            items_per_node: 0,
            workers: None,
        };
        let snaps = run(scale, 31);
        let td_03 = snaps
            .iter()
            .find(|s| s.scheme == "TD" && (s.p1 - 0.3).abs() < 1e-9 && s.p2 < 0.01)
            .unwrap();
        assert!(
            td_03.frac_inside > td_03.baseline_frac,
            "TD delta not enriched in failure region: {} vs baseline {}",
            td_03.frac_inside,
            td_03.baseline_frac
        );
    }

    #[test]
    fn ascii_map_renders() {
        let net = Synthetic::small(60).build(1);
        let map = ascii_map(&net, &[(5.0, 5.0)], scenario::paper_failure_region());
        assert!(map.contains('B'));
        assert!(map.contains('#'));
    }
}
