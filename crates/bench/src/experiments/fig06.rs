//! Figure 6: relative-error timeline under changing network conditions.
//!
//! 400 epochs of a Sum query while the failure model steps through
//! `Global(0)` → `Regional(0.3, 0)` at t=100 → `Global(0.3)` at t=200 →
//! `Global(0)` at t=300. The paper's observations to reproduce: TAG is
//! best in the lossless phases, SD in the lossy ones; both TD schemes
//! track the better of the two once converged; TD converges slower but
//! tighter than TD-Coarse (which oscillates near the optimum).

use crate::report::{f, Table};
use crate::Scale;
use std::collections::BTreeMap;
use td_netsim::rng::substream;
use td_workloads::scenario::figure6_timeline;
use td_workloads::synthetic::Synthetic;
use tributary_delta::driver::{Driver, EpochView, TrialPool};
use tributary_delta::metrics::relative_error;
use tributary_delta::protocol::ScalarProtocol;
use tributary_delta::query::QuerySet;
use tributary_delta::session::{Scheme, SessionBuilder};

/// Per-epoch relative errors for every scheme.
#[derive(Clone, Debug)]
pub struct TimelineResult {
    /// `series[scheme][t]` = relative error at epoch `t`.
    pub series: BTreeMap<&'static str, Vec<f64>>,
    /// Epochs simulated.
    pub epochs: u64,
}

/// The four phases of the timeline, for summary statistics.
pub const PHASES: [(&str, u64, u64); 4] = [
    ("Global(0)", 0, 100),
    ("Regional(0.3,0)", 100, 200),
    ("Global(0.3)", 200, 300),
    ("Global(0) again", 300, 400),
];

/// Run the timeline (single seeded run, as the paper plots).
pub fn run(scale: Scale, seed: u64) -> TimelineResult {
    let net = Synthetic::sized(scale.sensors).build(seed);
    let model = figure6_timeline();
    let epochs = 400u64;
    let schemes = Scheme::all();
    let per_scheme = TrialPool::new().map(seed, &schemes, |_, &scheme, _pool_rng| {
        // Scheme substreams are derived from the experiment seed (not the
        // pool stream) so the series match a sequential regeneration.
        let mut rng = substream(seed, 0xF06 + 0x100 * scheme.index());
        let session = scale
            .configure(SessionBuilder::new(scheme))
            .build(&net, &mut rng);
        // The timeline is the experiment: every epoch is plotted, so the
        // driver runs with zero warmup.
        let mut driver = Driver::new(session, 0);
        let mut errors = Vec::with_capacity(epochs as usize);
        driver.run(
            &Synthetic::sum_workload(&net, seed),
            &model,
            epochs,
            |set: &mut QuerySet<'_>, values| {
                set.register(ScalarProtocol::new(
                    td_aggregates::sum::Sum::default(),
                    values,
                ))
            },
            |view: EpochView<'_>, handle| {
                let actual: f64 = view.readings[1..].iter().sum::<u64>() as f64;
                errors.push(relative_error(*view.record.answers.get(handle), actual));
            },
            &mut rng,
        );
        errors
    });
    let mut series = BTreeMap::new();
    for (scheme, errors) in schemes.into_iter().zip(per_scheme) {
        series.insert(scheme.name(), errors);
    }
    TimelineResult { series, epochs }
}

/// Mean relative error of a scheme during the **settled half** of each
/// phase (skipping the first 50 epochs of the phase, where adaptation is
/// still converging).
pub fn phase_means(result: &TimelineResult) -> Table {
    let mut t = Table::new(
        "Figure 6: mean relative error per phase (settled half)",
        &["phase", "TAG", "SD", "TD-Coarse", "TD"],
    );
    for (name, start, end) in PHASES {
        let settled = start + (end - start) / 2;
        let mean = |scheme: &str| -> f64 {
            let s = &result.series[scheme];
            let window = &s[settled as usize..end as usize];
            window.iter().sum::<f64>() / window.len() as f64
        };
        t.row(vec![
            name.to_string(),
            f(mean("TAG")),
            f(mean("SD")),
            f(mean("TD-Coarse")),
            f(mean("TD")),
        ]);
    }
    t
}

/// The full per-epoch table (the CSV behind the figure).
pub fn full_table(result: &TimelineResult) -> Table {
    let mut t = Table::new(
        "Figure 6: relative error timeline",
        &["epoch", "TAG", "SD", "TD-Coarse", "TD"],
    );
    for e in 0..result.epochs as usize {
        t.row(vec![
            e.to_string(),
            f(result.series["TAG"][e]),
            f(result.series["SD"][e]),
            f(result.series["TD-Coarse"][e]),
            f(result.series["TD"][e]),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_cover_400_epochs() {
        assert_eq!(PHASES[0].1, 0);
        assert_eq!(PHASES[3].2, 400);
        for w in PHASES.windows(2) {
            assert_eq!(w[0].2, w[1].1);
        }
    }
}
